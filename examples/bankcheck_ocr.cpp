// bankcheck_ocr: the paper's introduction motivates the threat with
// automatic bank-check reading — "an attacker could easily fool the model
// to predict wrong bank account numbers or wrong amounts of money".
//
// This demo simulates exactly that scenario: a multi-digit courtesy-amount
// field is read digit-by-digit by (a) a CNN and (b) a structurally-tuned
// SNN; a white-box adversary then perturbs every digit within an
// imperceptibility budget and we compare the amounts each reader reports.
//
//   ./bankcheck_ocr [--amount 90210] [--eps 0.12] [--show-digits]
#include <cstdio>
#include <string>

#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "data/synth_digits.hpp"
#include "nn/lenet.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

namespace {

using namespace snnsec;
using tensor::Shape;
using tensor::Tensor;

/// Render each digit of `amount` as one image row in a batch.
data::Dataset render_amount(const std::string& amount, std::int64_t size,
                            util::Rng& rng) {
  data::Dataset out;
  out.num_classes = 10;
  const std::int64_t n = static_cast<std::int64_t>(amount.size());
  out.images = Tensor(Shape{n, 1, size, size});
  data::SynthConfig cfg;
  cfg.image_size = size;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t digit = amount[static_cast<std::size_t>(i)] - '0';
    out.labels.push_back(digit);
    data::Canvas canvas(size, size);
    data::render_digit(digit, cfg, rng, canvas);
    canvas.copy_to(out.images, i);
  }
  return out;
}

std::string read_amount(nn::Classifier& model, const Tensor& digits) {
  std::string out;
  for (const auto d : model.predict(digits))
    out += static_cast<char>('0' + d);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bankcheck_ocr",
                       "adversarial bank-check amount reading demo");
  auto& amount = args.add_string("amount", "90210", "amount digits to read");
  auto& eps = args.add_double("eps", 0.12, "adversarial budget (L-inf)");
  auto& train_n = args.add_int("train", 1000, "training samples");
  auto& show = args.add_flag("show-digits", "print ASCII art of the digits");
  args.parse(argc, argv);

  for (const char c : amount)
    SNNSEC_CHECK(c >= '0' && c <= '9', "--amount must be digits only");

  // Train the two check readers on the digit task.
  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = 100;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  nn::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.lr = 4e-3;
  util::Rng rng(util::master_seed());

  std::printf("training the CNN check reader...\n");
  util::Rng cnn_rng = rng.fork("cnn");
  auto cnn = nn::build_paper_cnn(arch, cnn_rng);
  nn::Trainer(tcfg).fit(*cnn, bundle.train.images, bundle.train.labels);

  std::printf("training the SNN check reader (tuned V_th=2, T=32)...\n");
  snn::SnnConfig scfg;
  scfg.v_th = 2.0;  // a sweet spot from the exploration study
  scfg.time_steps = 32;
  util::Rng snn_rng = rng.fork("snn");
  auto snn = snn::build_spiking_lenet(arch, scfg, snn_rng);
  nn::Trainer(tcfg).fit(*snn, bundle.train.images, bundle.train.labels);

  // The check arrives.
  util::Rng check_rng = rng.fork("check");
  const data::Dataset check = render_amount(amount, 16, check_rng);
  if (show)
    for (std::int64_t i = 0; i < check.size(); ++i)
      std::printf("%s\n", data::ascii_art(check.images, i).c_str());

  std::printf("\ncourtesy amount on the check : $%s\n", amount.c_str());
  std::printf("CNN reads (clean)            : $%s\n",
              read_amount(*cnn, check.images).c_str());
  std::printf("SNN reads (clean)            : $%s\n",
              read_amount(*snn, check.images).c_str());

  // The adversary perturbs each digit within the budget, against each
  // reader separately (white-box).
  attack::PgdConfig pcfg;
  pcfg.steps = 10;
  pcfg.rel_stepsize = 0.1;
  attack::AttackBudget budget;
  budget.epsilon = eps;
  attack::Pgd pgd_cnn(pcfg), pgd_snn(pcfg);
  const Tensor adv_cnn =
      pgd_cnn.perturb(*cnn, check.images, check.labels, budget);
  const Tensor adv_snn =
      pgd_snn.perturb(*snn, check.images, check.labels, budget);

  const std::string cnn_read = read_amount(*cnn, adv_cnn);
  const std::string snn_read = read_amount(*snn, adv_snn);
  std::printf("\nadversary budget eps = %.2f (imperceptible smudges)\n", eps);
  std::printf("CNN reads (attacked)         : $%s %s\n", cnn_read.c_str(),
              cnn_read == amount ? "[correct]" : "[FOOLED]");
  std::printf("SNN reads (attacked)         : $%s %s\n", snn_read.c_str(),
              snn_read == amount ? "[correct]" : "[FOOLED]");

  std::printf(
      "\nA structurally-tuned SNN keeps more digits intact under the same\n"
      "white-box budget — the deployment argument of the paper's intro.\n");
  return 0;
}
