// sweetspot_tuning: "design trustworthy SNNs" (paper Sec. VI-C) — run the
// exploration methodology on a small (V_th, T) grid, rank the learnable
// cells by robustness at a target budget, and report the sweet spot plus
// the fragile high-accuracy cells that motivate the whole study.
//
//   ./sweetspot_tuning [--vth-grid 0.5,1,1.5,2] [--t-grid 16,24]
//                      [--eps 0.15] [--ath 0.6]
#include <cstdio>

#include "core/explorer.hpp"
#include <algorithm>

#include "core/sweet_spot.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;

  util::ArgParser args("sweetspot_tuning",
                       "structural-parameter tuning for trustworthy SNNs");
  auto& vth_grid =
      args.add_double_list("vth-grid", "0.5,1.0,2.0", "thresholds to explore");
  auto& t_grid = args.add_int_list("t-grid", "16,24", "time windows");
  auto& eps = args.add_double("eps", 0.15, "target attack budget");
  auto& ath = args.add_double("ath", 0.6, "learnability threshold A_th");
  auto& train_n = args.add_int("train", 800, "training samples");
  args.parse(argc, argv);

  core::ExplorationConfig cfg;
  cfg.v_th_grid = vth_grid;
  cfg.t_grid = t_grid;
  cfg.eps_grid = {eps};
  cfg.accuracy_threshold = ath;
  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.train.epochs = 4;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = train_n;
  cfg.data.test_n = 150;
  cfg.data.image_size = 16;
  cfg.pgd.steps = 10;
  cfg.pgd.rel_stepsize = 0.1;
  cfg.attack_test_cap = 60;
  cfg.seed = util::master_seed();

  std::printf("exploring %s\n", cfg.summary().c_str());
  const data::DataBundle data = data::load_digits(cfg.data);
  core::RobustnessExplorer explorer(cfg);
  const core::ExplorationReport report = explorer.explore(data);

  std::printf("\n%s\n%s\n", report.heatmap(0.0).c_str(),
              report.heatmap(eps).c_str());

  core::SweetSpotFinder finder(eps, ath);
  const auto ranked = finder.rank(report);
  if (ranked.empty()) {
    std::printf("no learnable cell passed A_th=%.2f — enlarge the grid or "
                "training budget\n", ath);
    return 1;
  }
  std::printf("ranking at eps=%.2f (learnable cells only):\n", eps);
  for (const auto& rc : ranked) {
    std::printf("  (V_th=%.2f, T=%-3lld) clean=%.2f robustness=%.2f\n",
                rc.cell->v_th, static_cast<long long>(rc.cell->time_steps),
                rc.cell->clean_accuracy, rc.score);
  }
  const auto* best = finder.best(report);
  std::printf("\n>>> sweet spot: (V_th=%.2f, T=%lld) — deploy this one.\n",
              best->v_th, static_cast<long long>(best->time_steps));

  // Flag cells clearly worse than the sweet spot (and below 0.5 absolute).
  const double fragility =
      std::min(0.5, finder.best(report)->robustness_at(eps).value_or(0.0) * 0.6);
  const auto fragile = finder.fragile_high_accuracy_cells(report, fragility);
  if (!fragile.empty()) {
    std::printf(
        ">>> warning: %zu cell(s) look accurate but collapse under attack\n"
        "    (the paper's answer A3: accuracy is NOT a robustness proxy):\n",
        fragile.size());
    for (const auto& rc : fragile)
      std::printf("    (V_th=%.2f, T=%lld) clean=%.2f robustness=%.2f\n",
                  rc.cell->v_th, static_cast<long long>(rc.cell->time_steps),
                  rc.cell->clean_accuracy, rc.score);
  }
  return 0;
}
