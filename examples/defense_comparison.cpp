// defense_comparison: the paper's implicit question — is structural-
// parameter tuning a real *defense*? Compare three models under the same
// white-box PGD sweep:
//   1. a standard CNN                       (no defense)
//   2. the same CNN adversarially trained   (classical defense)
//   3. an SNN at a robust (V_th, T) cell    (the paper's defense)
//
//   ./defense_comparison [--train 1000] [--adv-eps 0.05]
#include <cstdio>

#include "attacks/adv_training.hpp"
#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "nn/lenet.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;

  util::ArgParser args("defense_comparison",
                       "structural tuning vs adversarial training");
  auto& train_n = args.add_int("train", 1000, "training samples");
  auto& adv_eps =
      args.add_double("adv-eps", 0.05, "adversarial-training budget");
  auto& eps_list = args.add_double_list(
      "eps-list", "0,0.025,0.05,0.1,0.15", "evaluation budgets");
  args.parse(argc, argv);

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = 150;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data: %s (%s)\n", bundle.train.summary().c_str(),
              bundle.source());

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  util::Rng rng(util::master_seed());

  // 1. Standard CNN.
  std::printf("training standard CNN...\n");
  util::Rng rng_a = rng.fork("cnn-std");
  auto cnn_std = nn::build_paper_cnn(arch, rng_a);
  nn::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*cnn_std, bundle.train.images, bundle.train.labels);

  // 2. Adversarially trained CNN (Madry-style, half clean / half PGD).
  std::printf("adversarially training CNN (eps=%.3f)...\n", adv_eps);
  util::Rng rng_b = rng.fork("cnn-adv");
  auto cnn_adv = nn::build_paper_cnn(arch, rng_b);
  attack::AdversarialTrainConfig acfg;
  acfg.base = tcfg;
  acfg.epsilon = adv_eps;
  attack::adversarial_fit(*cnn_adv, bundle.train.images, bundle.train.labels,
                          acfg);

  // 3. SNN at a robust structural cell (from the exploration study).
  std::printf("training SNN at the sweet spot (V_th=1, T=16)...\n");
  snn::SnnConfig scfg;
  scfg.v_th = 1.0;
  scfg.time_steps = 16;
  util::Rng rng_c = rng.fork("snn");
  auto snn_model = snn::build_spiking_lenet(arch, scfg, rng_c);
  nn::Trainer(tcfg).fit(*snn_model, bundle.train.images,
                        bundle.train.labels);

  attack::PgdConfig pcfg;
  pcfg.steps = 10;
  pcfg.rel_stepsize = 0.1;
  std::printf("\n%-8s %-12s %-12s %-12s\n", "eps", "CNN", "CNN+advtrain",
              "SNN(1,16)");
  for (const double eps : eps_list) {
    attack::Pgd p1(pcfg), p2(pcfg), p3(pcfg);
    const auto r1 = attack::evaluate_attack(
        *cnn_std, p1, bundle.test.images, bundle.test.labels, eps);
    const auto r2 = attack::evaluate_attack(
        *cnn_adv, p2, bundle.test.images, bundle.test.labels, eps);
    const auto r3 = attack::evaluate_attack(
        *snn_model, p3, bundle.test.images, bundle.test.labels, eps);
    std::printf("%-8.3f %-12.3f %-12.3f %-12.3f\n", eps, r1.robustness,
                r2.robustness, r3.robustness);
  }
  std::printf(
      "\nStructural tuning costs nothing at training time (it is a design\n"
      "choice), while adversarial training multiplies the training budget —\n"
      "and the two compose.\n");
  return 0;
}
