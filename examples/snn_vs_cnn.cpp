// snn_vs_cnn: the paper's motivational experiment as a compact demo —
// train a CNN and an SNN of identical shape, sweep the PGD budget, and
// watch the crossover where the SNN becomes the more robust model.
//
//   ./snn_vs_cnn [--train 800] [--time-steps 24] [--eps-list 0,0.05,0.1,0.2]
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "nn/lenet.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;

  util::ArgParser args("snn_vs_cnn",
                       "CNN vs SNN robustness crossover (paper Fig. 1)");
  auto& train_n = args.add_int("train", 1000, "training samples");
  auto& test_n = args.add_int("test", 150, "test samples");
  auto& time_steps = args.add_int("time-steps", 24, "SNN time window T");
  auto& epochs = args.add_int("epochs", 5, "training epochs");
  auto& eps_list =
      args.add_double_list("eps-list", "0,0.025,0.05,0.1,0.15", "PGD budgets");
  args.parse(argc, argv);

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = test_n;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data: %s (%s)\n", bundle.train.summary().c_str(),
              bundle.source());

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = 4e-3;

  util::Rng rng(util::master_seed());
  util::Rng cnn_rng = rng.fork("cnn");
  util::Rng snn_rng = rng.fork("snn");

  std::printf("training CNN (same 3 conv + 2 fc shape)...\n");
  auto cnn = nn::build_paper_cnn(arch, cnn_rng);
  nn::Trainer(tcfg).fit(*cnn, bundle.train.images, bundle.train.labels);

  std::printf("training SNN (V_th=1, T=%lld)...\n",
              static_cast<long long>(time_steps));
  snn::SnnConfig scfg;
  scfg.time_steps = time_steps;
  auto snn = snn::build_spiking_lenet(arch, scfg, snn_rng);
  nn::Trainer(tcfg).fit(*snn, bundle.train.images, bundle.train.labels);

  std::printf("clean accuracy: CNN %.1f%% | SNN %.1f%%\n\n",
              nn::accuracy(*cnn, bundle.test.images, bundle.test.labels) * 100,
              nn::accuracy(*snn, bundle.test.images, bundle.test.labels) * 100);

  attack::PgdConfig pcfg;
  pcfg.steps = 10;
  pcfg.rel_stepsize = 0.1;
  std::printf("%-8s %-10s %-10s %s\n", "eps", "CNN", "SNN", "leader");
  for (const double eps : eps_list) {
    attack::Pgd pgd_cnn(pcfg), pgd_snn(pcfg);
    const auto pc = attack::evaluate_attack(*cnn, pgd_cnn, bundle.test.images,
                                            bundle.test.labels, eps);
    const auto ps = attack::evaluate_attack(*snn, pgd_snn, bundle.test.images,
                                            bundle.test.labels, eps);
    std::printf("%-8.3f %-10.3f %-10.3f %s\n", eps, pc.robustness,
                ps.robustness,
                ps.robustness > pc.robustness + 1e-9 ? "SNN <-" : "CNN");
  }
  std::printf(
      "\nThe crossover mirrors the paper's Fig. 1: past a moderate budget the\n"
      "spiking network degrades far more slowly than its CNN twin.\n");
  return 0;
}
