// Quickstart: train a spiking LeNet on the digit task, attack it with
// white-box PGD, and print clean vs adversarial accuracy.
//
//   ./quickstart [--train 800] [--test 120] [--time-steps 24] [--vth 1.0]
//                [--epochs 3] [--eps 0.1] [--fashion]
//
// Uses real MNIST when MNIST_DIR points at the IDX files, the synthetic
// digit generator otherwise.
#include <algorithm>
#include <cstdio>

#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "core/experiment_config.hpp"
#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "obs/probe.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;

  util::ArgParser args("quickstart", "train + attack a spiking LeNet");
  auto& train_n = args.add_int("train", 800, "training samples");
  auto& test_n = args.add_int("test", 120, "test samples");
  auto& time_steps = args.add_int("time-steps", 24, "SNN time window T");
  auto& v_th = args.add_double("vth", 1.0, "LIF firing threshold");
  auto& epochs = args.add_int("epochs", 3, "training epochs");
  auto& eps = args.add_double("eps", 0.1, "PGD noise budget");
  auto& image = args.add_int("image-size", 16, "input resolution");
  auto& fashion = args.add_flag("fashion", "use the garment task instead of digits");
  args.parse(argc, argv);

  // 1. Data (MNIST when available, synthetic digits otherwise).
  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = test_n;
  dspec.image_size = image;
  if (fashion) dspec.task = data::TaskKind::kFashion;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data source: %s | train %s | test %s\n", bundle.source(),
              bundle.train.summary().c_str(), bundle.test.summary().c_str());

  // 2. Build the SNN: structural parameters (V_th, T) are the knobs the
  //    paper shows make-or-break both learnability and robustness.
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = image;
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = time_steps;
  util::Rng rng(util::master_seed());
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  std::printf("%s\n", model->describe().c_str());

  // 3. Train.
  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = 4e-3;
  tcfg.verbose = true;
  util::Stopwatch watch;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
  const double clean =
      nn::accuracy(*model, bundle.test.images, bundle.test.labels);
  std::printf("trained in %s | clean accuracy %.1f%%\n",
              watch.pretty().c_str(), clean * 100);

  // 3b. Probe per-layer spike activity on a small test batch (also lands
  //     in SNNSEC_METRICS_FILE as snn.layer.* events when set).
  const std::int64_t probe_n = std::min<std::int64_t>(test_n, 32);
  const auto activity = model->collect_activity(
      nn::slice_batch(bundle.test.images, 0, probe_n));
  obs::record_activity(activity);
  for (const auto& stats : activity)
    std::printf("  %s\n", stats.summary().c_str());

  // 4. White-box PGD attack at the requested noise budget.
  attack::PgdConfig pcfg;
  pcfg.steps = 10;
  pcfg.rel_stepsize = 0.1;
  attack::Pgd pgd(pcfg);
  const auto pt = attack::evaluate_attack(*model, pgd, bundle.test.images,
                                          bundle.test.labels, eps);
  std::printf("%s at eps=%.2f: robustness %.1f%% (attack success %.1f%%)\n",
              pgd.name().c_str(), eps, pt.robustness * 100,
              pt.attack_success_rate * 100);
  return 0;
}
