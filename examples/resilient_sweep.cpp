// resilient_sweep: fault-tolerant (V_th, T) exploration, end to end.
//
// Demonstrates the crash-safety layer: cells are journaled as they finish,
// so a killed sweep resumed with the same flags retrains nothing; injected
// NaNs trigger the divergence sentinel and a re-seeded retry; and an
// optional fault-injection pass measures accuracy under hardware faults on
// the same grid. The CI crash-resume job drives this binary twice (killed,
// then resumed) and diffs the report against an uninterrupted run.
//
//   ./resilient_sweep --cache /tmp/sweep_cache --out report.csv
//   ./resilient_sweep ... --kill-after-cells 2     # simulate a crash
//   ./resilient_sweep ... --inject-nan             # sentinel + retry demo
//   ./resilient_sweep ... --faults                 # fault grid afterwards
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "core/explorer.hpp"
#include "faults/harness.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;

  util::ArgParser args("resilient_sweep",
                       "crash-safe exploration with divergence retry and "
                       "fault injection");
  auto& vth_grid = args.add_double_list("vth", "1.0,2.0", "threshold grid");
  auto& t_grid = args.add_int_list("T", "8,16", "time-window grid");
  auto& epochs = args.add_int("epochs", 2, "training epochs per cell");
  auto& train_n = args.add_int("train-n", 300, "training samples");
  auto& cache = args.add_string("cache", "resilient_cache",
                                "checkpoint + journal directory");
  auto& out = args.add_string("out", "", "report CSV path (optional)");
  auto& kill_after =
      args.add_int("kill-after-cells", 0,
                   "SIGKILL the process after N finished cells (crash demo)");
  auto& inject_nan = args.add_flag(
      "inject-nan", "poison attempt 0 of the first cell with a NaN weight");
  auto& run_faults =
      args.add_flag("faults", "evaluate a hardware-fault grid afterwards");
  auto& fresh = args.add_flag("fresh", "wipe the cache directory first");
  args.parse(argc, argv);

  if (fresh) std::filesystem::remove_all(cache);

  core::ExplorationConfig cfg;
  cfg.v_th_grid = vth_grid;
  cfg.t_grid = t_grid;
  cfg.eps_grid = {0.1};
  cfg.accuracy_threshold = 0.2;
  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.train.epochs = epochs;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = train_n;
  cfg.data.test_n = 100;
  cfg.data.image_size = 16;
  cfg.data.force_synthetic = true;  // self-contained: no dataset download
  cfg.pgd.steps = 5;
  cfg.pgd.rel_stepsize = 0.2;
  cfg.attack_test_cap = 32;
  cfg.seed = util::master_seed();

  std::printf("exploring %s\n", cfg.summary().c_str());
  const data::DataBundle data = data::load_digits(cfg.data);
  core::RobustnessExplorer explorer(cfg, cache);
  std::printf("journal: %s\n", explorer.journal_path().c_str());

  if (inject_nan) {
    const double first_v = cfg.v_th_grid.front();
    const std::int64_t first_t = cfg.t_grid.front();
    explorer.set_train_fault_hook(
        [first_v, first_t](double v_th, std::int64_t t, int attempt,
                           snn::SpikingClassifier& model) {
          if (attempt != 0 || v_th != first_v || t != first_t) return;
          // +inf (not NaN: max-over-time decoding swallows NaN) in the
          // readout-side bias reaches the logits, making the loss
          // non-finite and tripping the divergence sentinel.
          model.parameters().back()->value.data()[0] =
              std::numeric_limits<float>::infinity();
          std::printf("[inject-nan] poisoned attempt 0 of cell (v_th=%.2f, "
                      "T=%lld)\n",
                      v_th, static_cast<long long>(t));
        });
  }

  std::int64_t finished = 0;
  const core::ExplorationReport report =
      explorer.explore(data, [&](const core::CellResult& cell) {
        ++finished;
        std::printf("cell (v_th=%.2f, T=%lld): %s, attempts=%d%s\n",
                    cell.v_th, static_cast<long long>(cell.time_steps),
                    core::to_string(cell.status), cell.attempts,
                    cell.from_journal ? " (resumed)" : "");
        if (kill_after > 0 && finished >= kill_after) {
          // Simulate a hard crash: no destructors, no atexit, no flush —
          // exactly what the journal must survive.
          std::printf("[kill-after-cells] raising SIGKILL after %lld cells\n",
                      static_cast<long long>(finished));
          std::fflush(stdout);
          std::raise(SIGKILL);
        }
      });

  std::printf("\n%s\n", report.heatmap(0.0).c_str());
  std::printf("resumed from journal: %zu cells; failed: %zu cells\n",
              report.resumed_cells, report.failed_count());
  if (!out.empty()) {
    report.write_csv(out);
    std::printf("report written to %s\n", out.c_str());
  }

  if (run_faults) {
    faults::FaultGridConfig fault_cfg;
    fault_cfg.faults = {
        {faults::FaultKind::kWeightBitflip, 1e-3, 7},
        {faults::FaultKind::kStuckAtZero, 0.25, 7},
        {faults::FaultKind::kSpikeDrop, 0.25, 7},
    };
    fault_cfg.eval_cap = 64;
    const faults::FaultReport fr =
        faults::evaluate_fault_grid(explorer, data, fault_cfg);
    std::printf("\n%s\n", fr.table().c_str());
    if (!out.empty()) {
      const std::string fault_out = out + ".faults.csv";
      fr.write_csv(fault_out);
      std::printf("fault report written to %s\n", fault_out.c_str());
    }
  }
  return 0;
}
