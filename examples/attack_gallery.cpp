// attack_gallery: visual tour of the attack library — renders a digit,
// attacks it with FGSM, PGD and noise baselines at the same budget, and
// prints each adversarial image as ASCII art together with the victim's
// prediction. Makes "imperceptible perturbation, different label" tangible
// in a terminal.
//
//   ./attack_gallery [--digit 7] [--eps 0.15] [--time-steps 24]
#include <cstdio>

#include "attacks/deepfool.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/noise.hpp"
#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "data/synth_digits.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace snnsec;
  using tensor::Shape;
  using tensor::Tensor;

  util::ArgParser args("attack_gallery", "ASCII gallery of attacks on an SNN");
  auto& digit = args.add_int("digit", 7, "digit to attack (0-9)");
  auto& eps = args.add_double("eps", 0.15, "L-inf budget");
  auto& time_steps = args.add_int("time-steps", 24, "SNN time window");
  auto& train_n = args.add_int("train", 800, "training samples");
  args.parse(argc, argv);
  SNNSEC_CHECK(digit >= 0 && digit <= 9, "--digit must be 0..9");

  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = 100;
  dspec.image_size = 16;
  const data::DataBundle bundle = data::load_digits(dspec);

  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  snn::SnnConfig scfg;
  scfg.time_steps = time_steps;
  util::Rng rng(util::master_seed());
  auto model = snn::build_spiking_lenet(arch, scfg, rng);

  std::printf("training victim SNN (T=%lld)...\n",
              static_cast<long long>(time_steps));
  nn::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lr = 4e-3;
  nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);

  // Render the victim sample.
  data::SynthConfig synth_cfg;
  synth_cfg.image_size = 16;
  util::Rng sample_rng = rng.fork("victim");
  Tensor x(Shape{1, 1, 16, 16});
  data::Canvas canvas(16, 16);
  data::render_digit(digit, synth_cfg, sample_rng, canvas);
  canvas.copy_to(x, 0);
  const std::vector<std::int64_t> label{digit};

  attack::AttackBudget budget;
  budget.epsilon = eps;
  attack::PgdConfig pcfg;
  pcfg.steps = 15;
  pcfg.rel_stepsize = 0.1;
  attack::Fgsm fgsm;
  attack::Pgd pgd(pcfg);
  attack::MiFgsm mifgsm;
  attack::DeepFool deepfool;
  attack::UniformNoise noise;

  struct Entry {
    const char* name;
    Tensor image;
  };
  std::vector<Entry> gallery;
  gallery.push_back({"clean", x});
  gallery.push_back({"uniform noise", noise.perturb(*model, x, label, budget)});
  gallery.push_back({"FGSM", fgsm.perturb(*model, x, label, budget)});
  gallery.push_back({"MI-FGSM", mifgsm.perturb(*model, x, label, budget)});
  gallery.push_back({"PGD", pgd.perturb(*model, x, label, budget)});
  gallery.push_back({"DeepFool", deepfool.perturb(*model, x, label, budget)});

  std::printf("\ntrue label: %lld | budget eps=%.2f\n\n",
              static_cast<long long>(digit), eps);
  for (const Entry& entry : gallery) {
    const auto pred = model->predict(entry.image);
    const float dist = tensor::linf_distance(entry.image, x);
    std::printf("--- %-14s -> predicted %lld %s (L-inf %.3f)\n", entry.name,
                static_cast<long long>(pred[0]),
                pred[0] == digit ? "[correct]" : "[FOOLED]", dist);
    std::printf("%s\n", data::ascii_art(entry.image, 0).c_str());
  }
  std::printf(
      "Gradient-based attacks concentrate the same budget where it hurts;\n"
      "random noise of equal size barely matters.\n");
  return 0;
}
