// Serve demo: anytime inference as a latency/accuracy dial.
//
// Trains (or loads) a spiking LeNet checkpoint, stands up the src/serve
// runtime in inline mode, and serves the test split twice — once with the
// full time window T and once under a wall-clock latency budget that forces
// deadline truncation — then sweeps max_steps to print the whole
// accuracy-vs-truncation curve. This is the paper's structural parameter T
// acting as a run-time load-shedding knob: logits after t steps are
// bit-identical to a model built with window T' = t.
//
//   ./serve_demo [--train 600] [--test 200] [--time-steps 16] [--vth 1.0]
//                [--epochs 2] [--deadline-us 2000] [--model path.snnm]
#include <cstdio>
#include <fstream>
#include <vector>

#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

using namespace snnsec;

namespace {

struct ServeOutcome {
  double accuracy = 0.0;
  double mean_latency_us = 0.0;
  double mean_steps = 0.0;
  std::int64_t truncated = 0;
};

// Serve every test image through the runtime with the given per-request
// options and score the predictions against the labels.
ServeOutcome serve_split(serve::Server& server, const data::DataBundle& data,
                         const serve::RequestOptions& opt) {
  ServeOutcome out;
  serve::InferResult r;  // reused: steady state allocates nothing
  const std::int64_t n = data.test.images.dim(0);
  std::int64_t correct = 0;
  std::int64_t latency_sum = 0;
  std::int64_t steps_sum = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const tensor::Tensor x = nn::slice_batch(data.test.images, i, i + 1);
    if (!server.infer(x, opt, r)) continue;
    if (r.pred == data.test.labels[static_cast<std::size_t>(i)]) ++correct;
    latency_sum += r.latency_us;
    steps_sum += r.steps_used;
    if (r.truncated) ++out.truncated;
  }
  out.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  out.mean_latency_us =
      static_cast<double>(latency_sum) / static_cast<double>(n);
  out.mean_steps = static_cast<double>(steps_sum) / static_cast<double>(n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("serve_demo",
                       "batched anytime SNN serving: accuracy vs deadline");
  auto& train_n = args.add_int("train", 600, "training samples");
  auto& test_n = args.add_int("test", 200, "test samples");
  auto& time_steps = args.add_int("time-steps", 16, "SNN time window T");
  auto& v_th = args.add_double("vth", 1.0, "LIF firing threshold");
  auto& epochs = args.add_int("epochs", 2, "training epochs");
  auto& image = args.add_int("image-size", 16, "input resolution");
  auto& deadline_us = args.add_int(
      "deadline-us", 2000, "per-request latency budget for the tight pass");
  auto& model_path = args.add_string(
      "model", "serve_demo_model.snnm", "checkpoint (reused when it exists)");
  args.parse(argc, argv);

  // 1. Data + checkpoint (train once, then reuse across runs).
  data::DataSpec dspec;
  dspec.train_n = train_n;
  dspec.test_n = test_n;
  dspec.image_size = image;
  const data::DataBundle bundle = data::load_digits(dspec);
  std::printf("data source: %s | test %s\n", bundle.source(),
              bundle.test.summary().c_str());

  if (!std::ifstream(model_path).good()) {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
    arch.image_size = image;
    snn::SnnConfig cfg;
    cfg.v_th = v_th;
    cfg.time_steps = time_steps;
    util::Rng rng(util::master_seed());
    auto model = snn::build_spiking_lenet(arch, cfg, rng);
    nn::TrainConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.lr = 4e-3;
    tcfg.verbose = true;
    util::Stopwatch watch;
    nn::Trainer(tcfg).fit(*model, bundle.train.images, bundle.train.labels);
    std::printf("trained in %s\n", watch.pretty().c_str());
    snn::save_spiking_lenet(model_path, *model, arch, cfg);
  }

  // 2. Inline server: submitting threads drive the micro-batches, which is
  //    deterministic and exactly what a latency-sensitive embedder wants.
  serve::ServerConfig scfg;
  scfg.model_path = model_path;
  scfg.workers = 0;
  scfg.batcher.max_batch = 8;
  scfg.batcher.max_delay_us = 200;
  serve::Server server(scfg);
  const std::int64_t t_window = server.time_steps();
  std::printf("serving %s | T=%lld | inline micro-batching\n",
              model_path.c_str(), static_cast<long long>(t_window));

  // 3. Full window vs deadline-truncated pass over the same split.
  const ServeOutcome full = serve_split(server, bundle, {});
  serve::RequestOptions tight;
  tight.deadline_us = deadline_us;
  const ServeOutcome budget = serve_split(server, bundle, tight);
  std::printf("full window   : accuracy %5.1f%% | mean steps %5.1f/%lld | "
              "mean latency %6.0fus\n",
              full.accuracy * 100, full.mean_steps,
              static_cast<long long>(t_window), full.mean_latency_us);
  std::printf("deadline %4lldus: accuracy %5.1f%% | mean steps %5.1f/%lld | "
              "mean latency %6.0fus | truncated %lld/%lld\n",
              static_cast<long long>(deadline_us), budget.accuracy * 100,
              budget.mean_steps, static_cast<long long>(t_window),
              budget.mean_latency_us, static_cast<long long>(budget.truncated),
              static_cast<long long>(test_n));

  // 4. Accuracy-vs-truncation curve: the anytime guarantee means row t here
  //    equals a model trained identically but built with T' = t.
  std::printf("\n%8s %10s %14s %12s\n", "steps", "accuracy", "mean_latency",
              "truncated");
  for (std::int64_t steps = 1; steps <= t_window;
       steps = steps < 4 ? steps + 1 : steps * 2) {
    serve::RequestOptions opt;
    opt.max_steps = steps;
    const ServeOutcome o = serve_split(server, bundle, opt);
    std::printf("%5lld/%-2lld %9.1f%% %12.0fus %12lld\n",
                static_cast<long long>(steps),
                static_cast<long long>(t_window), o.accuracy * 100,
                o.mean_latency_us, static_cast<long long>(o.truncated));
    if (steps < t_window && (steps < 4 ? steps + 1 : steps * 2) > t_window) {
      // Always include the exact full window as the last row.
      opt.max_steps = t_window;
      const ServeOutcome last = serve_split(server, bundle, opt);
      std::printf("%5lld/%-2lld %9.1f%% %12.0fus %12lld\n",
                  static_cast<long long>(t_window),
                  static_cast<long long>(t_window), last.accuracy * 100,
                  last.mean_latency_us,
                  static_cast<long long>(last.truncated));
    }
  }
  server.stop();
  return 0;
}
