// PGM/PPM writers, colormap, and heat-map image rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/report_image.hpp"
#include "util/pgm.hpp"

namespace snnsec::util {
namespace {

namespace fs = std::filesystem;

std::string read_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

TEST(RgbImage, SetAndFillClipToBounds) {
  RgbImage img(4, 3);
  img.set(0, 0, 255, 0, 0);
  img.set(-1, 0, 9, 9, 9);   // silently clipped
  img.set(4, 2, 9, 9, 9);
  EXPECT_EQ(img.pixels[0], 255);
  img.fill_rect(2, 1, 10, 10, 0, 255, 0);  // clipped to image
  EXPECT_EQ(img.pixels[static_cast<std::size_t>(3 * (1 * 4 + 2)) + 1], 255);
}

TEST(WritePgm, HeaderAndPayload) {
  const auto path = (fs::temp_directory_path() / "snnsec_t.pgm").string();
  const float gray[6] = {0.0f, 0.5f, 1.0f, 2.0f, -1.0f, 0.25f};
  write_pgm(path, gray, 3, 2);
  const std::string data = read_all(path);
  EXPECT_EQ(data.substr(0, 2), "P5");
  EXPECT_NE(data.find("3 2"), std::string::npos);
  // 6 payload bytes after the header.
  EXPECT_EQ(data.size(), data.find("255\n") + 4 + 6);
  const auto* payload =
      reinterpret_cast<const unsigned char*>(data.data() + data.size() - 6);
  EXPECT_EQ(payload[0], 0);     // 0.0
  EXPECT_EQ(payload[2], 255);   // 1.0
  EXPECT_EQ(payload[3], 255);   // clamped 2.0
  EXPECT_EQ(payload[4], 0);     // clamped -1.0
  fs::remove(path);
}

TEST(WritePpm, RoundTripHeader) {
  const auto path = (fs::temp_directory_path() / "snnsec_t.ppm").string();
  RgbImage img(2, 2);
  img.set(1, 1, 10, 20, 30);
  write_ppm(path, img);
  const std::string data = read_all(path);
  EXPECT_EQ(data.substr(0, 2), "P6");
  EXPECT_EQ(data.size(), data.find("255\n") + 4 + 12);
  fs::remove(path);
}

TEST(Colormap, EndpointsAndMonotonicity) {
  std::uint8_t r0, g0, b0, r1, g1, b1;
  colormap_viridis(0.0, r0, g0, b0);
  colormap_viridis(1.0, r1, g1, b1);
  // Viridis: dark violet at 0, bright yellow at 1.
  EXPECT_LT(r0 + g0 + b0, r1 + g1 + b1);
  EXPECT_GT(b0, g0);  // violet end is blue-heavy
  EXPECT_GT(g1, b1);  // yellow end is green/red-heavy
  // Out-of-range inputs are clamped, not UB.
  std::uint8_t r, g, b;
  EXPECT_NO_THROW(colormap_viridis(-5.0, r, g, b));
  EXPECT_NO_THROW(colormap_viridis(7.0, r, g, b));
}

TEST(HeatmapImage, WritesExpectedGeometry) {
  core::ExplorationReport report;
  report.v_th_grid = {0.5, 1.0};
  report.t_grid = {8, 16};
  report.eps_grid = {0.1};
  for (const double v : report.v_th_grid)
    for (const auto t : report.t_grid) {
      core::CellResult cell;
      cell.v_th = v;
      cell.time_steps = t;
      cell.clean_accuracy = 0.9;
      cell.learnable = (t == 16);  // one skipped row
      report.cells.push_back(cell);
    }
  const auto path = (fs::temp_directory_path() / "snnsec_heat.ppm").string();
  core::HeatmapImageOptions opts;
  opts.cell_size = 10;
  opts.border = 1;
  core::write_heatmap_ppm(report, 0.0, path, opts);
  const std::string data = read_all(path);
  // 2x2 grid: 2*10 + 3*1 = 23 pixels on each side.
  EXPECT_NE(data.find("23 23"), std::string::npos);
  fs::remove(path);
}

TEST(HeatmapImage, RejectsEmptyReport) {
  core::ExplorationReport empty;
  EXPECT_THROW(core::write_heatmap_ppm(empty, 0.0, "/tmp/x.ppm"),
               util::Error);
}

}  // namespace
}  // namespace snnsec::util
