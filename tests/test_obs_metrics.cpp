// Metrics registry: counter/gauge/histogram semantics, labeled series
// identity, JSONL/CSV emission and concurrency via the thread pool.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::obs {
namespace {

// Series names are unique per test: the registry is a process-wide
// singleton and reset_for_tests() would dangle the macro call-site refs.

TEST(ObsCounter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(ObsHistogram, BucketSemantics) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.5);   // bucket 1 (<= 2)
  h.observe(2.5);   // overflow bucket
  h.observe(1.0);   // boundary counts in bucket 0 (<=)
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[0], 2);
  EXPECT_EQ(s.bucket_counts[1], 1);
  EXPECT_EQ(s.bucket_counts[2], 1);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5 / 4.0);
}

TEST(ObsHistogram, EmptyReportsZeroMinMax) {
  Histogram h({1.0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ObsHistogram, UnsortedBoundsAreSorted) {
  Histogram h({10.0, 1.0, 5.0});
  const std::vector<double> expect = {1.0, 5.0, 10.0};
  EXPECT_EQ(h.bounds(), expect);
}

TEST(ObsRegistry, FindOrCreateIsStable) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.stable");
  Counter& b = reg.counter("test.stable");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("test.stable", {{"k", "v"}});
  EXPECT_NE(&a, &c);  // labels distinguish series
  a.add(7);
  EXPECT_EQ(b.value(), 7);
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsRegistry, HistogramFirstRegistrationWins) {
  Registry& reg = Registry::instance();
  Histogram& a = reg.histogram("test.hist_bounds", {1.0, 2.0});
  Histogram& b = reg.histogram("test.hist_bounds", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 2u);
}

TEST(ObsRegistry, SnapshotCoversAllTypes) {
  Registry& reg = Registry::instance();
  reg.counter("test.snap.c", {{"layer", "lif0"}}).add(3);
  reg.gauge("test.snap.g").set(1.25);
  reg.histogram("test.snap.h", {1.0}).observe(0.5);
  bool saw_c = false, saw_g = false, saw_h = false;
  for (const MetricSnapshot& m : reg.snapshot()) {
    if (m.key() == "test.snap.c{layer=lif0}") {
      saw_c = true;
      EXPECT_EQ(m.type, MetricType::kCounter);
      EXPECT_DOUBLE_EQ(m.value, 3.0);
    } else if (m.name == "test.snap.g") {
      saw_g = true;
      EXPECT_EQ(m.type, MetricType::kGauge);
      EXPECT_DOUBLE_EQ(m.value, 1.25);
    } else if (m.name == "test.snap.h") {
      saw_h = true;
      EXPECT_EQ(m.type, MetricType::kHistogram);
      EXPECT_EQ(m.histogram.count, 1);
    }
  }
  EXPECT_TRUE(saw_c);
  EXPECT_TRUE(saw_g);
  EXPECT_TRUE(saw_h);
}

TEST(ObsRegistry, MacrosRespectRuntimeSwitch) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.macro.counter");
  SNNSEC_COUNTER_ADD("test.macro.counter", 2);
  EXPECT_EQ(c.value(), 2);
  reg.set_enabled(false);
  SNNSEC_COUNTER_ADD("test.macro.counter", 100);
  reg.set_enabled(true);
  EXPECT_EQ(c.value(), 2);  // disabled increment was skipped
  SNNSEC_GAUGE_SET("test.macro.gauge", 4.0);
  SNNSEC_GAUGE_ADD("test.macro.gauge", 0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("test.macro.gauge").value(), 4.5);
  SNNSEC_HISTOGRAM_OBSERVE("test.macro.hist", 0.3, 1.0, 10.0);
  EXPECT_EQ(reg.histogram("test.macro.hist", {}).snapshot().count, 1);
}

TEST(ObsRegistry, ConcurrentIncrementsViaThreadPool) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.concurrent");
  Histogram& h = reg.histogram("test.concurrent.h", {0.5});
  constexpr int kTasks = 64;
  constexpr int kPerTask = 250;
  util::ThreadPool& pool = util::ThreadPool::global();
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&c, &h] {
      for (int i = 0; i < kPerTask; ++i) {
        c.add();
        h.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(c.value(), kTasks * kPerTask);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, kTasks * kPerTask);
  EXPECT_EQ(s.bucket_counts[0] + s.bucket_counts[1], kTasks * kPerTask);
}

TEST(ObsRegistry, JsonlLinesAreObjects) {
  Registry& reg = Registry::instance();
  reg.counter("test.jsonl \"quoted\"").add(1);
  std::ostringstream oss;
  reg.write_jsonl(oss);
  std::istringstream iss(oss.str());
  std::string line;
  bool saw_escaped = false;
  while (std::getline(iss, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("test.jsonl \\\"quoted\\\"") != std::string::npos)
      saw_escaped = true;
  }
  EXPECT_TRUE(saw_escaped);
}

TEST(ObsRegistry, EventSinkWritesJsonl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "snnsec_obs_events.jsonl")
          .string();
  Registry& reg = Registry::instance();
  reg.counter("test.sink.counter").add(9);
  reg.set_sink_path(path);
  reg.record("test.event", 0.75, {{"layer", "lif1"}});
  reg.flush();
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  bool saw_event = false, saw_snapshot = false;
  while (std::getline(is, line)) {
    if (line.find("\"kind\":\"event\"") != std::string::npos &&
        line.find("\"test.event\"") != std::string::npos &&
        line.find("\"lif1\"") != std::string::npos)
      saw_event = true;
    if (line.find("\"kind\":\"counter\"") != std::string::npos &&
        line.find("\"test.sink.counter\"") != std::string::npos)
      saw_snapshot = true;
  }
  EXPECT_TRUE(saw_event);
  EXPECT_TRUE(saw_snapshot);
  std::remove(path.c_str());
}

TEST(ObsRegistry, CsvAndSummary) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "snnsec_obs_metrics.csv")
          .string();
  Registry& reg = Registry::instance();
  reg.counter("test.csv").add(5);
  reg.write_csv(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_NE(header.find("name"), std::string::npos);
  bool found = false;
  for (std::string line; std::getline(is, line);)
    if (line.find("test.csv") != std::string::npos) found = true;
  EXPECT_TRUE(found);
  std::remove(path.c_str());

  const std::string s = reg.summary();
  EXPECT_NE(s.find("test.csv"), std::string::npos);
}

TEST(ObsLabels, ToStringAndKey) {
  EXPECT_EQ(labels_to_string({}), "");
  EXPECT_EQ(labels_to_string({{"a", "1"}, {"b", "2"}}), "{a=1,b=2}");
  MetricSnapshot m;
  m.name = "x";
  m.labels = {{"a", "1"}};
  EXPECT_EQ(m.key(), "x{a=1}");
}

TEST(ObsJson, Escape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace snnsec::obs
