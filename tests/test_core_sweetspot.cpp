// Sweet-spot ranking over synthetic exploration reports.
#include <gtest/gtest.h>

#include "core/sweet_spot.hpp"

namespace snnsec::core {
namespace {

CellResult make_cell(double v_th, std::int64_t t, double clean, bool learnable,
                     double rob_at_1) {
  CellResult c;
  c.v_th = v_th;
  c.time_steps = t;
  c.clean_accuracy = clean;
  c.learnable = learnable;
  if (learnable) {
    attack::RobustnessPoint pt;
    pt.epsilon = 1.0;
    pt.robustness = rob_at_1;
    pt.attack_success_rate = 1.0 - rob_at_1;
    c.robustness.emplace(1.0, pt);
  }
  return c;
}

/// Report mirroring the paper's Fig. 7 story: (0.75, 72) robust,
/// (0.25, 56) fragile despite high clean accuracy, (2.25, 56) weak,
/// plus one unlearnable cell.
ExplorationReport make_report() {
  ExplorationReport r;
  r.v_th_grid = {0.25, 0.75, 2.25};
  r.t_grid = {56, 72};
  r.eps_grid = {1.0};
  r.accuracy_threshold = 0.7;
  r.cells.push_back(make_cell(0.75, 72, 0.97, true, 0.91));
  r.cells.push_back(make_cell(0.25, 56, 0.95, true, 0.08));
  r.cells.push_back(make_cell(2.25, 56, 0.93, true, 0.35));
  r.cells.push_back(make_cell(2.25, 72, 0.12, false, 0.0));
  return r;
}

TEST(SweetSpotFinder, RanksByRobustnessBestFirst) {
  const auto report = make_report();
  SweetSpotFinder finder(1.0, 0.7);
  const auto ranked = finder.rank(report);
  ASSERT_EQ(ranked.size(), 3u);  // unlearnable cell excluded
  EXPECT_DOUBLE_EQ(ranked[0].cell->v_th, 0.75);
  EXPECT_DOUBLE_EQ(ranked[0].score, 0.91);
  EXPECT_DOUBLE_EQ(ranked[1].cell->v_th, 2.25);
  EXPECT_DOUBLE_EQ(ranked[2].cell->v_th, 0.25);
}

TEST(SweetSpotFinder, BestReturnsTopCell) {
  const auto report = make_report();
  SweetSpotFinder finder(1.0, 0.7);
  const CellResult* best = finder.best(report);
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->v_th, 0.75);
  EXPECT_EQ(best->time_steps, 72);
}

TEST(SweetSpotFinder, AccuracyConstraintFilters) {
  const auto report = make_report();
  SweetSpotFinder strict(1.0, 0.96);  // only the 0.97-accuracy cell passes
  const auto ranked = strict.rank(report);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_DOUBLE_EQ(ranked[0].cell->clean_accuracy, 0.97);
}

TEST(SweetSpotFinder, EmptyWhenNothingQualifies) {
  const auto report = make_report();
  SweetSpotFinder impossible(1.0, 0.999);
  EXPECT_TRUE(impossible.rank(report).empty());
  EXPECT_EQ(impossible.best(report), nullptr);
}

TEST(SweetSpotFinder, FragileHighAccuracyCellsAreTheA3CounterExample) {
  // Paper answer (A3): high clean accuracy does not imply robustness.
  const auto report = make_report();
  SweetSpotFinder finder(1.0, 0.7);
  const auto fragile = finder.fragile_high_accuracy_cells(report, 0.5);
  ASSERT_EQ(fragile.size(), 2u);
  // Worst first: (0.25, 56) with robustness 0.08.
  EXPECT_DOUBLE_EQ(fragile[0].cell->v_th, 0.25);
  EXPECT_GT(fragile[0].cell->clean_accuracy, 0.9);
  EXPECT_LT(fragile[0].score, 0.1);
}

TEST(SweetSpotFinder, MissingEpsilonYieldsNoRanking) {
  const auto report = make_report();
  SweetSpotFinder wrong_eps(0.5, 0.7);  // nothing was evaluated at 0.5
  EXPECT_TRUE(wrong_eps.rank(report).empty());
}

TEST(CellResult, RobustnessAtZeroIsCleanAccuracy) {
  const CellResult c = make_cell(1.0, 8, 0.88, true, 0.4);
  EXPECT_EQ(c.robustness_at(0.0), 0.88);
  EXPECT_EQ(c.robustness_at(1.0), 0.4);
  EXPECT_FALSE(c.robustness_at(0.7).has_value());
}

}  // namespace
}  // namespace snnsec::core
