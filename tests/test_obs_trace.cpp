// Trace-span profiler: RAII span nesting, per-thread tracks and the
// chrome://tracing JSON rendering.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::obs {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().start();
  }
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
  }
};

std::int64_t count_occurrences(const std::string& haystack,
                               const std::string& needle) {
  std::int64_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST_F(ObsTraceTest, DisabledSpansAreFree) {
  Tracer::instance().stop();
  ASSERT_FALSE(Tracer::enabled());
  {
    SNNSEC_TRACE_SCOPE("ignored");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  Tracer::instance().start();  // restore for TearDown symmetry
}

TEST_F(ObsTraceTest, NestedSpansAllRecorded) {
  {
    SNNSEC_TRACE_SCOPE("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      SNNSEC_TRACE_SCOPE("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      SNNSEC_TRACE_SCOPE("inner");
    }
  }
  EXPECT_EQ(Tracer::instance().event_count(), 3u);

  std::ostringstream oss;
  Tracer::instance().write(oss);
  const std::string json = oss.str();
  EXPECT_EQ(count_occurrences(json, "\"name\":\"inner\""), 2);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"outer\""), 1);
}

TEST_F(ObsTraceTest, JsonHasTraceEventShape) {
  {
    SNNSEC_TRACE_SCOPE("span_a");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::ostringstream oss;
  Tracer::instance().write(oss);
  const std::string json = oss.str();
  // chrome://tracing essentials: a traceEvents array of complete events.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Balanced brackets (cheap well-formedness check; names here contain no
  // braces, so counting is exact).
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(ObsTraceTest, OuterSpanCoversInner) {
  {
    SNNSEC_TRACE_SCOPE("cover_outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      SNNSEC_TRACE_SCOPE("cover_inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Inner closes first, so it is recorded first; its duration must fit
  // inside the outer span's duration.
  std::ostringstream oss;
  Tracer::instance().write(oss);
  const std::string json = oss.str();
  auto dur_after = [&json](const std::string& name) {
    const std::size_t at = json.find("\"name\":\"" + name + "\"");
    EXPECT_NE(at, std::string::npos);
    const std::size_t d = json.find("\"dur\":", at);
    return std::strtoll(json.c_str() + d + 6, nullptr, 10);
  };
  EXPECT_GE(dur_after("cover_outer"), dur_after("cover_inner"));
}

TEST_F(ObsTraceTest, PoolWorkersGetOwnTracks) {
  util::ThreadPool& pool = util::ThreadPool::global();
  constexpr int kTasks = 8;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([] {
      SNNSEC_TRACE_SCOPE("worker_span");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  pool.wait_idle();
  {
    SNNSEC_TRACE_SCOPE("main_span");
  }
  EXPECT_EQ(Tracer::instance().event_count(),
            static_cast<std::size_t>(kTasks) + 1u);
  std::ostringstream oss;
  Tracer::instance().write(oss);
  const std::string json = oss.str();
  // At least two distinct tid values (main + >=1 worker).
  bool distinct = false;
  for (int tid = 0; tid < 64 && !distinct; ++tid) {
    const std::string tag = "\"tid\":" + std::to_string(tid) + ",";
    if (count_occurrences(json, tag) > 0 &&
        count_occurrences(json, tag) <
            count_occurrences(json, "\"tid\":"))
      distinct = true;
  }
  EXPECT_TRUE(distinct);
}

TEST_F(ObsTraceTest, ClearDropsEvents) {
  {
    SNNSEC_TRACE_SCOPE("gone");
  }
  EXPECT_GT(Tracer::instance().event_count(), 0u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().dropped_count(), 0);
}

}  // namespace
}  // namespace snnsec::obs
