// Shared finite-difference gradient-check helper for layer tests.
//
// For a layer f and a fixed random cotangent w, define the scalar
// L(x) = <w, f(x)>. The analytic input gradient is backward(w); the
// numeric one is central differences on L. Parameter gradients are checked
// the same way by perturbing Parameter::value entries.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace snnsec::testutil {

inline double dot(const tensor::Tensor& a, const tensor::Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

/// Relative-ish error with absolute floor: |a-b| / max(1, |a|, |b|).
inline double grad_error(double a, double b) {
  return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Check dL/dx of `layer` at input `x` against central differences.
/// Checks every input coordinate when numel <= 64, else a strided subset.
inline void check_input_gradient(nn::Layer& layer, const tensor::Tensor& x,
                                 util::Rng& rng, double step = 1e-2,
                                 double tol = 2e-2) {
  const tensor::Tensor y0 = layer.forward(x, nn::Mode::kTrain);
  const tensor::Tensor w = tensor::Tensor::randn(y0.shape(), rng);
  const tensor::Tensor analytic = layer.backward(w);
  ASSERT_EQ(analytic.shape(), x.shape());

  const std::int64_t n = x.numel();
  const std::int64_t stride = n <= 64 ? 1 : n / 48;
  for (std::int64_t i = 0; i < n; i += stride) {
    tensor::Tensor xp = x;
    xp[i] += static_cast<float>(step);
    tensor::Tensor xm = x;
    xm[i] -= static_cast<float>(step);
    const double lp = dot(w, layer.forward(xp, nn::Mode::kEval));
    const double lm = dot(w, layer.forward(xm, nn::Mode::kEval));
    const double numeric = (lp - lm) / (2.0 * step);
    EXPECT_LT(grad_error(numeric, analytic[i]), tol)
        << "input coord " << i << ": numeric " << numeric << " vs analytic "
        << analytic[i];
  }
}

/// Check dL/dθ for every parameter of `layer` against central differences.
inline void check_parameter_gradients(nn::Layer& layer,
                                      const tensor::Tensor& x,
                                      util::Rng& rng, double step = 1e-2,
                                      double tol = 2e-2) {
  const tensor::Tensor y0 = layer.forward(x, nn::Mode::kTrain);
  const tensor::Tensor w = tensor::Tensor::randn(y0.shape(), rng);
  for (nn::Parameter* p : layer.parameters()) p->zero_grad();
  (void)layer.backward(w);

  for (nn::Parameter* p : layer.parameters()) {
    const std::int64_t n = p->value.numel();
    const std::int64_t stride = n <= 64 ? 1 : n / 32;
    for (std::int64_t i = 0; i < n; i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(step);
      const double lp = dot(w, layer.forward(x, nn::Mode::kEval));
      p->value[i] = saved - static_cast<float>(step);
      const double lm = dot(w, layer.forward(x, nn::Mode::kEval));
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * step);
      EXPECT_LT(grad_error(numeric, p->grad[i]), tol)
          << p->name << " coord " << i << ": numeric " << numeric
          << " vs analytic " << p->grad[i];
    }
  }
}

}  // namespace snnsec::testutil
