// Algorithm 1 explorer: grid traversal, learnability filter, caching,
// report emission. Uses a deliberately tiny configuration.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/explorer.hpp"
#include "data/synth_digits.hpp"

namespace snnsec::core {
namespace {

namespace fs = std::filesystem;

/// A configuration small enough for unit tests: 8x8 images, tiny nets,
/// one epoch. The high-threshold cell (v_th = 6) cannot learn, exercising
/// the learnability filter.
ExplorationConfig tiny_config() {
  ExplorationConfig cfg;
  cfg.v_th_grid = {1.0, 6.0};
  cfg.t_grid = {16};
  cfg.eps_grid = {0.1};
  cfg.accuracy_threshold = 0.25;  // above chance, below a trained tiny net
  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 32;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = 400;
  cfg.data.test_n = 40;
  cfg.data.image_size = 16;
  cfg.pgd.steps = 3;
  cfg.pgd.rel_stepsize = 0.34;
  cfg.attack_test_cap = 16;
  cfg.eval_batch = 16;
  return cfg;
}

data::DataBundle tiny_data(const ExplorationConfig& cfg) {
  data::DataSpec spec = cfg.data;
  spec.force_synthetic = true;
  return data::load_digits(spec);
}

class ExplorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ =
        (fs::temp_directory_path() / "snnsec_explorer_cache").string();
    fs::remove_all(cache_dir_);
  }
  void TearDown() override { fs::remove_all(cache_dir_); }
  std::string cache_dir_;
};

TEST_F(ExplorerTest, ExploresFullGridWithLearnabilityFilter) {
  const ExplorationConfig cfg = tiny_config();
  const auto data = tiny_data(cfg);
  RobustnessExplorer explorer(cfg);
  int cells_seen = 0;
  const ExplorationReport report =
      explorer.explore(data, [&](const CellResult&) { ++cells_seen; });

  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(cells_seen, 2);

  const CellResult* good = report.find(1.0, 16);
  const CellResult* dead = report.find(6.0, 16);
  ASSERT_NE(good, nullptr);
  ASSERT_NE(dead, nullptr);

  // v_th = 6 keeps every neuron silent -> chance accuracy -> filtered out.
  EXPECT_FALSE(dead->learnable);
  EXPECT_TRUE(dead->robustness.empty());
  EXPECT_FALSE(dead->robustness_at(0.1).has_value());

  EXPECT_TRUE(good->learnable);
  ASSERT_EQ(good->robustness.size(), 1u);
  const auto r = good->robustness_at(0.1);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(*r, 0.0);
  EXPECT_LE(*r, 1.0);
  // eps = 0 must report the clean accuracy.
  EXPECT_EQ(good->robustness_at(0.0), good->clean_accuracy);
  EXPECT_EQ(good->spike_rates.size(), 5u);
  EXPECT_DOUBLE_EQ(report.learnable_fraction(), 0.5);
}

TEST_F(ExplorerTest, CheckpointCacheReproducesResults) {
  const ExplorationConfig cfg = tiny_config();
  const auto data = tiny_data(cfg);

  RobustnessExplorer first(cfg, cache_dir_);
  const auto cell1 = first.train_cell(1.0, 16, data);
  EXPECT_FALSE(cell1.from_cache);

  RobustnessExplorer second(cfg, cache_dir_);
  const auto cell2 = second.train_cell(1.0, 16, data);
  EXPECT_TRUE(cell2.from_cache);
  EXPECT_NEAR(cell2.clean_accuracy, cell1.clean_accuracy, 1e-6);

  // Identical weights -> identical logits.
  const auto x = data.test.images;
  EXPECT_TRUE(cell1.model->logits(x).allclose(cell2.model->logits(x), 0.0f));
}

TEST_F(ExplorerTest, CacheKeyChangesWithConfig) {
  ExplorationConfig cfg = tiny_config();
  const auto data = tiny_data(cfg);
  RobustnessExplorer a(cfg, cache_dir_);
  a.train_cell(1.0, 16, data);

  cfg.train.lr *= 2.0;  // different training config -> different fingerprint
  RobustnessExplorer b(cfg, cache_dir_);
  const auto cell = b.train_cell(1.0, 16, data);
  EXPECT_FALSE(cell.from_cache) << "stale checkpoint must not be reused";
}

TEST_F(ExplorerTest, ReportCsvAndHeatmap) {
  const ExplorationConfig cfg = tiny_config();
  const auto data = tiny_data(cfg);
  RobustnessExplorer explorer(cfg);
  const ExplorationReport report = explorer.explore(data);

  const std::string heat_clean = report.heatmap(0.0);
  EXPECT_NE(heat_clean.find("clean accuracy"), std::string::npos);
  EXPECT_NE(heat_clean.find("1.00"), std::string::npos);  // v_th column
  const std::string heat_eps = report.heatmap(0.1);
  EXPECT_NE(heat_eps.find("eps=0.1"), std::string::npos);
  EXPECT_NE(heat_eps.find("----"), std::string::npos);  // skipped dead cell

  const auto csv_path =
      (fs::temp_directory_path() / "snnsec_report.csv").string();
  report.write_csv(csv_path);
  std::ifstream is(csv_path);
  ASSERT_TRUE(is.is_open());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header,
            "v_th,T,clean_accuracy,learnable,status,attempts,"
            "robustness_eps_0.10");
  std::string row;
  int rows = 0;
  while (std::getline(is, row)) ++rows;
  EXPECT_EQ(rows, 2);
  fs::remove(csv_path);
}

TEST(ExplorationConfig, ValidationCatchesBadGrids) {
  ExplorationConfig cfg = tiny_config();
  cfg.v_th_grid.clear();
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = tiny_config();
  cfg.v_th_grid.push_back(-1.0);
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = tiny_config();
  cfg.t_grid.push_back(0);
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = tiny_config();
  cfg.accuracy_threshold = 1.5;
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = tiny_config();
  cfg.eps_grid.push_back(-0.1);
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(ExplorationConfig, ProfilesAreValid) {
  EXPECT_NO_THROW(paper_profile().validate());
  EXPECT_NO_THROW(quick_profile().validate());
  EXPECT_FALSE(quick_profile().summary().empty());
  // Paper grid: 10 thresholds x 12 windows, eps up to 1.5.
  const auto paper = paper_profile();
  EXPECT_EQ(paper.v_th_grid.size(), 10u);
  EXPECT_EQ(paper.t_grid.size(), 12u);
  EXPECT_DOUBLE_EQ(paper.v_th_grid.front(), 0.25);
  EXPECT_DOUBLE_EQ(paper.v_th_grid.back(), 2.5);
  EXPECT_EQ(paper.t_grid.front(), 8);
  EXPECT_EQ(paper.t_grid.back(), 96);
  EXPECT_DOUBLE_EQ(paper.eps_grid.back(), 1.5);
  EXPECT_DOUBLE_EQ(paper.accuracy_threshold, 0.70);
}

TEST(Report, FindToleratesFloatKeys) {
  ExplorationReport report;
  report.v_th_grid = {0.25};
  report.t_grid = {8};
  CellResult cell;
  cell.v_th = 0.25;
  cell.time_steps = 8;
  report.cells.push_back(cell);
  EXPECT_NE(report.find(0.25, 8), nullptr);
  EXPECT_EQ(report.find(0.3, 8), nullptr);
  EXPECT_EQ(report.find(0.25, 16), nullptr);
}

}  // namespace
}  // namespace snnsec::core
