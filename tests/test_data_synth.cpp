// Synthetic digit generator and dataset container.
#include <gtest/gtest.h>

#include "data/synth_digits.hpp"
#include "tensor/ops.hpp"

namespace snnsec::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(DigitStrokes, DefinedForAllTenDigits) {
  for (std::int64_t d = 0; d <= 9; ++d) {
    const auto strokes = digit_strokes(d);
    EXPECT_FALSE(strokes.empty()) << "digit " << d;
    for (const auto& s : strokes) EXPECT_FALSE(s.empty());
  }
}

TEST(DigitStrokes, RejectsOutOfRange) {
  EXPECT_THROW(digit_strokes(10), util::Error);
  EXPECT_THROW(digit_strokes(-1), util::Error);
}

TEST(RenderDigit, ProducesInkInsideCanvas) {
  SynthConfig cfg;
  util::Rng rng(1);
  for (std::int64_t d = 0; d <= 9; ++d) {
    Canvas canvas(cfg.image_size, cfg.image_size);
    render_digit(d, cfg, rng, canvas);
    double ink = 0.0;
    for (const float p : canvas.pixels()) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      ink += p;
    }
    // Each glyph must leave a visible amount of ink (a few % of area).
    EXPECT_GT(ink / (28.0 * 28.0), 0.02) << "digit " << d;
    EXPECT_LT(ink / (28.0 * 28.0), 0.6) << "digit " << d;
  }
}

TEST(RenderDigit, DifferentSamplesDiffer) {
  SynthConfig cfg;
  util::Rng rng(2);
  Canvas a(28, 28), b(28, 28);
  render_digit(3, cfg, rng, a);
  render_digit(3, cfg, rng, b);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i)
    diff += std::abs(a.pixels()[i] - b.pixels()[i]);
  EXPECT_GT(diff, 1.0);  // jitter must produce visibly distinct samples
}

TEST(GenerateDigits, ShapesLabelsAndBalance) {
  SynthConfig cfg;
  cfg.image_size = 16;
  util::Rng rng(3);
  const Dataset d = generate_digits(200, cfg, rng);
  EXPECT_EQ(d.size(), 200);
  EXPECT_EQ(d.images.shape(), Shape({200, 1, 16, 16}));
  EXPECT_NO_THROW(d.validate());
  const auto hist = d.class_histogram();
  for (const auto count : hist) EXPECT_EQ(count, 20);  // exactly balanced
}

TEST(GenerateDigits, DeterministicPerSeed) {
  SynthConfig cfg;
  cfg.image_size = 12;
  util::Rng r1(7), r2(7), r3(8);
  const Dataset a = generate_digits(30, cfg, r1);
  const Dataset b = generate_digits(30, cfg, r2);
  const Dataset c = generate_digits(30, cfg, r3);
  EXPECT_TRUE(a.images.allclose(b.images, 0.0f));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_FALSE(a.images.allclose(c.images, 1e-3f));
}

TEST(GenerateDigits, ClassesAreDistinguishableByTemplateMatching) {
  // Nearest-mean-template classification must beat chance by a wide
  // margin, otherwise the task would be unlearnable for any model.
  SynthConfig cfg;
  cfg.image_size = 16;
  util::Rng rng(9);
  const Dataset train = generate_digits(400, cfg, rng);
  const Dataset test = generate_digits(100, cfg, rng);
  const std::int64_t px = 16 * 16;
  std::vector<std::vector<double>> mean(10, std::vector<double>(px, 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < train.size(); ++i) {
    const auto l = train.labels[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(l)];
    for (std::int64_t j = 0; j < px; ++j)
      mean[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)] +=
          train.images[i * px + j];
  }
  for (int c = 0; c < 10; ++c)
    for (auto& v : mean[static_cast<std::size_t>(c)])
      v /= counts[static_cast<std::size_t>(c)];

  int correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    double best = 1e18;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (std::int64_t j = 0; j < px; ++j) {
        const double e = test.images[i * px + j] -
                         mean[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)];
        dist += e * e;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(correct, 60) << "template matching should exceed 60/100";
}

TEST(Dataset, SubsetTakeAndSplit) {
  SynthConfig cfg;
  cfg.image_size = 12;
  util::Rng rng(10);
  const Dataset d = generate_digits(50, cfg, rng);
  const Dataset sub = d.subset(10, 30);
  EXPECT_EQ(sub.size(), 20);
  EXPECT_EQ(sub.labels[0], d.labels[10]);
  EXPECT_EQ(d.take(15).size(), 15);
  EXPECT_EQ(d.take(500).size(), 50);  // clamped
  const auto [train, test] = split(d, 40);
  EXPECT_EQ(train.size(), 40);
  EXPECT_EQ(test.size(), 10);
  EXPECT_THROW(d.subset(30, 10), util::Error);
}

TEST(Dataset, ShufflePreservesPairs) {
  SynthConfig cfg;
  cfg.image_size = 12;
  util::Rng rng(11);
  Dataset d = generate_digits(40, cfg, rng);
  // Tag each image's first pixel with its label so pairing is checkable.
  const std::int64_t px = 12 * 12;
  for (std::int64_t i = 0; i < d.size(); ++i)
    d.images[i * px] = static_cast<float>(d.labels[static_cast<std::size_t>(i)]);
  util::Rng srng(12);
  d.shuffle(srng);
  for (std::int64_t i = 0; i < d.size(); ++i)
    EXPECT_FLOAT_EQ(d.images[i * px],
                    static_cast<float>(d.labels[static_cast<std::size_t>(i)]));
}

TEST(Dataset, ValidateCatchesCorruption) {
  SynthConfig cfg;
  cfg.image_size = 12;
  util::Rng rng(13);
  Dataset d = generate_digits(10, cfg, rng);
  Dataset bad = d;
  bad.labels[0] = 17;
  EXPECT_THROW(bad.validate(), util::Error);
  bad = d;
  bad.images[0] = 2.0f;
  EXPECT_THROW(bad.validate(), util::Error);
  bad = d;
  bad.labels.pop_back();
  EXPECT_THROW(bad.validate(), util::Error);
}

TEST(Dataset, SummaryAndAsciiArt) {
  SynthConfig cfg;
  cfg.image_size = 12;
  util::Rng rng(14);
  const Dataset d = generate_digits(10, cfg, rng);
  EXPECT_NE(d.summary().find("N=10"), std::string::npos);
  const std::string art = ascii_art(d.images, 0);
  // 12 rows of 24 chars + newlines.
  EXPECT_EQ(art.size(), 12u * 25u);
  EXPECT_THROW(ascii_art(d.images, 99), util::Error);
}

TEST(Affine, ComposesAndTransforms) {
  const Affine rot = Affine::rotation(3.14159265f, {0.5f, 0.5f});
  const Vec2 p = rot.apply({1.0f, 0.5f});
  EXPECT_NEAR(p.x, 0.0f, 1e-4f);
  EXPECT_NEAR(p.y, 0.5f, 1e-4f);
  const Affine t = Affine::translation(1.0f, 2.0f);
  const Vec2 q = t.apply({0.0f, 0.0f});
  EXPECT_FLOAT_EQ(q.x, 1.0f);
  EXPECT_FLOAT_EQ(q.y, 2.0f);
  // scaling about center keeps the center fixed
  const Affine s = Affine::scaling(2.0f, 2.0f, {0.5f, 0.5f});
  const Vec2 c = s.apply({0.5f, 0.5f});
  EXPECT_NEAR(c.x, 0.5f, 1e-6f);
  EXPECT_NEAR(c.y, 0.5f, 1e-6f);
}

TEST(Canvas, StampAndBlurStayInRange) {
  Canvas canvas(16, 16);
  canvas.stamp({8.0f, 8.0f}, 2.0f);
  EXPECT_GT(canvas.pixels()[8 * 16 + 8], 0.9f);
  canvas.blur(2);
  util::Rng rng(15);
  canvas.add_noise(0.1f, rng);
  for (const float p : canvas.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Raster, BezierEndpointsExact) {
  const auto pts = sample_quad_bezier({0, 0}, {1, 0}, {1, 1}, 10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_FLOAT_EQ(pts.front().x, 0.0f);
  EXPECT_FLOAT_EQ(pts.back().y, 1.0f);
}

TEST(Raster, EllipseClosesFullCircle) {
  const auto pts =
      sample_ellipse({0.5f, 0.5f}, 0.2f, 0.3f, 0.0f, 6.2831853f, 33);
  EXPECT_NEAR(pts.front().x, pts.back().x, 1e-4f);
  EXPECT_NEAR(pts.front().y, pts.back().y, 1e-4f);
}

}  // namespace
}  // namespace snnsec::data
