// RNG determinism, distribution sanity, and stream-splitting tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::util {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, ZeroSeedIsValid) {
  Xoshiro256 g(0);
  // Must not get stuck at zero.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 10u);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256 a(5), b(5);
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / kN, 3.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int ones = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ones += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

class UniformIndexTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexTest, StaysBelowBound) {
  const std::uint64_t n = GetParam();
  Rng rng(31 + n);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform_index(n), n);
}

TEST_P(UniformIndexTest, HitsEveryValueForSmallN) {
  const std::uint64_t n = GetParam();
  if (n > 64) GTEST_SKIP() << "coverage check only for small n";
  Rng rng(37 + n);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.uniform_index(n));
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexTest,
                         ::testing::Values(1, 2, 3, 7, 10, 64, 1000,
                                           std::uint64_t{1} << 40));

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(41);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(43);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng(47);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, ForkByLabelIsDeterministic) {
  Rng a(100), b(100);
  Rng fa = a.fork("weights");
  Rng fb = b.fork("weights");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksAreIndependentStreams) {
  Rng root(100);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkByIndexDiffers) {
  Rng root(100);
  Rng a = root.fork(std::uint64_t{0});
  Rng b = root.fork(std::uint64_t{1});
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(55), b(55);
  (void)a.fork("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one[0], 42);
}

TEST(Rng, FillHelpersRespectBoundsAndMoments) {
  Rng rng(67);
  std::vector<float> buf(20000);
  rng.fill_uniform(buf.data(), buf.size(), -1.0f, 1.0f);
  for (const float v : buf) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
  rng.fill_bernoulli(buf.data(), buf.size(), 0.5);
  double mean = 0.0;
  for (const float v : buf) {
    // NOLINTNEXTLINE(snnsec-float-eq): fill_bernoulli emits exactly 0 or 1 by contract
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    mean += v;
  }
  EXPECT_NEAR(mean / static_cast<double>(buf.size()), 0.5, 0.02);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_NE(hash_label("weights"), hash_label("weights2"));
  EXPECT_EQ(hash_label("same"), hash_label("same"));
}

TEST(Splitmix, KnownSequenceAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace snnsec::util
