// Deterministic fault injectors (weight bit-flips, stuck-at neurons, spike
// drop/jitter) and the accuracy-under-fault grid harness.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/synth_digits.hpp"
#include "faults/harness.hpp"

namespace snnsec::faults {
namespace {

namespace fs = std::filesystem;

nn::LenetSpec tiny_arch() {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.5);
  arch.image_size = 16;
  return arch;
}

std::unique_ptr<snn::SpikingClassifier> tiny_model(double v_th = 1.0) {
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = 8;
  util::Rng rng(42);
  util::Rng init = rng.fork("snn-init");
  return snn::build_spiking_lenet(tiny_arch(), cfg, init);
}

tensor::Tensor tiny_batch() {
  data::DataSpec spec;
  spec.train_n = 16;
  spec.test_n = 16;
  spec.image_size = 16;
  spec.force_synthetic = true;
  return data::load_digits(spec).test.images;
}

std::vector<float> flatten_weights(snn::SpikingClassifier& model) {
  std::vector<float> out;
  for (nn::Parameter* p : model.parameters())
    out.insert(out.end(), p->value.data(),
               p->value.data() + p->value.numel());
  return out;
}

double total_spike_rate(snn::SpikingClassifier& model) {
  double sum = 0.0;
  for (const double r : model.spike_rates()) sum += r;
  return sum;
}

TEST(WeightBitflips, DeterministicForAGivenSeed) {
  auto model = tiny_model();
  const auto baseline = flatten_weights(*model);
  auto params = model->parameters();

  util::Rng rng_a(7);
  const std::size_t flipped_a =
      inject_weight_bitflips(params, 1e-3, rng_a);
  EXPECT_GT(flipped_a, 0u);
  const auto faulted_a = flatten_weights(*model);

  // Same seed on an identically-initialized model: same bits must flip.
  auto fresh = tiny_model();
  auto fresh_params = fresh->parameters();
  util::Rng rng_b(7);
  const std::size_t flipped_b =
      inject_weight_bitflips(fresh_params, 1e-3, rng_b);
  EXPECT_EQ(flipped_a, flipped_b);
  const auto faulted_b = flatten_weights(*fresh);

  ASSERT_EQ(faulted_a.size(), faulted_b.size());
  EXPECT_EQ(std::memcmp(faulted_a.data(), faulted_b.data(),
                        faulted_a.size() * sizeof(float)),
            0)
      << "same seed must flip the same bits";
  // And the fault actually changed something relative to the baseline.
  EXPECT_NE(std::memcmp(baseline.data(), faulted_a.data(),
                        baseline.size() * sizeof(float)),
            0);
}

TEST(WeightBitflips, SnapshotRestoreUndoesTheFault) {
  auto model = tiny_model();
  auto params = model->parameters();
  const auto baseline = flatten_weights(*model);
  const auto snapshot = snapshot_parameters(params);

  util::Rng rng(7);
  inject_weight_bitflips(params, 0.01, rng);
  EXPECT_NE(flatten_weights(*model), baseline);

  restore_parameters(params, snapshot);
  EXPECT_EQ(flatten_weights(*model), baseline);
}

TEST(WeightBitflips, ZeroAndOneBerEdgeCases) {
  auto model = tiny_model();
  auto params = model->parameters();
  const auto baseline = flatten_weights(*model);
  util::Rng rng(7);
  EXPECT_EQ(inject_weight_bitflips(params, 0.0, rng), 0u);
  EXPECT_EQ(flatten_weights(*model), baseline);

  std::uint64_t total_bits = 0;
  for (const nn::Parameter* p : params)
    total_bits += static_cast<std::uint64_t>(p->value.numel()) * 32;
  EXPECT_EQ(inject_weight_bitflips(params, 1.0, rng),
            static_cast<std::size_t>(total_bits));
}

TEST(SpikeFaults, StuckAtZeroSilencesTheNetwork) {
  auto model = tiny_model();
  const auto x = tiny_batch();

  const std::size_t armed =
      arm_fault(*model, {FaultKind::kStuckAtZero, 1.0, 7});
  EXPECT_GT(armed, 0u);
  model->logits(x);
  for (const double r : model->spike_rates()) EXPECT_EQ(r, 0.0);

  clear_spike_faults(*model);
  model->logits(x);
  EXPECT_GT(total_spike_rate(*model), 0.0) << "disarm must restore activity";
}

TEST(SpikeFaults, DropReducesSpikeRateDeterministically) {
  auto model = tiny_model();
  const auto x = tiny_batch();
  model->logits(x);
  const double baseline = total_spike_rate(*model);
  ASSERT_GT(baseline, 0.0);

  arm_fault(*model, {FaultKind::kSpikeDrop, 0.5, 7});
  const auto logits_a = model->logits(x);
  const double dropped = total_spike_rate(*model);
  // Dropping half the encoder spikes starves downstream layers too, so the
  // total must fall well below baseline (but some activity survives).
  EXPECT_LT(dropped, 0.8 * baseline);

  // Deterministic: the fault pattern is re-seeded per forward.
  const auto logits_b = model->logits(x);
  EXPECT_TRUE(logits_a.allclose(logits_b, 0.0f));
  EXPECT_EQ(total_spike_rate(*model), dropped);
}

TEST(SpikeFaults, JitterPreservesMostSpikes) {
  auto model = tiny_model();
  const auto x = tiny_batch();
  model->logits(x);
  const double baseline = total_spike_rate(*model);

  arm_fault(*model, {FaultKind::kSpikeJitter, 0.5, 7});
  const auto logits_a = model->logits(x);
  const double jittered = total_spike_rate(*model);
  // Jitter only delays spikes (merging on collision and at the window
  // edge), so the rate may dip but must stay the same order of magnitude.
  EXPECT_LE(jittered, baseline + 1e-12);
  EXPECT_GT(jittered, 0.25 * baseline);
  EXPECT_TRUE(logits_a.allclose(model->logits(x), 0.0f));
}

TEST(ScopedFaultTest, RestoresWeightsAndDisarmsOnExit) {
  auto model = tiny_model();
  const auto x = tiny_batch();
  const auto baseline_logits = model->logits(x);
  const auto baseline_weights = flatten_weights(*model);

  {
    ScopedFault scope(*model, {FaultKind::kWeightBitflip, 0.01, 7});
    EXPECT_GT(scope.injected(), 0u);
    EXPECT_NE(flatten_weights(*model), baseline_weights);
  }
  EXPECT_EQ(flatten_weights(*model), baseline_weights);

  {
    ScopedFault scope(*model, {FaultKind::kStuckAtZero, 1.0, 7});
    model->logits(x);
    EXPECT_EQ(total_spike_rate(*model), 0.0);
  }
  EXPECT_TRUE(model->logits(x).allclose(baseline_logits, 0.0f));
}

TEST(ScopedFaultTest, NestedSpikeScopesRestoreTheOuterFault) {
  // An inner scope destructing must re-arm whatever the outer scope had
  // installed on the same LIF layers — not blanket-clear it. Faults are
  // distinguished by the total spike rate (deterministic per armed state;
  // this untrained model's *logits* barely react to spike faults).
  auto model = tiny_model();
  const auto x = tiny_batch();
  model->logits(x);
  const double clean_rate = total_spike_rate(*model);
  const FaultSpec outer_spec{FaultKind::kSpikeDrop, 0.3, 11};
  const FaultSpec inner_spec{FaultKind::kSpikeJitter, 0.5, 13};

  double drop_rate = 0.0;
  double jitter_rate = 0.0;
  {
    ScopedFault scope(*model, outer_spec);
    model->logits(x);
    drop_rate = total_spike_rate(*model);
  }
  {
    ScopedFault scope(*model, inner_spec);
    model->logits(x);
    jitter_rate = total_spike_rate(*model);
  }
  ASSERT_LT(drop_rate, clean_rate);
  ASSERT_NE(jitter_rate, drop_rate);
  EXPECT_EQ(armed_spike_fault_count(*model), 0u);

  {
    ScopedFault outer(*model, outer_spec);
    const std::size_t armed = armed_spike_fault_count(*model);
    EXPECT_GT(armed, 0u);
    {
      ScopedFault inner(*model, inner_spec);
      EXPECT_EQ(armed_spike_fault_count(*model), armed);
      model->logits(x);
      EXPECT_EQ(total_spike_rate(*model), jitter_rate)
          << "inner scope must replace the outer fault while active";
    }
    EXPECT_EQ(armed_spike_fault_count(*model), armed)
        << "inner exit must restore the outer fault, not disarm";
    model->logits(x);
    EXPECT_EQ(total_spike_rate(*model), drop_rate);
  }
  EXPECT_EQ(armed_spike_fault_count(*model), 0u);
  model->logits(x);
  EXPECT_EQ(total_spike_rate(*model), clean_rate);
}

TEST(ScopedFaultTest, ReArmAfterClearReproducesTheFault) {
  auto model = tiny_model();
  const auto x = tiny_batch();
  const FaultSpec spec{FaultKind::kSpikeDrop, 0.4, 17};
  arm_fault(*model, spec);
  const auto faulted = model->logits(x);
  clear_spike_faults(*model);
  EXPECT_EQ(armed_spike_fault_count(*model), 0u);
  // Arming again from the same spec forks the same per-layer sub-seeds.
  arm_fault(*model, spec);
  EXPECT_GT(armed_spike_fault_count(*model), 0u);
  EXPECT_TRUE(model->logits(x).allclose(faulted, 0.0f));
  clear_spike_faults(*model);
}

TEST(ScopedFaultTest, WeightScopeDoesNotDisturbArmedSpikeFaults) {
  auto model = tiny_model();
  const auto x = tiny_batch();
  arm_fault(*model, {FaultKind::kSpikeDrop, 0.3, 19});
  const std::size_t armed = armed_spike_fault_count(*model);
  EXPECT_GT(armed, 0u);
  const auto faulted = model->logits(x);
  {
    ScopedFault scope(*model, {FaultKind::kWeightBitflip, 0.01, 23});
    EXPECT_EQ(armed_spike_fault_count(*model), armed);
  }
  EXPECT_EQ(armed_spike_fault_count(*model), armed);
  EXPECT_TRUE(model->logits(x).allclose(faulted, 0.0f));
  clear_spike_faults(*model);
}

TEST(ScopedFaultTest, StackedWeightScopesRestoreLifo) {
  // Compare bit patterns, not float values: exponent flips mint NaNs, and
  // NaN != NaN would report a bit-perfect restore as a mismatch.
  const auto bits = [](snn::SpikingClassifier& model) {
    std::vector<std::uint32_t> out;
    for (const float f : flatten_weights(model)) {
      std::uint32_t b;
      std::memcpy(&b, &f, sizeof b);
      out.push_back(b);
    }
    return out;
  };
  auto model = tiny_model();
  const auto w0 = bits(*model);
  {
    ScopedFault outer(*model, {FaultKind::kWeightBitflip, 0.005, 29});
    EXPECT_GT(outer.injected(), 0u);
    const auto w1 = bits(*model);
    EXPECT_NE(w1, w0);
    {
      ScopedFault inner(*model, {FaultKind::kWeightBitflip, 0.005, 31});
      EXPECT_GT(inner.injected(), 0u);
      EXPECT_NE(bits(*model), w1);
    }
    EXPECT_EQ(bits(*model), w1) << "inner exit must restore outer's view";
  }
  EXPECT_EQ(bits(*model), w0);
}

TEST(FaultSpecTest, LabelsAndValidation) {
  FaultSpec spec{FaultKind::kWeightBitflip, 1e-3, 7};
  EXPECT_EQ(spec.label(), "weight_bitflip@0.001");
  EXPECT_EQ((FaultSpec{FaultKind::kSpikeDrop, 0.25, 7}.label()),
            "spike_drop@0.25");
  spec.rate = 1.5;
  EXPECT_THROW(spec.validate(), util::Error);
}

TEST(FaultGrid, EvaluatesEveryCellUnderEveryFault) {
  core::ExplorationConfig cfg;
  cfg.v_th_grid = {1.0};
  cfg.t_grid = {8};
  cfg.eps_grid = {0.1};
  cfg.accuracy_threshold = 0.25;
  cfg.arch = tiny_arch();
  cfg.train.epochs = 1;
  cfg.train.batch_size = 32;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = 200;
  cfg.data.test_n = 40;
  cfg.data.image_size = 16;
  cfg.retry.base_delay_ms = 0.0;
  data::DataSpec spec = cfg.data;
  spec.force_synthetic = true;
  const auto data = data::load_digits(spec);

  core::RobustnessExplorer explorer(cfg);
  FaultGridConfig fault_cfg;
  fault_cfg.faults = {
      {FaultKind::kWeightBitflip, 0.0, 7},  // no-op control
      {FaultKind::kStuckAtZero, 1.0, 7},    // total failure
  };
  fault_cfg.eval_cap = 32;
  fault_cfg.eval_batch = 16;

  const FaultReport report = evaluate_fault_grid(explorer, data, fault_cfg);
  ASSERT_EQ(report.cells.size(), 1u);
  const FaultCellResult* cell = report.find(1.0, 8);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->status, core::CellStatus::kOk);
  ASSERT_EQ(cell->accuracy.size(), 2u);
  // The no-op fault must reproduce the baseline exactly; the silencing
  // fault collapses the network to a constant output.
  EXPECT_EQ(cell->accuracy.at("weight_bitflip@0"), cell->baseline_accuracy);
  EXPECT_LE(cell->accuracy.at("stuck_at_zero@1"), cell->baseline_accuracy);

  EXPECT_NE(report.table().find("stuck_at_zero@1"), std::string::npos);

  const auto csv_path =
      (fs::temp_directory_path() / "snnsec_faults.csv").string();
  report.write_csv(csv_path);
  std::ifstream is(csv_path);
  ASSERT_TRUE(is.is_open());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header,
            "v_th,T,status,baseline_accuracy,weight_bitflip@0,"
            "stuck_at_zero@1");
  fs::remove(csv_path);
}

}  // namespace
}  // namespace snnsec::faults
