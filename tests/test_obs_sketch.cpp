// SketchAccumulator bit-identity contract: a request's activity sketch is
// identical whether it rode a batch or ran alone, and a deadline-truncated
// request's sketch equals an independent run truncated at the same depth.
#include <gtest/gtest.h>

#include <memory>

#include "obs/sketch.hpp"
#include "snn/anytime.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;
constexpr double kVth = 1.1;

std::unique_ptr<SpikingClassifier> make_model(
    std::int64_t t = 7, NeuronModel neuron = NeuronModel::kLif) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = kImage;
  SnnConfig cfg;
  cfg.v_th = kVth;
  cfg.time_steps = t;
  cfg.neuron_model = neuron;
  cfg.input_gain = 3.0;
  util::Rng rng(42);
  return build_spiking_lenet(arch, cfg, rng);
}

Tensor random_batch(std::int64_t n, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  Tensor x(Shape{n, 1, kImage, kImage});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

Tensor slice_one(const Tensor& batch, std::int64_t i) {
  const std::int64_t numel = kImage * kImage;
  Tensor one(Shape{1, 1, kImage, kImage});
  std::copy(batch.data() + i * numel, batch.data() + (i + 1) * numel,
            one.data());
  return one;
}

// Bitwise equality: every double must match exactly — the contract is
// bit-identity, not tolerance.
void expect_sketch_equal(const obs::ActivitySketch& a,
                         const obs::ActivitySketch& b) {
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    const auto& la = a.layers[l];
    const auto& lb = b.layers[l];
    EXPECT_EQ(la.firing_rate, lb.firing_rate) << "layer " << l;
    EXPECT_EQ(la.silent_fraction, lb.silent_fraction) << "layer " << l;
    EXPECT_EQ(la.saturated_fraction, lb.saturated_fraction) << "layer " << l;
    EXPECT_EQ(la.v_mean, lb.v_mean) << "layer " << l;
    EXPECT_EQ(la.spike_count, lb.spike_count) << "layer " << l;
    EXPECT_EQ(la.neurons, lb.neurons) << "layer " << l;
    ASSERT_EQ(la.hist_frac.size(), lb.hist_frac.size());
    for (std::size_t h = 0; h < la.hist_frac.size(); ++h)
      EXPECT_EQ(la.hist_frac[h], lb.hist_frac[h])
          << "layer " << l << " bucket " << h;
  }
}

TEST(SketchAccumulator, BatchedMatchesSingleBitIdentical) {
  auto model = make_model();
  AnytimeRunner runner(*model);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  runner.set_sketch(&acc);

  const std::int64_t n = 4;
  const Tensor batch = random_batch(n, 51);
  runner.run(batch);
  std::vector<obs::ActivitySketch> batched(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    acc.finalize(i, batched[static_cast<std::size_t>(i)]);

  obs::ActivitySketch single;
  for (std::int64_t i = 0; i < n; ++i) {
    runner.run(slice_one(batch, i));
    acc.finalize(0, single);
    expect_sketch_equal(single, batched[static_cast<std::size_t>(i)]);
  }
}

TEST(SketchAccumulator, BatchedMatchesSingleAlif) {
  auto model = make_model(5, NeuronModel::kAlif);
  AnytimeRunner runner(*model);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  runner.set_sketch(&acc);

  const std::int64_t n = 2;
  const Tensor batch = random_batch(n, 61);
  runner.run(batch);
  std::vector<obs::ActivitySketch> batched(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    acc.finalize(i, batched[static_cast<std::size_t>(i)]);

  obs::ActivitySketch single;
  for (std::int64_t i = 0; i < n; ++i) {
    runner.run(slice_one(batch, i));
    acc.finalize(0, single);
    expect_sketch_equal(single, batched[static_cast<std::size_t>(i)]);
  }
}

TEST(SketchAccumulator, TruncatedMatchesIndependentTruncatedRun) {
  auto model = make_model();
  const Tensor x = random_batch(1, 71);
  const std::int64_t cut = 3;

  AnytimeRunner a(*model);
  obs::SketchAccumulator acc_a;
  acc_a.configure(a.sketch_layers());
  a.set_sketch(&acc_a);
  a.run(x, cut);
  obs::ActivitySketch truncated;
  acc_a.finalize(0, truncated);
  EXPECT_EQ(truncated.steps, cut);

  AnytimeRunner b(*model);
  obs::SketchAccumulator acc_b;
  acc_b.configure(b.sketch_layers());
  b.set_sketch(&acc_b);
  b.run(x, cut);
  obs::ActivitySketch other;
  acc_b.finalize(0, other);
  expect_sketch_equal(truncated, other);

  // Continuing the truncated runner to T does not disturb the snapshot
  // already taken, and the full-window sketch accumulates all T steps.
  while (!a.done()) a.step();
  obs::ActivitySketch full;
  acc_a.finalize(0, full);
  EXPECT_EQ(full.steps, model->time_steps());
  EXPECT_EQ(truncated.steps, cut);
  EXPECT_GE(full.layers[0].spike_count, truncated.layers[0].spike_count);
}

TEST(SketchAccumulator, HistogramRangeDerivesFromModelThreshold) {
  // Satellite contract: the membrane histogram spans [-Vth, 2*Vth) from the
  // layer's actual threshold, not the Vth-agnostic default.
  auto model = make_model();
  AnytimeRunner runner(*model);
  const auto& layers = runner.sketch_layers();
  ASSERT_FALSE(layers.empty());
  obs::SketchAccumulator acc;
  acc.configure(layers);
  for (std::int64_t l = 0; l < acc.num_layers(); ++l) {
    const double v_th = layers[static_cast<std::size_t>(l)].v_th;
    // The model stores thresholds in float; compare through that roundtrip.
    EXPECT_NEAR(v_th, kVth, 1e-6);
    EXPECT_EQ(acc.spec(l).lo, -v_th);
    EXPECT_EQ(acc.spec(l).hi, 2.0 * v_th);
    EXPECT_EQ(acc.spec(l).buckets, acc.buckets());
  }
}

TEST(SketchAccumulator, FractionsAreNormalized) {
  auto model = make_model();
  AnytimeRunner runner(*model);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  runner.set_sketch(&acc);
  runner.run(random_batch(2, 81));

  obs::ActivitySketch s;
  for (std::int64_t slot = 0; slot < 2; ++slot) {
    acc.finalize(slot, s);
    for (const auto& layer : s.layers) {
      EXPECT_GE(layer.firing_rate, 0.0);
      EXPECT_LE(layer.firing_rate, 1.0);
      EXPECT_GE(layer.silent_fraction, 0.0);
      EXPECT_LE(layer.silent_fraction, 1.0);
      EXPECT_GE(layer.saturated_fraction, 0.0);
      EXPECT_LE(layer.saturated_fraction, 1.0);
      // Every membrane value lands in exactly one bucket, so the mass
      // fractions sum to 1 over neuron-steps.
      double mass = 0.0;
      for (const double h : layer.hist_frac) mass += h;
      EXPECT_NEAR(mass, 1.0, 1e-9);
    }
  }
}

TEST(SketchAccumulator, Guards) {
  obs::SketchAccumulator acc;
  EXPECT_THROW(acc.begin(1), util::Error);  // begin before configure
  EXPECT_THROW(acc.configure({}), util::Error);
  EXPECT_THROW(acc.configure({{"lif0", 1.0}}, 0), util::Error);

  acc.configure({{"lif0", 1.0}});
  EXPECT_THROW(acc.begin(0), util::Error);
  acc.begin(2);
  const float z[4] = {0.0f, 1.0f, 0.0f, 1.0f};
  // A slab that is not divisible by the batch is a geometry bug.
  EXPECT_THROW(acc.accumulate(0, z, z, 3), util::Error);
  obs::ActivitySketch out;
  EXPECT_THROW(acc.finalize(2, out), util::Error);  // slot outside batch
}

TEST(AnytimeRunnerSketch, SetSketchValidatesGeometry) {
  auto model = make_model();
  AnytimeRunner runner(*model);
  obs::SketchAccumulator unconfigured;
  EXPECT_THROW(runner.set_sketch(&unconfigured), util::Error);
  obs::SketchAccumulator wrong;
  wrong.configure({{"lif0", 1.0}});  // model has more spiking layers
  EXPECT_THROW(runner.set_sketch(&wrong), util::Error);
  // Detaching is always legal.
  runner.set_sketch(nullptr);
}

}  // namespace
}  // namespace snnsec::snn
