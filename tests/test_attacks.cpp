// Attack library: projection, FGSM/PGD semantics, budget guarantees,
// effectiveness on a trained model.
#include <gtest/gtest.h>

#include "attacks/evaluation.hpp"
#include "nn/feedforward.hpp"
#include "nn/sequential.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/noise.hpp"
#include "attacks/pgd.hpp"
#include "nn/activations.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace snnsec::attack {
namespace {

using nn::FeedforwardClassifier;
using tensor::Shape;
using tensor::Tensor;

class ProjectLinfTest : public ::testing::TestWithParam<double> {};

TEST_P(ProjectLinfTest, StaysInBallAndBox) {
  const double eps = GetParam();
  util::Rng rng(1);
  const Tensor ref = Tensor::rand_uniform(Shape{100}, rng);
  Tensor x = Tensor::rand_uniform(Shape{100}, rng, -2.0f, 3.0f);
  AttackBudget budget;
  budget.epsilon = eps;
  project_linf(x, ref, budget);
  EXPECT_LE(tensor::linf_distance(x, ref), static_cast<float>(eps) + 1e-6f);
  EXPECT_GE(tensor::min_value(x), 0.0f);
  EXPECT_LE(tensor::max_value(x), 1.0f);
}

TEST_P(ProjectLinfTest, IdempotentAndIdentityInside) {
  const double eps = GetParam();
  util::Rng rng(2);
  const Tensor ref = Tensor::rand_uniform(Shape{50}, rng);
  Tensor x = ref;
  AttackBudget budget;
  budget.epsilon = eps;
  project_linf(x, ref, budget);
  EXPECT_TRUE(x.allclose(ref, 1e-7f));  // already feasible -> unchanged
}

INSTANTIATE_TEST_SUITE_P(Budgets, ProjectLinfTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.5, 1.0, 1.5));

TEST(ProjectLinf, ShapeMismatchThrows) {
  Tensor x(Shape{3});
  const Tensor ref(Shape{4});
  EXPECT_THROW(project_linf(x, ref, {}), util::Error);
}

/// A 2-class linear model on 2 pixels with known weights: logit0 = x0,
/// logit1 = x1. Gradient of CE w.r.t. x is analytic and simple.
std::unique_ptr<FeedforwardClassifier> make_linear_model() {
  util::Rng rng(3);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  auto lin = std::make_unique<nn::Linear>(2, 2, rng, /*bias=*/false);
  lin->weight().value = Tensor::from_vector(Shape{2, 2}, {1, 0, 0, 1});
  seq->add(std::move(lin));
  return std::make_unique<FeedforwardClassifier>(std::move(seq), 2, "linear");
}

TEST(Fgsm, MovesAgainstTrueClassGradient) {
  auto model = make_linear_model();
  // Sample at (0.5, 0.5), label 0: loss decreases with x0, increases with
  // x1 => FGSM must lower x0 and raise x1... sign(dL/dx0) = sign(p0-1) < 0.
  const Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 0.5f);
  Fgsm fgsm;
  AttackBudget budget;
  budget.epsilon = 0.1;
  const Tensor adv = fgsm.perturb(*model, x, {0}, budget);
  EXPECT_NEAR(adv[0], 0.4f, 1e-5f);
  EXPECT_NEAR(adv[1], 0.6f, 1e-5f);
}

TEST(Fgsm, RespectsBudgetAndBox) {
  auto model = make_linear_model();
  util::Rng rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{8, 1, 1, 2}, rng);
  Fgsm fgsm;
  AttackBudget budget;
  budget.epsilon = 0.25;
  std::vector<std::int64_t> labels(8, 0);
  const Tensor adv = fgsm.perturb(*model, x, labels, budget);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.25f + 1e-6f);
  EXPECT_GE(tensor::min_value(adv), 0.0f);
  EXPECT_LE(tensor::max_value(adv), 1.0f);
}

TEST(Pgd, SingleStepNoRandomStartEqualsFgsm) {
  auto model = make_linear_model();
  util::Rng rng(5);
  const Tensor x = Tensor::rand_uniform(Shape{4, 1, 1, 2}, rng, 0.2f, 0.8f);
  const std::vector<std::int64_t> labels{0, 1, 0, 1};
  AttackBudget budget;
  budget.epsilon = 0.1;

  PgdConfig cfg;
  cfg.steps = 1;
  cfg.random_start = false;
  cfg.abs_stepsize = budget.epsilon;  // one full-budget step
  Pgd pgd(cfg);
  Fgsm fgsm;
  const Tensor a = pgd.perturb(*model, x, labels, budget);
  const Tensor b = fgsm.perturb(*model, x, labels, budget);
  EXPECT_TRUE(a.allclose(b, 1e-6f));
}

TEST(Pgd, ZeroEpsilonReturnsInputUnchanged) {
  auto model = make_linear_model();
  const Tensor x = Tensor::full(Shape{2, 1, 1, 2}, 0.3f);
  Pgd pgd;
  AttackBudget budget;
  budget.epsilon = 0.0;
  EXPECT_TRUE(pgd.perturb(*model, x, {0, 1}, budget).allclose(x, 0.0f));
}

TEST(Pgd, StaysWithinBudgetAcrossSteps) {
  auto model = make_linear_model();
  util::Rng rng(6);
  const Tensor x = Tensor::rand_uniform(Shape{6, 1, 1, 2}, rng);
  PgdConfig cfg;
  cfg.steps = 20;
  Pgd pgd(cfg);
  AttackBudget budget;
  budget.epsilon = 0.15;
  std::vector<std::int64_t> labels(6, 1);
  const Tensor adv = pgd.perturb(*model, x, labels, budget);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.15f + 1e-6f);
  EXPECT_GE(tensor::min_value(adv), 0.0f);
  EXPECT_LE(tensor::max_value(adv), 1.0f);
}

TEST(Pgd, IncreasesLossMoreThanFgsm) {
  // On the linear model both saturate, so use a small trained MLP on blobs.
  util::Rng rng(7);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(2, 16, rng);
  seq->emplace<nn::Tanh>();
  seq->emplace<nn::Linear>(16, 2, rng);
  FeedforwardClassifier model(std::move(seq), 2, "mlp");

  Tensor x(Shape{64, 1, 1, 2});
  std::vector<std::int64_t> y(64);
  util::Rng drng(8);
  for (std::int64_t i = 0; i < 64; ++i) {
    const std::int64_t label = i % 2;
    x[i * 2 + 0] = static_cast<float>(
        drng.normal(label == 0 ? 0.25 : 0.75, 0.05));
    x[i * 2 + 1] = static_cast<float>(
        drng.normal(label == 0 ? 0.75 : 0.25, 0.05));
    y[static_cast<std::size_t>(i)] = label;
  }
  nn::TrainConfig tcfg;
  tcfg.epochs = 30;
  nn::Trainer(tcfg).fit(model, x.reshaped(Shape{64, 1, 1, 2}), y);

  AttackBudget budget;
  budget.epsilon = 0.2;
  Fgsm fgsm;
  PgdConfig pcfg;
  pcfg.steps = 20;
  pcfg.rel_stepsize = 0.2;  // 20 steps x 0.2eps spans the ball several times
  pcfg.random_start = false;
  Pgd pgd(pcfg);
  const Tensor adv_f = fgsm.perturb(model, x, y, budget);
  const Tensor adv_p = pgd.perturb(model, x, y, budget);
  double loss_f = 0.0, loss_p = 0.0;
  model.input_gradient(adv_f, y, &loss_f);
  model.input_gradient(adv_p, y, &loss_p);
  EXPECT_GE(loss_p, loss_f - 1e-3);  // iterated ascent at least as strong
}

TEST(NoiseAttacks, RespectBudget) {
  auto model = make_linear_model();
  util::Rng rng(9);
  const Tensor x = Tensor::rand_uniform(Shape{16, 1, 1, 2}, rng);
  std::vector<std::int64_t> labels(16, 0);
  AttackBudget budget;
  budget.epsilon = 0.1;
  UniformNoise uni;
  GaussianNoise gauss;
  for (Attack* atk : std::initializer_list<Attack*>{&uni, &gauss}) {
    const Tensor adv = atk->perturb(*model, x, labels, budget);
    EXPECT_LE(tensor::linf_distance(adv, x), 0.1f + 1e-6f) << atk->name();
  }
}

TEST(Evaluation, PerfectModelHasFullRobustnessAtZeroEps) {
  auto model = make_linear_model();
  // Points classified by comparing x0 vs x1; labels consistent with that.
  Tensor x(Shape{10, 1, 1, 2});
  std::vector<std::int64_t> y(10);
  for (std::int64_t i = 0; i < 10; ++i) {
    const bool cls1 = (i % 2) == 1;
    x[i * 2 + 0] = cls1 ? 0.2f : 0.8f;
    x[i * 2 + 1] = cls1 ? 0.8f : 0.2f;
    y[static_cast<std::size_t>(i)] = cls1 ? 1 : 0;
  }
  Pgd pgd;
  const auto pt = evaluate_attack(*model, pgd, x, y, 0.0);
  EXPECT_DOUBLE_EQ(pt.robustness, 1.0);
  EXPECT_DOUBLE_EQ(pt.attack_success_rate, 0.0);
}

TEST(Evaluation, LargeBudgetBreaksLinearModel) {
  auto model = make_linear_model();
  Tensor x(Shape{10, 1, 1, 2});
  std::vector<std::int64_t> y(10);
  for (std::int64_t i = 0; i < 10; ++i) {
    const bool cls1 = (i % 2) == 1;
    x[i * 2 + 0] = cls1 ? 0.3f : 0.7f;
    x[i * 2 + 1] = cls1 ? 0.7f : 0.3f;
    y[static_cast<std::size_t>(i)] = cls1 ? 1 : 0;
  }
  PgdConfig cfg;
  cfg.steps = 20;
  Pgd pgd(cfg);
  const auto pt = evaluate_attack(*model, pgd, x, y, 1.0);
  EXPECT_LT(pt.robustness, 0.2);
  EXPECT_GT(pt.mean_linf, 0.0);
}

TEST(Evaluation, RobustnessCurveIsPerEpsilon) {
  auto model = make_linear_model();
  Tensor x(Shape{6, 1, 1, 2});
  std::vector<std::int64_t> y(6, 0);
  for (std::int64_t i = 0; i < 6; ++i) {
    x[i * 2 + 0] = 0.9f;
    x[i * 2 + 1] = 0.1f;
  }
  Pgd pgd;
  const auto curve = robustness_curve(*model, pgd, x, y, {0.0, 0.1, 1.0});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].epsilon, 0.0);
  EXPECT_DOUBLE_EQ(curve[2].epsilon, 1.0);
  // Monotone non-increasing robustness for this trivially-attackable model.
  EXPECT_GE(curve[0].robustness, curve[2].robustness);
}

TEST(Evaluation, RejectsBadInputs) {
  auto model = make_linear_model();
  Pgd pgd;
  EXPECT_THROW(
      evaluate_attack(*model, pgd, Tensor(Shape{2, 1, 1, 2}), {0}, 0.1),
      util::Error);
  EXPECT_THROW(evaluate_attack(*model, pgd, Tensor(Shape{0, 1, 1, 2}), {}, 0.1),
               util::Error);
}

TEST(PgdConfig, StepSizeRules) {
  PgdConfig cfg;
  cfg.rel_stepsize = 0.1;
  EXPECT_DOUBLE_EQ(cfg.step_size(2.0), 0.2);
  cfg.abs_stepsize = 0.05;
  EXPECT_DOUBLE_EQ(cfg.step_size(2.0), 0.05);
  EXPECT_THROW(Pgd(PgdConfig{.steps = 0}), util::Error);
}

}  // namespace
}  // namespace snnsec::attack
