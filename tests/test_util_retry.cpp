// Bounded retry with exponential backoff: delay curve, success-after-
// failures, exhaustion, and non-retryable propagation.
#include <gtest/gtest.h>

#include "util/retry.hpp"

namespace snnsec::util {
namespace {

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay_ms = 0.0;  // tests must not sleep
  return p;
}

TEST(RetryPolicy, DelayCurveIsExponentialAndCapped) {
  RetryPolicy p;
  p.base_delay_ms = 100.0;
  p.backoff_factor = 2.0;
  p.max_delay_ms = 500.0;
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 0.0);  // no sleep before the first attempt
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 100.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 200.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 400.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(4), 500.0);  // capped
  EXPECT_DOUBLE_EQ(p.delay_ms(10), 500.0);
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.backoff_factor = 0.5;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.base_delay_ms = -1.0;
  EXPECT_THROW(p.validate(), Error);
  EXPECT_NO_THROW(RetryPolicy{}.validate());
}

TEST(RetryWithBackoff, SucceedsAfterTransientFailures) {
  int calls = 0;
  const auto outcome = retry_with_backoff(fast_policy(), "flaky", [&](int a) {
    EXPECT_EQ(a, calls);  // attempt index is 0-based and sequential
    ++calls;
    if (calls < 3) SNNSEC_FAIL("transient failure " << calls);
  });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(outcome.errors.size(), 2u);
  EXPECT_NE(outcome.errors[0].find("transient failure 1"), std::string::npos);
}

TEST(RetryWithBackoff, ExhaustionReportsEveryError) {
  const auto outcome = retry_with_backoff(
      fast_policy(), "doomed", [&](int) { SNNSEC_FAIL("always fails"); });
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.errors.size(), 3u);
}

TEST(RetryWithBackoff, NonRetryableErrorPropagatesImmediately) {
  int calls = 0;
  EXPECT_THROW(
      retry_with_backoff(
          fast_policy(), "fatal",
          [&](int) {
            ++calls;
            throw TimeoutError("deadline blown");
          },
          [](const Error& e) {
            return dynamic_cast<const TimeoutError*>(&e) == nullptr;
          }),
      TimeoutError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryWithBackoff, DivergenceAndTimeoutAreDistinctErrorTypes) {
  // The explorer's policy: divergence retries, timeout does not. Both must
  // still be catchable as util::Error.
  EXPECT_THROW(throw DivergenceError("nan"), Error);
  EXPECT_THROW(throw TimeoutError("slow"), Error);
  try {
    throw DivergenceError("nan loss");
  } catch (const TimeoutError&) {
    FAIL() << "DivergenceError must not be a TimeoutError";
  } catch (const DivergenceError&) {
  }
}

}  // namespace
}  // namespace snnsec::util
