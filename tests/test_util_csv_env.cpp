// CSV writer, env helpers, logging level parsing, stopwatch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::util {
namespace {

TEST(CsvWriter, InMemoryRows) {
  CsvWriter csv;
  csv.write_header({"a", "b"});
  csv.write_row({"1", "2"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  CsvWriter csv;
  csv.write_row({"plain", "has,comma", "has\"quote", "multi\nline"});
  EXPECT_EQ(csv.str(),
            "plain,\"has,comma\",\"has\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvWriter, RowBuilderFormatsTypes) {
  CsvWriter csv;
  CsvWriter::Row row;
  row << "x" << 3 << std::int64_t{7} << 2.5;
  csv.write(row);
  EXPECT_EQ(csv.str(), "x,3,7,2.500000\n");
}

TEST(CsvWriter, WritesFileAndCreatesParentDirs) {
  const auto dir = std::filesystem::temp_directory_path() / "snnsec_csv_test";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "sub" / "out.csv").string();
  {
    CsvWriter csv(path);
    csv.write_header({"col"});
    csv.write_row({"v"});
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "col");
  std::getline(is, line);
  EXPECT_EQ(line, "v");
  std::filesystem::remove_all(dir);
}

TEST(Env, EnvOrFallsBack) {
  unsetenv("SNNSEC_TEST_VAR");
  EXPECT_EQ(env_or("SNNSEC_TEST_VAR", "dflt"), "dflt");
  setenv("SNNSEC_TEST_VAR", "set", 1);
  EXPECT_EQ(env_or("SNNSEC_TEST_VAR", "dflt"), "set");
  unsetenv("SNNSEC_TEST_VAR");
}

TEST(Env, EnvIntOrParsesAndFallsBack) {
  unsetenv("SNNSEC_TEST_INT");
  EXPECT_EQ(env_int_or("SNNSEC_TEST_INT", 9), 9);
  setenv("SNNSEC_TEST_INT", "123", 1);
  EXPECT_EQ(env_int_or("SNNSEC_TEST_INT", 9), 123);
  setenv("SNNSEC_TEST_INT", "junk", 1);
  EXPECT_EQ(env_int_or("SNNSEC_TEST_INT", 9), 9);
  unsetenv("SNNSEC_TEST_INT");
}

TEST(Env, FullProfileTruthyValues) {
  unsetenv("SNNSEC_FULL");
  EXPECT_FALSE(full_profile_enabled());
  setenv("SNNSEC_FULL", "1", 1);
  EXPECT_TRUE(full_profile_enabled());
  setenv("SNNSEC_FULL", "0", 1);
  EXPECT_FALSE(full_profile_enabled());
  setenv("SNNSEC_FULL", "true", 1);
  EXPECT_TRUE(full_profile_enabled());
  unsetenv("SNNSEC_FULL");
}

TEST(Env, MasterSeedOverride) {
  unsetenv("SNNSEC_SEED");
  EXPECT_EQ(master_seed(42), 42u);
  setenv("SNNSEC_SEED", "777", 1);
  EXPECT_EQ(master_seed(42), 777u);
  unsetenv("SNNSEC_SEED");
}

TEST(Logger, LevelParsing) {
  Logger& log = Logger::instance();
  const LogLevel original = log.level();
  EXPECT_TRUE(log.set_level("debug"));
  EXPECT_EQ(log.level(), LogLevel::kDebug);
  EXPECT_TRUE(log.set_level("WARN"));
  EXPECT_EQ(log.level(), LogLevel::kWarn);
  EXPECT_FALSE(log.set_level("bogus"));
  EXPECT_EQ(log.level(), LogLevel::kWarn);  // unchanged
  log.set_level(original);
}

TEST(Logger, EnabledRespectsThreshold) {
  Logger& log = Logger::instance();
  const LogLevel original = log.level();
  log.set_level(LogLevel::kWarn);
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(original);
}

TEST(Stopwatch, TimeAdvancesAndResets) {
  Stopwatch w;
  const double t0 = w.seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), t0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
  EXPECT_FALSE(w.pretty().empty());
}

}  // namespace
}  // namespace snnsec::util
