// Spike-activity probes: membrane-histogram layout, LifLayer activity
// stats, firing-rate monotonicity in V_th and network-level collection.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_lenet.hpp"

namespace snnsec::obs {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(MembraneHistSpec, IndexClampsAndCovers) {
  MembraneHistSpec spec;  // [-1, 3), 16 buckets
  EXPECT_EQ(spec.index(-100.0), 0);
  EXPECT_EQ(spec.index(spec.lo), 0);
  EXPECT_EQ(spec.index(100.0), spec.buckets - 1);
  EXPECT_EQ(spec.index(spec.hi), spec.buckets - 1);
  // Every bucket's lower edge maps back into that bucket.
  for (int i = 0; i < spec.buckets; ++i)
    EXPECT_EQ(spec.index(spec.bucket_lo(i) + 1e-9), i);
  EXPECT_DOUBLE_EQ(spec.bucket_lo(0), spec.lo);
}

// One probed forward on a driven LIF population and sanity of every field.
TEST(LifLayerProbe, ActivityStatsAreConsistent) {
  const std::int64_t t_steps = 16, n = 2, f = 8;
  snn::LifParameters params;
  snn::LifLayer layer(t_steps, params, snn::Surrogate{});
  layer.set_probe(true);
  EXPECT_TRUE(layer.probe_armed());

  // Mixed drive: half the features get strong input, half none, so the
  // population has both firing and silent neurons.
  Tensor x(Shape{t_steps * n, f});
  for (std::int64_t r = 0; r < t_steps * n; ++r)
    for (std::int64_t c = 0; c < f; ++c) x[r * f + c] = c < f / 2 ? 2.0f : 0.0f;
  layer.forward(x, nn::Mode::kEval);
  layer.set_probe(false);

  const ActivityStats& s = layer.last_activity();
  EXPECT_EQ(s.neuron_steps, t_steps * n * f);
  EXPECT_EQ(s.neurons, n * f);
  EXPECT_GT(s.spike_count, 0);
  EXPECT_LE(s.spike_count, s.neuron_steps);
  EXPECT_NEAR(s.firing_rate,
              static_cast<double>(s.spike_count) /
                  static_cast<double>(s.neuron_steps),
              1e-6);
  // Undriven features never fire; driven ones do.
  EXPECT_NEAR(s.silent_fraction, 0.5, 1e-9);
  EXPECT_GE(s.saturated_fraction, 0.0);
  EXPECT_LE(s.saturated_fraction, 1.0 - s.silent_fraction);
  // Histogram covers every membrane sample.
  const std::int64_t hist_total =
      std::accumulate(s.v_hist.begin(), s.v_hist.end(), std::int64_t{0});
  EXPECT_EQ(hist_total, s.neuron_steps);
  EXPECT_LE(s.v_min, s.v_mean);
  EXPECT_GE(s.v_max, s.v_mean);
  EXPECT_FALSE(s.summary().empty());
}

TEST(LifLayerProbe, DisarmedForwardSkipsCollection) {
  snn::LifParameters params;
  snn::LifLayer layer(4, params, snn::Surrogate{});
  Tensor x(Shape{4, 3}, 2.0f);
  layer.forward(x, nn::Mode::kEval);
  EXPECT_EQ(layer.last_activity().neuron_steps, 0);  // never filled
}

// The paper's core mechanism: raising V_th can only suppress spikes, so
// the probed firing rate must be non-increasing in V_th.
TEST(LifLayerProbe, FiringRateMonotoneInVth) {
  const std::int64_t t_steps = 16, n = 3, f = 6;
  // Drive is constant over time per (sample, feature) neuron so the
  // classic monotone f-I relationship applies exactly.
  Tensor x(Shape{t_steps * n, f});
  for (std::int64_t r = 0; r < t_steps * n; ++r)
    for (std::int64_t c = 0; c < f; ++c)
      x[r * f + c] =
          0.5f + 0.25f * static_cast<float>(((r % n) * f + c) % 5);

  double prev_rate = 1.0;
  bool any_fired = false;
  for (const float v_th : {0.5f, 1.0f, 1.5f, 2.5f}) {
    snn::LifParameters params;
    params.v_th = v_th;
    snn::LifLayer layer(t_steps, params, snn::Surrogate{});
    layer.set_probe(true);
    layer.forward(x, nn::Mode::kEval);
    const ActivityStats& s = layer.last_activity();
    EXPECT_LE(s.firing_rate, prev_rate + 1e-12)
        << "firing rate increased when V_th rose to " << v_th;
    EXPECT_GE(s.silent_fraction, 0.0);
    prev_rate = s.firing_rate;
    any_fired = any_fired || s.spike_count > 0;
  }
  EXPECT_TRUE(any_fired) << "drive too weak to excite any threshold";
}

TEST(SpikingClassifierProbe, CollectActivityLabelsLayers) {
  nn::LenetSpec spec = nn::LenetSpec{}.scaled(0.25);
  spec.image_size = 8;
  snn::SnnConfig cfg;
  cfg.time_steps = 5;
  util::Rng rng(7);
  auto model = snn::build_spiking_lenet(spec, cfg, rng);

  Tensor x(Shape{2, 1, 8, 8}, 0.8f);
  const std::vector<ActivityStats> acts = model->collect_activity(x);
  ASSERT_FALSE(acts.empty());
  for (std::size_t i = 0; i < acts.size(); ++i) {
    EXPECT_EQ(acts[i].layer, "lif" + std::to_string(i));
    EXPECT_GT(acts[i].neuron_steps, 0);
    EXPECT_GE(acts[i].firing_rate, 0.0);
    EXPECT_LE(acts[i].firing_rate, 1.0);
  }
  // Probes are disarmed again: a further forward must not touch stats.
  const Tensor logits = model->logits(x);
  EXPECT_EQ(logits.dim(0), 2);
}

TEST(RecordActivity, PublishesSeries) {
  ActivityStats s;
  s.layer = "lif_test";
  s.firing_rate = 0.25;
  s.spike_count = 10;
  s.neuron_steps = 40;
  s.silent_fraction = 0.5;
  record_activity({s}, {{"v_th", "1.0"}});
  Registry& reg = Registry::instance();
  bool saw_gauge = false, saw_counter = false;
  for (const MetricSnapshot& m : reg.snapshot()) {
    if (m.name == "snn.firing_rate" && !m.labels.empty() &&
        m.labels[0].second == "lif_test") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(m.value, 0.25);
    }
    if (m.name == "snn.spikes" && !m.labels.empty() &&
        m.labels[0].second == "lif_test") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(m.value, 10.0);
    }
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace snnsec::obs
