// Tensor construction, access, reshapes, in-place helpers.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(Tensor, ZerosOnesFull) {
  EXPECT_FLOAT_EQ(Tensor::zeros(Shape{3})[1], 0.0f);
  EXPECT_FLOAT_EQ(Tensor::ones(Shape{3})[2], 1.0f);
  EXPECT_FLOAT_EQ(Tensor::full(Shape{2, 2}, -2.5f)[3], -2.5f);
  EXPECT_FLOAT_EQ(Tensor::scalar(7.0f)[0], 7.0f);
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3}), util::Error);
}

TEST(Tensor, Arange) {
  const Tensor t = Tensor::arange(4, 1.0f, 0.5f);
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(t[3], 2.5f);
  EXPECT_EQ(Tensor::arange(0).numel(), 0);
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  Tensor t = Tensor::from_vector(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
  t.at({1, 2}) = 42.0f;
  EXPECT_FLOAT_EQ(t[5], 42.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at({2, 0}), util::Error);
  EXPECT_THROW(t.at({0, 3}), util::Error);
  EXPECT_THROW(t.at({0}), util::Error);  // rank mismatch
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  const Tensor t = Tensor::arange(6);
  const Tensor r = t.reshaped(Shape{2, 3});
  EXPECT_EQ(r.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(r.at({1, 2}), 5.0f);
  EXPECT_THROW(t.reshaped(Shape{4}), util::Error);
}

TEST(Tensor, RvalueReshapeMovesBuffer) {
  Tensor t = Tensor::arange(6);
  const float* before = t.data();
  Tensor r = std::move(t).reshaped(Shape{3, 2});
  EXPECT_EQ(r.data(), before);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a.mul_(b);
  EXPECT_FLOAT_EQ(a[0], 10.0f);
  a.add_scalar_(1.0f);
  EXPECT_FLOAT_EQ(a[0], 11.0f);
  a.mul_scalar_(2.0f);
  EXPECT_FLOAT_EQ(a[0], 22.0f);
  a.axpy_(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 27.0f);
  a.zero_();
  EXPECT_FLOAT_EQ(a[1], 0.0f);
}

TEST(Tensor, InPlaceShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a.add_(b), util::Error);
  EXPECT_THROW(a.sub_(b), util::Error);
  EXPECT_THROW(a.mul_(b), util::Error);
  EXPECT_THROW(a.axpy_(1.0f, b), util::Error);
}

TEST(Tensor, Clamp) {
  Tensor a = Tensor::from_vector(Shape{4}, {-2, 0.5, 2, 1});
  a.clamp_(0.0f, 1.0f);
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  EXPECT_FLOAT_EQ(a[1], 0.5f);
  EXPECT_FLOAT_EQ(a[2], 1.0f);
  EXPECT_THROW(a.clamp_(1.0f, 0.0f), util::Error);
}

TEST(Tensor, AllClose) {
  const Tensor a = Tensor::from_vector(Shape{2}, {1.0f, 2.0f});
  Tensor b = a;
  EXPECT_TRUE(a.allclose(b));
  b[1] += 1e-7f;
  EXPECT_TRUE(a.allclose(b, 1e-5f));
  b[1] += 1.0f;
  EXPECT_FALSE(a.allclose(b, 1e-5f));
  EXPECT_FALSE(a.allclose(Tensor(Shape{3})));
}

TEST(Tensor, CloneIsDeep) {
  Tensor a = Tensor::ones(Shape{2});
  Tensor b = a.clone();
  b[0] = 5.0f;
  EXPECT_FLOAT_EQ(a[0], 1.0f);
}

TEST(Tensor, RandomFactoriesDeterministic) {
  util::Rng r1(5), r2(5);
  const Tensor a = Tensor::randn(Shape{100}, r1);
  const Tensor b = Tensor::randn(Shape{100}, r2);
  EXPECT_TRUE(a.allclose(b, 0.0f));
  util::Rng r3(5);
  const Tensor u = Tensor::rand_uniform(Shape{1000}, r3, 2.0f, 3.0f);
  for (std::int64_t i = 0; i < u.numel(); ++i) {
    EXPECT_GE(u[i], 2.0f);
    EXPECT_LT(u[i], 3.0f);
  }
  util::Rng r4(5);
  const Tensor z = Tensor::bernoulli(Shape{100}, r4, 0.5);
  for (std::int64_t i = 0; i < z.numel(); ++i)
    // NOLINTNEXTLINE(snnsec-float-eq): bernoulli emits exactly 0 or 1 by contract
    EXPECT_TRUE(z[i] == 0.0f || z[i] == 1.0f);
}

TEST(Tensor, ToStringTruncates) {
  const Tensor t = Tensor::arange(20);
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[20]"), std::string::npos);
}

}  // namespace
}  // namespace snnsec::tensor
