// End-to-end integration: the full pipeline at miniature scale —
// data -> train CNN & SNN -> white-box attack -> compare.
#include <gtest/gtest.h>

#include "attacks/evaluation.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/noise.hpp"
#include "core/baseline.hpp"
#include "core/explorer.hpp"
#include "core/experiment_config.hpp"
#include "data/provider.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"

namespace snnsec {
namespace {

using tensor::Tensor;

struct Pipeline {
  core::ExplorationConfig cfg;
  data::DataBundle data;
};

Pipeline make_pipeline() {
  core::ExplorationConfig cfg;
  cfg.v_th_grid = {1.0};
  cfg.t_grid = {16};
  cfg.eps_grid = {0.1};
  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.train.epochs = 5;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = 400;
  cfg.data.test_n = 80;
  cfg.data.image_size = 16;
  cfg.data.force_synthetic = true;
  cfg.pgd.steps = 5;
  cfg.pgd.rel_stepsize = 0.2;
  return {cfg, data::load_digits(cfg.data)};
}

TEST(Integration, CnnBaselineLearnsTheDigits) {
  Pipeline p = make_pipeline();
  const auto baseline = core::train_cnn_baseline(p.cfg, p.data);
  EXPECT_GT(baseline.clean_accuracy, 0.65)
      << "CNN must learn the synthetic digits well above chance";
}

TEST(Integration, SnnLearnsAboveChanceAndAttackDegradesIt) {
  Pipeline p = make_pipeline();
  core::RobustnessExplorer explorer(p.cfg);
  auto cell = explorer.train_cell(1.0, 16, p.data);
  EXPECT_GT(cell.clean_accuracy, 0.4) << "SNN must learn well above chance";

  // White-box PGD at a moderate budget must strictly reduce accuracy.
  attack::Pgd pgd(p.cfg.pgd);
  const auto test = p.data.test.take(40);
  const auto pt = attack::evaluate_attack(*cell.model, pgd, test.images,
                                          test.labels, 0.15);
  const double clean_sub =
      nn::accuracy(*cell.model, test.images, test.labels);
  EXPECT_LT(pt.robustness, clean_sub);
  EXPECT_GT(pt.mean_linf, 0.0);
}

TEST(Integration, RobustnessIsMonotoneDecreasingInEpsilonRoughly) {
  Pipeline p = make_pipeline();
  const auto baseline = core::train_cnn_baseline(p.cfg, p.data);
  attack::Pgd pgd(p.cfg.pgd);
  const auto test = p.data.test.take(40);
  const auto curve = attack::robustness_curve(
      *baseline.model, pgd, test.images, test.labels, {0.0, 0.1, 0.4});
  ASSERT_EQ(curve.size(), 3u);
  // Allow small non-monotonicity from random starts, but the ends must
  // order correctly.
  EXPECT_GT(curve[0].robustness, curve[2].robustness);
  EXPECT_GE(curve[0].robustness, curve[1].robustness - 0.05);
}

TEST(Integration, FgsmWeakerOrEqualToPgd) {
  Pipeline p = make_pipeline();
  const auto baseline = core::train_cnn_baseline(p.cfg, p.data);
  const auto test = p.data.test.take(40);
  attack::Fgsm fgsm;
  attack::PgdConfig pcfg = p.cfg.pgd;
  pcfg.steps = 10;
  attack::Pgd pgd(pcfg);
  const auto pt_f = attack::evaluate_attack(*baseline.model, fgsm,
                                            test.images, test.labels, 0.15);
  const auto pt_p = attack::evaluate_attack(*baseline.model, pgd,
                                            test.images, test.labels, 0.15);
  EXPECT_LE(pt_p.robustness, pt_f.robustness + 0.1)
      << "iterated PGD should fool at least as often as single-step FGSM";
}

TEST(Integration, WhiteBoxGradientBeatsRandomNoise) {
  // The defining property of a *white-box* attack: at equal budget it must
  // outperform budget-matched random noise.
  Pipeline p = make_pipeline();
  const auto baseline = core::train_cnn_baseline(p.cfg, p.data);
  const auto test = p.data.test.take(40);
  attack::Pgd pgd(p.cfg.pgd);
  attack::UniformNoise noise;
  const double eps = 0.15;
  const auto pt_pgd = attack::evaluate_attack(*baseline.model, pgd,
                                              test.images, test.labels, eps);
  const auto pt_noise = attack::evaluate_attack(
      *baseline.model, noise, test.images, test.labels, eps);
  EXPECT_LT(pt_pgd.robustness, pt_noise.robustness);
}

TEST(Integration, SnnWhiteBoxGradientIsUseful) {
  // Same property for the SNN: surrogate-gradient PGD must beat noise,
  // demonstrating the attack path through the unrolled time window works.
  Pipeline p = make_pipeline();
  core::RobustnessExplorer explorer(p.cfg);
  auto cell = explorer.train_cell(1.0, 16, p.data);
  const auto test = p.data.test.take(32);
  attack::Pgd pgd(p.cfg.pgd);
  attack::UniformNoise noise;
  const double eps = 0.2;
  const auto pt_pgd = attack::evaluate_attack(*cell.model, pgd, test.images,
                                              test.labels, eps);
  const auto pt_noise = attack::evaluate_attack(*cell.model, noise,
                                                test.images, test.labels, eps);
  EXPECT_LE(pt_pgd.robustness, pt_noise.robustness);
}

TEST(Integration, AdversarialExamplesStayValidImages) {
  Pipeline p = make_pipeline();
  const auto baseline = core::train_cnn_baseline(p.cfg, p.data);
  const auto test = p.data.test.take(16);
  attack::Pgd pgd(p.cfg.pgd);
  attack::AttackBudget budget;
  budget.epsilon = 0.3;
  const Tensor adv =
      pgd.perturb(*baseline.model, test.images, test.labels, budget);
  EXPECT_GE(tensor::min_value(adv), 0.0f);
  EXPECT_LE(tensor::max_value(adv), 1.0f);
  EXPECT_LE(tensor::linf_distance(adv, test.images), 0.3f + 1e-5f);
}

}  // namespace
}  // namespace snnsec
