// Workspace arena semantics: pointer stability, scope rewind, grow-only
// capacity, per-thread isolation.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::util {
namespace {

TEST(Workspace, AllocationsAreAlignedAndDisjoint) {
  Workspace ws;
  float* a = ws.alloc<float>(1000);
  float* b = ws.alloc<float>(1000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Writing through one must not clobber the other.
  for (int i = 0; i < 1000; ++i) a[i] = 1.0f;
  for (int i = 0; i < 1000; ++i) b[i] = 2.0f;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a[i], 1.0f);
    EXPECT_EQ(b[i], 2.0f);
  }
}

TEST(Workspace, ScopeRewindReusesMemoryWithoutNewBlocks) {
  Workspace ws;
  float* first = nullptr;
  {
    Workspace::Scope scope(ws);
    first = ws.alloc<float>(4096);
  }
  const std::size_t blocks_after_warmup = ws.block_allocations();
  for (int round = 0; round < 100; ++round) {
    Workspace::Scope scope(ws);
    float* p = ws.alloc<float>(4096);
    EXPECT_EQ(p, first);  // same bytes handed back every round
  }
  EXPECT_EQ(ws.block_allocations(), blocks_after_warmup);
}

TEST(Workspace, GrowsAcrossBlocksWithStablePointers) {
  Workspace ws;
  Workspace::Scope scope(ws);
  // Force several block appends; earlier pointers must stay valid and keep
  // their contents (blocks never move).
  std::vector<float*> ptrs;
  constexpr std::size_t kChunk = 1 << 18;  // 1 MiB of floats per alloc
  for (int i = 0; i < 12; ++i) {
    float* p = ws.alloc<float>(kChunk);
    p[0] = static_cast<float>(i);
    p[kChunk - 1] = static_cast<float>(100 + i);
    ptrs.push_back(p);
  }
  EXPECT_GE(ws.block_allocations(), 2u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][0], static_cast<float>(i));
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][kChunk - 1],
              static_cast<float>(100 + i));
  }
}

TEST(Workspace, RecurringOversizedAllocationReusesGrownBlock) {
  // Regression: a per-round request too big for the early blocks must land
  // in the block a previous round grew for it. A version that only checked
  // the immediately-next block appended (and zeroed) a fresh block every
  // round — an unbounded steady-state leak that took a training loop from
  // ~100 MB to tens of GB.
  Workspace ws;
  constexpr std::size_t kBig = (4u << 20) / sizeof(float);  // 4 MiB > kMinBlock
  {
    Workspace::Scope scope(ws);
    ws.alloc<float>(64);    // occupies the small head block
    ws.alloc<float>(kBig);  // forces growth past it
  }
  const std::size_t blocks_after_warmup = ws.block_allocations();
  const std::size_t capacity_after_warmup = ws.capacity();
  for (int round = 0; round < 50; ++round) {
    Workspace::Scope scope(ws);
    ws.alloc<float>(64);
    float* p = ws.alloc<float>(kBig);
    p[0] = p[kBig - 1] = static_cast<float>(round);
  }
  EXPECT_EQ(ws.block_allocations(), blocks_after_warmup);
  EXPECT_EQ(ws.capacity(), capacity_after_warmup);
}

TEST(Workspace, NestedScopesRewindInStackOrder) {
  Workspace ws;
  Workspace::Scope outer(ws);
  float* a = ws.alloc<float>(64);
  a[0] = 42.0f;
  {
    Workspace::Scope inner(ws);
    float* b = ws.alloc<float>(64);
    b[0] = 7.0f;
  }
  // Inner scope released its allocation; the next alloc reuses those bytes
  // while the outer allocation is untouched.
  float* c = ws.alloc<float>(64);
  (void)c;
  EXPECT_EQ(a[0], 42.0f);
}

TEST(Workspace, LocalIsPerThread) {
  Workspace* main_ws = &Workspace::local();
  Workspace* worker_ws = nullptr;
  std::thread t([&] { worker_ws = &Workspace::local(); });
  t.join();
  ASSERT_NE(worker_ws, nullptr);
  EXPECT_NE(main_ws, worker_ws);
}

TEST(Workspace, PoolWorkersAllocateConcurrentlyWithoutAliasing) {
  // Each parallel chunk fills its own arena allocation with a chunk-unique
  // value; any cross-thread aliasing would show up as torn contents.
  parallel_for_chunked(0, 64, [](std::int64_t lo, std::int64_t) {
    Workspace& ws = Workspace::local();
    Workspace::Scope scope(ws);
    const float tag = static_cast<float>(lo);
    float* p = ws.alloc<float>(20000);
    for (int i = 0; i < 20000; ++i) p[i] = tag;
    for (int i = 0; i < 20000; ++i) ASSERT_EQ(p[i], tag);
  });
}

TEST(Workspace, RejectsBadAlignment) {
  Workspace ws;
  EXPECT_THROW(ws.allocate(16, 3), Error);
  EXPECT_THROW(ws.allocate(16, 0), Error);
}

}  // namespace
}  // namespace snnsec::util
