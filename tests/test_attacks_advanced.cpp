// Advanced attacks: output_gradient primitive, MI-FGSM, DeepFool.
#include <gtest/gtest.h>

#include "attacks/deepfool.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/pgd.hpp"
#include "nn/activations.hpp"
#include "nn/feedforward.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"

namespace snnsec::attack {
namespace {

using nn::FeedforwardClassifier;
using tensor::Shape;
using tensor::Tensor;

/// logit0 = x0, logit1 = x1 — exact per-class gradients are one-hot.
std::unique_ptr<FeedforwardClassifier> make_identity_model() {
  util::Rng rng(1);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  auto lin = std::make_unique<nn::Linear>(2, 2, rng, /*bias=*/false);
  lin->weight().value = Tensor::from_vector(Shape{2, 2}, {1, 0, 0, 1});
  seq->add(std::move(lin));
  return std::make_unique<FeedforwardClassifier>(std::move(seq), 2, "id");
}

TEST(OutputGradient, MatchesKnownJacobianRows) {
  auto model = make_identity_model();
  const Tensor x = Tensor::full(Shape{2, 1, 1, 2}, 0.5f);
  // Cotangent selecting class 0 for sample 0 and class 1 for sample 1.
  Tensor cot(Shape{2, 2});
  cot[0] = 1.0f;  // sample 0, class 0
  cot[3] = 1.0f;  // sample 1, class 1
  const Tensor g = model->output_gradient(x, cot);
  EXPECT_FLOAT_EQ(g[0], 1.0f);  // d logit0 / d x0
  EXPECT_FLOAT_EQ(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[3], 1.0f);  // d logit1 / d x1
}

TEST(OutputGradient, CotangentShapeChecked) {
  auto model = make_identity_model();
  const Tensor x(Shape{1, 1, 1, 2});
  EXPECT_THROW(model->output_gradient(x, Tensor(Shape{1, 3})), util::Error);
}

TEST(OutputGradient, LinearInCotangent) {
  auto model = make_identity_model();
  util::Rng rng(2);
  const Tensor x = Tensor::rand_uniform(Shape{3, 1, 1, 2}, rng);
  const Tensor c1 = Tensor::randn(Shape{3, 2}, rng);
  const Tensor c2 = Tensor::randn(Shape{3, 2}, rng);
  Tensor csum = c1;
  csum.add_(c2);
  Tensor gsum = model->output_gradient(x, c1);
  gsum.add_(model->output_gradient(x, c2));
  EXPECT_TRUE(model->output_gradient(x, csum).allclose(gsum, 1e-5f));
}

TEST(OutputGradient, WorksOnSpikingNetwork) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  snn::SnnConfig cfg;
  cfg.time_steps = 6;
  util::Rng rng(3);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  util::Rng drng(4);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  const Tensor cot = Tensor::ones(Shape{2, 10});
  const Tensor g = model->output_gradient(x, cot);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(MiFgsm, RespectsBudgetAndBox) {
  auto model = make_identity_model();
  util::Rng rng(5);
  const Tensor x = Tensor::rand_uniform(Shape{6, 1, 1, 2}, rng);
  std::vector<std::int64_t> labels(6, 0);
  MiFgsm atk;
  AttackBudget budget;
  budget.epsilon = 0.12;
  const Tensor adv = atk.perturb(*model, x, labels, budget);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.12f + 1e-6f);
  EXPECT_GE(tensor::min_value(adv), 0.0f);
  EXPECT_LE(tensor::max_value(adv), 1.0f);
}

TEST(MiFgsm, ZeroEpsilonIsIdentity) {
  auto model = make_identity_model();
  const Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 0.4f);
  MiFgsm atk;
  AttackBudget budget;
  budget.epsilon = 0.0;
  EXPECT_TRUE(atk.perturb(*model, x, {0}, budget).allclose(x, 0.0f));
}

TEST(MiFgsm, MovesAgainstTrueClass) {
  auto model = make_identity_model();
  const Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 0.5f);
  MiFgsmConfig cfg;
  cfg.steps = 5;
  MiFgsm atk(cfg);
  AttackBudget budget;
  budget.epsilon = 0.1;
  const Tensor adv = atk.perturb(*model, x, {0}, budget);
  EXPECT_LT(adv[0], 0.5f);  // true-class logit pushed down
  EXPECT_GT(adv[1], 0.5f);
}

TEST(MiFgsm, InvalidConfigThrows) {
  EXPECT_THROW(MiFgsm(MiFgsmConfig{.steps = 0}), util::Error);
  EXPECT_THROW(MiFgsm(MiFgsmConfig{.steps = 5, .decay = -1.0}), util::Error);
}

TEST(DeepFool, CrossesNearestBoundaryOnLinearModel) {
  // For logit0 = x0, logit1 = x1 and label 0 at (0.6, 0.4), the nearest
  // boundary is x0 = x1; DeepFool should land just past it and flip the
  // prediction with a small perturbation.
  auto model = make_identity_model();
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 0.6f;
  x[1] = 0.4f;
  DeepFool atk;
  AttackBudget budget;
  budget.epsilon = 1.0;  // generous clip: measure the native perturbation
  const Tensor adv = atk.perturb(*model, x, {0}, budget);
  const auto pred = model->predict(adv);
  EXPECT_EQ(pred[0], 1) << "DeepFool must flip the label";
  // Minimal L2 to the boundary is |0.6-0.4|/sqrt(2) ≈ 0.141; with the
  // small overshoot the perturbation stays close to that.
  EXPECT_LT(atk.last_mean_l2(), 0.3);
  EXPECT_GT(atk.last_mean_l2(), 0.1);
}

TEST(DeepFool, AlreadyMisclassifiedIsLeftAlone) {
  auto model = make_identity_model();
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 0.2f;
  x[1] = 0.8f;  // predicted class 1
  DeepFool atk;
  AttackBudget budget;
  budget.epsilon = 1.0;
  const Tensor adv = atk.perturb(*model, x, {0}, budget);  // label 0 wrong
  EXPECT_TRUE(adv.allclose(x, 1e-6f));
  EXPECT_NEAR(atk.last_mean_l2(), 0.0, 1e-9);
}

TEST(DeepFool, RespectsFinalClip) {
  auto model = make_identity_model();
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 0.9f;
  x[1] = 0.1f;
  DeepFool atk;
  AttackBudget budget;
  budget.epsilon = 0.05;  // much smaller than the boundary distance
  const Tensor adv = atk.perturb(*model, x, {0}, budget);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.05f + 1e-6f);
}

TEST(DeepFool, FoolsATrainedMlpWithSmallPerturbations) {
  util::Rng rng(6);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(2, 16, rng);
  seq->emplace<nn::Tanh>();
  seq->emplace<nn::Linear>(16, 3, rng);
  FeedforwardClassifier model(std::move(seq), 3, "mlp3");

  // Three Gaussian blobs.
  Tensor x(Shape{90, 1, 1, 2});
  std::vector<std::int64_t> y(90);
  util::Rng drng(7);
  const double cx[3] = {0.2, 0.8, 0.5};
  const double cy[3] = {0.2, 0.2, 0.8};
  for (std::int64_t i = 0; i < 90; ++i) {
    const std::int64_t c = i % 3;
    x[i * 2 + 0] = static_cast<float>(drng.normal(cx[c], 0.05));
    x[i * 2 + 1] = static_cast<float>(drng.normal(cy[c], 0.05));
    y[static_cast<std::size_t>(i)] = c;
  }
  nn::TrainConfig tcfg;
  tcfg.epochs = 40;
  nn::Trainer(tcfg).fit(model, x, y);
  ASSERT_GT(nn::accuracy(model, x, y), 0.9);

  DeepFool atk;
  AttackBudget budget;
  budget.epsilon = 1.0;
  const Tensor adv = atk.perturb(model, x, y, budget);
  const auto pred = model.predict(adv);
  std::int64_t fooled = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] != y[i]) ++fooled;
  EXPECT_GT(fooled, 70) << "DeepFool should fool most samples";
  EXPECT_LT(atk.last_mean_l2(), 0.5) << "with small perturbations";
}

TEST(DeepFool, InvalidConfigThrows) {
  EXPECT_THROW(DeepFool(DeepFoolConfig{.max_iterations = 0}), util::Error);
  EXPECT_THROW(
      DeepFool(DeepFoolConfig{.max_iterations = 5, .overshoot = -0.1}),
      util::Error);
}

TEST(TargetedPgd, DrivesPredictionTowardTarget) {
  auto model = make_identity_model();
  // Start clearly in class 0; target class 1.
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 0.7f;
  x[1] = 0.3f;
  PgdConfig cfg;
  cfg.steps = 10;
  cfg.targeted = true;
  cfg.rel_stepsize = 0.2;
  cfg.random_start = false;
  Pgd pgd(cfg);
  AttackBudget budget;
  budget.epsilon = 0.25;
  const Tensor adv = pgd.perturb(*model, x, {1}, budget);  // labels = targets
  EXPECT_EQ(model->predict(adv)[0], 1);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.25f + 1e-6f);
}

TEST(TargetedPgd, OppositeDirectionOfUntargeted) {
  auto model = make_identity_model();
  const Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 0.5f);
  PgdConfig cfg;
  cfg.steps = 1;
  cfg.random_start = false;
  cfg.abs_stepsize = 0.1;
  AttackBudget budget;
  budget.epsilon = 0.1;
  Pgd untargeted(cfg);
  cfg.targeted = true;
  Pgd targeted(cfg);
  // Same label argument: untargeted moves AWAY from class 0, targeted
  // moves TOWARD it — exactly opposite single steps.
  const Tensor away = untargeted.perturb(*model, x, {0}, budget);
  const Tensor toward = targeted.perturb(*model, x, {0}, budget);
  EXPECT_LT(away[0], x[0]);
  EXPECT_GT(toward[0], x[0]);
  EXPECT_NEAR(away[0] + toward[0], 2.0f * x[0], 1e-6f);
}

TEST(TargetedPgd, NameMentionsTargeted) {
  PgdConfig cfg;
  cfg.targeted = true;
  EXPECT_NE(Pgd(cfg).name().find("targeted"), std::string::npos);
}

}  // namespace
}  // namespace snnsec::attack
