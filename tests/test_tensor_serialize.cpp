// Tensor / archive binary serialization round-trips and corruption checks.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "tensor/serialize.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {
namespace {

TEST(Serialize, TensorRoundTripInMemory) {
  util::Rng rng(1);
  const Tensor t = Tensor::randn(Shape{3, 4, 5}, rng);
  std::stringstream ss;
  save_tensor(ss, t);
  const Tensor back = load_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(back.allclose(t, 0.0f));
}

TEST(Serialize, ScalarTensorRoundTrip) {
  const Tensor t = Tensor::scalar(-3.25f);
  std::stringstream ss;
  save_tensor(ss, t);
  const Tensor back = load_tensor(ss);
  EXPECT_EQ(back.ndim(), 0);
  EXPECT_FLOAT_EQ(back[0], -3.25f);
}

TEST(Serialize, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "snnsec_t.snnt").string();
  util::Rng rng(2);
  const Tensor t = Tensor::randn(Shape{7}, rng);
  save_tensor_file(path, t);
  const Tensor back = load_tensor_file(path);
  EXPECT_TRUE(back.allclose(t, 0.0f));
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "XXXXgarbage data here";
  EXPECT_THROW(load_tensor(ss), util::Error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  util::Rng rng(3);
  const Tensor t = Tensor::randn(Shape{100}, rng);
  std::stringstream ss;
  save_tensor(ss, t);
  std::string s = ss.str();
  s.resize(s.size() / 2);
  std::stringstream half(s);
  EXPECT_THROW(load_tensor(half), util::Error);
}

TEST(Serialize, ArchiveRoundTrip) {
  util::Rng rng(4);
  std::map<std::string, Tensor> items;
  items.emplace("weight", Tensor::randn(Shape{4, 4}, rng));
  items.emplace("bias", Tensor::randn(Shape{4}, rng));
  items.emplace("meta", Tensor::scalar(0.93f));
  std::stringstream ss;
  save_archive(ss, items);
  const auto back = load_archive(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back.at("weight").allclose(items.at("weight"), 0.0f));
  EXPECT_TRUE(back.at("bias").allclose(items.at("bias"), 0.0f));
  EXPECT_FLOAT_EQ(back.at("meta")[0], 0.93f);
}

TEST(Serialize, EmptyArchiveRoundTrip) {
  std::stringstream ss;
  save_archive(ss, {});
  EXPECT_TRUE(load_archive(ss).empty());
}

TEST(Serialize, ArchiveFileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "snnsec_a.snna").string();
  util::Rng rng(5);
  std::map<std::string, Tensor> items;
  items.emplace("x", Tensor::randn(Shape{2, 3}, rng));
  save_archive_file(path, items);
  const auto back = load_archive_file(path);
  EXPECT_TRUE(back.at("x").allclose(items.at("x"), 0.0f));
  std::filesystem::remove(path);
}

TEST(Serialize, ArchiveBadMagicThrows) {
  std::stringstream ss;
  ss << "SNNTnot an archive";
  EXPECT_THROW(load_archive(ss), util::Error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensor_file("/nonexistent/nowhere.snnt"), util::Error);
  EXPECT_THROW(load_archive_file("/nonexistent/nowhere.snna"), util::Error);
}

}  // namespace
}  // namespace snnsec::tensor
