// Fleet wire codec: roundtrip for every frame type, malformed / truncated /
// oversized frame rejection, partial-read reassembly across split syscalls,
// and cross-version rejection.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fleet/wire.hpp"

namespace snnsec::fleet {
namespace {

std::vector<std::uint8_t> encode(FrameType type, std::uint64_t request_id,
                                 std::uint64_t tenant,
                                 std::int64_t deadline_us,
                                 const std::vector<std::uint8_t>& payload,
                                 std::uint8_t flags = 0) {
  std::vector<std::uint8_t> buf(encoded_size(payload.size()));
  const std::size_t n =
      encode_frame(buf.data(), buf.size(), type, flags, request_id, tenant,
                   deadline_us, payload.empty() ? nullptr : payload.data(),
                   payload.size());
  EXPECT_EQ(n, buf.size());
  return buf;
}

TEST(FleetWire, RoundtripAllFrameTypes) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const FrameType types[] = {FrameType::kRequest, FrameType::kResponse,
                             FrameType::kPing, FrameType::kPong,
                             FrameType::kError};
  Decoder dec(1 << 10);
  std::uint64_t id = 100;
  for (const FrameType t : types) {
    const auto buf = encode(t, id, /*tenant=*/7, /*deadline_us=*/2500,
                            payload, /*flags=*/0x11);
    ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
    FrameView f;
    ASSERT_TRUE(dec.next(f));
    EXPECT_EQ(f.type, t);
    EXPECT_EQ(f.flags, 0x11);
    EXPECT_EQ(f.request_id, id);
    EXPECT_EQ(f.tenant, 7U);
    EXPECT_EQ(f.deadline_us, 2500);
    ASSERT_EQ(f.payload_len, payload.size());
    EXPECT_EQ(std::memcmp(f.payload, payload.data(), payload.size()), 0);
    EXPECT_FALSE(dec.next(f));
    EXPECT_EQ(dec.error(), WireError::kNone);
    ++id;
  }
}

TEST(FleetWire, EmptyPayloadRoundtrip) {
  Decoder dec(64);
  const auto buf = encode(FrameType::kPing, 1, 0, 0, {});
  ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
  FrameView f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, FrameType::kPing);
  EXPECT_EQ(f.payload_len, 0U);
}

TEST(FleetWire, RequestPayloadRoundtrip) {
  RequestMeta meta;
  meta.request_id = 42;
  meta.tenant = 9;
  meta.deadline_us = 8000;
  meta.max_steps = 14;
  const std::vector<float> pixels = {0.0F, 0.25F, 0.5F, -1.0F};
  std::vector<std::uint8_t> buf(encoded_size(4 + 4 * pixels.size()));
  const std::size_t n = encode_request(buf.data(), buf.size(), meta,
                                       pixels.data(), pixels.size());
  ASSERT_EQ(n, buf.size());

  Decoder dec(1 << 10);
  ASSERT_TRUE(dec.feed(buf.data(), n));
  FrameView f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, FrameType::kRequest);
  EXPECT_EQ(f.request_id, 42U);
  EXPECT_EQ(f.tenant, 9U);
  EXPECT_EQ(f.deadline_us, 8000);

  std::uint32_t max_steps = 0;
  const std::uint8_t* raw = nullptr;
  std::size_t count = 0;
  ASSERT_TRUE(decode_request_payload(f, max_steps, raw, count));
  EXPECT_EQ(max_steps, 14U);
  ASSERT_EQ(count, pixels.size());
  std::vector<float> got(count);
  std::memcpy(got.data(), raw, 4 * count);
  EXPECT_EQ(got, pixels);
}

TEST(FleetWire, RequestPayloadRejectsShortAndRagged) {
  FrameView f;
  f.type = FrameType::kRequest;
  const std::uint8_t three[3] = {0, 0, 0};
  f.payload = three;
  f.payload_len = 3;  // shorter than the u32 max_steps prefix
  std::uint32_t max_steps = 0;
  const std::uint8_t* raw = nullptr;
  std::size_t count = 0;
  EXPECT_FALSE(decode_request_payload(f, max_steps, raw, count));

  const std::uint8_t ragged[7] = {0};  // 4 + 3: not a whole float32
  f.payload = ragged;
  f.payload_len = 7;
  EXPECT_FALSE(decode_request_payload(f, max_steps, raw, count));
}

TEST(FleetWire, ResponsePayloadRoundtrip) {
  ResponseMeta meta;
  meta.request_id = 77;
  meta.tenant = 3;
  meta.latency_us = 1234;
  meta.status = 2;
  meta.group = 1;
  meta.resp_flags = kRespFlagged | kRespEnsemble;
  meta.pred = 6;
  meta.steps_used = 12;
  meta.batch_size = 4;
  meta.anomaly_score = 1.5F;
  meta.num_scores = 3;
  const float scores[3] = {0.1F, 0.7F, 0.2F};
  std::vector<std::uint8_t> buf(
      encoded_size(kResponsePrefixSize + 4 * meta.num_scores));
  const std::size_t n = encode_response(buf.data(), buf.size(), meta, scores);
  ASSERT_EQ(n, buf.size());

  Decoder dec(1 << 10);
  ASSERT_TRUE(dec.feed(buf.data(), n));
  FrameView f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, FrameType::kResponse);

  ResponseMeta got;
  const std::uint8_t* raw = nullptr;
  ASSERT_TRUE(decode_response_payload(f, got, raw));
  EXPECT_EQ(got.request_id, 77U);
  EXPECT_EQ(got.tenant, 3U);
  EXPECT_EQ(got.latency_us, 1234);
  EXPECT_EQ(got.status, 2);
  EXPECT_EQ(got.group, 1);
  EXPECT_EQ(got.resp_flags, kRespFlagged | kRespEnsemble);
  EXPECT_EQ(got.pred, 6U);
  EXPECT_EQ(got.steps_used, 12U);
  EXPECT_EQ(got.batch_size, 4U);
  EXPECT_FLOAT_EQ(got.anomaly_score, 1.5F);
  ASSERT_EQ(got.num_scores, 3U);
  float fs[3];
  std::memcpy(fs, raw, sizeof(fs));
  EXPECT_FLOAT_EQ(fs[1], 0.7F);
}

TEST(FleetWire, ResponsePayloadRejectsInconsistentScoreCount) {
  ResponseMeta meta;
  meta.num_scores = 8;  // payload will only carry 2 scores
  const float scores[8] = {0};
  std::vector<std::uint8_t> buf(encoded_size(kResponsePrefixSize + 4 * 8));
  ASSERT_EQ(encode_response(buf.data(), buf.size(), meta, scores),
            buf.size());
  buf.resize(buf.size() - 4 * 6);  // truncate the scores...

  FrameView f;
  f.type = FrameType::kResponse;
  f.payload = buf.data() + kWireHeaderSize;
  f.payload_len = buf.size() - kWireHeaderSize;
  ResponseMeta got;
  const std::uint8_t* raw = nullptr;
  EXPECT_FALSE(decode_response_payload(f, got, raw));
}

TEST(FleetWire, EncodeFailsOnSmallBuffer) {
  const std::vector<std::uint8_t> payload(16, 0xAB);
  std::uint8_t dst[32];  // < 40-byte header + payload
  EXPECT_EQ(encode_frame(dst, sizeof(dst), FrameType::kPing, 0, 1, 2, 3,
                         payload.data(), payload.size()),
            0U);
}

TEST(FleetWire, BadMagicIsStickyRejection) {
  auto buf = encode(FrameType::kPing, 1, 2, 3, {9, 9});
  buf[0] = 0x00;
  Decoder dec(64);
  ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kBadMagic);
  // Sticky: further feeds are refused, next keeps failing.
  EXPECT_FALSE(dec.feed(buf.data(), 1));
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kBadMagic);
}

TEST(FleetWire, CrossVersionFrameRejected) {
  auto buf = encode(FrameType::kPing, 1, 2, 3, {9, 9});
  buf[1] = kWireVersion + 1;
  Decoder dec(64);
  ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kBadVersion);
}

TEST(FleetWire, UnknownFrameTypeRejected) {
  auto buf = encode(FrameType::kPing, 1, 2, 3, {});
  buf[2] = 0x7F;
  Decoder dec(64);
  ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kBadType);
}

TEST(FleetWire, OversizedPayloadLengthRejected) {
  auto buf = encode(FrameType::kPing, 1, 2, 3, {1, 2, 3});
  // Rewrite payload_len (bytes 4..7, LE) far past max_payload.
  buf[4] = 0xFF;
  buf[5] = 0xFF;
  buf[6] = 0x00;
  buf[7] = 0x00;
  Decoder dec(/*max_payload=*/64);
  ASSERT_TRUE(dec.feed(buf.data(), std::min<std::size_t>(buf.size(), 40)));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kOversized);
}

TEST(FleetWire, CorruptedPayloadFailsDigest) {
  auto buf = encode(FrameType::kError, 1, 2, 3, {'b', 'a', 'd'});
  buf[kWireHeaderSize] ^= 0x40;  // flip one payload bit
  Decoder dec(64);
  ASSERT_TRUE(dec.feed(buf.data(), buf.size()));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kBadDigest);
}

TEST(FleetWire, TruncatedFrameStaysPendingUntilCompleted) {
  const auto buf = encode(FrameType::kPong, 5, 6, 7, {1, 2, 3, 4});
  Decoder dec(64);
  // Header only: no frame yet, but no error either.
  ASSERT_TRUE(dec.feed(buf.data(), kWireHeaderSize));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), WireError::kNone);
  EXPECT_EQ(dec.buffered(), kWireHeaderSize);
  // Remaining payload arrives: the frame completes.
  ASSERT_TRUE(dec.feed(buf.data() + kWireHeaderSize,
                       buf.size() - kWireHeaderSize));
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, FrameType::kPong);
  EXPECT_EQ(f.payload_len, 4U);
}

TEST(FleetWire, ByteAtATimeReassembly) {
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50, 60};
  const auto buf = encode(FrameType::kRequest, 11, 12, 13, payload);
  Decoder dec(64);
  FrameView f;
  for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
    ASSERT_TRUE(dec.feed(&buf[i], 1));
    ASSERT_FALSE(dec.next(f)) << "frame surfaced early at byte " << i;
    ASSERT_EQ(dec.error(), WireError::kNone);
  }
  ASSERT_TRUE(dec.feed(&buf[buf.size() - 1], 1));
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.request_id, 11U);
  ASSERT_EQ(f.payload_len, payload.size());
  EXPECT_EQ(std::memcmp(f.payload, payload.data(), payload.size()), 0);
}

TEST(FleetWire, MultipleFramesInOneFeed) {
  const auto a = encode(FrameType::kPing, 1, 0, 0, {1});
  const auto b = encode(FrameType::kPong, 2, 0, 0, {2, 2});
  const auto c = encode(FrameType::kError, 3, 0, 0, {'x'});
  std::vector<std::uint8_t> stream;
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());

  Decoder dec(256);
  ASSERT_TRUE(dec.feed(stream.data(), stream.size()));
  FrameView f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.request_id, 1U);
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.request_id, 2U);
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.request_id, 3U);
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.buffered(), 0U);
}

TEST(FleetWire, FeedOverflowIsRejected) {
  Decoder dec(16);
  std::vector<std::uint8_t> junk(dec.free() + 1, 0);
  EXPECT_FALSE(dec.feed(junk.data(), junk.size()));
  EXPECT_EQ(dec.error(), WireError::kOverflow);
}

TEST(FleetWire, ResetClearsErrorAndBufferedBytes) {
  auto bad = encode(FrameType::kPing, 1, 2, 3, {9});
  bad[0] = 0;  // break the magic
  Decoder dec(64);
  ASSERT_TRUE(dec.feed(bad.data(), bad.size()));
  FrameView f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_NE(dec.error(), WireError::kNone);

  dec.reset();
  EXPECT_EQ(dec.error(), WireError::kNone);
  EXPECT_EQ(dec.buffered(), 0U);
  const auto good = encode(FrameType::kPing, 4, 5, 6, {7});
  ASSERT_TRUE(dec.feed(good.data(), good.size()));
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.request_id, 4U);
}

TEST(FleetWire, LongStreamOfFramesCompactsWithoutLoss) {
  // Many frames pushed through a small decoder buffer force repeated
  // compaction; every frame must still surface exactly once, in order.
  Decoder dec(64);
  std::uint64_t next_id = 1;
  FrameView f;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    std::vector<std::uint8_t> payload(i % 32, static_cast<std::uint8_t>(i));
    const auto buf = encode(FrameType::kPing, i, 0, 0, payload);
    std::size_t off = 0;
    while (off < buf.size()) {
      const std::size_t n = std::min(buf.size() - off, dec.free());
      ASSERT_GT(n, 0U);
      ASSERT_TRUE(dec.feed(buf.data() + off, n));
      off += n;
      while (dec.next(f)) {
        ASSERT_EQ(f.request_id, next_id);
        ++next_id;
      }
      ASSERT_EQ(dec.error(), WireError::kNone);
    }
  }
  while (dec.next(f)) {
    ASSERT_EQ(f.request_id, next_id);
    ++next_id;
  }
  EXPECT_EQ(next_id, 501U);
}

}  // namespace
}  // namespace snnsec::fleet
