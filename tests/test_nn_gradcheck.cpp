// Finite-difference gradient checks for every differentiable nn layer and
// for the end-to-end input gradient the attacks consume.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/feedforward.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace snnsec::nn {
namespace {

using snnsec::testutil::check_input_gradient;
using snnsec::testutil::check_parameter_gradients;
using tensor::Shape;
using tensor::Tensor;

TEST(GradCheck, LinearInputAndParams) {
  util::Rng rng(1);
  Linear lin(5, 3, rng);
  util::Rng drng(2);
  const Tensor x = Tensor::randn(Shape{4, 5}, drng);
  util::Rng wrng(3);
  check_input_gradient(lin, x, wrng);
  check_parameter_gradients(lin, x, wrng);
}

TEST(GradCheck, Conv2dInputAndParams) {
  util::Rng rng(4);
  Conv2d conv(Conv2dSpec{2, 3, 3, 1, 1}, rng);
  util::Rng drng(5);
  const Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, drng);
  util::Rng wrng(6);
  check_input_gradient(conv, x, wrng);
  check_parameter_gradients(conv, x, wrng);
}

TEST(GradCheck, Conv2dStridedNoPad) {
  util::Rng rng(7);
  Conv2d conv(Conv2dSpec{1, 2, 3, 2, 0}, rng);
  util::Rng drng(8);
  const Tensor x = Tensor::randn(Shape{2, 1, 7, 7}, drng);
  util::Rng wrng(9);
  check_input_gradient(conv, x, wrng);
  check_parameter_gradients(conv, x, wrng);
}

TEST(GradCheck, AvgPool) {
  AvgPool2d pool(2);
  util::Rng drng(10);
  const Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, drng);
  util::Rng wrng(11);
  check_input_gradient(pool, x, wrng);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  MaxPool2d pool(2);
  // Large separation between elements keeps central differences away from
  // the max's kinks.
  util::Rng drng(12);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, drng);
  x.mul_scalar_(10.0f);
  util::Rng wrng(13);
  check_input_gradient(pool, x, wrng, /*step=*/1e-2, /*tol=*/2e-2);
}

TEST(GradCheck, ReLUAwayFromKink) {
  ReLU relu;
  util::Rng drng(14);
  Tensor x = Tensor::randn(Shape{3, 7}, drng);
  // Push values away from 0 so the finite difference never crosses it.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] += (x[i] >= 0.0f ? 0.5f : -0.5f);
  util::Rng wrng(15);
  check_input_gradient(relu, x, wrng);
}

TEST(GradCheck, SigmoidAndTanh) {
  Sigmoid sig;
  Tanh tanh_layer;
  util::Rng drng(16);
  const Tensor x = Tensor::randn(Shape{3, 5}, drng);
  util::Rng wrng(17);
  check_input_gradient(sig, x, wrng);
  check_input_gradient(tanh_layer, x, wrng);
}

TEST(GradCheck, ScaleAndFlatten) {
  Scale s(2.5f);
  Flatten f;
  util::Rng drng(18);
  const Tensor x = Tensor::randn(Shape{2, 3, 2, 2}, drng);
  util::Rng wrng(19);
  check_input_gradient(s, x, wrng);
  check_input_gradient(f, x, wrng);
}

TEST(GradCheck, SequentialMlp) {
  util::Rng rng(20);
  Sequential seq;
  seq.emplace<Linear>(6, 10, rng);
  seq.emplace<Tanh>();  // smooth activation for clean finite differences
  seq.emplace<Linear>(10, 4, rng);
  util::Rng drng(21);
  const Tensor x = Tensor::randn(Shape{3, 6}, drng);
  util::Rng wrng(22);
  check_input_gradient(seq, x, wrng);
  check_parameter_gradients(seq, x, wrng);
}

TEST(GradCheck, SmallConvNet) {
  util::Rng rng(23);
  Sequential seq;
  seq.emplace<Conv2d>(Conv2dSpec{1, 2, 3, 1, 1}, rng);
  seq.emplace<Tanh>();
  seq.emplace<AvgPool2d>(2);
  seq.emplace<Flatten>();
  seq.emplace<Linear>(2 * 2 * 2, 3, rng);
  util::Rng drng(24);
  const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, drng);
  util::Rng wrng(25);
  check_input_gradient(seq, x, wrng);
  check_parameter_gradients(seq, x, wrng);
}

TEST(GradCheck, SoftmaxCrossEntropyInputGradient) {
  SoftmaxCrossEntropy loss;
  util::Rng drng(26);
  const Tensor logits = Tensor::randn(Shape{4, 5}, drng);
  const std::vector<std::int64_t> labels{0, 3, 2, 4};
  loss.forward(logits, labels);
  const Tensor analytic = loss.backward();
  const double step = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits;
    lp[i] += static_cast<float>(step);
    Tensor lm = logits;
    lm[i] -= static_cast<float>(step);
    SoftmaxCrossEntropy l2;
    const double numeric =
        (l2.forward(lp, labels) - l2.forward(lm, labels)) / (2 * step);
    EXPECT_LT(snnsec::testutil::grad_error(numeric, analytic[i]), 1e-2)
        << "logit " << i;
  }
}

TEST(GradCheck, EndToEndInputGradientMatchesLossSlope) {
  // The white-box attack consumes Classifier::input_gradient; verify the
  // full pipeline (net + loss) against finite differences of the scalar
  // loss itself.
  util::Rng rng(27);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Conv2d>(Conv2dSpec{1, 2, 3, 1, 1}, rng);
  seq->emplace<Tanh>();
  seq->emplace<Flatten>();
  seq->emplace<Linear>(2 * 4 * 4, 3, rng);
  FeedforwardClassifier model(std::move(seq), 3, "test");

  util::Rng drng(28);
  const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, drng);
  const std::vector<std::int64_t> labels{1, 2};
  double loss0 = 0.0;
  const Tensor g = model.input_gradient(x, labels, &loss0);
  ASSERT_EQ(g.shape(), x.shape());

  const double step = 1e-2;
  for (std::int64_t i = 0; i < x.numel(); i += 3) {
    Tensor xp = x;
    xp[i] += static_cast<float>(step);
    Tensor xm = x;
    xm[i] -= static_cast<float>(step);
    double lp = 0.0, lm = 0.0;
    model.input_gradient(xp, labels, &lp);
    model.input_gradient(xm, labels, &lm);
    const double numeric = (lp - lm) / (2 * step);
    EXPECT_LT(snnsec::testutil::grad_error(numeric, g[i]), 2e-2)
        << "pixel " << i;
  }
}

}  // namespace
}  // namespace snnsec::nn
