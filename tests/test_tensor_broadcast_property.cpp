// Property sweep: broadcast binary ops against an independent reference
// built on bounds-checked multi-index access.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {
namespace {

/// Reference broadcast add via explicit index arithmetic — O(n * rank) and
/// entirely independent of the production odometer kernel.
Tensor reference_add(const Tensor& a, const Tensor& b) {
  const Shape out_shape = Shape::broadcast(a.shape(), b.shape());
  Tensor out(out_shape);
  const std::int64_t rank = out_shape.ndim();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  for (std::int64_t flat = 0; flat < out_shape.numel(); ++flat) {
    // Decompose flat -> idx.
    std::int64_t rem = flat;
    for (std::int64_t d = rank - 1; d >= 0; --d) {
      idx[static_cast<std::size_t>(d)] = rem % out_shape[d];
      rem /= out_shape[d];
    }
    auto value_at = [&](const Tensor& t) {
      const std::int64_t off = rank - t.ndim();
      std::int64_t tflat = 0;
      const auto strides = t.shape().strides();
      for (std::int64_t d = 0; d < t.ndim(); ++d) {
        const std::int64_t i =
            t.dim(d) == 1 ? 0 : idx[static_cast<std::size_t>(off + d)];
        tflat += i * strides[static_cast<std::size_t>(d)];
      }
      return t[tflat];
    };
    out[flat] = value_at(a) + value_at(b);
  }
  return out;
}

struct ShapePair {
  Shape a;
  Shape b;
};

class BroadcastPropertyTest : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastPropertyTest, AddMatchesReference) {
  const auto& [sa, sb] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(sa.numel() * 131 + sb.numel()));
  const Tensor a = Tensor::randn(sa, rng);
  const Tensor b = Tensor::randn(sb, rng);
  EXPECT_TRUE(add(a, b).allclose(reference_add(a, b), 1e-6f));
  // Commutativity of the broadcast itself.
  EXPECT_TRUE(add(b, a).allclose(reference_add(a, b), 1e-6f));
}

TEST_P(BroadcastPropertyTest, SubIsAddOfNegation) {
  const auto& [sa, sb] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(sa.numel() * 31 + sb.numel()));
  const Tensor a = Tensor::randn(sa, rng);
  const Tensor b = Tensor::randn(sb, rng);
  EXPECT_TRUE(sub(a, b).allclose(add(a, neg(b)), 1e-6f));
}

TEST_P(BroadcastPropertyTest, MaxMinSandwichMul) {
  const auto& [sa, sb] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(sa.numel() * 7 + sb.numel()));
  const Tensor a = Tensor::randn(sa, rng);
  const Tensor b = Tensor::randn(sb, rng);
  const Tensor lo = minimum(a, b);
  const Tensor hi = maximum(a, b);
  // min + max == a + b (elementwise identity)
  EXPECT_TRUE(add(lo, hi).allclose(add(a, b), 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastPropertyTest,
    ::testing::Values(ShapePair{Shape({4}), Shape({4})},
                      ShapePair{Shape({3, 4}), Shape({4})},
                      ShapePair{Shape({3, 1}), Shape({1, 5})},
                      ShapePair{Shape({2, 3, 4}), Shape({3, 1})},
                      ShapePair{Shape({2, 1, 4}), Shape({5, 1})},
                      ShapePair{Shape({}), Shape({2, 2})},
                      ShapePair{Shape({1, 1, 1}), Shape({2, 3, 4})},
                      ShapePair{Shape({6, 1, 2, 1}), Shape({1, 3, 1, 5})}));

TEST(BroadcastProperty, ReductionConsistency) {
  // sum(sum_dim(x, d)) == sum(x) for every dimension of a rank-3 tensor.
  util::Rng rng(9);
  const Tensor x = Tensor::randn(Shape{3, 4, 5}, rng);
  const float total = sum(x);
  for (std::int64_t d = 0; d < 3; ++d)
    EXPECT_NEAR(sum(sum_dim(x, d)), total, 1e-3f) << "dim " << d;
}

TEST(BroadcastProperty, MeanDimMatchesSumDim) {
  util::Rng rng(10);
  const Tensor x = Tensor::randn(Shape{4, 6}, rng);
  const Tensor m = mean_dim(x, 1);
  const Tensor s = sum_dim(x, 1);
  for (std::int64_t i = 0; i < m.numel(); ++i)
    EXPECT_NEAR(m[i], s[i] / 6.0f, 1e-6f);
}

TEST(BroadcastProperty, MaxDimIndicesSelectMaxima) {
  util::Rng rng(11);
  const Tensor x = Tensor::randn(Shape{5, 7}, rng);
  std::vector<std::int64_t> idx;
  const Tensor m = max_dim(x, 1, &idx);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(m[i], x.at({i, idx[static_cast<std::size_t>(i)]}));
    for (std::int64_t j = 0; j < 7; ++j)
      EXPECT_LE(x.at({i, j}), m[i] + 1e-7f);
  }
}

}  // namespace
}  // namespace snnsec::tensor
