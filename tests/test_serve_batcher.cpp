// MicroBatcher: admission control, FIFO order, flush-on-size vs
// flush-on-delay, shed at capacity, stop/drain semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "util/error.hpp"

namespace snnsec::serve {
namespace {

using Clock = std::chrono::steady_clock;

BatcherConfig make_config(std::int64_t max_batch, std::int64_t delay_us,
                          std::int64_t capacity) {
  BatcherConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_delay_us = delay_us;
  cfg.capacity = capacity;
  return cfg;
}

TEST(BatcherConfig, Validation) {
  EXPECT_THROW(MicroBatcher(make_config(0, 0, 4)), util::Error);
  EXPECT_THROW(MicroBatcher(make_config(4, 0, 2)), util::Error);
  EXPECT_THROW(MicroBatcher(make_config(2, -1, 4)), util::Error);
  EXPECT_NO_THROW(MicroBatcher(make_config(2, 0, 4)));
}

TEST(MicroBatcher, SingleThreadFifoOrder) {
  MicroBatcher b(make_config(8, 0, 16));
  std::vector<std::int64_t> enqueued;
  for (int i = 0; i < 5; ++i) {
    const std::int64_t slot = b.try_acquire();
    ASSERT_GE(slot, 0);
    b.enqueue(slot);
    enqueued.push_back(slot);
  }
  EXPECT_EQ(b.depth(), 5);
  std::vector<std::int64_t> out(8, -1);
  // max_delay 0: the oldest is immediately "late", so this cannot block.
  const std::int64_t n = b.next_batch(out.data());
  ASSERT_EQ(n, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)],
                                        enqueued[static_cast<std::size_t>(i)]);
  EXPECT_EQ(b.depth(), 0);
}

TEST(MicroBatcher, FlushOnSizeDoesNotWaitForDelay) {
  // Delay is 10 s; a full batch must flush immediately anyway.
  MicroBatcher b(make_config(4, 10'000'000, 16));
  for (int i = 0; i < 4; ++i) {
    const std::int64_t slot = b.try_acquire();
    ASSERT_GE(slot, 0);
    b.enqueue(slot);
  }
  std::vector<std::int64_t> out(4, -1);
  const auto start = Clock::now();
  EXPECT_EQ(b.next_batch(out.data()), 4);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_LT(waited.count(), 1000) << "flush-on-size must not wait the delay";
}

TEST(MicroBatcher, FlushOnDelayReleasesPartialBatch) {
  const std::int64_t delay_us = 20'000;
  MicroBatcher b(make_config(8, delay_us, 16));
  for (int i = 0; i < 2; ++i) {
    const std::int64_t slot = b.try_acquire();
    ASSERT_GE(slot, 0);
    b.enqueue(slot);
  }
  std::vector<std::int64_t> out(8, -1);
  const auto start = Clock::now();
  EXPECT_EQ(b.next_batch(out.data()), 2);
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  // The partial batch must be held for (roughly) the delay, then released.
  // The lower bound is slightly relaxed: the delay clock starts at
  // enqueue(), a moment before next_batch() is entered here.
  EXPECT_GE(waited.count(), delay_us / 2);
}

TEST(MicroBatcher, ShedsAtCapacityAndRecoversOnRelease) {
  MicroBatcher b(make_config(2, 0, 3));
  std::vector<std::int64_t> held;
  for (int i = 0; i < 3; ++i) {
    const std::int64_t slot = b.try_acquire();
    ASSERT_GE(slot, 0);
    held.push_back(slot);
  }
  EXPECT_EQ(b.try_acquire(), -1) << "4th outstanding request must shed";
  b.release(held.back());
  held.pop_back();
  EXPECT_GE(b.try_acquire(), 0) << "capacity frees up after release";
}

TEST(MicroBatcher, StopDrainsPendingThenReturnsZero) {
  MicroBatcher b(make_config(2, 10'000'000, 8));
  for (int i = 0; i < 3; ++i) {
    const std::int64_t slot = b.try_acquire();
    ASSERT_GE(slot, 0);
    b.enqueue(slot);
  }
  b.stop();
  EXPECT_TRUE(b.stopped());
  EXPECT_EQ(b.try_acquire(), -1) << "no admission after stop";
  std::vector<std::int64_t> out(2, -1);
  // Drain: stop() flushes immediately (no delay wait), max_batch at a time.
  EXPECT_EQ(b.next_batch(out.data()), 2);
  EXPECT_EQ(b.next_batch(out.data()), 1);
  EXPECT_EQ(b.next_batch(out.data()), 0);
  EXPECT_EQ(b.next_batch(out.data()), 0) << "post-drain calls stay 0";
}

TEST(MicroBatcher, ConcurrentSubmitPreservesPerProducerOrder) {
  // FIFO means each producer's requests appear in its submission order in
  // the drained sequence (a total order across producers is unobservable).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  MicroBatcher b(make_config(8, 200, 16));

  // Payload stamped into a per-slot array before enqueue, exactly like the
  // Server's slot ring.
  struct Payload {
    int producer;
    int seq;
  };
  std::vector<Payload> payload(16);

  std::vector<std::pair<int, int>> drained;
  std::thread consumer([&] {
    std::vector<std::int64_t> out(8, -1);
    for (;;) {
      const std::int64_t n = b.next_batch(out.data());
      if (n == 0) break;
      for (std::int64_t i = 0; i < n; ++i) {
        const Payload& p = payload[static_cast<std::size_t>(out[
            static_cast<std::size_t>(i)])];
        drained.emplace_back(p.producer, p.seq);
        b.release(out[static_cast<std::size_t>(i)]);
      }
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int s = 0; s < kPerProducer; ++s) {
        std::int64_t slot;
        while ((slot = b.try_acquire()) < 0) std::this_thread::yield();
        payload[static_cast<std::size_t>(slot)] = {p, s};
        b.enqueue(slot);
      }
    });
  }
  for (auto& t : producers) t.join();
  b.stop();
  consumer.join();

  ASSERT_EQ(drained.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next_seq(kProducers, 0);
  for (const auto& [producer, seq] : drained) {
    EXPECT_EQ(seq, next_seq[static_cast<std::size_t>(producer)])
        << "producer " << producer << " order violated";
    ++next_seq[static_cast<std::size_t>(producer)];
  }
}

TEST(MicroBatcher, ReleaseValidation) {
  MicroBatcher b(make_config(2, 0, 4));
  EXPECT_THROW(b.release(-1), util::Error);
  EXPECT_THROW(b.release(99), util::Error);
}

}  // namespace
}  // namespace snnsec::serve
