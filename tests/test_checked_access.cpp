// Bounds-checking contract of the Tensor access paths and the checked tier.
//
// at() is always bounds-checked, in every build. operator[] and
// SNNSEC_ASSERT_SHAPE are free in release builds and only armed under
// -DSNNSEC_CHECKED=ON; the #if blocks below assert both sides of that
// contract, so this one test file is meaningful in both configurations.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"

using snnsec::tensor::Shape;
using snnsec::tensor::Tensor;

TEST(CheckedAccess, AtThrowsOnEveryOutOfRangeAxis) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_FLOAT_EQ(t.at({1, 2}), 7.0f);

  EXPECT_THROW(t.at({2, 0}), snnsec::util::Error);   // axis 0 one past end
  EXPECT_THROW(t.at({0, 3}), snnsec::util::Error);   // axis 1 one past end
  EXPECT_THROW(t.at({-1, 0}), snnsec::util::Error);  // negative index
  EXPECT_THROW(t.at({0}), snnsec::util::Error);      // rank mismatch

  const Tensor& ct = t;
  EXPECT_THROW(ct.at({1, 3}), snnsec::util::Error);
}

TEST(CheckedAccess, OffsetRejectsOffByOne) {
  Tensor t(Shape{4, 5});
  EXPECT_EQ(t.offset({3, 4}), 19);  // last valid element
  EXPECT_THROW(t.offset({3, 5}), snnsec::util::Error);
  EXPECT_THROW(t.offset({4, 0}), snnsec::util::Error);
}

#if defined(SNNSEC_CHECKED) && SNNSEC_CHECKED

TEST(CheckedAccess, FlatIndexingIsCheckedInCheckedBuilds) {
  Tensor t(Shape{6});
  t[5] = 1.0f;  // last valid slot
  EXPECT_THROW(t[6], snnsec::util::Error);
  EXPECT_THROW(t[-1], snnsec::util::Error);
  const Tensor& ct = t;
  EXPECT_THROW(ct[6], snnsec::util::Error);
}

TEST(CheckedAccess, AssertShapeFiresOnMismatch) {
  Tensor t(Shape{2, 3});
  EXPECT_NO_THROW(SNNSEC_ASSERT_SHAPE(t, Shape{2, 3}));
  EXPECT_THROW(SNNSEC_ASSERT_SHAPE(t, Shape{3, 2}), snnsec::util::Error);
  EXPECT_THROW(SNNSEC_ASSERT_SHAPE(t, Shape{6}), snnsec::util::Error);
}

#else  // release tier: the same expressions must cost (and catch) nothing

TEST(CheckedAccess, FlatIndexingIsUncheckedInReleaseBuilds) {
  Tensor t(Shape{6});
  t[5] = 1.0f;
  EXPECT_FLOAT_EQ(t[5], 1.0f);  // valid access works; OOB is UB, not tested
}

TEST(CheckedAccess, AssertShapeCompilesOutInReleaseBuilds) {
  Tensor t(Shape{2, 3});
  // Deliberately wrong shape: the macro must expand to a no-op.
  EXPECT_NO_THROW(SNNSEC_ASSERT_SHAPE(t, Shape{3, 2}));
}

#endif
