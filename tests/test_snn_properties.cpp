// Property-style sweeps over the SNN substrate: invariants that must hold
// across the (V_th, T) parameter space the paper explores.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "snn/li_readout.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ---- parameterized over (v_th, T) ------------------------------------------

class LifGridTest
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {
 protected:
  LifParameters params() const {
    LifParameters p;
    p.v_th = static_cast<float>(std::get<0>(GetParam()));
    return p;
  }
  std::int64_t t() const { return std::get<1>(GetParam()); }
};

TEST_P(LifGridTest, SpikesAreBinaryAndRateBounded) {
  LifLayer lif(t(), params(), Surrogate{});
  util::Rng rng(1);
  const Tensor x =
      Tensor::rand_uniform(Shape{t() * 3, 20}, rng, 0.0f, 3.0f);
  const Tensor z = lif.forward(x, nn::Mode::kEval);
  for (std::int64_t i = 0; i < z.numel(); ++i)
    // NOLINTNEXTLINE(snnsec-float-eq): spike trains are exactly 0 or 1 by construction
    ASSERT_TRUE(z[i] == 0.0f || z[i] == 1.0f);
  EXPECT_GE(lif.last_spike_rate(), 0.0);
  EXPECT_LE(lif.last_spike_rate(), 1.0);
}

TEST_P(LifGridTest, ForwardIsDeterministic) {
  LifLayer a(t(), params(), Surrogate{});
  LifLayer b(t(), params(), Surrogate{});
  util::Rng rng(2);
  const Tensor x =
      Tensor::rand_uniform(Shape{t() * 2, 8}, rng, 0.0f, 2.0f);
  EXPECT_TRUE(a.forward(x, nn::Mode::kEval)
                  .allclose(b.forward(x, nn::Mode::kEval), 0.0f));
}

TEST_P(LifGridTest, ZeroInputProducesNoSpikesAndZeroGradient) {
  LifLayer lif(t(), params(), Surrogate{});
  const Tensor x(Shape{t() * 2, 5});
  const Tensor z = lif.forward(x, nn::Mode::kTrain);
  EXPECT_FLOAT_EQ(tensor::sum(z), 0.0f);
  // With v pinned far below threshold the surrogate is small but nonzero;
  // gradients must still be finite.
  const Tensor g = lif.backward(Tensor::ones(z.shape()));
  for (std::int64_t i = 0; i < g.numel(); ++i)
    ASSERT_TRUE(std::isfinite(g[i]));
}

TEST_P(LifGridTest, BackwardShapeMatchesInput) {
  LifLayer lif(t(), params(), Surrogate{});
  util::Rng rng(3);
  const Tensor x =
      Tensor::rand_uniform(Shape{t() * 2, 4, 3, 3}, rng, 0.0f, 2.0f);
  const Tensor z = lif.forward(x, nn::Mode::kTrain);
  EXPECT_EQ(z.shape(), x.shape());
  EXPECT_EQ(lif.backward(Tensor::ones(z.shape())).shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LifGridTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0, 2.5),
                       ::testing::Values<std::int64_t>(1, 4, 16, 48)));

// ---- cross-parameter monotonicity ------------------------------------------

TEST(LifMonotonicity, SpikeCountNonIncreasingInThreshold) {
  util::Rng rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{24 * 4, 32}, rng, 0.0f, 2.0f);
  double prev_rate = 1.1;
  for (const float v_th : {0.25f, 0.5f, 1.0f, 1.5f, 2.0f, 3.0f}) {
    LifParameters p;
    p.v_th = v_th;
    LifLayer lif(24, p, Surrogate{});
    lif.forward(x, nn::Mode::kEval);
    EXPECT_LE(lif.last_spike_rate(), prev_rate + 1e-9)
        << "rate must not increase with v_th=" << v_th;
    prev_rate = lif.last_spike_rate();
  }
}

TEST(LifMonotonicity, LongerWindowGivesMoreTotalSpikes) {
  util::Rng rng(5);
  const Tensor base = Tensor::rand_uniform(Shape{8, 16}, rng, 0.5f, 1.5f);
  double prev_total = -1.0;
  for (const std::int64_t t : {8, 16, 32, 64}) {
    LifLayer lif(t, LifParameters{}, Surrogate{});
    // Same per-step current, longer observation.
    Tensor x(Shape{t * 8, 16});
    for (std::int64_t step = 0; step < t; ++step)
      for (std::int64_t i = 0; i < base.numel(); ++i)
        x[step * base.numel() + i] = base[i];
    const Tensor z = lif.forward(x, nn::Mode::kEval);
    const double total = tensor::sum(z);
    EXPECT_GT(total, prev_total);
    prev_total = total;
  }
}

TEST(LifEdgeCases, SingleTimeStepNeverSpikesFromZeroState) {
  // With zero initial state, the first membrane update sees i=0, so a
  // T=1 window cannot emit spikes (matches Norse's injection timing).
  LifLayer lif(1, LifParameters{}, Surrogate{});
  util::Rng rng(6);
  const Tensor x = Tensor::rand_uniform(Shape{1 * 4, 10}, rng, 0.0f, 5.0f);
  EXPECT_FLOAT_EQ(tensor::sum(lif.forward(x, nn::Mode::kEval)), 0.0f);
}

TEST(LiReadoutEdgeCases, SingleStepLogitsAreZero) {
  LiReadout li(1, LifParameters{});
  const Tensor x = Tensor::ones(Shape{1 * 2, 3});
  const Tensor logits = li.forward(x, nn::Mode::kEval);
  for (std::int64_t i = 0; i < logits.numel(); ++i)
    EXPECT_FLOAT_EQ(logits[i], 0.0f);
}

// ---- end-to-end gradient usefulness across the grid -------------------------

class SnnGradientQualityTest
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(SnnGradientQualityTest, FgsmStepIncreasesLossWhenGradientsExist) {
  const double v_th = std::get<0>(GetParam());
  const std::int64_t t = std::get<1>(GetParam());
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = t;
  util::Rng rng(7);
  auto model = build_spiking_lenet(arch, cfg, rng);

  util::Rng drng(8);
  const Tensor x = Tensor::rand_uniform(Shape{8, 1, 8, 8}, drng);
  const std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  double loss0 = 0.0;
  const Tensor g = model->input_gradient(x, y, &loss0);
  const float gnorm = tensor::l2_norm(g);
  if (gnorm < 1e-8f) GTEST_SKIP() << "dead cell: no gradient to validate";

  Tensor adv = x;
  adv.axpy_(0.05f, tensor::sign(g));
  adv.clamp_(0.0f, 1.0f);
  double loss1 = 0.0;
  model->input_gradient(adv, y, &loss1);
  // The surrogate gradient is approximate; require no large decrease.
  EXPECT_GT(loss1, loss0 - 0.05)
      << "ascending the surrogate gradient must not reduce the loss";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnnGradientQualityTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values<std::int64_t>(6, 12)));

}  // namespace
}  // namespace snnsec::snn
