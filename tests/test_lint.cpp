// Fixture-based tests for the snnsec_lint engine (tools/lint).
//
// Every rule R1–R6 gets at least one known-bad snippet proving it fires
// (with exact rule ID and line number) and one known-good / suppressed
// snippet proving justified NOLINTs silence it. The fixtures live in
// string literals — the engine blanks literal contents when scanning, so
// this file itself stays clean under the lint_tree ctest.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using snnsec::lint::Finding;
using snnsec::lint::lint_source;
using snnsec::lint::LintResult;
using snnsec::lint::Options;

namespace {

bool has(const LintResult& r, const std::string& rule, int line) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.line == line;
                     });
}

bool suppressed(const LintResult& r, const std::string& rule, int line) {
  return std::any_of(r.suppressed.begin(), r.suppressed.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.line == line;
                     });
}

}  // namespace

// ---- R1: snnsec-hot-alloc -------------------------------------------------

TEST(LintHotAlloc, FiresOnNewAndGrowthInHotFile) {
  const std::string src =
      "// SNNSEC_HOT\n"                       // line 1
      "void f() {\n"                          // line 2
      "  float* p = new float[64];\n"         // line 3
      "  buf.push_back(1.0f);\n"              // line 4
      "  q = malloc(8);\n"                    // line 5
      "}\n";
  const auto r = lint_source("src/tensor/fake.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 3));
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 5));
}

TEST(LintHotAlloc, SilentWithoutMarkerOrInStrings) {
  const auto r = lint_source("src/tensor/fake.cpp",
                             "void f() { float* p = new float[64]; }\n");
  EXPECT_TRUE(r.findings.empty());
  // The marker only counts inside a comment, not in a string literal.
  const auto r2 = lint_source(
      "src/tensor/fake.cpp",
      "const char* s = \"// SNNSEC_HOT\";\nvoid f() { g(new int); }\n");
  EXPECT_TRUE(r2.findings.empty());
}

TEST(LintHotAlloc, JustifiedNolintSuppresses) {
  const std::string src =
      "// SNNSEC_HOT\n"
      "void f() {\n"
      "  // NOLINTNEXTLINE(snnsec-hot-alloc): cold setup path, runs once\n"
      "  buf.resize(64);\n"  // line 4
      "}\n";
  const auto r = lint_source("src/tensor/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-hot-alloc", 4));
}

// ---- R2: snnsec-rng -------------------------------------------------------

TEST(LintRng, FiresOnNondeterministicSources) {
  const std::string src =
      "#include <random>\n"                                      // 1
      "std::mt19937 gen{std::random_device{}()};\n"              // 2
      "int r = rand() % 6;\n"                                    // 3
      "auto seed = std::chrono::steady_clock::now().time_since_epoch();\n"
      "srand(time(nullptr));\n";                                 // 5
  const auto r = lint_source("src/attacks/fake.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-rng", 2));
  EXPECT_TRUE(has(r, "snnsec-rng", 3));
  EXPECT_TRUE(has(r, "snnsec-rng", 4));
  EXPECT_TRUE(has(r, "snnsec-rng", 5));
}

TEST(LintRng, AllowedInsideRngImplementation) {
  const auto r = lint_source("src/util/rng.cpp",
                             "std::mt19937 reference_for_tests;\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintRng, JustifiedNolintSuppresses) {
  const std::string src =
      "std::mt19937 g;  // NOLINT(snnsec-rng): reference distribution check "
      "against the C++ standard engine\n";
  const auto r = lint_source("tests/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-rng", 1));
}

// ---- R3: snnsec-parallel-capture ------------------------------------------

TEST(LintParallelCapture, FiresOnByRefWorkspaceUse) {
  const std::string src =
      "void f(util::Workspace& ws) {\n"                          // 1
      "  util::parallel_for_chunked(0, n, [&](i64 lo, i64 hi) {\n"  // 2
      "    float* p = ws.alloc<float>(64);\n"                    // 3
      "    use(p, lo, hi);\n"
      "  });\n"
      "}\n";
  const auto r = lint_source("src/nn/fake.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-parallel-capture", 2));
}

TEST(LintParallelCapture, ThreadLocalGuardIsClean) {
  const std::string src =
      "void f() {\n"
      "  util::parallel_for_chunked(0, n, [&](i64 lo, i64 hi) {\n"
      "    util::Workspace& ws = util::Workspace::local();\n"
      "    float* p = ws.alloc<float>(64);\n"
      "    use(p, lo, hi);\n"
      "  });\n"
      "}\n";
  const auto r = lint_source("src/nn/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintParallelCapture, ValueCaptureIsClean) {
  const std::string src =
      "void f(Plan plan) {\n"
      "  util::parallel_for(0, n, [plan](i64 i) { run(plan, i); });\n"
      "}\n";
  const auto r = lint_source("src/nn/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
}

// The event-kernel shape (tensor/spike_events.cpp): SNNSEC_HOT file whose
// scratch comes from a caller-passed workspace OUTSIDE the parallel region
// and whose per-sample scatter lambda captures only plain pointers by
// value. Both rules must stay quiet on this pattern.
TEST(LintParallelCapture, EventScatterPatternIsClean) {
  const std::string src =
      "// SNNSEC_HOT\n"
      "void conv_events(const Geometry& g, util::Workspace& ws) {\n"
      "  float* wt = ws.alloc<float>(patch * cout);\n"
      "  const auto ev = build_event_rows(images, w, rows, w, ws);\n"
      "  util::parallel_for(0, batch, [=](i64 i) {\n"
      "    scatter_sample(g, ev.count + i * r, ev.value + i * r * w, wt);\n"
      "  });\n"
      "}\n";
  const auto r = lint_source("src/tensor/fake_events.cpp", src);
  EXPECT_TRUE(r.findings.empty());
}

// The anti-pattern the event path replaced: growing heap containers per
// call inside a hot kernel file, and reaching into a by-ref workspace from
// worker threads. Both rules must fire.
TEST(LintParallelCapture, EventBuildAntiPatternFires) {
  const std::string src =
      "// SNNSEC_HOT\n"                                            // 1
      "void build(util::Workspace& ws) {\n"                        // 2
      "  std::vector<i32> idx;\n"                                  // 3
      "  idx.push_back(7);\n"                                      // 4
      "  util::parallel_for(0, n, [&](i64 i) {\n"                  // 5
      "    float* p = ws.alloc<float>(64);\n"                      // 6
      "    scan(p, i);\n"                                          // 7
      "  });\n"
      "}\n";
  const auto r = lint_source("src/tensor/fake_events.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
  EXPECT_TRUE(has(r, "snnsec-parallel-capture", 5));
}

// The fleet-frontend executor shape (fleet/frontend.cpp): SNNSEC_HOT file
// whose steady path recycles a dispatch slot into a free list reserved at
// construction. The growth call needs — and gets — a justification; the
// rest of the loop (index juggling, lock scopes, writev) must stay quiet.
TEST(LintHotAlloc, FleetExecutorRecycleIsCleanWithJustification) {
  const std::string src =
      "// SNNSEC_HOT\n"
      "void executor_loop(Ring& ring) {\n"
      "  std::unique_lock<std::mutex> lk(ring.m);\n"
      "  const std::int64_t idx = ring.pop_ready();\n"
      "  lk.unlock();\n"
      "  drive_replica(ring.slots[idx]);\n"
      "  lk.lock();\n"
      "  // NOLINTNEXTLINE(snnsec-hot-alloc): within reserved capacity\n"
      "  ring.free_list.push_back(idx);\n"
      "}\n";
  const auto r = lint_source("src/fleet/fake_frontend.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-hot-alloc", 9));
}

// The anti-pattern the router's reused FleetResult avoids: allocating the
// per-cell scratch on every routed request in a hot fleet file.
TEST(LintHotAlloc, FleetPerRequestScratchFires) {
  const std::string src =
      "// SNNSEC_HOT\n"                                      // 1
      "bool route(const Tensor& x, FleetResult& out) {\n"    // 2
      "  std::vector<InferResult> cells(num_groups());\n"    // 3
      "  out.scores = new float[10];\n"                      // 4
      "  return vote(cells, out);\n"                         // 5
      "}\n";
  const auto r = lint_source("src/fleet/fake_router.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
}

// ---- R4: snnsec-float-eq --------------------------------------------------

TEST(LintFloatEq, FiresOnLiteralComparisons) {
  const std::string src =
      "bool a(float x) { return x == 0.5f; }\n"   // 1
      "bool b(double x) { return x != 1e-3; }\n"  // 2
      "bool c(int x) { return x == 3; }\n";       // 3 — integers are fine
  const auto r = lint_source("src/core/fake.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-float-eq", 1));
  EXPECT_TRUE(has(r, "snnsec-float-eq", 2));
  EXPECT_FALSE(has(r, "snnsec-float-eq", 3));
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintFloatEq, IgnoresOrderingAndOperatorDecls) {
  const std::string src =
      "bool a(float x) { return x <= 0.5f || x >= 1.5f; }\n"
      "bool operator==(const S& s, float) { return false; }\n";
  const auto r = lint_source("src/core/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintFloatEq, JustifiedNolintSuppresses) {
  const std::string src =
      "// NOLINTNEXTLINE(snnsec-float-eq): spikes are exactly 0 or 1\n"
      "bool spiked(float z) { return z == 1.0f; }\n";
  const auto r = lint_source("src/snn/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-float-eq", 2));
}

// ---- R5: snnsec-header-hygiene --------------------------------------------

TEST(LintHeaderHygiene, FiresOnMissingPragmaAndUsingNamespace) {
  const std::string src =
      "#include <vector>\n"
      "using namespace std;\n"  // line 2
      "struct S {};\n";
  const auto r = lint_source("src/util/fake.hpp", src);
  EXPECT_TRUE(has(r, "snnsec-header-hygiene", 1));  // missing #pragma once
  EXPECT_TRUE(has(r, "snnsec-header-hygiene", 2));  // using namespace
}

TEST(LintHeaderHygiene, CleanHeaderAndSourceFileExempt) {
  const std::string header = "#pragma once\nstruct S {};\n";
  EXPECT_TRUE(lint_source("src/util/fake.hpp", header).findings.empty());
  // .cpp files may use `using namespace` locally and need no pragma.
  const std::string source = "using namespace std::chrono_literals;\n";
  EXPECT_TRUE(lint_source("src/util/fake.cpp", source).findings.empty());
}

// ---- R6: snnsec-layer-contract --------------------------------------------

namespace {

const char* kGoodLayer =
    "#pragma once\n"
    "namespace snnsec::nn {\n"
    "class Frob final : public Layer {\n"  // line 3
    " public:\n"
    "  tensor::Tensor forward(const tensor::Tensor& x, Mode m) override;\n"
    "  tensor::Tensor backward(const tensor::Tensor& g) override;\n"
    "  std::string name() const override;\n"
    "  std::string_view kind() const override;\n"
    "};\n"
    "}\n";

}  // namespace

TEST(LintLayerContract, FiresOnMissingOverrides) {
  const std::string src =
      "#pragma once\n"
      "namespace snnsec::nn {\n"
      "class Frob final : public Layer {\n"  // line 3
      " public:\n"
      "  tensor::Tensor forward(const tensor::Tensor& x, Mode m) override;\n"
      "  std::string name() const override;\n"
      "};\n"
      "}\n";
  const auto r = lint_source("src/nn/frob.hpp", src);
  // Missing backward() and kind(); forward() is present.
  EXPECT_TRUE(has(r, "snnsec-layer-contract", 3));
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintLayerContract, FiresWhenNotInRegistry) {
  Options opts;
  opts.registry_source = "{\"Conv2d\", 7},\n{\"Linear\", 10},\n";
  const auto r = lint_source("src/nn/frob.hpp", kGoodLayer, opts);
  EXPECT_TRUE(has(r, "snnsec-layer-contract", 3));
  EXPECT_EQ(r.findings.size(), 1u);
}

TEST(LintLayerContract, CleanWhenRegisteredAndComplete) {
  Options opts;
  opts.registry_source = "{\"Frob\", 42},\n";
  const auto r = lint_source("src/nn/frob.hpp", kGoodLayer, opts);
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintLayerContract, AbstractBasesAndOtherDirsExempt) {
  const std::string abstract_base =
      "#pragma once\n"
      "namespace snnsec::nn {\n"
      "class FrobBase : public Layer {\n"  // not final — abstract base
      " public:\n"
      "  std::vector<Parameter*> parameters() override;\n"
      "};\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/nn/frob.hpp", abstract_base).findings.empty());
  // The contract only applies to src/nn and src/snn headers.
  const std::string elsewhere =
      "#pragma once\nclass Frob final : public Layer {};\n";
  EXPECT_TRUE(lint_source("src/core/frob.hpp", elsewhere).findings.empty());
}

// ---- NOLINT justification contract ----------------------------------------

TEST(LintNolint, UnjustifiedSnnsecNolintIsAFindingAndDoesNotSuppress) {
  const std::string src =
      "bool spiked(float z) { return z == 1.0f; }  // NOLINT(snnsec-float-eq)\n";
  const auto r = lint_source("src/snn/fake.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-float-eq", 1));            // not suppressed
  EXPECT_TRUE(has(r, "snnsec-nolint-justification", 1));  // and called out
}

TEST(LintNolint, ForeignNolintIsIgnored) {
  // Plain clang-tidy NOLINTs (no snnsec- rule) are none of our business.
  const std::string src = "int x = 0;  // NOLINT\n";
  const auto r = lint_source("src/util/fake.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(LintNolint, JustificationMustBeNonEmpty) {
  const std::string with_colon_only =
      "bool b(float z) { return z == 1.0f; }  // NOLINT(snnsec-float-eq):  \n";
  const auto r = lint_source("src/snn/fake.cpp", with_colon_only);
  EXPECT_TRUE(has(r, "snnsec-float-eq", 1));
  EXPECT_TRUE(has(r, "snnsec-nolint-justification", 1));
}

// ---- engine plumbing ------------------------------------------------------

TEST(LintEngine, RuleListIsStable) {
  const auto& ids = snnsec::lint::rule_ids();
  EXPECT_EQ(ids.size(), 7u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "hot-alloc"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "layer-contract"), ids.end());
}

TEST(LintEngine, FindingsCarrySuggestions) {
  const auto r = lint_source("src/core/fake.cpp",
                             "bool a(float x) { return x == 0.5f; }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_FALSE(r.findings[0].suggestion.empty());
  EXPECT_EQ(r.findings[0].file, "src/core/fake.cpp");
}

// ---- src/serve coverage ---------------------------------------------------
// The serving hot path (anytime stepper, micro-batcher, server) is marked
// SNNSEC_HOT; these fixtures pin down that R1/R3 fire on src/serve paths
// exactly as elsewhere — the subsystem gets no special-casing, and the
// NOLINT idiom the real serve sources use (construction-time growth,
// first-response buffer sizing) stays accepted.

TEST(LintServe, HotAllocFiresOnServeRequestPath) {
  const std::string src =
      "// SNNSEC_HOT: steady-state request path\n"     // 1
      "void Server::execute_batch(Worker& w) {\n"      // 2
      "  w.slots.push_back(next);\n"                   // 3
      "  out.scores.resize(classes);\n"                // 4
      "  auto* s = new Slot();\n"                      // 5
      "}\n";
  const auto r = lint_source("src/serve/fake_server.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 3));
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 5));
}

TEST(LintServe, JustifiedConstructionGrowthSuppresses) {
  // The idiom the real server.cpp / anytime.cpp use: container growth is
  // allowed at construction time when justified on the preceding line.
  const std::string src =
      "// SNNSEC_HOT\n"
      "Server::Server(ServerConfig cfg) {\n"
      "  // NOLINTNEXTLINE(snnsec-hot-alloc): construction-time growth\n"
      "  slots_.reserve(capacity);\n"  // 4
      "}\n";
  const auto r = lint_source("src/serve/fake_server.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-hot-alloc", 4));
}

// ---- src/obs coverage -----------------------------------------------------
// The sketch accumulator (src/obs/sketch.cpp) is SNNSEC_HOT: it runs per
// time-slab on the serving path. These fixtures pin down that R1 patrols
// obs sources exactly as elsewhere and that its geometry-growth NOLINT
// idiom stays accepted.

TEST(LintObs, HotAllocFiresOnSketchAccumulationPath) {
  const std::string src =
      "// SNNSEC_HOT: per-timestep sketch accumulation\n"  // 1
      "void SketchAccumulator::accumulate(i64 layer) {\n"  // 2
      "  hist_.push_back(0);\n"                            // 3
      "  fired_.resize(batch_ * feat);\n"                  // 4
      "}\n";
  const auto r = lint_source("src/obs/fake_sketch.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 3));
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
}

TEST(LintObs, JustifiedGeometryGrowthSuppresses) {
  const std::string src =
      "// SNNSEC_HOT\n"
      "void SketchAccumulator::begin(i64 batch) {\n"
      "  // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only\n"
      "  spikes_.resize(capacity);\n"  // 4
      "}\n";
  const auto r = lint_source("src/obs/fake_sketch.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-hot-alloc", 4));
}

TEST(LintServe, ParallelCaptureFiresOnServeWorkerPath) {
  const std::string src =
      "void Server::start_workers(util::Workspace& ws) {\n"          // 1
      "  util::parallel_for_chunked(0, n, [&](i64 lo, i64 hi) {\n"   // 2
      "    float* p = ws.alloc<float>(64);\n"                        // 3
      "    warm(p, lo, hi);\n"
      "  });\n"
      "}\n";
  const auto r = lint_source("src/serve/fake_server.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-parallel-capture", 2));
}

// ---- supervisor coverage --------------------------------------------------
// The supervisor's fast canary runs on the serving thread every batch and
// must stay allocation-free; heal()/respawn is the cold path and uses the
// justified-NOLINT idiom. These fixtures pin both down for the
// src/serve/supervisor.* file family.

TEST(LintServe, HotAllocFiresOnFastCanaryPath) {
  const std::string src =
      "// SNNSEC_HOT: per-batch fast canary on the serving thread\n"  // 1
      "void Server::fast_canary(Worker& w) {\n"                       // 2
      "  auto params = w.model->parameters();\n"                      // 3
      "  failures_.push_back(w.id);\n"                                // 4
      "}\n";
  const auto r = lint_source("src/serve/fake_supervisor.cpp", src);
  EXPECT_TRUE(has(r, "snnsec-hot-alloc", 4));
}

TEST(LintServe, JustifiedRespawnGrowthSuppresses) {
  // heal() stamps a fresh replica — cold path, growth is justified there.
  const std::string src =
      "// SNNSEC_HOT\n"
      "void Server::heal(Worker& w) {\n"
      "  w.model = artifact_->make_replica();\n"  // 3
      "  // NOLINTNEXTLINE(snnsec-hot-alloc): quarantine recovery only\n"
      "  w.params.assign(all.begin(), all.end());\n"  // 5
      "}\n";
  const auto r = lint_source("src/serve/fake_supervisor.cpp", src);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(suppressed(r, "snnsec-hot-alloc", 5));
}
