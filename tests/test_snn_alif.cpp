// Adaptive-threshold LIF layer: dynamics and BPTT.
#include <gtest/gtest.h>

#include "snn/alif_layer.hpp"
#include "snn/lif_layer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

AlifParameters make_params(float v_th = 1.0f, float beta = 1.0f,
                           float rho = 0.9f) {
  AlifParameters p;
  p.lif.v_th = v_th;
  p.beta = beta;
  p.rho = rho;
  return p;
}

TEST(AlifParameters, Validation) {
  EXPECT_NO_THROW(make_params().validate());
  EXPECT_THROW(make_params(1.0f, -0.1f).validate(), util::Error);
  EXPECT_THROW(make_params(1.0f, 1.0f, 1.0f).validate(), util::Error);
  EXPECT_THROW(make_params(-1.0f).validate(), util::Error);
}

TEST(AlifLayer, BetaZeroMatchesPlainLif) {
  // With beta = 0 the adaptation never changes the threshold, so ALIF must
  // reproduce the LIF trajectory exactly.
  const std::int64_t t = 20;
  AlifLayer alif(t, make_params(0.8f, /*beta=*/0.0f), Surrogate{});
  LifParameters lp;
  lp.v_th = 0.8f;
  LifLayer lif(t, lp, Surrogate{});
  util::Rng rng(1);
  const Tensor x = Tensor::rand_uniform(Shape{t * 3, 7}, rng, 0.0f, 2.0f);
  EXPECT_TRUE(alif.forward(x, nn::Mode::kEval)
                  .allclose(lif.forward(x, nn::Mode::kEval), 0.0f));
}

TEST(AlifLayer, AdaptationSuppressesSustainedFiring) {
  // Under constant suprathreshold drive, the adaptive neuron must fire
  // less than the plain LIF (threshold climbs after each spike).
  const std::int64_t t = 64;
  AlifLayer alif(t, make_params(1.0f, /*beta=*/2.0f, /*rho=*/0.95f),
                 Surrogate{});
  LifParameters lp;
  LifLayer lif(t, lp, Surrogate{});
  Tensor x(Shape{t, 4}, 0.4f);  // moderate drive: v_ss ~ 2 x threshold
  const Tensor za = alif.forward(x, nn::Mode::kEval);
  const Tensor zl = lif.forward(x, nn::Mode::kEval);
  EXPECT_LT(tensor::sum(za), tensor::sum(zl));
  EXPECT_GT(tensor::sum(za), 0.0f);  // but not silenced
}

TEST(AlifLayer, SpikesAreBinary) {
  AlifLayer alif(10, make_params(), Surrogate{});
  util::Rng rng(2);
  const Tensor x = Tensor::rand_uniform(Shape{10 * 2, 6}, rng, 0.0f, 3.0f);
  const Tensor z = alif.forward(x, nn::Mode::kEval);
  for (std::int64_t i = 0; i < z.numel(); ++i)
    // NOLINTNEXTLINE(snnsec-float-eq): ALIF spikes are exactly 0 or 1 by construction
    EXPECT_TRUE(z[i] == 0.0f || z[i] == 1.0f);
  EXPECT_GE(alif.last_spike_rate(), 0.0);
  EXPECT_LE(alif.last_spike_rate(), 1.0);
}

TEST(AlifLayer, BackwardMatchesLifWhenBetaZero) {
  const std::int64_t t = 12;
  AlifLayer alif(t, make_params(0.7f, 0.0f), Surrogate{});
  LifParameters lp;
  lp.v_th = 0.7f;
  LifLayer lif(t, lp, Surrogate{});
  util::Rng rng(3);
  const Tensor x = Tensor::rand_uniform(Shape{t * 2, 5}, rng, 0.0f, 2.0f);
  alif.forward(x, nn::Mode::kTrain);
  lif.forward(x, nn::Mode::kTrain);
  const Tensor g = Tensor::randn(Shape{t * 2, 5}, rng);
  EXPECT_TRUE(alif.backward(g).allclose(lif.backward(g), 1e-5f));
}

TEST(AlifLayer, BackwardIsLinearAndCausal) {
  const std::int64_t t = 8;
  AlifLayer alif(t, make_params(0.6f, 1.5f), Surrogate{});
  util::Rng rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{t * 2, 4}, rng, 0.0f, 2.0f);
  alif.forward(x, nn::Mode::kTrain);
  const Tensor g1 = Tensor::randn(Shape{t * 2, 4}, rng);
  const Tensor g2 = Tensor::randn(Shape{t * 2, 4}, rng);
  Tensor gsum = g1;
  gsum.add_(g2);
  Tensor expect = alif.backward(g1);
  expect.add_(alif.backward(g2));
  EXPECT_TRUE(alif.backward(gsum).allclose(expect, 1e-4f));

  // Causality: gradient injected at t=3 produces no dx at t >= 3.
  Tensor g(Shape{t * 2, 4});
  for (std::int64_t k = 0; k < 2 * 4; ++k) g[3 * 2 * 4 + k] = 1.0f;
  const Tensor dx = alif.backward(g);
  for (std::int64_t step = 3; step < t; ++step)
    for (std::int64_t k = 0; k < 2 * 4; ++k)
      EXPECT_FLOAT_EQ(dx[step * 2 * 4 + k], 0.0f);
}

TEST(AlifLayer, BackwardRequiresCache) {
  AlifLayer alif(4, make_params(), Surrogate{});
  alif.forward(Tensor(Shape{4, 2}), nn::Mode::kEval);
  EXPECT_THROW(alif.backward(Tensor(Shape{4, 2})), util::Error);
}

TEST(AlifLayer, NameDescribesConfig) {
  AlifLayer alif(16, make_params(1.5f, 0.3f, 0.8f), Surrogate{});
  const std::string n = alif.name();
  EXPECT_NE(n.find("T=16"), std::string::npos);
  EXPECT_NE(n.find("beta=0.3"), std::string::npos);
}

TEST(SpikingLenet, AlifVariantBuildsAndRuns) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  SnnConfig cfg;
  cfg.time_steps = 6;
  cfg.neuron_model = NeuronModel::kAlif;
  util::Rng rng(5);
  auto model = build_spiking_lenet(arch, cfg, rng);
  const Tensor x(Shape{2, 1, 8, 8});
  EXPECT_EQ(model->logits(x).shape(), Shape({2, 10}));
  // Gradients flow through the adaptive layers too.
  util::Rng drng(6);
  const Tensor xr = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  const Tensor g =
      model->input_gradient(xr, std::vector<std::int64_t>{1, 2}, nullptr);
  EXPECT_EQ(g.shape(), xr.shape());
}

}  // namespace
}  // namespace snnsec::snn
