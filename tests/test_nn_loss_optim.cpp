// Loss values and optimizer dynamics.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace snnsec::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::zeros(Shape{3, 10});
  const double l = loss.forward(logits, {0, 5, 9});
  EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::zeros(Shape{1, 3});
  logits[1] = 20.0f;
  EXPECT_LT(loss.forward(logits, {1}), 1e-4);
  EXPECT_GT(loss.forward(logits, {0}), 10.0);
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  util::Rng rng(1);
  const Tensor logits = Tensor::randn(Shape{4, 6}, rng);
  loss.forward(logits, {0, 1, 2, 3});
  const Tensor g = loss.backward();
  for (std::int64_t i = 0; i < 4; ++i) {
    double rowsum = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) rowsum += g.at({i, j});
    EXPECT_NEAR(rowsum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOneHotOverN) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::from_vector(Shape{1, 2}, {0.0f, 0.0f});
  loss.forward(logits, {0});
  const Tensor g = loss.backward();
  EXPECT_NEAR(g[0], 0.5f - 1.0f, 1e-6f);
  EXPECT_NEAR(g[1], 0.5f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::zeros(Shape{1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), util::Error);
  EXPECT_THROW(loss.forward(logits, {-1}), util::Error);
  EXPECT_THROW(loss.forward(logits, {0, 1}), util::Error);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), util::Error);
}

TEST(MseLoss, ZeroForPerfectOneHot) {
  MseLoss loss;
  const Tensor out = tensor::one_hot({1, 0}, 3);
  EXPECT_NEAR(loss.forward(out, {1, 0}), 0.0, 1e-7);
}

TEST(MseLoss, GradientPointsTowardTarget) {
  MseLoss loss;
  const Tensor out = Tensor::zeros(Shape{1, 2});
  loss.forward(out, {0});
  const Tensor g = loss.backward();
  EXPECT_LT(g[0], 0.0f);  // increase class-0 output to reduce loss
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

// Minimize f(w) = 0.5 * ||w - target||^2 whose gradient is (w - target).
class QuadraticProblem {
 public:
  explicit QuadraticProblem(std::vector<float> target)
      : param_("w", Tensor::zeros(Shape{static_cast<std::int64_t>(target.size())})),
        target_(std::move(target)) {}

  void fill_grad() {
    for (std::int64_t i = 0; i < param_.value.numel(); ++i)
      param_.grad[i] =
          param_.value[i] - target_[static_cast<std::size_t>(i)];
  }

  double distance() const {
    double d = 0.0;
    for (std::int64_t i = 0; i < param_.value.numel(); ++i) {
      const double e =
          param_.value[i] - target_[static_cast<std::size_t>(i)];
      d += e * e;
    }
    return std::sqrt(d);
  }

  Parameter param_;
  std::vector<float> target_;
};

TEST(Sgd, ConvergesOnQuadratic) {
  QuadraticProblem prob({1.0f, -2.0f, 3.0f});
  Sgd opt({&prob.param_}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    prob.fill_grad();
    opt.step();
  }
  EXPECT_LT(prob.distance(), 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  QuadraticProblem plain({5.0f});
  QuadraticProblem mom({5.0f});
  Sgd opt1({&plain.param_}, {.lr = 0.01, .momentum = 0.0, .weight_decay = 0.0});
  Sgd opt2({&mom.param_}, {.lr = 0.01, .momentum = 0.9, .weight_decay = 0.0});
  for (int i = 0; i < 30; ++i) {
    opt1.zero_grad();
    plain.fill_grad();
    opt1.step();
    opt2.zero_grad();
    mom.fill_grad();
    opt2.step();
  }
  EXPECT_LT(mom.distance(), plain.distance());
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor::full(Shape{1}, 10.0f));
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.zero_grad();  // gradient zero: only decay acts
  opt.step();
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticProblem prob({1.0f, -1.0f, 0.5f, 2.0f});
  Adam::Config cfg;
  cfg.lr = 0.01;
  Adam opt({&prob.param_}, cfg);
  for (int i = 0; i < 3000; ++i) {
    opt.zero_grad();
    prob.fill_grad();
    opt.step();
  }
  EXPECT_LT(prob.distance(), 1e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  Parameter p("w", Tensor::zeros(Shape{1}));
  Adam::Config cfg;
  cfg.lr = 0.1;
  Adam opt({&p}, cfg);
  p.grad[0] = 123.0f;  // any gradient magnitude
  opt.step();
  EXPECT_NEAR(std::fabs(p.value[0]), 0.1f, 1e-3f);
}

TEST(Optimizer, ZeroGradClearsAccumulators) {
  Parameter p("w", Tensor::zeros(Shape{3}));
  p.grad.fill(5.0f);
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.zero_grad();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.grad[i], 0.0f);
}

TEST(Optimizer, InvalidConfigsThrow) {
  Parameter p("w", Tensor::zeros(Shape{1}));
  EXPECT_THROW(Sgd({&p}, {.lr = 0.0, .momentum = 0.0, .weight_decay = 0.0}),
               util::Error);
  Adam::Config bad;
  bad.beta1 = 1.0;
  EXPECT_THROW(Adam({&p}, bad), util::Error);
}

}  // namespace
}  // namespace snnsec::nn
