// Deterministic kernel selection (DESIGN.md §14): hints are declared from
// operand role, resolved once per layer, sticky for the layer's lifetime —
// and because no kernel choice ever depends on runtime data, batched and
// single-sample forwards are bit-identical for every hint.
//
// The straddle tests pin down exactly the failure mode the old per-call
// probe had: an operand hovering at the 60% zero threshold, where different
// batch slices fall on different sides of the cut. A data-dependent
// dispatcher flips kernels between the batched call and the per-sample
// calls; sticky resolution cannot.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "snn/spiking_lenet.hpp"
#include "snn/spiking_network.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace snnsec {
namespace {

using tensor::Shape;
using tensor::SparsityHint;
using tensor::Tensor;

/// Batch whose OVERALL zero fraction straddles the old probe's 60% cut
/// while individual rows range from fully silent to fully dense: row i of 8
/// has its first 8*i of 64 features zeroed. Rows 0-4 are <60% zeros (dense
/// verdict alone), rows 5-7 are >=62% (sparse verdict alone).
Tensor straddle_batch(util::Rng& rng) {
  Tensor x = Tensor::rand_uniform(Shape{8, 64}, rng, 0.5f, 1.5f);
  float* p = x.data();
  for (std::int64_t i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 8 * i; ++j) p[i * 64 + j] = 0.0f;
  return x;
}

TEST(KernelDeterminism, StraddlingOperandBatchedVsSingleBitIdentical) {
  util::Rng rng_x(5);
  const Tensor x = straddle_batch(rng_x);
  for (const SparsityHint hint :
       {SparsityHint::kDense, SparsityHint::kSparse, SparsityHint::kEvents}) {
    util::Rng rng_w(97);  // same seed per hint -> identical weights
    nn::Linear fc(64, 10, rng_w);
    fc.set_input_hint(hint);
    const Tensor yf = fc.forward(x, nn::Mode::kEval);
    Tensor xi(Shape{1, 64});
    for (std::int64_t i = 0; i < 8; ++i) {
      std::memcpy(xi.data(), x.data() + i * 64, 64 * sizeof(float));
      const Tensor yi = fc.forward(xi, nn::Mode::kEval);
      EXPECT_EQ(std::memcmp(yi.data(), yf.data() + i * 10,
                            10 * sizeof(float)),
                0)
          << "hint " << static_cast<int>(hint) << " row " << i
          << ": batched and single-sample logits differ — kernel choice "
             "leaked data dependence";
    }
  }
}

TEST(KernelDeterminism, HintsAgreeOnValues) {
  // All three kernels compute the same product; only the summation
  // association may differ. Near-threshold data must not change that.
  util::Rng rng_x(6);
  const Tensor x = straddle_batch(rng_x);
  std::vector<Tensor> ys;
  for (const SparsityHint hint :
       {SparsityHint::kDense, SparsityHint::kSparse, SparsityHint::kEvents}) {
    util::Rng rng_w(98);
    nn::Linear fc(64, 10, rng_w);
    fc.set_input_hint(hint);
    ys.push_back(fc.forward(x, nn::Mode::kEval));
  }
  for (std::size_t h = 1; h < ys.size(); ++h)
    for (std::int64_t i = 0; i < ys[0].numel(); ++i)
      ASSERT_NEAR(ys[h][i], ys[0][i], 1e-4f) << "hint " << h << " flat " << i;
}

TEST(KernelDeterminism, ResolutionIsSticky) {
  // Once a layer has run, its kernel is latched: re-hinting must throw
  // (mid-run flips are exactly what the probe removal forbids).
  util::Rng rng(51);
  nn::Linear fc(16, 4, rng);
  const Tensor x = Tensor::randn(Shape{2, 16}, rng);
  (void)fc.forward(x, nn::Mode::kEval);
  EXPECT_THROW(fc.set_input_hint(SparsityHint::kSparse), util::Error);

  nn::Conv2d conv(nn::Conv2dSpec{1, 2, 3, 1, 1}, rng);
  const Tensor xc = Tensor::randn(Shape{1, 1, 6, 6}, rng);
  (void)conv.forward(xc, nn::Mode::kEval);
  EXPECT_THROW(conv.set_input_hint(SparsityHint::kEvents), util::Error);
}

TEST(KernelDeterminism, ConvRejectsRowSparseHint) {
  // Conv's GEMM puts the spike operand on the column side, where the
  // row-skip kernel cannot see the sparsity — accepting the hint would
  // silently run dense. It must be rejected loudly instead.
  util::Rng rng(53);
  nn::Conv2d conv(nn::Conv2dSpec{1, 2, 3, 1, 1}, rng);
  EXPECT_THROW(conv.set_input_hint(SparsityHint::kSparse), util::Error);
}

/// Full-model batched-vs-single bit-identity. Every stage — encoder, event
/// conv, LIF/ALIF state updates, pooled dense convs, event fc layers,
/// readout — processes samples independently with a fixed per-sample
/// operation order, so slicing the batch must not change any logit bit.
void expect_model_slice_invariant(snn::NeuronModel model, std::uint64_t seed) {
  nn::LenetSpec spec;
  spec.image_size = 8;
  spec.num_classes = 4;
  spec.conv1_channels = 2;
  spec.conv2_channels = 3;
  spec.conv3_channels = 4;
  spec.fc_hidden = 12;
  snn::SnnConfig config;
  config.time_steps = 6;
  config.neuron_model = model;
  util::Rng rng(seed);
  auto net = snn::build_spiking_lenet(spec, config, rng);

  util::Rng rng_x(seed + 1);
  const Tensor x = Tensor::rand_uniform(Shape{3, 1, 8, 8}, rng_x, 0.0f, 1.0f);
  const Tensor yf = net->logits(x);
  ASSERT_EQ(yf.dim(0), 3);
  Tensor xi(Shape{1, 1, 8, 8});
  for (std::int64_t i = 0; i < 3; ++i) {
    std::memcpy(xi.data(), x.data() + i * 64, 64 * sizeof(float));
    const Tensor yi = net->logits(xi);
    EXPECT_EQ(std::memcmp(yi.data(), yf.data() + i * yf.dim(1),
                          static_cast<std::size_t>(yf.dim(1)) * sizeof(float)),
              0)
        << "sample " << i << " logits differ between batch sizes";
  }
}

TEST(KernelDeterminism, SpikingLenetLifBatchedVsSingleBitIdentical) {
  expect_model_slice_invariant(snn::NeuronModel::kLif, 61);
}

TEST(KernelDeterminism, SpikingLenetAlifBatchedVsSingleBitIdentical) {
  expect_model_slice_invariant(snn::NeuronModel::kAlif, 67);
}

}  // namespace
}  // namespace snnsec
