// Fixture-based tests for the snnsec_analyze engine (tools/analyze).
//
// Every analysis (A1 hot-path reachability, A2 lock-order discipline,
// A3 concurrency heuristics, A4 metric registry, L layering) gets a
// known-bad fixture proving the rule fires — with the exact rule ID, and
// line number where the anchor is deterministic — and a known-good or
// suppressed fixture proving clean code and justified NOLINTs stay silent.
// Fixtures are multi-file: the point of the analyzer over the linter is
// that effects propagate across translation units, so most tests hand
// analyze() two or three models. The fixtures live in string literals —
// the engine blanks literal contents when scanning, so this file itself
// stays clean under the analyze_tree ctest.
#include "analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using snnsec::analyze::analyze;
using snnsec::analyze::AnalyzeResult;
using snnsec::analyze::extract_model;
using snnsec::analyze::FileModel;
using snnsec::analyze::Finding;
using snnsec::analyze::Options;

namespace {

AnalyzeResult run(const std::vector<std::pair<std::string, std::string>>& files,
                  const Options& opts = {}) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [path, src] : files) models.push_back(extract_model(path, src));
  return analyze(models, opts);
}

bool has(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

bool has_at(const std::vector<Finding>& fs, const std::string& rule,
            const std::string& file, int line) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file && f.line == line;
  });
}

}  // namespace

// ---- A1: hot-path reachability --------------------------------------------

TEST(AnalyzeHotPath, AllocReachableFromHotEntryInUnmarkedFile) {
  // The entry lives in a hot-marked context; the allocation lives two hops
  // away in a file with NO hot marker, where the per-file linter is blind.
  const auto r = run({
      {"src/serve/entry.cpp",
       "// fixture\n"
       "// SNNSEC_HOT entry: per-request drive\n"
       "void drive() {\n"
       "  mid_stage();\n"
       "}\n"},
      {"src/serve/helpers.cpp",
       "void mid_stage() {\n"
       "  helper_alloc();\n"
       "}\n"
       "void helper_alloc() {\n"
       "  scratch.push_back(1);\n"  // line 5: growth on the hot path
       "}\n"},
  });
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-hot-path-alloc", "src/serve/helpers.cpp", 5));
}

TEST(AnalyzeHotPath, LockAndIoReachableFromHotEntry) {
  const auto r = run({
      {"src/serve/entry.cpp",
       "// fixture\n"
       "// SNNSEC_HOT entry: per-request drive\n"
       "void drive() {\n"
       "  locky();\n"
       "  noisy();\n"
       "}\n"},
      {"src/serve/helpers.cpp",
       "void locky() {\n"
       "  std::lock_guard<std::mutex> lk(mu_);\n"  // line 2
       "}\n"
       "void noisy() {\n"
       "  printf(\"spike\");\n"  // line 5
       "}\n"},
  });
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-hot-path-lock", "src/serve/helpers.cpp", 2));
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-hot-path-io", "src/serve/helpers.cpp", 5));
}

TEST(AnalyzeHotPath, SilentWithoutEntryMarker) {
  // Same call graph, no hot-entry marker: nothing is hot, nothing fires.
  const auto r = run({
      {"src/serve/entry.cpp", "void drive() {\n  helper_alloc();\n}\n"},
      {"src/serve/helpers.cpp",
       "void helper_alloc() {\n  scratch.push_back(1);\n}\n"},
  });
  EXPECT_FALSE(has(r.findings, "snnsec-hot-path-alloc"));
}

TEST(AnalyzeHotPath, AllocsInHotMarkedFilesBelongToTheLinter) {
  // A file-level hot marker means snnsec_lint R1 already reports
  // allocations there; the analyzer must not duplicate them.
  const auto r = run({
      {"src/serve/entry.cpp",
       "// SNNSEC_HOT\n"
       "// SNNSEC_HOT entry: per-request drive\n"
       "void drive() {\n"
       "  scratch.push_back(1);\n"
       "}\n"},
  });
  EXPECT_FALSE(has(r.findings, "snnsec-hot-path-alloc"));
}

TEST(AnalyzeHotPath, JustifiedNolintSuppressesIncludingLegacyAlias) {
  const auto r = run({
      {"src/serve/entry.cpp",
       "// fixture\n"
       "// SNNSEC_HOT entry: per-request drive\n"
       "void drive() {\n"
       "  helper_a();\n"
       "  helper_b();\n"
       "}\n"},
      {"src/serve/helpers.cpp",
       "void helper_a() {\n"
       "  // NOLINTNEXTLINE(snnsec-hot-path-alloc): cold warmup, runs once\n"
       "  scratch.push_back(1);\n"  // line 3
       "}\n"
       "void helper_b() {\n"
       "  // NOLINTNEXTLINE(snnsec-hot-alloc): amortized growth, reused after\n"
       "  scratch.push_back(1);\n"  // line 7: legacy per-file rule alias
       "}\n"},
  });
  EXPECT_FALSE(has(r.findings, "snnsec-hot-path-alloc"));
  EXPECT_TRUE(has_at(r.suppressed, "snnsec-hot-path-alloc",
                     "src/serve/helpers.cpp", 3));
  EXPECT_TRUE(has_at(r.suppressed, "snnsec-hot-path-alloc",
                     "src/serve/helpers.cpp", 7));
}

// ---- A2: lock-order discipline --------------------------------------------

namespace {

// Two mutex members acquired in opposite orders by two methods: the
// canonical ABBA deadlock shape the cycle detector must report.
const char* kAbbaSource =
    "class Pair {\n"
    " public:\n"
    "  void ab();\n"
    "  void ba();\n"
    " private:\n"
    "  std::mutex a_;\n"
    "  std::mutex b_;\n"
    "};\n"
    "void Pair::ab() {\n"
    "  std::lock_guard<std::mutex> l1(a_);\n"
    "  std::lock_guard<std::mutex> l2(b_);\n"  // line 11: a_ -> b_
    "}\n"
    "void Pair::ba() {\n"
    "  std::lock_guard<std::mutex> l1(b_);\n"
    "  std::lock_guard<std::mutex> l2(a_);\n"  // line 15: b_ -> a_
    "}\n";

}  // namespace

TEST(AnalyzeLockOrder, ReportsSeededAbbaCycle) {
  const auto r = run({{"src/serve/pair.cpp", kAbbaSource}});
  EXPECT_TRUE(has(r.findings, "snnsec-lock-cycle"));
  // Both acquisition-order edges made it into the model.
  ASSERT_EQ(r.stats.lock_edges.size(), 2u);
  EXPECT_TRUE(std::any_of(
      r.stats.mutexes.begin(), r.stats.mutexes.end(),
      [](const std::string& m) { return m == "Pair::a_"; }));
}

TEST(AnalyzeLockOrder, ConsistentOrderIsClean) {
  const auto r = run({{"src/serve/pair.cpp",
                       "class Pair {\n"
                       " public:\n"
                       "  void ab();\n"
                       "  void ab2();\n"
                       " private:\n"
                       "  std::mutex a_;\n"
                       "  std::mutex b_;\n"
                       "};\n"
                       "void Pair::ab() {\n"
                       "  std::lock_guard<std::mutex> l1(a_);\n"
                       "  std::lock_guard<std::mutex> l2(b_);\n"
                       "}\n"
                       "void Pair::ab2() {\n"
                       "  std::lock_guard<std::mutex> l1(a_);\n"
                       "  std::lock_guard<std::mutex> l2(b_);\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-lock-cycle"));
  EXPECT_EQ(r.stats.lock_edges.size(), 1u);  // deduplicated a_ -> b_
}

TEST(AnalyzeLockOrder, InterProceduralCycleAcrossFiles) {
  // f() holds A and calls g() (other TU) which acquires B; h() holds B and
  // calls back into a() which acquires A. No single function nests locks.
  const auto r = run({
      {"src/serve/one.cpp",
       "class One {\n"
       " public:\n"
       "  void f(Two& t);\n"
       "  void a();\n"
       " private:\n"
       "  std::mutex ma_;\n"
       "};\n"
       "void One::f(Two& t) {\n"
       "  std::lock_guard<std::mutex> l(ma_);\n"
       "  t.acquire_b();\n"
       "}\n"
       "void One::a() {\n"
       "  std::lock_guard<std::mutex> l(ma_);\n"
       "}\n"},
      {"src/serve/two.cpp",
       "class Two {\n"
       " public:\n"
       "  void acquire_b();\n"
       "  void h(One& o);\n"
       " private:\n"
       "  std::mutex mb_;\n"
       "};\n"
       "void Two::acquire_b() {\n"
       "  std::lock_guard<std::mutex> l(mb_);\n"
       "}\n"
       "void Two::h(One& o) {\n"
       "  std::lock_guard<std::mutex> l(mb_);\n"
       "  o.a();\n"
       "}\n"},
  });
  EXPECT_TRUE(has(r.findings, "snnsec-lock-cycle"));
}

TEST(AnalyzeLockOrder, WaitWhileHoldingUnrelatedLock) {
  const auto r = run({{"src/serve/waiter.cpp",
                       "class W {\n"
                       " public:\n"
                       "  void f();\n"
                       " private:\n"
                       "  std::mutex a_;\n"
                       "  std::mutex b_;\n"
                       "  std::condition_variable cv_;\n"
                       "};\n"
                       "void W::f() {\n"
                       "  std::lock_guard<std::mutex> g(a_);\n"
                       "  std::unique_lock<std::mutex> u(b_);\n"
                       "  cv_.wait(u);\n"  // line 12: a_ still held
                       "}\n"}});
  EXPECT_TRUE(has_at(r.findings, "snnsec-lock-across-wait",
                     "src/serve/waiter.cpp", 12));
}

TEST(AnalyzeLockOrder, WaitReleasingItsOwnLockIsClean) {
  const auto r = run({{"src/serve/waiter.cpp",
                       "class W {\n"
                       " public:\n"
                       "  void f();\n"
                       " private:\n"
                       "  std::mutex b_;\n"
                       "  std::condition_variable cv_;\n"
                       "};\n"
                       "void W::f() {\n"
                       "  std::unique_lock<std::mutex> u(b_);\n"
                       "  cv_.wait(u);\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-lock-across-wait"));
}

TEST(AnalyzeLockOrder, CallingBlockingFunctionWithLockHeld) {
  // The wait is one call away: f() holds a_ and calls block_here(), whose
  // transitive summary says it parks on a condition variable.
  const auto r = run({
      {"src/serve/one.cpp",
       "class W {\n"
       " public:\n"
       "  void f();\n"
       " private:\n"
       "  std::mutex a_;\n"
       "};\n"
       "void W::f() {\n"
       "  std::lock_guard<std::mutex> g(a_);\n"
       "  block_here();\n"  // line 9
       "}\n"},
      {"src/serve/two.cpp",
       "class B {\n"
       " public:\n"
       "  void park();\n"
       " private:\n"
       "  std::mutex m_;\n"
       "  std::condition_variable cv_;\n"
       "};\n"
       "void B::park() {\n"
       "  std::unique_lock<std::mutex> u(m_);\n"
       "  cv_.wait(u);\n"
       "}\n"
       "void block_here(B& b) {\n"
       "  b.park();\n"
       "}\n"},
  });
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-lock-across-wait", "src/serve/one.cpp", 9));
}

// ---- A3: concurrency heuristics -------------------------------------------

TEST(AnalyzeConcurrency, MixedGuardedAndBareWrites) {
  const auto r = run({{"src/serve/counter.cpp",
                       "class C {\n"
                       " public:\n"
                       "  void inc();\n"
                       "  void reset();\n"
                       " private:\n"
                       "  std::mutex m_;\n"
                       "  long n_ = 0;\n"
                       "};\n"
                       "void C::inc() {\n"
                       "  std::lock_guard<std::mutex> l(m_);\n"
                       "  n_ = n_ + 1;\n"
                       "}\n"
                       "void C::reset() {\n"
                       "  n_ = 0;\n"  // line 14: bare write to a locked field
                       "}\n"}});
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-mixed-guard", "src/serve/counter.cpp", 14));
}

TEST(AnalyzeConcurrency, ConstructorWritesAreExempt) {
  // Pre-publication writes in the constructor don't race with anything.
  const auto r = run({{"src/serve/counter.cpp",
                       "class C {\n"
                       " public:\n"
                       "  C();\n"
                       "  void inc();\n"
                       " private:\n"
                       "  std::mutex m_;\n"
                       "  long n_ = 0;\n"
                       "};\n"
                       "C::C() {\n"
                       "  n_ = 0;\n"
                       "}\n"
                       "void C::inc() {\n"
                       "  std::lock_guard<std::mutex> l(m_);\n"
                       "  n_ = n_ + 1;\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-mixed-guard"));
}

TEST(AnalyzeConcurrency, AtomicMembersAreNotMixedGuardFindings) {
  const auto r = run({{"src/serve/counter.cpp",
                       "class C {\n"
                       " public:\n"
                       "  void inc();\n"
                       "  void reset();\n"
                       " private:\n"
                       "  std::mutex m_;\n"
                       "  std::atomic<long> n_{0};\n"
                       "};\n"
                       "void C::inc() {\n"
                       "  std::lock_guard<std::mutex> l(m_);\n"
                       "  n_ = n_ + 1;\n"
                       "}\n"
                       "void C::reset() {\n"
                       "  n_ = 0;\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-mixed-guard"));
}

TEST(AnalyzeConcurrency, RelaxedAtomicInFlagRole) {
  const auto r = run({{"src/serve/flags.cpp",
                       "std::atomic<bool> stop_flag{false};\n"
                       "void request_stop() {\n"
                       "  stop_flag.store(true, std::memory_order_relaxed);\n"
                       "}\n"}});
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-relaxed-atomic", "src/serve/flags.cpp", 3));
}

TEST(AnalyzeConcurrency, RelaxedCounterIsFine) {
  const auto r = run({{"src/serve/flags.cpp",
                       "std::atomic<long> hits_{0};\n"
                       "void bump() {\n"
                       "  hits_.fetch_add(1, std::memory_order_relaxed);\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-relaxed-atomic"));
}

// ---- A4: metric/trace string registry -------------------------------------

TEST(AnalyzeMetrics, NearMissNamesOneEditApart) {
  const auto r = run({{"src/serve/emit.cpp",
                       "void e() {\n"
                       "  metrics::counter_add(\"serve.requests\", 1);\n"
                       "  metrics::counter_add(\"serve.request\", 1);\n"
                       "}\n"}});
  EXPECT_TRUE(has(r.findings, "snnsec-metric-near-miss"));
}

TEST(AnalyzeMetrics, DistinctNamesAreClean) {
  const auto r = run({{"src/serve/emit.cpp",
                       "void e() {\n"
                       "  metrics::counter_add(\"serve.requests\", 1);\n"
                       "  metrics::gauge_set(\"pool.queue_depth\", 2.0);\n"
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-metric-near-miss"));
}

TEST(AnalyzeMetrics, UndocumentedNameAgainstDesignDoc) {
  Options opts;
  opts.design_source = "| `serve.requests` | counter | admitted requests |\n";
  const auto r = run({{"src/serve/emit.cpp",
                       "void e() {\n"
                       "  metrics::counter_add(\"serve.requests\", 1);\n"
                       "  metrics::counter_add(\"serve.evictions\", 1);\n"
                       "}\n"}},
                     opts);
  EXPECT_FALSE(
      has_at(r.findings, "snnsec-metric-undocumented", "src/serve/emit.cpp", 2));
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-metric-undocumented", "src/serve/emit.cpp", 3));
  // Without a design doc the documentation requirement is off entirely.
  const auto r2 = run({{"src/serve/emit.cpp",
                        "void e() {\n"
                        "  metrics::counter_add(\"serve.evictions\", 1);\n"
                        "}\n"}});
  EXPECT_FALSE(has(r2.findings, "snnsec-metric-undocumented"));
}

TEST(AnalyzeMetrics, FleetPrefixIsCollected) {
  // The fleet.* namespace joined the registry with the router/front-end:
  // near-miss detection and the documentation requirement both apply.
  const auto r = run({{"src/fleet/emit.cpp",
                       "void e() {\n"
                       "  metrics::counter_add(\"fleet.requests\", 1);\n"
                       "  metrics::counter_add(\"fleet.request\", 1);\n"
                       "}\n"}});
  EXPECT_TRUE(has(r.findings, "snnsec-metric-near-miss"));
  Options opts;
  opts.design_source =
      "| `fleet.requests` | counter | requests entering the router |\n";
  const auto r2 = run({{"src/fleet/emit.cpp",
                        "void e() {\n"
                        "  metrics::counter_add(\"fleet.requests\", 1);\n"
                        "  metrics::counter_add(\"fleet.rerouted\", 1);\n"
                        "}\n"}},
                      opts);
  EXPECT_FALSE(
      has_at(r2.findings, "snnsec-metric-undocumented", "src/fleet/emit.cpp", 2));
  EXPECT_TRUE(
      has_at(r2.findings, "snnsec-metric-undocumented", "src/fleet/emit.cpp", 3));
}

// The fleet wire-decode shape: the hot entry is the front-end's frame
// dispatch, and an allocation hiding in a helper TU without a file-level
// hot marker is only visible to the whole-program walk.
TEST(AnalyzeHotPath, FleetDispatchReachesHelperAlloc) {
  const auto r = run({
      {"src/fleet/frontend_entry.cpp",
       "// fixture\n"
       "// SNNSEC_HOT entry: frame dispatch\n"
       "void dispatch_frame(const FrameView& f) {\n"
       "  decode_request(f);\n"
       "}\n"},
      {"src/fleet/wire_helpers.cpp",
       "bool decode_request(const FrameView& f) {\n"
       "  scores.push_back(0.0f);\n"  // line 2: growth on the decode path
       "  return true;\n"
       "}\n"},
  });
  EXPECT_TRUE(has_at(r.findings, "snnsec-hot-path-alloc",
                     "src/fleet/wire_helpers.cpp", 2));
}

// ---- L: layering and include cycles ---------------------------------------

TEST(AnalyzeLayering, UtilMustNotIncludeUpperLayers) {
  const auto r = run({
      {"src/util/bad.cpp", "#include \"serve/server.hpp\"\n"},
      {"src/util/fine.cpp", "#include \"util/error.hpp\"\n"},
      {"src/tensor/bad2.cpp", "#include \"serve/batcher.hpp\"\n"},
      {"src/serve/fine2.cpp", "#include \"tensor/tensor.hpp\"\n"},
  });
  EXPECT_TRUE(has_at(r.findings, "snnsec-layering", "src/util/bad.cpp", 1));
  EXPECT_TRUE(has_at(r.findings, "snnsec-layering", "src/tensor/bad2.cpp", 1));
  EXPECT_EQ(std::count_if(
                r.findings.begin(), r.findings.end(),
                [](const Finding& f) { return f.rule == "snnsec-layering"; }),
            2);
}

TEST(AnalyzeLayering, IncludeCycleAcrossHeaders) {
  const auto r = run({
      {"src/nn/a.hpp", "#include \"nn/b.hpp\"\n"},
      {"src/nn/b.hpp", "#include \"nn/a.hpp\"\n"},
  });
  EXPECT_TRUE(has(r.findings, "snnsec-include-cycle"));
}

TEST(AnalyzeLayering, AcyclicIncludesAreClean) {
  const auto r = run({
      {"src/nn/a.hpp", "#include \"nn/b.hpp\"\n"},
      {"src/nn/b.hpp", "#include \"util/error.hpp\"\n"},
  });
  EXPECT_FALSE(has(r.findings, "snnsec-include-cycle"));
}

// ---- suppression contract --------------------------------------------------

TEST(AnalyzeSuppression, UnjustifiedNolintIsItselfAFinding) {
  const auto r = run({{"src/serve/s.cpp",
                       "void f() {\n"
                       "  g();  // NOLINT(snnsec-mixed-guard)\n"  // no reason
                       "}\n"}});
  EXPECT_TRUE(
      has_at(r.findings, "snnsec-nolint-justification", "src/serve/s.cpp", 2));
}

TEST(AnalyzeSuppression, JustifiedNolintSilencesTheRule) {
  const auto r = run({{"src/serve/waiter.cpp",
                       "class W {\n"
                       " public:\n"
                       "  void f();\n"
                       " private:\n"
                       "  std::mutex a_;\n"
                       "  std::mutex b_;\n"
                       "  std::condition_variable cv_;\n"
                       "};\n"
                       "void W::f() {\n"
                       "  std::lock_guard<std::mutex> g(a_);\n"
                       "  std::unique_lock<std::mutex> u(b_);\n"
                       "  // NOLINTNEXTLINE(snnsec-lock-across-wait): a_ only "
                       "guards config reads, never taken by workers\n"
                       "  cv_.wait(u);\n"  // line 13
                       "}\n"}});
  EXPECT_FALSE(has(r.findings, "snnsec-lock-across-wait"));
  EXPECT_TRUE(has_at(r.suppressed, "snnsec-lock-across-wait",
                     "src/serve/waiter.cpp", 13));
}

// ---- model serialization ---------------------------------------------------

TEST(AnalyzeModel, SerializationRoundTripPreservesFindings) {
  // Extract, serialize, deserialize, analyze: the cached path must produce
  // byte-identical analysis input. The ABBA fixture exercises classes,
  // members, acquisitions and held-sets.
  const std::string path = "src/serve/pair.cpp";
  const FileModel fresh = extract_model(path, kAbbaSource);
  const std::string payload = snnsec::analyze::serialize_model(fresh);
  FileModel reloaded;
  ASSERT_TRUE(snnsec::analyze::deserialize_model(payload, path, reloaded));
  const auto a = analyze({fresh});
  const auto b = analyze({reloaded});
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
  }
  EXPECT_TRUE(has(b.findings, "snnsec-lock-cycle"));
}

TEST(AnalyzeModel, MalformedPayloadIsACacheMiss) {
  FileModel out;
  EXPECT_FALSE(snnsec::analyze::deserialize_model("garbage\nF\x1f", "p", out));
  // An empty payload is the valid serialization of a file with no model
  // content (e.g. a doc-only header), not corruption.
  EXPECT_TRUE(snnsec::analyze::deserialize_model("", "p", out));
}

TEST(AnalyzeModel, RuleIdsAreStableAndPrefixed) {
  const auto& ids = snnsec::analyze::rule_ids();
  EXPECT_FALSE(ids.empty());
  for (std::string_view id : ids) {
    EXPECT_EQ(id.find("snnsec-"), std::string_view::npos)
        << "rule_ids() entries are unprefixed: " << id;
  }
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), "hot-path-alloc") != ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), "lock-cycle") != ids.end());
}
