// fleet::Frontend over loopback TCP: request/response roundtrip, ping
// echo, byte-at-a-time client writes, malformed-stream teardown, quota
// rejections over the wire, concurrent clients, stop-then-drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fleet/client.hpp"
#include "fleet/frontend.hpp"
#include "fleet/router.hpp"
#include "fleet/wire.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/rng.hpp"

namespace snnsec::fleet {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kImage = 8;
constexpr std::size_t kPixels = kImage * kImage;
constexpr std::size_t kMaxPayload = 1 << 16;

std::string checkpoint(const char* name, double v_th, std::int64_t steps) {
  const std::string path =
      (fs::temp_directory_path() /
       (std::string("snnsec_test_fleetfe_") + name + ".snnm"))
          .string();
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = kImage;
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = steps;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  snn::save_spiking_lenet(path, *model, arch, cfg);
  return path;
}

RouterConfig fleet_config() {
  static const std::string low = checkpoint("low", 0.8, 8);
  static const std::string bal = checkpoint("bal", 1.1, 8);
  static const std::string hard = checkpoint("hard", 1.4, 10);
  RouterConfig cfg;
  const struct {
    const char* name;
    GroupRole role;
    const std::string* path;
  } cells[] = {{"low", GroupRole::kLowLatency, &low},
               {"bal", GroupRole::kBalanced, &bal},
               {"hard", GroupRole::kHardened, &hard}};
  for (const auto& c : cells) {
    GroupConfig g;
    g.name = c.name;
    g.role = c.role;
    g.model_path = *c.path;
    g.replicas = 1;
    g.server.workers = 0;
    g.server.batcher.max_batch = 2;
    g.server.batcher.max_delay_us = 200;
    g.server.batcher.capacity = 16;
    cfg.groups.push_back(g);
  }
  cfg.tenants.push_back({1, Threat::kTrusted, 0.0, 0.0});
  cfg.tenants.push_back({3, Threat::kHostile, 0.0, 0.0});
  return cfg;
}

FrontendConfig frontend_config() {
  FrontendConfig fc;
  fc.port = 0;
  fc.executors = 2;
  fc.queue_capacity = 8;
  fc.max_payload = kMaxPayload;
  return fc;
}

std::vector<float> random_pixels(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> px(kPixels);
  rng.fill_uniform(px.data(), px.size(), 0.0f, 1.0f);
  return px;
}

/// Raw blocking loopback socket for the byte-level tests.
int connect_raw(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)), 0);
  return fd;
}

/// Read from fd into dec until one frame surfaces. False on EOF/error.
bool read_one_frame(int fd, Decoder& dec, FrameView& f) {
  std::uint8_t buf[4096];
  for (;;) {
    if (dec.next(f)) return true;
    if (dec.error() != WireError::kNone) return false;
    const ssize_t r = ::recv(fd, buf, std::min(sizeof(buf), dec.free()), 0);
    if (r <= 0) return false;
    if (!dec.feed(buf, static_cast<std::size_t>(r))) return false;
  }
}

TEST(FleetFrontend, RequestResponseRoundtrip) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());

  const auto px = random_pixels(1);
  RequestMeta meta;
  meta.request_id = 101;
  meta.tenant = 1;
  ResponseMeta out;
  std::vector<float> scores;
  std::string err;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out, &scores, &err))
      << err;
  EXPECT_EQ(out.request_id, 101U);
  EXPECT_EQ(out.tenant, 1U);
  EXPECT_EQ(out.status,
            static_cast<std::uint8_t>(serve::ResultStatus::kOk));
  EXPECT_LT(out.pred, 10U);
  ASSERT_EQ(out.num_scores, 10U);
  ASSERT_EQ(scores.size(), 10U);
  EXPECT_EQ(out.group,
            static_cast<std::uint8_t>(router.low_latency_group()));
  // Trusted traffic rides the truncation cliff: 7 of 8 steps.
  EXPECT_EQ(out.steps_used, 7U);
  EXPECT_NE(out.resp_flags & kRespTruncated, 0);

  const FrontendStats s = fe.stats();
  EXPECT_EQ(s.connections_accepted, 1);
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.responses, 1);
  EXPECT_EQ(s.malformed, 0);
}

TEST(FleetFrontend, EnsembleFlagTravelsTheWire) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());
  const auto px = random_pixels(2);
  RequestMeta meta;
  meta.request_id = 1;
  meta.tenant = 3;  // hostile -> ensemble vote
  ResponseMeta out;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out));
  EXPECT_NE(out.resp_flags & kRespEnsemble, 0);
  EXPECT_EQ(out.status,
            static_cast<std::uint8_t>(serve::ResultStatus::kOk));
}

TEST(FleetFrontend, PingEchoesPayload) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());
  const char payload[] = "fleet-ping";
  EXPECT_TRUE(client.ping(payload, sizeof(payload)));
  EXPECT_TRUE(client.ping(nullptr, 0));
}

TEST(FleetFrontend, ByteAtATimeWritesReassemble) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  const int fd = connect_raw(fe.port());

  const auto px = random_pixels(3);
  RequestMeta meta;
  meta.request_id = 55;
  meta.tenant = 1;
  std::vector<std::uint8_t> buf(encoded_size(4 + 4 * kPixels));
  ASSERT_EQ(encode_request(buf.data(), buf.size(), meta, px.data(),
                           px.size()),
            buf.size());
  for (const std::uint8_t b : buf)
    ASSERT_EQ(::send(fd, &b, 1, MSG_NOSIGNAL), 1);

  Decoder dec(kMaxPayload);
  FrameView f;
  ASSERT_TRUE(read_one_frame(fd, dec, f));
  EXPECT_EQ(f.type, FrameType::kResponse);
  EXPECT_EQ(f.request_id, 55U);
  ::close(fd);
}

TEST(FleetFrontend, MalformedStreamGetsErrorThenTeardown) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  const int fd = connect_raw(fe.port());

  std::uint8_t junk[kWireHeaderSize];
  std::memset(junk, 0xEE, sizeof(junk));  // wrong magic
  ASSERT_EQ(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(junk)));

  Decoder dec(kMaxPayload);
  FrameView f;
  ASSERT_TRUE(read_one_frame(fd, dec, f));
  EXPECT_EQ(f.type, FrameType::kError);
  // After the error frame the server tears the connection down.
  std::uint8_t b;
  EXPECT_EQ(::recv(fd, &b, 1, 0), 0);
  ::close(fd);
  EXPECT_GE(fe.stats().malformed, 1);
}

TEST(FleetFrontend, WrongImageSizeKeepsConnectionUsable) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());

  const auto px = random_pixels(4);
  RequestMeta meta;
  meta.request_id = 9;
  meta.tenant = 1;
  ResponseMeta out;
  std::string err;
  // Ship one pixel short: an application error, not stream desync.
  EXPECT_FALSE(
      client.request(meta, px.data(), px.size() - 1, out, nullptr, &err));
  EXPECT_EQ(err, "bad image size");

  // The same connection still serves a well-formed request.
  meta.request_id = 10;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out));
  EXPECT_EQ(out.request_id, 10U);
  EXPECT_EQ(fe.stats().connections_accepted, 1);
}

TEST(FleetFrontend, QuotaRejectionTravelsTheWire) {
  RouterConfig rc = fleet_config();
  rc.tenants.push_back({8, Threat::kTrusted, 0.0, 1.0});  // budget of one
  Router router(rc);
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());

  const auto px = random_pixels(5);
  RequestMeta meta;
  meta.request_id = 1;
  meta.tenant = 8;
  ResponseMeta out;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out));
  EXPECT_EQ(out.status,
            static_cast<std::uint8_t>(serve::ResultStatus::kOk));

  meta.request_id = 2;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out));
  EXPECT_EQ(out.status,
            static_cast<std::uint8_t>(serve::ResultStatus::kRejected));
  EXPECT_EQ(out.pred, 0xFFFFFFFFU);
  EXPECT_EQ(out.num_scores, 0U);
}

TEST(FleetFrontend, ConcurrentClientsAllAnswered) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  constexpr int kClients = 3;
  constexpr int kPerClient = 4;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client("127.0.0.1", fe.port(), kMaxPayload);
      if (!client.connected()) return;
      const auto px =
          random_pixels(100 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        RequestMeta meta;
        meta.request_id =
            static_cast<std::uint64_t>(c) * 1000 +
            static_cast<std::uint64_t>(i);
        meta.tenant = 1;
        ResponseMeta out;
        if (client.request(meta, px.data(), px.size(), out) &&
            out.status ==
                static_cast<std::uint8_t>(serve::ResultStatus::kOk))
          ++ok_counts[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(ok_counts[static_cast<std::size_t>(c)], kPerClient)
        << "client " << c;
  // The response counter ticks after the write lands; stop() joins the
  // executors, so the counters are final afterwards.
  fe.stop();
  const FrontendStats s = fe.stats();
  EXPECT_EQ(s.requests, kClients * kPerClient);
  EXPECT_EQ(s.responses, kClients * kPerClient);
}

TEST(FleetFrontend, SlowReaderCannotWedgeWriters) {
  // Regression: writes used to block without bound, so a client that
  // stopped reading could wedge the I/O thread (inline ping replies) and
  // make stop() hang. Writes are now bounded by write_timeout_ms; a
  // stalled reader is dropped and the front-end stays responsive.
  Router router(fleet_config());
  FrontendConfig fc = frontend_config();
  fc.write_timeout_ms = 50;
  Frontend fe(router, fc);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // Pin the receive window small before connecting; this client never
  // reads, so echoed pongs back up into the server's send path fast.
  const int rcv = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(fe.port()));
  inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)), 0);

  const std::size_t kPing = 32 * 1024;
  std::vector<std::uint8_t> payload(kPing, 0xAB);
  std::vector<std::uint8_t> frame(encoded_size(kPing));
  const std::size_t len =
      encode_frame(frame.data(), frame.size(), FrameType::kPing, 0, 1, 1, 0,
                   payload.data(), payload.size());
  ASSERT_EQ(len, frame.size());
  // Pour pings at the server until one echoed pong write times out. The
  // 256-frame ceiling (8 MB of pongs) is far beyond any kernel buffering.
  bool timed_out = false;
  for (int i = 0; i < 256 && !timed_out; ++i) {
    const std::uint8_t* p = frame.data();
    std::size_t n = len;
    while (n > 0) {
      const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
      if (w <= 0) break;
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    timed_out = fe.stats().write_timeouts >= 1;
  }
  EXPECT_TRUE(timed_out);
  ::close(fd);
  // The wedge used to surface here: stop() joining a blocked thread.
  fe.stop();
  EXPECT_GE(fe.stats().write_timeouts, 1);
}

TEST(FleetFrontend, StopThenDrainIsIdempotent) {
  Router router(fleet_config());
  Frontend fe(router, frontend_config());
  WireClient client("127.0.0.1", fe.port(), kMaxPayload);
  ASSERT_TRUE(client.connected());
  const auto px = random_pixels(6);
  RequestMeta meta;
  meta.request_id = 77;
  meta.tenant = 1;
  ResponseMeta out;
  ASSERT_TRUE(client.request(meta, px.data(), px.size(), out));

  fe.stop();
  fe.stop();  // idempotent
  const FrontendStats s = fe.stats();
  // Drain guarantee: every dispatched request was answered before close.
  EXPECT_EQ(s.responses, s.requests);
  EXPECT_EQ(s.connections_open, 0);
}

}  // namespace
}  // namespace snnsec::fleet
