// ASCII line-chart renderer.
#include <gtest/gtest.h>

#include "util/ascii_plot.hpp"
#include "util/error.hpp"

namespace snnsec::util {
namespace {

TEST(AsciiPlot, RendersMarkersAndLegend) {
  const std::vector<double> x{0.0, 0.5, 1.0};
  const std::vector<PlotSeries> series{{"cnn", {1.0, 0.5, 0.0}},
                                       {"snn", {0.8, 0.7, 0.6}}};
  const std::string chart = ascii_plot(x, series);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("cnn"), std::string::npos);
  EXPECT_NE(chart.find("snn"), std::string::npos);
  EXPECT_NE(chart.find("1.00"), std::string::npos);  // y-axis label
  EXPECT_NE(chart.find("0.00"), std::string::npos);
}

TEST(AsciiPlot, HighValuesLandOnTopRow) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<PlotSeries> series{{"s", {1.0, 0.0}}};
  const std::string chart = ascii_plot(x, series);
  // First line holds y_max; the marker for y=1.0 must be on it.
  const std::string first_line = chart.substr(0, chart.find('\n'));
  EXPECT_NE(first_line.find('*'), std::string::npos);
}

TEST(AsciiPlot, ClampsOutOfRangeValues) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<PlotSeries> series{{"s", {5.0, -3.0}}};
  EXPECT_NO_THROW(ascii_plot(x, series));  // clamped, not thrown
}

TEST(AsciiPlot, ValidatesInputs) {
  EXPECT_THROW(ascii_plot({0.0}, {{"s", {1.0}}}), Error);  // 1 x point
  EXPECT_THROW(ascii_plot({0.0, 1.0}, {}), Error);         // no series
  EXPECT_THROW(ascii_plot({0.0, 1.0}, {{"s", {1.0}}}), Error);  // len mismatch
  EXPECT_THROW(ascii_plot({1.0, 1.0}, {{"s", {1.0, 2.0}}}), Error);  // x flat
  PlotOptions bad;
  bad.width = 2;
  EXPECT_THROW(ascii_plot({0.0, 1.0}, {{"s", {0.0, 1.0}}}, bad), Error);
  bad = PlotOptions{};
  bad.y_min = 1.0;
  bad.y_max = 0.0;
  EXPECT_THROW(ascii_plot({0.0, 1.0}, {{"s", {0.0, 1.0}}}, bad), Error);
}

TEST(AsciiPlot, CustomRangeAndLabels) {
  PlotOptions opts;
  opts.y_min = -1.0;
  opts.y_max = 1.0;
  opts.x_label = "epsilon";
  const std::string chart =
      ascii_plot({0.0, 2.0}, {{"curve", {-1.0, 1.0}}}, opts);
  EXPECT_NE(chart.find("epsilon"), std::string::npos);
  EXPECT_NE(chart.find("-1.00"), std::string::npos);
}

TEST(AsciiPlot, ManySeriesCycleMarkers) {
  const std::vector<double> x{0.0, 1.0};
  std::vector<PlotSeries> series;
  for (int i = 0; i < 7; ++i)
    series.push_back({"s" + std::to_string(i),
                      {0.1 * i, 0.1 * i + 0.05}});
  const std::string chart = ascii_plot(x, series);
  EXPECT_NE(chart.find('#'), std::string::npos);  // 5th marker reached
}

}  // namespace
}  // namespace snnsec::util
