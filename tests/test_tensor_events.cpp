// Event-driven spike kernels: compressed event lists, the event-accumulate
// GEMM, both conv formulations (patch-list reference and production
// scatter), and the probe_sparse tail-coverage regression.
//
// The determinism assertions here are the teeth behind DESIGN.md §14: the
// event kernels must be bit-identical across batch sizes and serial/parallel
// execution, because layers resolve a kernel once and serve relies on
// replicas agreeing to the bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/spike_events.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

// Counting operator-new hook for the zero-allocation steady-state tests.
// Counts every heap allocation in the binary; tests snapshot the counter
// around warmed-up hot-path calls and assert the delta is zero.
//
// GCC's -Wmismatched-new-delete heuristic misfires when it inlines these
// replacements into gtest internals (new -> malloc paired with free IS the
// matched path here); same device as the bench binaries, which happen not
// to trip the inliner.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace snnsec::tensor {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Spike-like operand: bernoulli(rate) mask times non-binary magnitudes, so
/// the tests cover graded events (pooled rates, weighted spikes), not just
/// 0/1 slabs.
Tensor spike_operand(Shape shape, double rate, util::Rng& rng) {
  Tensor mask = Tensor::bernoulli(shape, rng, rate);
  const Tensor mag = Tensor::rand_uniform(shape, rng, 0.5f, 1.5f);
  float* pm = mask.data();
  const float* pg = mag.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) pm[i] *= pg[i];
  return mask;
}

/// Naive dense reference for C = alpha * A * op(B) + beta * C.
void ref_gemm(const Tensor& a, const Tensor& b, Trans trans_b, float alpha,
              float beta, Tensor& c) {
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = (trans_b == Trans::kNo) ? b.dim(1) : b.dim(0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float bv =
            (trans_b == Trans::kNo) ? b.at({p, j}) : b.at({j, p});
        acc += static_cast<double>(a.at({i, p})) * bv;
      }
      c.at({i, j}) =
          static_cast<float>(alpha * acc + static_cast<double>(beta) *
                                               static_cast<double>(c.at({i, j})));
    }
}

TEST(BuildEventRows, CompressesRowsInColumnOrder) {
  // 4 rows x 5 cols embedded in lda = 7 (strided view): an empty row, a
  // full row, and rows with scattered events. The padding columns (>= 5)
  // must never be read.
  const std::int64_t rows = 4, cols = 5, lda = 7;
  std::vector<float> a(static_cast<std::size_t>(rows * lda), 9.0f);
  auto set_row = [&](std::int64_t r, std::initializer_list<float> vals) {
    std::int64_t j = 0;
    for (float v : vals) a[static_cast<std::size_t>(r * lda + j++)] = v;
  };
  set_row(0, {0.0f, 2.0f, 0.0f, 0.0f, -1.0f});
  set_row(1, {0.0f, 0.0f, 0.0f, 0.0f, 0.0f});  // silent row
  set_row(2, {1.0f, 1.0f, 1.0f, 1.0f, 1.0f});  // saturated row
  set_row(3, {0.0f, 0.0f, 0.5f, 0.0f, 0.0f});

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  const EventRows ev = build_event_rows(a.data(), lda, rows, cols, ws);
  ASSERT_EQ(ev.rows, rows);
  ASSERT_EQ(ev.cols, cols);
  ASSERT_GE(ev.stride, cols);

  EXPECT_EQ(ev.count[0], 2);
  EXPECT_EQ(ev.count[1], 0);
  EXPECT_EQ(ev.count[2], 5);
  EXPECT_EQ(ev.count[3], 1);
  // Row 0: events at columns 1 and 4, in increasing column order.
  EXPECT_EQ(ev.index[0 * ev.stride + 0], 1);
  EXPECT_EQ(ev.index[0 * ev.stride + 1], 4);
  EXPECT_EQ(ev.value[0 * ev.stride + 0], 2.0f);
  EXPECT_EQ(ev.value[0 * ev.stride + 1], -1.0f);
  // Row 2: all five columns.
  for (std::int32_t e = 0; e < 5; ++e)
    EXPECT_EQ(ev.index[2 * ev.stride + e], e);
  EXPECT_EQ(ev.index[3 * ev.stride + 0], 2);
  EXPECT_EQ(ev.value[3 * ev.stride + 0], 0.5f);
}

TEST(GemmEvents, MatchesDenseAcrossFiringRates) {
  // The acceptance-relevant rates: 1% (near-silent), 5/20% (SNN operating
  // points), 50% (worst case where the event path must still be correct).
  util::Workspace& ws = util::Workspace::local();
  for (const double rate : {0.01, 0.05, 0.20, 0.50}) {
    util::Rng rng(static_cast<std::uint64_t>(rate * 1000) + 3);
    const std::int64_t m = 23, k = 67, n = 19;
    const Tensor a = spike_operand(Shape{m, k}, rate, rng);
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      const Tensor b = Tensor::randn(
          (tb == Trans::kNo) ? Shape{k, n} : Shape{n, k}, rng);
      Tensor want = Tensor::rand_uniform(Shape{m, n}, rng, -1.0f, 1.0f);
      Tensor got = want.clone();
      ref_gemm(a, b, tb, /*alpha=*/0.75f, /*beta=*/0.5f, want);
      util::Workspace::Scope scope(ws);
      const EventRows ev = build_event_rows(a.data(), k, m, k, ws);
      gemm_events(ev, tb, n, 0.75f, b.data(), b.dim(1), 0.5f, got.data(), n);
      for (std::int64_t i = 0; i < got.numel(); ++i)
        ASSERT_NEAR(got[i], want[i], 2e-4f)
            << "rate " << rate << " trans_b " << (tb == Trans::kYes)
            << " flat " << i;
    }
  }
}

TEST(GemmEvents, StridedOperandsAndViews) {
  // Operand, B, and C all embedded with leading dimensions larger than the
  // logical widths; the guard values must survive untouched.
  const std::int64_t m = 9, k = 21, n = 11;
  const std::int64_t lda = 29, ldb = 17, ldc = 13;
  util::Rng rng(42);
  std::vector<float> abuf(static_cast<std::size_t>(m * lda), 0.0f);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < k; ++j)
      abuf[static_cast<std::size_t>(i * lda + j)] =
          (rng.uniform() < 0.2) ? static_cast<float>(rng.uniform()) : 0.0f;
  std::vector<float> bbuf(static_cast<std::size_t>(k * ldb));
  for (auto& v : bbuf) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  std::vector<float> cbuf(static_cast<std::size_t>(m * ldc), 7.0f);

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  const EventRows ev = build_event_rows(abuf.data(), lda, m, k, ws);
  gemm_events(ev, Trans::kNo, n, 1.0f, bbuf.data(), ldb, 0.0f, cbuf.data(),
              ldc);

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(abuf[static_cast<std::size_t>(i * lda + p)]) *
               bbuf[static_cast<std::size_t>(p * ldb + j)];
      EXPECT_NEAR(cbuf[static_cast<std::size_t>(i * ldc + j)],
                  static_cast<float>(acc), 1e-4f);
    }
    // Guard columns beyond n are untouched.
    for (std::int64_t j = n; j < ldc; ++j)
      EXPECT_EQ(cbuf[static_cast<std::size_t>(i * ldc + j)], 7.0f);
  }
}

TEST(GemmEvents, SerialAndParallelBitIdentical) {
  // Large enough that the full call crosses the parallel threshold; a
  // single-row view of the same event lists stays serial. Rows are
  // independent, so the two must agree to the bit.
  const std::int64_t m = 128, k = 128, n = 96;
  util::Rng rng(7);
  const Tensor a = spike_operand(Shape{m, k}, 0.15, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  const EventRows ev = build_event_rows(a.data(), k, m, k, ws);

  Tensor full(Shape{m, n});
  gemm_events(ev, Trans::kNo, n, 1.0f, b.data(), n, 0.0f, full.data(), n);

  Tensor row(Shape{1, n});
  for (std::int64_t i = 0; i < m; ++i) {
    EventRows one = ev;
    one.count = ev.count + i;
    one.index = ev.index + i * ev.stride;
    one.value = ev.value + i * ev.stride;
    one.rows = 1;
    gemm_events(one, Trans::kNo, n, 1.0f, b.data(), n, 0.0f, row.data(), n);
    EXPECT_EQ(std::memcmp(row.data(), full.data() + i * n,
                          static_cast<std::size_t>(n) * sizeof(float)),
              0)
        << "row " << i << " differs between parallel and serial execution";
  }
}

TEST(BuildConvEvents, MatchesIm2rowLowering) {
  // Reconstruct the dense im2row matrix from the event lists and compare
  // with the transpose of im2col's column matrix.
  ConvGeometry g;
  g.channels = 3;
  g.height = 9;
  g.width = 7;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.pad_h = 1;
  g.pad_w = 1;
  g.validate();
  const std::int64_t batch = 2;
  util::Rng rng(11);
  const Tensor x =
      spike_operand(Shape{batch, g.channels, g.height, g.width}, 0.25, rng);

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  const EventRows ev = build_conv_events(g, x.data(), batch, ws);
  const std::int64_t ohw = g.out_h() * g.out_w();
  const std::int64_t patch = g.patch_size();
  ASSERT_EQ(ev.rows, batch * ohw);
  ASSERT_EQ(ev.cols, patch);

  std::vector<float> cols(static_cast<std::size_t>(patch * ohw));
  for (std::int64_t i = 0; i < batch; ++i) {
    im2col(g, x.data() + i * g.channels * g.height * g.width, cols.data());
    for (std::int64_t r = 0; r < ohw; ++r) {
      std::vector<float> dense(static_cast<std::size_t>(patch), 0.0f);
      const std::int64_t row = i * ohw + r;
      std::int32_t prev = -1;
      for (std::int32_t e = 0; e < ev.count[row]; ++e) {
        const std::int32_t p = ev.index[row * ev.stride + e];
        EXPECT_GT(p, prev) << "events out of patch order";
        prev = p;
        dense[static_cast<std::size_t>(p)] = ev.value[row * ev.stride + e];
      }
      for (std::int64_t p = 0; p < patch; ++p)
        ASSERT_EQ(dense[static_cast<std::size_t>(p)],
                  cols[static_cast<std::size_t>(p * ohw + r)])
            << "sample " << i << " out-pos " << r << " patch " << p;
    }
  }
}

TEST(ConvEvents, ScatterMatchesPatchListReference) {
  // The production scatter kernel against the independently-tested
  // patch-list formulation. Different summation association (one event at a
  // time vs 4-way grouped), so allclose rather than bitwise.
  ConvGeometry g;
  g.channels = 2;
  g.height = 12;
  g.width = 10;
  g.kernel_h = 5;
  g.kernel_w = 5;
  g.pad_h = 2;
  g.pad_w = 2;
  g.validate();
  const std::int64_t batch = 3, cout = 7;
  const std::int64_t ohw = g.out_h() * g.out_w();
  util::Rng rng(13);
  const Tensor x =
      spike_operand(Shape{batch, g.channels, g.height, g.width}, 0.2, rng);
  const Tensor w = Tensor::randn(Shape{cout, g.patch_size()}, rng);

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  std::vector<float> got(static_cast<std::size_t>(batch * ohw * cout));
  conv_events(g, x.data(), batch, w.data(), cout, got.data(), ws);

  std::vector<float> want(got.size(), 0.0f);
  {
    util::Workspace::Scope inner(ws);
    const EventRows ev = build_conv_events(g, x.data(), batch, ws);
    gemm_events(ev, Trans::kYes, cout, 1.0f, w.data(), g.patch_size(), 0.0f,
                want.data(), cout);
  }
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-4f) << "flat index " << i;
}

TEST(ConvEvents, BatchedVsSingleBitIdentical) {
  // Parallelism is over the batch only and each sample's events apply in a
  // fixed scan order, so slicing the batch must not change a single bit.
  ConvGeometry g;
  g.channels = 3;
  g.height = 8;
  g.width = 8;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.pad_h = 1;
  g.pad_w = 1;
  g.validate();
  const std::int64_t batch = 5, cout = 4;
  const std::int64_t chw = g.channels * g.height * g.width;
  const std::int64_t ohw = g.out_h() * g.out_w();
  util::Rng rng(17);
  const Tensor x = spike_operand(Shape{batch, g.channels, g.height, g.width},
                                 0.3, rng);
  const Tensor w = Tensor::randn(Shape{cout, g.patch_size()}, rng);

  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  std::vector<float> full(static_cast<std::size_t>(batch * ohw * cout));
  conv_events(g, x.data(), batch, w.data(), cout, full.data(), ws);

  std::vector<float> one(static_cast<std::size_t>(ohw * cout));
  for (std::int64_t i = 0; i < batch; ++i) {
    conv_events(g, x.data() + i * chw, 1, w.data(), cout, one.data(), ws);
    EXPECT_EQ(std::memcmp(one.data(), full.data() + i * ohw * cout,
                          one.size() * sizeof(float)),
              0)
        << "sample " << i << " differs between batched and single calls";
  }
}

TEST(Conv2dEvents, ForwardMatchesDenseKernel) {
  // The same layer weights through the dense im2col+GEMM path and the event
  // scatter path must agree (association tolerance only).
  const nn::Conv2dSpec spec{/*in_channels=*/2, /*out_channels=*/5,
                            /*kernel=*/5, /*stride=*/1, /*padding=*/2};
  util::Rng rng_a(23), rng_b(23), rng_x(29);
  nn::Conv2d dense(spec, rng_a);
  nn::Conv2d events(spec, rng_b);  // same seed -> identical weights
  events.set_input_hint(tensor::SparsityHint::kEvents);

  const Tensor x = spike_operand(Shape{4, 2, 14, 14}, 0.15, rng_x);
  const Tensor yd = dense.forward(x, nn::Mode::kEval);
  const Tensor ye = events.forward(x, nn::Mode::kEval);
  ASSERT_EQ(yd.shape(), ye.shape());
  for (std::int64_t i = 0; i < yd.numel(); ++i)
    ASSERT_NEAR(yd[i], ye[i], 1e-4f) << "flat index " << i;
}

TEST(Conv2dEvents, BatchedVsSingleBitIdentical) {
  const nn::Conv2dSpec spec{2, 3, 3, 1, 1};
  util::Rng rng(31);
  nn::Conv2d conv(spec, rng);
  conv.set_input_hint(tensor::SparsityHint::kEvents);
  const std::int64_t n = 4, chw = 2 * 10 * 10;
  const Tensor x = spike_operand(Shape{n, 2, 10, 10}, 0.2, rng);
  const Tensor yf = conv.forward(x, nn::Mode::kEval);
  const std::int64_t per = yf.numel() / n;
  Tensor xi(Shape{1, 2, 10, 10});
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(xi.data(), x.data() + i * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
    const Tensor yi = conv.forward(xi, nn::Mode::kEval);
    ASSERT_EQ(yi.numel(), per);
    EXPECT_EQ(std::memcmp(yi.data(), yf.data() + i * per,
                          static_cast<std::size_t>(per) * sizeof(float)),
              0)
        << "sample " << i;
  }
}

TEST(Conv2dEvents, SteadyStateIsAllocationFree) {
  // After warm-up (workspace arenas grown, output tensor shaped), repeated
  // event-path forwards must not touch the heap. Counting operator-new hook
  // at the top of this file.
  const nn::Conv2dSpec spec{3, 8, 5, 1, 2};
  util::Rng rng(37);
  nn::Conv2d conv(spec, rng);
  conv.set_input_hint(tensor::SparsityHint::kEvents);
  const Tensor x = spike_operand(Shape{4, 3, 12, 12}, 0.2, rng);
  Tensor y;
  for (int i = 0; i < 3; ++i) conv.forward_into(x, y, nn::Mode::kEval);
  const std::int64_t before = g_allocs.load();
  for (int i = 0; i < 5; ++i) conv.forward_into(x, y, nn::Mode::kEval);
  EXPECT_EQ(g_allocs.load() - before, 0)
      << "event conv forward allocated on the steady state";
}

TEST(LinearEvents, SteadyStateIsAllocationFree) {
  util::Rng rng(41);
  nn::Linear fc(256, 64, rng);
  fc.set_input_hint(tensor::SparsityHint::kEvents);
  const Tensor x = spike_operand(Shape{16, 256}, 0.1, rng);
  Tensor y;
  for (int i = 0; i < 3; ++i) fc.forward_into(x, y);
  const std::int64_t before = g_allocs.load();
  for (int i = 0; i < 5; ++i) fc.forward_into(x, y);
  EXPECT_EQ(g_allocs.load() - before, 0)
      << "event linear forward allocated on the steady state";
}

TEST(ProbeSparse, RoundedPositionsCoverTheMatrixTail) {
  // Regression for the floor-stride sampler: with total = 511 and 256
  // samples the old walk (pos = t * (total / samples)) visited positions
  // 0..255 only, so a matrix whose character changes past the midpoint was
  // judged entirely by its head. The rounded-endpoint positions span the
  // full range, with t = samples-1 landing exactly on total-1.
  const std::int64_t m = 7, k = 73;  // total = 511, not divisible by 256
  std::vector<float> a(static_cast<std::size_t>(m * k));

  // Head all zero, tail all ones: ~50% zeros overall -> below the 60%
  // threshold, so the verdict must be dense. The old sampler saw only the
  // zero head and reported sparse.
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = (i < 256) ? 0.0f : 1.0f;
  EXPECT_FALSE(probe_sparse(Trans::kNo, a.data(), k, m, k));

  // Head dense, zeros concentrated in the tail: ~70% zeros overall -> the
  // verdict must be sparse, which requires actually sampling the tail (the
  // old sampler saw ~40% zeros in its truncated window and said dense).
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = (i < 153) ? 1.0f : 0.0f;
  EXPECT_TRUE(probe_sparse(Trans::kNo, a.data(), k, m, k));
}

}  // namespace
}  // namespace snnsec::tensor
