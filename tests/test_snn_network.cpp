// SpikingClassifier: time replication, full-network behavior, training.
#include <gtest/gtest.h>

#include "data/synth_digits.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

nn::LenetSpec tiny_arch() {
  nn::LenetSpec spec = nn::LenetSpec{}.scaled(0.25);
  spec.image_size = 8;
  return spec;
}

SnnConfig tiny_cfg(std::int64_t t = 6) {
  SnnConfig cfg;
  cfg.time_steps = t;
  return cfg;
}

TEST(ReplicateOverTime, LayoutIsTimeMajor) {
  const Tensor x = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = SpikingClassifier::replicate_over_time(x, 3);
  EXPECT_EQ(r.shape(), Shape({6, 3}));
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t i = 0; i < 6; ++i)
      EXPECT_FLOAT_EQ(r[t * 6 + i], x[i]);
}

TEST(SumOverTime, IsAdjointOfReplicate) {
  // sum_over_time(replicate(x)) == T * x
  const Tensor x = Tensor::from_vector(Shape{2, 2}, {1, -2, 3, 0.5f});
  const Tensor s = SpikingClassifier::sum_over_time(
      SpikingClassifier::replicate_over_time(x, 5), 5);
  EXPECT_TRUE(s.allclose(tensor::mul_scalar(x, 5.0f), 1e-5f));
}

TEST(SumOverTime, RejectsIndivisibleDim) {
  EXPECT_THROW(SpikingClassifier::sum_over_time(Tensor(Shape{7, 2}), 3),
               util::Error);
}

TEST(SpikingLenet, BuildsAndClassifies) {
  util::Rng rng(1);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(), rng);
  EXPECT_EQ(model->num_classes(), 10);
  EXPECT_EQ(model->time_steps(), 6);
  const Tensor x(Shape{3, 1, 8, 8});
  const Tensor logits = model->logits(x);
  EXPECT_EQ(logits.shape(), Shape({3, 10}));
  const auto pred = model->predict(x);
  EXPECT_EQ(pred.size(), 3u);
  EXPECT_FALSE(model->describe().empty());
}

TEST(SpikingLenet, ParameterCountMatchesCnnTwin) {
  // "Same number of layers and neurons per layer" as the CNN (paper I-B):
  // 5 weight layers -> 10 parameter tensors.
  util::Rng rng(2);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(), rng);
  EXPECT_EQ(model->parameters().size(), 10u);
}

TEST(SpikingLenet, EvalIsDeterministic) {
  util::Rng rng(3);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(), rng);
  util::Rng drng(4);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  const Tensor a = model->logits(x);
  const Tensor b = model->logits(x);
  EXPECT_TRUE(a.allclose(b, 0.0f));
}

TEST(SpikingLenet, SameSeedSameModel) {
  util::Rng r1(5), r2(5);
  auto m1 = build_spiking_lenet(tiny_arch(), tiny_cfg(), r1);
  auto m2 = build_spiking_lenet(tiny_arch(), tiny_cfg(), r2);
  util::Rng drng(6);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  EXPECT_TRUE(m1->logits(x).allclose(m2->logits(x), 0.0f));
}

TEST(SpikingLenet, SpikeRatesReportedPerLifLayer) {
  util::Rng rng(7);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(), rng);
  util::Rng drng(8);
  model->logits(Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng));
  const auto rates = model->spike_rates();
  EXPECT_EQ(rates.size(), 5u);  // encoder + 3 conv-LIF + 1 fc-LIF
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(SpikingLenet, InputGradientShapeAndLoss) {
  util::Rng rng(9);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(), rng);
  util::Rng drng(10);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  double loss = 0.0;
  const Tensor g = model->input_gradient(x, {1, 7}, &loss);
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_GT(loss, 0.0);
}

TEST(SpikingLenet, TrainBatchReducesLossOnRepeatedBatch) {
  util::Rng rng(11);
  auto model = build_spiking_lenet(tiny_arch(), tiny_cfg(8), rng);
  data::SynthConfig scfg;
  scfg.image_size = 8;
  util::Rng drng(12);
  const data::Dataset d = data::generate_digits(16, scfg, drng);
  nn::Adam optimizer(model->parameters(), {});
  const double first = model->train_batch(d.images, d.labels, optimizer);
  double last = first;
  for (int i = 0; i < 12; ++i)
    last = model->train_batch(d.images, d.labels, optimizer);
  EXPECT_LT(last, first);
}

TEST(SpikingLenet, PoissonEncoderVariant) {
  SnnConfig cfg = tiny_cfg();
  cfg.encoder = EncoderKind::kPoisson;
  util::Rng rng(13);
  auto model = build_spiking_lenet(tiny_arch(), cfg, rng);
  const Tensor logits = model->logits(Tensor(Shape{2, 1, 8, 8}));
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(SnnConfig, ValidatesStructuralParameters) {
  SnnConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.v_th = 0.0;
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = SnnConfig{};
  cfg.time_steps = 0;
  EXPECT_THROW(cfg.validate(), util::Error);
  cfg = SnnConfig{};
  cfg.weight_gain = 0.0;
  EXPECT_THROW(cfg.validate(), util::Error);
}

TEST(SnnConfig, LifParamsCarryThreshold) {
  SnnConfig cfg;
  cfg.v_th = 1.75;
  EXPECT_FLOAT_EQ(cfg.lif_params().v_th, 1.75f);
}

TEST(SpikingLenet, EncoderThresholdCanBePinned) {
  SnnConfig cfg = tiny_cfg();
  cfg.v_th = 2.0;
  cfg.encoder_uses_vth = false;  // encoder keeps the template threshold (1.0)
  util::Rng rng(14);
  auto pinned = build_spiking_lenet(tiny_arch(), cfg, rng);
  cfg.encoder_uses_vth = true;
  util::Rng rng2(14);
  auto swept = build_spiking_lenet(tiny_arch(), cfg, rng2);
  util::Rng drng(15);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  pinned->logits(x);
  swept->logits(x);
  // The pinned encoder (lower threshold) must fire at least as much.
  EXPECT_GE(pinned->spike_rates()[0], swept->spike_rates()[0]);
}

}  // namespace
}  // namespace snnsec::snn
