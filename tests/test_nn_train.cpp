// Trainer, metrics, and learnability of small models on separable data.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/feedforward.hpp"
#include "nn/lenet.hpp"
#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"

namespace snnsec::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Two Gaussian blobs in 2-D, linearly separable.
void make_blobs(std::int64_t n, Tensor& x, std::vector<std::int64_t>& y,
                std::uint64_t seed) {
  util::Rng rng(seed);
  x = Tensor(Shape{n, 2});
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % 2;
    const double cx = label == 0 ? -1.5 : 1.5;
    x[i * 2 + 0] = static_cast<float>(rng.normal(cx, 0.4));
    x[i * 2 + 1] = static_cast<float>(rng.normal(-cx, 0.4));
    y[static_cast<std::size_t>(i)] = label;
  }
}

std::unique_ptr<FeedforwardClassifier> make_mlp(std::uint64_t seed) {
  util::Rng rng(seed);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Linear>(2, 8, rng);
  seq->emplace<ReLU>();
  seq->emplace<Linear>(8, 2, rng);
  return std::make_unique<FeedforwardClassifier>(std::move(seq), 2, "mlp");
}

TEST(Trainer, LearnsLinearlySeparableBlobs) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(200, x, y, 1);
  auto model = make_mlp(2);
  TrainConfig cfg;
  cfg.epochs = 20;
  cfg.lr = 0.01;
  const TrainHistory h = Trainer(cfg).fit(*model, x, y);
  EXPECT_EQ(h.epochs.size(), 20u);
  EXPECT_GT(accuracy(*model, x, y), 0.95);
  // Loss should decrease substantially.
  EXPECT_LT(h.epochs.back().train_loss, h.epochs.front().train_loss * 0.5);
}

TEST(Trainer, EarlyStopCallback) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(100, x, y, 3);
  auto model = make_mlp(4);
  TrainConfig cfg;
  cfg.epochs = 50;
  const TrainHistory h = Trainer(cfg).fit(
      *model, x, y, [](const EpochStats& s) { return s.epoch < 4; });
  EXPECT_EQ(h.epochs.size(), 5u);  // stops after epoch index 4
}

TEST(Trainer, SgdOptimizerOption) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(200, x, y, 5);
  auto model = make_mlp(6);
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.optimizer = OptimizerKind::kSgd;
  cfg.lr = 0.05;
  Trainer(cfg).fit(*model, x, y);
  EXPECT_GT(accuracy(*model, x, y), 0.9);
}

TEST(Trainer, DeterministicGivenSeeds) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(100, x, y, 7);
  auto m1 = make_mlp(8);
  auto m2 = make_mlp(8);
  TrainConfig cfg;
  cfg.epochs = 5;
  const auto h1 = Trainer(cfg).fit(*m1, x, y);
  const auto h2 = Trainer(cfg).fit(*m2, x, y);
  for (std::size_t i = 0; i < h1.epochs.size(); ++i)
    EXPECT_DOUBLE_EQ(h1.epochs[i].train_loss, h2.epochs[i].train_loss);
}

TEST(Trainer, RejectsBadInputs) {
  auto model = make_mlp(9);
  TrainConfig cfg;
  Trainer t(cfg);
  Tensor x(Shape{4, 2});
  EXPECT_THROW(t.fit(*model, x, {0, 1}), util::Error);  // label mismatch
  EXPECT_THROW(t.fit(*model, Tensor(Shape{0, 2}), {}), util::Error);
}

TEST(Metrics, AccuracyCountsCorrect) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(50, x, y, 10);
  auto model = make_mlp(11);
  const double acc = accuracy(*model, x, y, 16);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_THROW(accuracy(*model, x, {0, 1}), util::Error);
}

TEST(Metrics, ConfusionMatrixRowsSumToClassCounts) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(60, x, y, 12);
  auto model = make_mlp(13);
  const auto cm = confusion_matrix(*model, x, y, 16);
  ASSERT_EQ(cm.size(), 2u);
  std::int64_t row0 = cm[0][0] + cm[0][1];
  std::int64_t row1 = cm[1][0] + cm[1][1];
  EXPECT_EQ(row0, 30);
  EXPECT_EQ(row1, 30);
}

TEST(Metrics, SliceBatch) {
  const Tensor x = Tensor::arange(12).reshaped(Shape{4, 3});
  const Tensor s = slice_batch(x, 1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(s[0], 3.0f);
  EXPECT_FLOAT_EQ(s[5], 8.0f);
  EXPECT_THROW(slice_batch(x, 3, 5), util::Error);
  EXPECT_THROW(slice_batch(x, -1, 2), util::Error);
}

TEST(LenetSpec, ValidationAndScaling) {
  LenetSpec spec;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.pooled_size(), 7);
  const LenetSpec half = spec.scaled(0.5);
  EXPECT_EQ(half.conv1_channels, 3);
  EXPECT_EQ(half.conv2_channels, 8);
  EXPECT_GE(half.fc_hidden, 2);
  LenetSpec bad = spec;
  bad.image_size = 10;  // not divisible by 4
  EXPECT_THROW(bad.validate(), util::Error);
  bad = spec;
  bad.num_classes = 1;
  EXPECT_THROW(bad.validate(), util::Error);
}

TEST(Lenet, BuildersProduceWorkingClassifiers) {
  LenetSpec spec = LenetSpec{}.scaled(0.25);
  spec.image_size = 8;
  util::Rng rng(14);
  auto paper = build_paper_cnn(spec, rng);
  auto classic = build_classic_lenet5(spec, rng);
  const Tensor x(Shape{2, 1, 8, 8});
  EXPECT_EQ(paper->logits(x).shape(), Shape({2, 10}));
  EXPECT_EQ(classic->logits(x).shape(), Shape({2, 10}));
  EXPECT_EQ(paper->num_classes(), 10);
  EXPECT_FALSE(paper->describe().empty());
  // The paper variant has 3 conv + 2 fc = 5 weight layers -> 10 params.
  EXPECT_EQ(paper->parameters().size(), 10u);
  // Classic has 2 conv + 3 fc = 5 weight layers -> 10 params.
  EXPECT_EQ(classic->parameters().size(), 10u);
}

TEST(Lenet, PredictReturnsArgmax) {
  LenetSpec spec = LenetSpec{}.scaled(0.25);
  spec.image_size = 8;
  util::Rng rng(15);
  auto model = build_paper_cnn(spec, rng);
  const auto pred = model->predict(Tensor(Shape{3, 1, 8, 8}));
  ASSERT_EQ(pred.size(), 3u);
  for (const auto p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

}  // namespace
}  // namespace snnsec::nn
