// GEMM correctness against a naive reference across sizes and transposes.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {
namespace {

/// Naive triple-loop reference.
Tensor ref_matmul(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::int64_t m = (ta == Trans::kNo) ? a.dim(0) : a.dim(1);
  const std::int64_t k = (ta == Trans::kNo) ? a.dim(1) : a.dim(0);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = (ta == Trans::kNo) ? a.at({i, kk}) : a.at({kk, i});
        const float bv = (tb == Trans::kNo) ? b.at({kk, j}) : b.at({j, kk});
        acc += static_cast<double>(av) * bv;
      }
      c.at({i, j}) = static_cast<float>(acc);
    }
  return c;
}

using GemmCase = std::tuple<std::int64_t, std::int64_t, std::int64_t, int>;

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, k, n, trans_code] = GetParam();
  const Trans ta = (trans_code & 1) ? Trans::kYes : Trans::kNo;
  const Trans tb = (trans_code & 2) ? Trans::kYes : Trans::kNo;
  util::Rng rng(static_cast<std::uint64_t>(m * 131 + k * 17 + n + trans_code));
  const Tensor a = Tensor::randn(
      (ta == Trans::kNo) ? Shape{m, k} : Shape{k, m}, rng);
  const Tensor b = Tensor::randn(
      (tb == Trans::kNo) ? Shape{k, n} : Shape{n, k}, rng);
  const Tensor got = matmul(a, b, ta, tb);
  const Tensor want = ref_matmul(a, b, ta, tb);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-3f) << "at flat index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTransposes, GemmTest,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 17, 64),
                       ::testing::Values<std::int64_t>(1, 5, 32),
                       ::testing::Values<std::int64_t>(1, 7, 33),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Gemm, AlphaBetaSemantics) {
  util::Rng rng(1);
  const Tensor a = Tensor::randn(Shape{4, 3}, rng);
  const Tensor b = Tensor::randn(Shape{3, 5}, rng);
  Tensor c = Tensor::full(Shape{4, 5}, 2.0f);
  gemm(Trans::kNo, Trans::kNo, 0.5f, a, b, 0.25f, c);
  const Tensor ab = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  for (std::int64_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], 0.5f * ab[i] + 0.25f * 2.0f, 1e-4f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  util::Rng rng(2);
  const Tensor a = Tensor::randn(Shape{2, 2}, rng);
  const Tensor b = Tensor::randn(Shape{2, 2}, rng);
  Tensor c = Tensor::full(Shape{2, 2}, 1e30f);
  gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, c);
  const Tensor want = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  EXPECT_TRUE(c.allclose(want, 1e-4f));
}

TEST(Gemm, SkipsZeroRowsCorrectly) {
  // The kernel short-circuits zero A entries (spike sparsity); verify a
  // half-zero matrix still multiplies exactly.
  util::Rng rng(3);
  Tensor a = Tensor::randn(Shape{6, 8}, rng);
  for (std::int64_t i = 0; i < a.numel(); i += 2) a[i] = 0.0f;
  const Tensor b = Tensor::randn(Shape{8, 4}, rng);
  EXPECT_TRUE(matmul(a, b).allclose(ref_matmul(a, b, Trans::kNo, Trans::kNo),
                                    1e-4f));
}

TEST(Gemm, DimensionMismatchThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  EXPECT_THROW(matmul(a, b), util::Error);
  Tensor bad_c(Shape{3, 3});
  const Tensor ok_b(Shape{3, 5});
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, 1.0f, a, ok_b, 0.0f, bad_c),
               util::Error);
  EXPECT_THROW(matmul(Tensor(Shape{2}), Tensor(Shape{2})), util::Error);
}

}  // namespace
}  // namespace snnsec::tensor
