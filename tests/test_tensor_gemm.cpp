// GEMM correctness against a naive reference across sizes and transposes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {
namespace {

/// Naive triple-loop reference.
Tensor ref_matmul(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::int64_t m = (ta == Trans::kNo) ? a.dim(0) : a.dim(1);
  const std::int64_t k = (ta == Trans::kNo) ? a.dim(1) : a.dim(0);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = (ta == Trans::kNo) ? a.at({i, kk}) : a.at({kk, i});
        const float bv = (tb == Trans::kNo) ? b.at({kk, j}) : b.at({j, kk});
        acc += static_cast<double>(av) * bv;
      }
      c.at({i, j}) = static_cast<float>(acc);
    }
  return c;
}

using GemmCase = std::tuple<std::int64_t, std::int64_t, std::int64_t, int>;

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, k, n, trans_code] = GetParam();
  const Trans ta = (trans_code & 1) ? Trans::kYes : Trans::kNo;
  const Trans tb = (trans_code & 2) ? Trans::kYes : Trans::kNo;
  util::Rng rng(static_cast<std::uint64_t>(m * 131 + k * 17 + n + trans_code));
  const Tensor a = Tensor::randn(
      (ta == Trans::kNo) ? Shape{m, k} : Shape{k, m}, rng);
  const Tensor b = Tensor::randn(
      (tb == Trans::kNo) ? Shape{k, n} : Shape{n, k}, rng);
  const Tensor got = matmul(a, b, ta, tb);
  const Tensor want = ref_matmul(a, b, ta, tb);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-3f) << "at flat index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTransposes, GemmTest,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 17, 64),
                       ::testing::Values<std::int64_t>(1, 5, 32),
                       ::testing::Values<std::int64_t>(1, 7, 33),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Gemm, AlphaBetaSemantics) {
  util::Rng rng(1);
  const Tensor a = Tensor::randn(Shape{4, 3}, rng);
  const Tensor b = Tensor::randn(Shape{3, 5}, rng);
  Tensor c = Tensor::full(Shape{4, 5}, 2.0f);
  gemm(Trans::kNo, Trans::kNo, 0.5f, a, b, 0.25f, c);
  const Tensor ab = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  for (std::int64_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], 0.5f * ab[i] + 0.25f * 2.0f, 1e-4f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  util::Rng rng(2);
  const Tensor a = Tensor::randn(Shape{2, 2}, rng);
  const Tensor b = Tensor::randn(Shape{2, 2}, rng);
  Tensor c = Tensor::full(Shape{2, 2}, 1e30f);
  gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, c);
  const Tensor want = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  EXPECT_TRUE(c.allclose(want, 1e-4f));
}

TEST(Gemm, SkipsZeroRowsCorrectly) {
  // The kernel short-circuits zero A entries (spike sparsity); verify a
  // half-zero matrix still multiplies exactly.
  util::Rng rng(3);
  Tensor a = Tensor::randn(Shape{6, 8}, rng);
  for (std::int64_t i = 0; i < a.numel(); i += 2) a[i] = 0.0f;
  const Tensor b = Tensor::randn(Shape{8, 4}, rng);
  EXPECT_TRUE(matmul(a, b).allclose(ref_matmul(a, b, Trans::kNo, Trans::kNo),
                                    1e-4f));
}

// ---- blocked kernel vs the frozen seed kernel ------------------------------

/// |got - ref| <= kRelTol * (1 + |ref|): 1e-5 relative with an absolute
/// floor so near-cancelled outputs don't demand impossible precision.
void expect_close_to_reference(const Tensor& got, const Tensor& ref) {
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float tol = 1e-5f * (1.0f + std::fabs(ref[i]));
    EXPECT_NEAR(got[i], ref[i], tol) << "at flat index " << i;
  }
}

TEST(GemmProperty, BlockedMatchesReferenceOnRandomizedShapes) {
  // Randomized shapes biased toward tile-remainder edges: m=1, k=1, exact
  // multiples of the register tile, one-past and one-short of MC/KC/NC
  // boundaries, plus every transpose combination and alpha/beta mix.
  util::Rng rng(20240807);
  const std::int64_t m_sizes[] = {1, 2, 3, 4, 5, 7, 8, 31, 64, 127, 129};
  const std::int64_t k_sizes[] = {1, 2, 15, 64, 255, 257};
  const std::int64_t n_sizes[] = {1, 7, 8, 9, 63, 120};
  const float alphas[] = {1.0f, -0.5f, 2.0f};
  const float betas[] = {0.0f, 1.0f, 0.25f};
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t m = m_sizes[rng.uniform_int(0, 10)];
    const std::int64_t k = k_sizes[rng.uniform_int(0, 5)];
    const std::int64_t n = n_sizes[rng.uniform_int(0, 5)];
    const Trans ta = rng.bernoulli(0.5) ? Trans::kYes : Trans::kNo;
    const Trans tb = rng.bernoulli(0.5) ? Trans::kYes : Trans::kNo;
    const float alpha = alphas[rng.uniform_int(0, 2)];
    const float beta = betas[rng.uniform_int(0, 2)];
    const Tensor a = Tensor::randn(
        (ta == Trans::kNo) ? Shape{m, k} : Shape{k, m}, rng);
    const Tensor b = Tensor::randn(
        (tb == Trans::kNo) ? Shape{k, n} : Shape{n, k}, rng);
    Tensor c_init = Tensor::randn(Shape{m, n}, rng);
    Tensor got = c_init;
    Tensor want = c_init;
    gemm(ta, tb, alpha, a, b, beta, got, SparsityHint::kDense);
    gemm_reference(ta, tb, alpha, a, b, beta, want);
    SCOPED_TRACE(::testing::Message()
                 << "m=" << m << " k=" << k << " n=" << n << " ta="
                 << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
                 << " alpha=" << alpha << " beta=" << beta);
    expect_close_to_reference(got, want);
  }
}

TEST(GemmProperty, SparseHintMatchesReference) {
  // The zero-skip path on a spike-like operand (85% zeros) must agree with
  // the reference bit-for-bit: both skip exactly the zero entries and
  // accumulate in the same order.
  util::Rng rng(99);
  Tensor a = Tensor::bernoulli(Shape{37, 130}, rng, 0.15);
  const Tensor b = Tensor::randn(Shape{130, 29}, rng);
  Tensor got(Shape{37, 29});
  Tensor want(Shape{37, 29});
  gemm(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, got, SparsityHint::kSparse);
  gemm_reference(Trans::kNo, Trans::kNo, 1.0f, a, b, 0.0f, want);
  for (std::int64_t i = 0; i < got.numel(); ++i)
    EXPECT_EQ(got[i], want[i]) << "at flat index " << i;
}

TEST(GemmProperty, AutoHintPicksSparsePathForSpikeTrains) {
  util::Rng rng(100);
  const Tensor spikes = Tensor::bernoulli(Shape{64, 256}, rng, 0.1);
  const Tensor dense = Tensor::randn(Shape{64, 256}, rng);
  const Tensor w = Tensor::randn(Shape{256, 32}, rng);
  // Both hints must agree with the reference regardless of which kernel the
  // probe picks.
  Tensor ref_s(Shape{64, 32});
  gemm_reference(Trans::kNo, Trans::kNo, 1.0f, spikes, w, 0.0f, ref_s);
  expect_close_to_reference(matmul(spikes, w), ref_s);
  Tensor ref_d(Shape{64, 32});
  gemm_reference(Trans::kNo, Trans::kNo, 1.0f, dense, w, 0.0f, ref_d);
  expect_close_to_reference(matmul(dense, w), ref_d);
}

TEST(GemmRaw, StridedSubmatrixMultiplies) {
  // gemm_raw on a sub-block of a larger row-major buffer (lda/ldb/ldc wider
  // than the logical shapes) — the layout the conv hot path feeds it.
  util::Rng rng(101);
  const std::int64_t lda = 13, ldb = 11, ldc = 17;
  const std::int64_t m = 5, k = 7, n = 6;
  const Tensor abuf = Tensor::randn(Shape{m, lda}, rng);
  const Tensor bbuf = Tensor::randn(Shape{k, ldb}, rng);
  std::vector<float> cbuf(static_cast<std::size_t>(m * ldc), -7.0f);
  gemm_raw(Trans::kNo, Trans::kNo, m, n, k, 1.0f, abuf.data(), lda,
           bbuf.data(), ldb, 0.0f, cbuf.data(), ldc, SparsityHint::kDense);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(abuf[i * lda + kk]) * bbuf[kk * ldb + j];
      EXPECT_NEAR(cbuf[static_cast<std::size_t>(i * ldc + j)],
                  static_cast<float>(acc), 1e-4f);
    }
  // Columns past n are untouched.
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = n; j < ldc; ++j)
      EXPECT_FLOAT_EQ(cbuf[static_cast<std::size_t>(i * ldc + j)], -7.0f);
}

TEST(Gemm, DimensionMismatchThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{4, 5});
  EXPECT_THROW(matmul(a, b), util::Error);
  Tensor bad_c(Shape{3, 3});
  const Tensor ok_b(Shape{3, 5});
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, 1.0f, a, ok_b, 0.0f, bad_c),
               util::Error);
  EXPECT_THROW(matmul(Tensor(Shape{2}), Tensor(Shape{2})), util::Error);
}

}  // namespace
}  // namespace snnsec::tensor
