// Server online detection: score annotation, observe/reject policy
// semantics, envelope validation at startup and detect metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "obs/envelope.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "snn/anytime.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::serve {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;
constexpr std::int64_t kT = 6;

std::string checkpoint_path() {
  static const std::string path =
      (fs::temp_directory_path() / "snnsec_test_serve_detect.snnm").string();
  static bool written = false;
  if (!written) {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
    arch.image_size = kImage;
    snn::SnnConfig cfg;
    cfg.v_th = 1.1;
    cfg.time_steps = kT;
    util::Rng rng(42);
    auto model = snn::build_spiking_lenet(arch, cfg, rng);
    snn::save_spiking_lenet(path, *model, arch, cfg);
    written = true;
  }
  return path;
}

Tensor random_image(std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(Shape{1, 1, kImage, kImage});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

ServerConfig inline_config() {
  ServerConfig cfg;
  cfg.model_path = checkpoint_path();
  cfg.workers = 0;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_delay_us = 500;
  cfg.batcher.capacity = 16;
  return cfg;
}

/// Envelope calibrated on the same clean traffic distribution the tests
/// probe with — clean requests score low.
std::shared_ptr<const obs::ActivityEnvelope> clean_envelope() {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  const auto replica = artifact->make_replica();
  snn::AnytimeRunner runner(*replica);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  runner.set_sketch(&acc);
  constexpr int kN = 32;
  std::vector<obs::ActivitySketch> sketches(kN);
  for (int i = 0; i < kN; ++i) {
    runner.run(random_image(1000 + static_cast<std::uint64_t>(i)));
    acc.finalize(0, sketches[static_cast<std::size_t>(i)]);
  }
  auto envelope = std::make_shared<obs::ActivityEnvelope>();
  envelope->fit(sketches, runner.sketch_layers(), acc.buckets(),
                artifact->config_hash());
  return envelope;
}

/// Envelope whose bands sit far from any real activity — every request
/// scores enormous, so the detector always fires.
std::shared_ptr<const obs::ActivityEnvelope> absurd_envelope() {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  const auto replica = artifact->make_replica();
  snn::AnytimeRunner runner(*replica);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  std::vector<obs::ActivitySketch> sketches(2);
  for (auto& s : sketches) {
    s.steps = kT;
    s.layers.resize(runner.sketch_layers().size());
    for (auto& l : s.layers) {
      l.firing_rate = 100.0;
      l.silent_fraction = 100.0;
      l.saturated_fraction = 100.0;
      l.v_mean = 100.0;
      l.hist_frac.assign(static_cast<std::size_t>(acc.buckets()), 100.0);
    }
  }
  auto envelope = std::make_shared<obs::ActivityEnvelope>();
  envelope->fit(sketches, runner.sketch_layers(), acc.buckets(),
                artifact->config_hash());
  return envelope;
}

TEST(ServeDetect, DetectionOffWithoutEnvelope) {
  Server server(inline_config());
  EXPECT_FALSE(server.detector_ready());
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(5), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_EQ(r.anomaly_score, -1.0);
  EXPECT_FALSE(r.flagged);
}

TEST(ServeDetect, CleanTrafficIsScoredAndNotFlagged) {
  ServerConfig cfg = inline_config();
  cfg.envelope = clean_envelope();
  Server server(cfg);
  EXPECT_TRUE(server.detector_ready());

  InferResult r;
  for (std::uint64_t seed = 1000; seed < 1008; ++seed) {
    ASSERT_TRUE(server.infer(random_image(seed), RequestOptions{}, r));
    EXPECT_EQ(r.status, ResultStatus::kOk);
    EXPECT_GE(r.anomaly_score, 0.0) << "armed server must score requests";
    EXPECT_LT(r.anomaly_score, cfg.flag_threshold) << "seed " << seed;
    EXPECT_FALSE(r.flagged);
  }
  EXPECT_EQ(server.stats().flagged, 0);
}

TEST(ServeDetect, ScoresAreBitIdenticalAcrossBatchCompositions) {
  // The request's anomaly score rides the sketch bit-identity contract:
  // the same image scores identically on repeat requests.
  ServerConfig cfg = inline_config();
  cfg.envelope = clean_envelope();
  Server server(cfg);
  const Tensor x = random_image(1003);
  InferResult a;
  InferResult b;
  ASSERT_TRUE(server.infer(x, RequestOptions{}, a));
  ASSERT_TRUE(server.infer(x, RequestOptions{}, b));
  EXPECT_EQ(a.anomaly_score, b.anomaly_score);
}

TEST(ServeDetect, ObservePolicyAnnotatesButCompletes) {
  ServerConfig cfg = inline_config();
  cfg.envelope = absurd_envelope();
  cfg.detect_policy = DetectPolicy::kObserve;
  Server server(cfg);

  InferResult r;
  ASSERT_TRUE(server.infer(random_image(7), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_TRUE(r.flagged);
  EXPECT_GE(r.anomaly_score, cfg.flag_threshold);
  EXPECT_GE(r.pred, 0) << "observe policy keeps the prediction";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.flagged, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServeDetect, RejectPolicyFlagsButKeepsPredictionForForensics) {
  ServerConfig cfg = inline_config();
  cfg.envelope = absurd_envelope();
  cfg.detect_policy = DetectPolicy::kReject;
  Server server(cfg);

  InferResult r;
  EXPECT_FALSE(server.infer(random_image(8), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kFlagged);
  EXPECT_TRUE(r.flagged);
  EXPECT_GE(r.anomaly_score, cfg.flag_threshold);
  EXPECT_GE(r.pred, 0) << "flagged results keep the prediction";
  EXPECT_FALSE(r.scores.empty());
  EXPECT_EQ(server.stats().flagged, 1);
}

TEST(ServeDetect, DetectMetricsAreEmitted) {
  obs::Registry::instance().set_enabled(true);
  ServerConfig cfg = inline_config();
  cfg.envelope = absurd_envelope();
  Server server(cfg);
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(9), RequestOptions{}, r));

  bool saw_score = false;
  bool saw_flagged = false;
  bool saw_age = false;
  for (const auto& m : obs::Registry::instance().snapshot()) {
    if (m.name == "serve.detect.score") saw_score = true;
    if (m.name == "serve.detect.flagged") saw_flagged = true;
    if (m.name == "serve.detect.calibration_age_s") {
      saw_age = true;
      EXPECT_GE(m.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_score);
  EXPECT_TRUE(saw_flagged);
  EXPECT_TRUE(saw_age);
}

TEST(ServeDetect, ForeignEnvelopeFileDisablesDetection) {
  // An envelope calibrated for a different model (config_hash mismatch)
  // must not arm the detector — the server warns and serves undetected.
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  const auto replica = artifact->make_replica();
  snn::AnytimeRunner runner(*replica);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  runner.set_sketch(&acc);
  std::vector<obs::ActivitySketch> sketches(2);
  runner.run(random_image(11));
  acc.finalize(0, sketches[0]);
  runner.run(random_image(12));
  acc.finalize(0, sketches[1]);
  obs::ActivityEnvelope foreign;
  foreign.fit(sketches, runner.sketch_layers(), acc.buckets(),
              artifact->config_hash() + 1);
  const std::string path =
      (fs::temp_directory_path() / "snnsec_test_foreign.envelope").string();
  foreign.save(path);

  ServerConfig cfg = inline_config();
  cfg.envelope_path = path;
  Server server(cfg);
  EXPECT_FALSE(server.detector_ready());
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(13), RequestOptions{}, r));
  EXPECT_EQ(r.anomaly_score, -1.0);
}

TEST(ServeDetect, MismatchedEnvelopeGeometryRefusesToStart) {
  auto envelope = std::make_shared<obs::ActivityEnvelope>();
  std::vector<obs::ActivitySketch> sketches(2);
  for (auto& s : sketches) {
    s.steps = kT;
    s.layers.resize(1);
    s.layers[0].hist_frac.assign(8, 0.1);
  }
  envelope->fit(sketches, {{"lif0", 1.0}}, 8, 123);

  ServerConfig cfg = inline_config();
  cfg.envelope = envelope;  // one layer; the model has several
  EXPECT_THROW(Server{cfg}, util::Error);
}

}  // namespace
}  // namespace snnsec::serve
