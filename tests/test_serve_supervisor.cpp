// Supervisor: golden-state determinism, the overload governor, and the
// self-healing server loop — canary detection of chaos-injected faults,
// transparent retry of non-finite results, retry-budget exhaustion, input
// validation, and the resident-mode watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>

#include "faults/fault.hpp"
#include "nn/parameter.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::serve {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;
constexpr std::int64_t kT = 6;

// The watchdog test needs resident workers, which need a pool larger than
// the 1-core CI box would give by default. Must run before the pool's lazy
// construction at first use.
const bool kThreadsForced = [] {
  setenv("SNNSEC_THREADS", "4", /*overwrite=*/0);
  return true;
}();

std::string checkpoint_path() {
  static const std::string path =
      (fs::temp_directory_path() / "snnsec_test_serve_supervisor.snnm")
          .string();
  static bool written = false;
  if (!written) {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
    arch.image_size = kImage;
    snn::SnnConfig cfg;
    cfg.v_th = 1.1;
    cfg.time_steps = kT;
    util::Rng rng(42);
    auto model = snn::build_spiking_lenet(arch, cfg, rng);
    snn::save_spiking_lenet(path, *model, arch, cfg);
    written = true;
  }
  return path;
}

/// Inline supervised server with only the per-batch fast canary live: the
/// deep-canary timer and watchdog are off so every detection in these
/// tests is deterministic, driven by the test's own requests.
ServerConfig supervised_config() {
  ServerConfig cfg;
  cfg.model_path = checkpoint_path();
  cfg.workers = 0;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_delay_us = 500;
  cfg.batcher.capacity = 16;
  cfg.supervisor.enabled = true;
  cfg.supervisor.canary_interval_ms = 0;
  cfg.supervisor.heartbeat_timeout_ms = 0;
  return cfg;
}

Tensor random_image(std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(Shape{1, 1, kImage, kImage});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

/// Overwrite the classifier head's bias with +inf. Deliberately +inf and
/// not NaN: li_step folds the previous step's synaptic current into the
/// membrane, so the t=0 readout trace is a clean 0 regardless of the bias,
/// and the running-max decode's strictly-greater compare (false for any
/// NaN operand) latches that finite 0 forever — a NaN bias never reaches
/// the logits. +inf wins the compare and propagates.
void poison_head_bias(snn::SpikingClassifier& model) {
  nn::Parameter* bias = model.parameters().back();
  float* v = bias->value.data();
  for (std::int64_t i = 0; i < bias->value.numel(); ++i)
    v[i] = std::numeric_limits<float>::infinity();
}

TEST(SupervisorTest, GoldenStateIsDeterministic) {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  SupervisorConfig cfg;
  cfg.enabled = true;
  Supervisor a(cfg, *artifact);
  Supervisor b(cfg, *artifact);
  // Every server supervising a given checkpoint derives the same probe and
  // golden state, so canary verdicts agree across processes.
  EXPECT_EQ(a.golden_weights_digest(), b.golden_weights_digest());
  ASSERT_EQ(a.probe().numel(), b.probe().numel());
  ASSERT_EQ(a.golden_logits().numel(), b.golden_logits().numel());
  for (std::int64_t i = 0; i < a.golden_logits().numel(); ++i)
    EXPECT_EQ(a.golden_logits().data()[i], b.golden_logits().data()[i]);
  EXPECT_TRUE(a.logits_ok(b.golden_logits()));
}

TEST(SupervisorTest, LogitsCheckIsNanSafe) {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  SupervisorConfig cfg;
  cfg.enabled = true;
  cfg.canary_tolerance = 1e30;  // any finite divergence passes...
  Supervisor sup(cfg, *artifact);
  Tensor bad(Shape{sup.golden_logits().numel()});
  std::copy(sup.golden_logits().data(),
            sup.golden_logits().data() + sup.golden_logits().numel(),
            bad.data());
  EXPECT_TRUE(sup.logits_ok(bad));
  bad.data()[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(sup.logits_ok(bad)) << "...but a NaN must fail at any tol";
  bad.data()[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(sup.logits_ok(bad));
}

TEST(SupervisorTest, WeightsDigestDetectsSingleFloatChange) {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  auto replica = artifact->make_replica();
  const auto params = replica->parameters();
  const std::uint64_t clean = Supervisor::weights_digest(params);
  params[0]->value.data()[0] += 1.0f;
  EXPECT_NE(Supervisor::weights_digest(params), clean);
}

TEST(SupervisorTest, GovernorRampsToFloorUnderPressure) {
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  SupervisorConfig cfg;
  cfg.enabled = true;
  cfg.governor_floor_steps = 3;
  Supervisor sup(cfg, *artifact);
  EXPECT_EQ(sup.floor_steps(), 3);
  // Full window at/below the low watermark, the floor at/above the high
  // watermark, monotone non-increasing in between.
  EXPECT_EQ(sup.governed_steps(0, 64), kT);
  EXPECT_EQ(sup.governed_steps(16, 64), kT);  // exactly the low watermark
  EXPECT_EQ(sup.governed_steps(48, 64), 3);   // exactly the high watermark
  EXPECT_EQ(sup.governed_steps(64, 64), 3);
  std::int64_t prev = kT;
  for (std::int64_t depth = 0; depth <= 64; ++depth) {
    const std::int64_t s = sup.governed_steps(depth, 64);
    EXPECT_LE(s, prev) << "depth " << depth;
    EXPECT_GE(s, 3);
    EXPECT_LE(s, kT);
    prev = s;
  }

  SupervisorConfig off = cfg;
  off.governor = false;
  Supervisor ungoverned(off, *artifact);
  EXPECT_EQ(ungoverned.governed_steps(64, 64), kT);
}

TEST(SupervisedServerTest, FastCanaryCatchesWeightCorruption) {
  ServerConfig cfg = supervised_config();
  std::atomic<bool> armed{true};
  cfg.chaos_on_batch = [&](const ChaosContext& ctx) {
    if (!armed.exchange(false)) return;
    ctx.model->parameters()[0]->value.data()[0] += 1.0f;
  };
  Server server(cfg);
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  // Request 1 rides the corrupted replica: the logits are finite (just
  // wrong), so it is delivered — detection latency is one batch by design.
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(201), RequestOptions{}, r));

  // Request 2: the weights digest diverges in maintain() before the next
  // batch forms, the replica is quarantined and respawned from the pristine
  // artifact, and results are bit-identical to the reference again.
  const Tensor x = random_image(202);
  const Tensor want = reference.model->logits(x);
  ASSERT_TRUE(server.infer(x, RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_EQ(r.attempts, 1);
  for (std::int64_t k = 0; k < want.numel(); ++k)
    EXPECT_EQ(r.scores[static_cast<std::size_t>(k)], want.data()[k]);

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.canary_failures, 1);
  EXPECT_GE(stats.quarantines, 1);
  EXPECT_EQ(stats.respawns, stats.quarantines)
      << "every quarantined replica must be respawned";
  EXPECT_EQ(stats.errors, 0);
}

TEST(SupervisedServerTest, NonFiniteLogitsRetriedTransparently) {
  ServerConfig cfg = supervised_config();
  std::atomic<bool> armed{true};
  cfg.chaos_on_batch = [&](const ChaosContext& ctx) {
    if (!armed.exchange(false)) return;
    poison_head_bias(*ctx.model);
  };
  Server server(cfg);
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  // The poisoned attempt produces +inf logits; finalize refuses to deliver
  // them, quarantines the replica and re-enqueues the request, which the
  // healed replica answers — the caller sees one OK result, bit-identical
  // to the clean model, that merely cost two attempts.
  const Tensor x = random_image(301);
  const Tensor want = reference.model->logits(x);
  InferResult r;
  ASSERT_TRUE(server.infer(x, RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_GE(r.attempts, 2);
  for (std::int64_t k = 0; k < want.numel(); ++k)
    EXPECT_EQ(r.scores[static_cast<std::size_t>(k)], want.data()[k]);

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.retries, 1);
  EXPECT_GE(stats.quarantines, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.completed, 1);
}

TEST(SupervisedServerTest, ArmedSpikeFaultQuarantinedAndCleared) {
  ServerConfig cfg = supervised_config();
  cfg.allow_faults = true;  // chaos mode: runners replay armed faults
  std::atomic<bool> armed{true};
  cfg.chaos_on_batch = [&](const ChaosContext& ctx) {
    if (!armed.exchange(false)) return;
    faults::FaultSpec spec;
    spec.kind = faults::FaultKind::kSpikeDrop;
    spec.rate = 0.5;
    spec.seed = 9;
    faults::arm_fault(*ctx.model, spec);
  };
  Server server(cfg);
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  InferResult r;
  ASSERT_TRUE(server.infer(random_image(351), RequestOptions{}, r));

  // The fast canary's armed-fault scan quarantines the replica; the
  // respawned one carries no fault and matches the reference bitwise.
  const Tensor x = random_image(352);
  const Tensor want = reference.model->logits(x);
  ASSERT_TRUE(server.infer(x, RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  for (std::int64_t k = 0; k < want.numel(); ++k)
    EXPECT_EQ(r.scores[static_cast<std::size_t>(k)], want.data()[k]);

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.quarantines, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.errors, 0);
}

TEST(SupervisedServerTest, PersistentFaultExhaustsRetryBudget) {
  ServerConfig cfg = supervised_config();
  cfg.supervisor.retry.max_attempts = 2;
  // No one-shot flag: the fault re-poisons every freshly healed replica,
  // so no attempt can ever succeed.
  cfg.chaos_on_batch = [](const ChaosContext& ctx) {
    poison_head_bias(*ctx.model);
  };
  Server server(cfg);

  InferResult r;
  EXPECT_FALSE(server.infer(random_image(401), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kError);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.error.find("non-finite"), std::string::npos) << r.error;

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.retries, 1) << "attempt 2 fails terminally, no re-enqueue";
  EXPECT_GE(stats.quarantines, 2);
  EXPECT_EQ(stats.completed, 0);
}

TEST(ServerValidationTest, NegativeFlagThresholdRejectedAtConstruction) {
  ServerConfig cfg = supervised_config();
  cfg.supervisor.enabled = false;
  cfg.flag_threshold = -1.0;
  EXPECT_THROW(Server{cfg}, util::Error);
  cfg.flag_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Server{cfg}, util::Error);
  cfg.flag_threshold = 0.0;  // boundary: zero is a valid (hair-trigger) value
  Server ok(cfg);
}

TEST(ServerValidationTest, NonFinitePixelsRejectedBeforeEncoding) {
  ServerConfig cfg = supervised_config();
  cfg.supervisor.enabled = false;
  Server server(cfg);

  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    Tensor x = random_image(451);
    x.data()[5] = bad;
    InferResult r;
    EXPECT_FALSE(server.infer(x, RequestOptions{}, r));
    EXPECT_EQ(r.status, ResultStatus::kError);
    EXPECT_NE(r.error.find("non-finite"), std::string::npos) << r.error;
  }
  EXPECT_EQ(server.stats().errors, 3);
  EXPECT_EQ(server.stats().completed, 0);

  // A clean image on the same server still serves normally.
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(452), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
}

TEST(ServerValidationTest, UnsupervisedServerDeliversCorruptedLogits) {
  // The supervision-off contract the chaos bench's OFF arm measures: no
  // canaries, no retry — a fault's damage goes straight to the caller.
  ServerConfig cfg = supervised_config();
  cfg.supervisor.enabled = false;
  std::atomic<bool> armed{true};
  cfg.chaos_on_batch = [&](const ChaosContext& ctx) {
    if (!armed.exchange(false)) return;
    poison_head_bias(*ctx.model);
  };
  Server server(cfg);

  InferResult r;
  ASSERT_TRUE(server.infer(random_image(501), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_EQ(r.attempts, 1);
  bool any_nonfinite = false;
  for (const float s : r.scores)
    if (!std::isfinite(s)) any_nonfinite = true;
  EXPECT_TRUE(any_nonfinite) << "+inf logits must pass through unsupervised";
  EXPECT_EQ(server.stats().quarantines, 0);
  EXPECT_EQ(server.stats().retries, 0);
}

TEST(SupervisedServerTest, WatchdogRescuesStalledWorkerRequests) {
  ServerConfig cfg = supervised_config();
  cfg.workers = 1;
  cfg.supervisor.heartbeat_timeout_ms = 50;
  std::atomic<bool> stall{true};
  cfg.chaos_on_batch = [&](const ChaosContext&) {
    if (stall.exchange(false))
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
  };
  Server server(cfg);
  if (server.worker_count() == 0)
    GTEST_SKIP() << "thread pool too small for resident workers";
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  // The first batch wedges for 300ms with a 50ms heartbeat budget: the
  // watchdog deposes the worker, rescues its in-flight slot back into the
  // queue, and a freshly spawned replacement answers it — the caller just
  // sees a slow OK result.
  const Tensor x = random_image(601);
  const Tensor want = reference.model->logits(x);
  InferResult r;
  ASSERT_TRUE(server.infer(x, RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  EXPECT_GE(r.attempts, 2);
  for (std::int64_t k = 0; k < want.numel(); ++k)
    EXPECT_EQ(r.scores[static_cast<std::size_t>(k)], want.data()[k]);

  // The replacement worker keeps serving.
  ASSERT_TRUE(server.infer(random_image(602), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kOk);
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.watchdog_trips, 1);
  EXPECT_GE(stats.rescues, 1);
  EXPECT_GE(stats.respawns, 1);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.completed, 2);
}

}  // namespace
}  // namespace snnsec::serve
