// im2col/col2im geometry, correctness, and adjointness.
#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {
namespace {

ConvGeometry make_geom(std::int64_t c, std::int64_t h, std::int64_t w,
                       std::int64_t k, std::int64_t stride, std::int64_t pad) {
  ConvGeometry g;
  g.channels = c;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = k;
  g.stride_h = g.stride_w = stride;
  g.pad_h = g.pad_w = pad;
  g.validate();
  return g;
}

TEST(ConvGeometry, OutputSizes) {
  EXPECT_EQ(make_geom(1, 5, 5, 3, 1, 0).out_h(), 3);
  EXPECT_EQ(make_geom(1, 5, 5, 3, 1, 1).out_h(), 5);
  EXPECT_EQ(make_geom(1, 6, 6, 2, 2, 0).out_h(), 3);
  EXPECT_EQ(make_geom(2, 4, 4, 3, 1, 0).patch_size(), 18);
}

TEST(ConvGeometry, InvalidGeometriesThrow) {
  ConvGeometry g = make_geom(1, 5, 5, 3, 1, 0);
  g.kernel_h = 9;  // larger than padded input
  EXPECT_THROW(g.validate(), util::Error);
  g = make_geom(1, 5, 5, 3, 1, 0);
  g.stride_h = 0;
  EXPECT_THROW(g.validate(), util::Error);
  g = make_geom(1, 5, 5, 3, 1, 0);
  g.pad_h = -1;
  EXPECT_THROW(g.validate(), util::Error);
}

TEST(Im2col, OneByOneKernelIsIdentity) {
  const auto g = make_geom(1, 3, 3, 1, 1, 0);
  const float img[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  float col[9];
  im2col(g, img, col);
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(col[i], img[i]);
}

TEST(Im2col, ExtractsPatchesRowMajor) {
  // 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 output, 4 patches.
  const auto g = make_geom(1, 3, 3, 2, 1, 0);
  const float img[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  float col[4 * 4];
  im2col(g, img, col);
  // Row r of col = kernel position (kh, kw); column j = output position.
  // Patch at output (0,0) is {1,2,4,5} spread down rows at column 0.
  EXPECT_FLOAT_EQ(col[0 * 4 + 0], 1);
  EXPECT_FLOAT_EQ(col[1 * 4 + 0], 2);
  EXPECT_FLOAT_EQ(col[2 * 4 + 0], 4);
  EXPECT_FLOAT_EQ(col[3 * 4 + 0], 5);
  // Output (1,1) -> patch {5,6,8,9} at column 3.
  EXPECT_FLOAT_EQ(col[0 * 4 + 3], 5);
  EXPECT_FLOAT_EQ(col[3 * 4 + 3], 9);
}

TEST(Im2col, PaddingContributesZeros) {
  const auto g = make_geom(1, 2, 2, 3, 1, 1);
  const float img[4] = {1, 2, 3, 4};
  float col[9 * 4];
  im2col(g, img, col);
  // Output (0,0): kernel centered so corner taps hit padding.
  EXPECT_FLOAT_EQ(col[0 * 4 + 0], 0);  // (kh=0,kw=0) out (0,0) -> pad
  EXPECT_FLOAT_EQ(col[4 * 4 + 0], 1);  // center tap -> pixel (0,0)
}

TEST(Im2col, ConvolutionViaGemmMatchesDirect) {
  // Random conv computed two ways: im2col+GEMM vs direct summation.
  util::Rng rng(7);
  const auto g = make_geom(2, 6, 6, 3, 1, 1);
  const Tensor img = Tensor::randn(Shape{2, 6, 6}, rng);
  const Tensor w = Tensor::randn(Shape{4, g.patch_size()}, rng);  // Cout=4

  Tensor col(Shape{g.patch_size(), g.out_h() * g.out_w()});
  im2col(g, img.data(), col.data());
  const Tensor out = matmul(w, col);  // [4, OH*OW]

  for (std::int64_t co = 0; co < 4; ++co)
    for (std::int64_t oy = 0; oy < g.out_h(); ++oy)
      for (std::int64_t ox = 0; ox < g.out_w(); ++ox) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < 2; ++c)
          for (std::int64_t kh = 0; kh < 3; ++kh)
            for (std::int64_t kw = 0; kw < 3; ++kw) {
              const std::int64_t iy = oy + kh - 1;
              const std::int64_t ix = ox + kw - 1;
              if (iy < 0 || iy >= 6 || ix < 0 || ix >= 6) continue;
              acc += static_cast<double>(w.at({co, (c * 3 + kh) * 3 + kw})) *
                     img.at({c, iy, ix});
            }
        EXPECT_NEAR(out.at({co, oy * g.out_w() + ox}), acc, 1e-4)
            << co << "," << oy << "," << ox;
      }
}

TEST(Col2im, IsExactAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y.
  util::Rng rng(11);
  const auto g = make_geom(3, 5, 7, 3, 2, 1);
  const std::int64_t img_n = g.channels * g.height * g.width;
  const std::int64_t col_n = g.patch_size() * g.out_h() * g.out_w();
  const Tensor x = Tensor::randn(Shape{img_n}, rng);
  const Tensor y = Tensor::randn(Shape{col_n}, rng);

  std::vector<float> col(static_cast<std::size_t>(col_n), 0.0f);
  im2col(g, x.data(), col.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < col_n; ++i)
    lhs += static_cast<double>(col[static_cast<std::size_t>(i)]) * y[i];

  std::vector<float> back(static_cast<std::size_t>(img_n), 0.0f);
  col2im(g, y.data(), back.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < img_n; ++i)
    rhs += static_cast<double>(back[static_cast<std::size_t>(i)]) * x[i];

  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Im2colLd, StridedLayoutMatchesContiguousPerSample) {
  util::Rng rng(13);
  const auto g = make_geom(2, 4, 4, 3, 1, 1);
  const std::int64_t ohw = g.out_h() * g.out_w();
  const std::int64_t img_n = g.channels * g.height * g.width;
  const Tensor imgs = Tensor::randn(Shape{3 * img_n}, rng);  // 3 samples

  // Batched: one wide matrix.
  Tensor wide(Shape{g.patch_size(), 3 * ohw});
  for (std::int64_t i = 0; i < 3; ++i)
    im2col_ld(g, imgs.data() + i * img_n, wide.data(), 3 * ohw, i * ohw);

  // Reference: per-sample contiguous.
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor single(Shape{g.patch_size(), ohw});
    im2col(g, imgs.data() + i * img_n, single.data());
    for (std::int64_t r = 0; r < g.patch_size(); ++r)
      for (std::int64_t j = 0; j < ohw; ++j)
        EXPECT_FLOAT_EQ(wide.at({r, i * ohw + j}), single.at({r, j}));
  }
}

}  // namespace
}  // namespace snnsec::tensor
