// Element-wise ops, broadcasting, reductions, softmax.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace snnsec::tensor {
namespace {

TEST(Ops, SameShapeArithmetic) {
  const Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector(Shape{3}, {4, 10, -3});
  EXPECT_TRUE(add(a, b).allclose(Tensor::from_vector(Shape{3}, {5, 12, 0})));
  EXPECT_TRUE(sub(a, b).allclose(Tensor::from_vector(Shape{3}, {-3, -8, 6})));
  EXPECT_TRUE(mul(a, b).allclose(Tensor::from_vector(Shape{3}, {4, 20, -9})));
  EXPECT_TRUE(div(b, a).allclose(Tensor::from_vector(Shape{3}, {4, 5, -1})));
  EXPECT_TRUE(maximum(a, b).allclose(Tensor::from_vector(Shape{3}, {4, 10, 3})));
  EXPECT_TRUE(minimum(a, b).allclose(Tensor::from_vector(Shape{3}, {1, 2, -3})));
}

TEST(Ops, BroadcastRowVector) {
  // [2,3] + [3]
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor v = Tensor::from_vector(Shape{3}, {10, 20, 30});
  const Tensor r = add(a, v);
  EXPECT_TRUE(r.allclose(
      Tensor::from_vector(Shape{2, 3}, {10, 21, 32, 13, 24, 35})));
}

TEST(Ops, BroadcastColumnAgainstRow) {
  // [2,1] * [1,3] -> [2,3]
  const Tensor c = Tensor::from_vector(Shape{2, 1}, {2, 3});
  const Tensor r = Tensor::from_vector(Shape{1, 3}, {1, 10, 100});
  const Tensor out = mul(c, r);
  EXPECT_EQ(out.shape(), Shape({2, 3}));
  EXPECT_TRUE(out.allclose(
      Tensor::from_vector(Shape{2, 3}, {2, 20, 200, 3, 30, 300})));
}

TEST(Ops, BroadcastScalarTensor) {
  const Tensor a = Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor s = Tensor::scalar(10.0f);
  EXPECT_TRUE(
      add(a, s).allclose(Tensor::from_vector(Shape{2, 2}, {11, 12, 13, 14})));
}

TEST(Ops, BroadcastRank3) {
  // [2,1,2] + [3,1] -> [2,3,2]
  const Tensor a = Tensor::from_vector(Shape{2, 1, 2}, {0, 1, 10, 11});
  const Tensor b = Tensor::from_vector(Shape{3, 1}, {100, 200, 300});
  const Tensor r = add(a, b);
  EXPECT_EQ(r.shape(), Shape({2, 3, 2}));
  EXPECT_FLOAT_EQ(r.at({0, 0, 0}), 100.0f);
  EXPECT_FLOAT_EQ(r.at({0, 2, 1}), 301.0f);
  EXPECT_FLOAT_EQ(r.at({1, 1, 0}), 210.0f);
}

TEST(Ops, BroadcastIncompatibleThrows) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{2, 4});
  EXPECT_THROW(add(a, b), util::Error);
}

TEST(Ops, ScalarOps) {
  const Tensor a = Tensor::from_vector(Shape{2}, {1, -2});
  EXPECT_TRUE(add_scalar(a, 1.0f).allclose(
      Tensor::from_vector(Shape{2}, {2, -1})));
  EXPECT_TRUE(mul_scalar(a, -3.0f).allclose(
      Tensor::from_vector(Shape{2}, {-3, 6})));
}

TEST(Ops, UnaryFunctions) {
  const Tensor a = Tensor::from_vector(Shape{4}, {-2, -0.5, 0, 1.5});
  EXPECT_TRUE(neg(a).allclose(Tensor::from_vector(Shape{4}, {2, 0.5, 0, -1.5})));
  EXPECT_TRUE(abs(a).allclose(Tensor::from_vector(Shape{4}, {2, 0.5, 0, 1.5})));
  EXPECT_TRUE(sign(a).allclose(Tensor::from_vector(Shape{4}, {-1, -1, 0, 1})));
  EXPECT_TRUE(relu(a).allclose(Tensor::from_vector(Shape{4}, {0, 0, 0, 1.5})));
  EXPECT_TRUE(
      heaviside(a).allclose(Tensor::from_vector(Shape{4}, {0, 0, 0, 1})));
  EXPECT_TRUE(clamp(a, -1.0f, 1.0f)
                  .allclose(Tensor::from_vector(Shape{4}, {-1, -0.5, 0, 1})));
  EXPECT_NEAR(exp(a)[3], std::exp(1.5f), 1e-5f);
  EXPECT_NEAR(sqrt(abs(a))[0], std::sqrt(2.0f), 1e-6f);
  EXPECT_NEAR(log(exp(a))[1], -0.5f, 1e-5f);
}

TEST(Ops, ScalarReductions) {
  const Tensor a = Tensor::from_vector(Shape{2, 2}, {1, -2, 3, 4});
  EXPECT_FLOAT_EQ(sum(a), 6.0f);
  EXPECT_FLOAT_EQ(mean(a), 1.5f);
  EXPECT_FLOAT_EQ(max_value(a), 4.0f);
  EXPECT_FLOAT_EQ(min_value(a), -2.0f);
  EXPECT_EQ(argmax_flat(a), 3);
  EXPECT_NEAR(l2_norm(a), std::sqrt(30.0f), 1e-5f);
}

TEST(Ops, LinfDistance) {
  const Tensor a = Tensor::from_vector(Shape{3}, {0, 0, 0});
  const Tensor b = Tensor::from_vector(Shape{3}, {0.5f, -1.25f, 0.1f});
  EXPECT_FLOAT_EQ(linf_distance(a, b), 1.25f);
  EXPECT_THROW(linf_distance(a, Tensor(Shape{2})), util::Error);
}

TEST(Ops, SumMeanMaxAlongDim) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 5, 2, 7, 0, 4});
  EXPECT_TRUE(sum_dim(a, 0).allclose(Tensor::from_vector(Shape{3}, {8, 5, 6})));
  EXPECT_TRUE(sum_dim(a, 1).allclose(Tensor::from_vector(Shape{2}, {8, 11})));
  EXPECT_TRUE(
      mean_dim(a, 1).allclose(Tensor::from_vector(Shape{2}, {8.0f / 3, 11.0f / 3})));
  std::vector<std::int64_t> idx;
  const Tensor m = max_dim(a, 1, &idx);
  EXPECT_TRUE(m.allclose(Tensor::from_vector(Shape{2}, {5, 7})));
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  // negative dim
  EXPECT_TRUE(sum_dim(a, -1).allclose(sum_dim(a, 1)));
}

TEST(Ops, ArgmaxRows) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 5, 2, 7, 0, 4});
  const auto idx = argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
  EXPECT_THROW(argmax_rows(Tensor(Shape{3})), util::Error);
}

TEST(Ops, Transpose) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor t = transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0f);
  EXPECT_TRUE(transpose(t).allclose(a));
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
  const Tensor a =
      Tensor::from_vector(Shape{2, 3}, {1, 2, 3, -1, -1, 5});
  const Tensor s = softmax_rows(a);
  for (std::int64_t i = 0; i < 2; ++i) {
    float rowsum = 0.0f;
    for (std::int64_t j = 0; j < 3; ++j) rowsum += s.at({i, j});
    EXPECT_NEAR(rowsum, 1.0f, 1e-5f);
  }
  EXPECT_GT(s.at({0, 2}), s.at({0, 1}));
  EXPECT_GT(s.at({0, 1}), s.at({0, 0}));
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  const Tensor a = Tensor::from_vector(Shape{1, 2}, {1000.0f, 1001.0f});
  const Tensor s = softmax_rows(a);
  EXPECT_FALSE(std::isnan(s[0]));
  EXPECT_NEAR(s[0] + s[1], 1.0f, 1e-5f);
  EXPECT_GT(s[1], s[0]);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  const Tensor a = Tensor::from_vector(Shape{2, 3}, {0.5f, -1, 2, 3, 3, 3});
  const Tensor ls = log_softmax_rows(a);
  const Tensor s = softmax_rows(a);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5f);
}

TEST(Ops, OneHot) {
  const Tensor oh = one_hot({1, 0, 2}, 3);
  EXPECT_EQ(oh.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(oh.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(oh.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(oh.at({2, 2}), 1.0f);
  EXPECT_THROW(one_hot({3}, 3), util::Error);
  EXPECT_THROW(one_hot({-1}, 3), util::Error);
}

TEST(Ops, GenericBroadcastBinary) {
  const Tensor a = Tensor::from_vector(Shape{2}, {3, 5});
  const Tensor b = Tensor::from_vector(Shape{2}, {2, 2});
  const Tensor r = broadcast_binary(
      a, b, [](float x, float y) { return std::fmod(x, y); });
  EXPECT_FLOAT_EQ(r[0], 1.0f);
  EXPECT_FLOAT_EQ(r[1], 1.0f);
}

}  // namespace
}  // namespace snnsec::tensor
