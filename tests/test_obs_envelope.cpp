// ActivityEnvelope: deterministic calibration, checkpoint-style persistence
// (magic/version/config_hash/digest validation) and the top-k RMS z-score.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/envelope.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::obs {
namespace {

namespace fs = std::filesystem;

constexpr int kBuckets = 4;
constexpr std::uint64_t kHash = 0xFEEDFACECAFEBEEFull;

std::vector<SketchLayerInfo> layer_infos() {
  return {{"lif0", 1.0}, {"lif1", 1.5}};
}

ActivitySketch make_sketch(util::Rng& rng) {
  ActivitySketch s;
  s.steps = 6;
  s.layers.resize(2);
  for (auto& l : s.layers) {
    l.firing_rate = rng.uniform(0.1, 0.3);
    l.silent_fraction = rng.uniform(0.2, 0.4);
    l.saturated_fraction = rng.uniform(0.0, 0.05);
    l.v_mean = rng.uniform(-0.2, 0.2);
    l.spike_count = 10;
    l.neurons = 32;
    l.hist_frac.resize(kBuckets);
    for (auto& h : l.hist_frac) h = rng.uniform(0.0, 0.25);
  }
  return s;
}

std::vector<ActivitySketch> clean_set(std::uint64_t seed, int n = 32) {
  util::Rng rng(seed);
  std::vector<ActivitySketch> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(make_sketch(rng));
  return out;
}

ActivityEnvelope fitted(std::uint64_t seed = 9,
                        std::uint64_t hash = kHash) {
  ActivityEnvelope e;
  e.fit(clean_set(seed), layer_infos(), kBuckets, hash);
  return e;
}

/// A sketch sitting exactly on every calibrated mean (score must be 0).
ActivitySketch mean_sketch(const ActivityEnvelope& e) {
  ActivitySketch s;
  s.steps = 6;
  s.layers.resize(e.layers().size());
  std::size_t idx = 0;
  for (auto& l : s.layers) {
    l.firing_rate = e.bands()[idx++].mean;
    l.silent_fraction = e.bands()[idx++].mean;
    l.saturated_fraction = e.bands()[idx++].mean;
    l.v_mean = e.bands()[idx++].mean;
    l.hist_frac.resize(static_cast<std::size_t>(e.buckets()));
    for (auto& h : l.hist_frac) h = e.bands()[idx++].mean;
  }
  return s;
}

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(ActivityEnvelope, FitIsReproducibleFromFixedSeed) {
  const ActivityEnvelope a = fitted(9);
  const ActivityEnvelope b = fitted(9);
  ASSERT_EQ(a.bands().size(), b.bands().size());
  for (std::size_t f = 0; f < a.bands().size(); ++f) {
    EXPECT_EQ(a.bands()[f].mean, b.bands()[f].mean) << "feature " << f;
    EXPECT_EQ(a.bands()[f].sigma, b.bands()[f].sigma) << "feature " << f;
    EXPECT_EQ(a.bands()[f].q_lo, b.bands()[f].q_lo) << "feature " << f;
    EXPECT_EQ(a.bands()[f].q_hi, b.bands()[f].q_hi) << "feature " << f;
  }
  util::Rng rng(77);
  const ActivitySketch probe = make_sketch(rng);
  EXPECT_EQ(a.score(probe), b.score(probe));
}

TEST(ActivityEnvelope, ScoreIsZeroAtTheCleanMeanAndGrowsWithDeviation) {
  const ActivityEnvelope e = fitted();
  ActivitySketch probe = mean_sketch(e);
  EXPECT_DOUBLE_EQ(e.score(probe), 0.0);
  EXPECT_DOUBLE_EQ(e.out_of_band_fraction(probe), 0.0);

  const double base = e.score(probe);
  probe.layers[0].firing_rate += 0.5;  // a few sigma of drift
  const double drift = e.score(probe);
  EXPECT_GT(drift, base);
  probe.layers[0].firing_rate += 5.0;  // egregious
  EXPECT_GT(e.score(probe), drift);
  EXPECT_GT(e.out_of_band_fraction(probe), 0.0);
}

TEST(ActivityEnvelope, SaveLoadRoundTrip) {
  const std::string path = temp_path("snnsec_test_envelope.envelope");
  const ActivityEnvelope e = fitted();
  e.save(path);
  const ActivityEnvelope l = ActivityEnvelope::load(path);

  EXPECT_EQ(l.config_hash(), e.config_hash());
  EXPECT_EQ(l.sample_count(), e.sample_count());
  EXPECT_EQ(l.created_unix_s(), e.created_unix_s());
  EXPECT_EQ(l.buckets(), e.buckets());
  ASSERT_EQ(l.layers().size(), e.layers().size());
  for (std::size_t i = 0; i < l.layers().size(); ++i) {
    EXPECT_EQ(l.layers()[i].name, e.layers()[i].name);
    EXPECT_EQ(l.layers()[i].v_th, e.layers()[i].v_th);
  }
  ASSERT_EQ(l.bands().size(), e.bands().size());
  util::Rng rng(78);
  const ActivitySketch probe = make_sketch(rng);
  EXPECT_EQ(l.score(probe), e.score(probe));
}

TEST(ActivityEnvelope, TryLoadRejectsForeignConfigHash) {
  const std::string path = temp_path("snnsec_test_envelope_hash.envelope");
  fitted().save(path);
  EXPECT_FALSE(ActivityEnvelope::try_load(path, kHash + 1).has_value());
  const auto ok = ActivityEnvelope::try_load(path, kHash);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->config_hash(), kHash);
}

TEST(ActivityEnvelope, LoadRejectsCorruptAndTruncatedFiles) {
  const std::string path = temp_path("snnsec_test_envelope_bad.envelope");
  fitted().save(path);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // One flipped byte in the band payload must fail the trailing digest.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= '\x55';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_THROW(ActivityEnvelope::load(path), util::Error);
  EXPECT_FALSE(ActivityEnvelope::try_load(path, kHash).has_value());

  // A truncated file must be rejected, not read past the end.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(ActivityEnvelope::load(path), util::Error);

  EXPECT_THROW(ActivityEnvelope::load("/nonexistent/x.envelope"),
               util::Error);
}

TEST(ActivityEnvelope, FitGuards) {
  ActivityEnvelope e;
  EXPECT_FALSE(e.ready());
  std::vector<ActivitySketch> one = clean_set(1, 1);
  EXPECT_THROW(e.fit(one, layer_infos(), kBuckets, kHash), util::Error);

  // Sketch geometry must match the declared layers/buckets.
  std::vector<ActivitySketch> wrong = clean_set(2, 4);
  wrong[0].layers.pop_back();
  EXPECT_THROW(e.fit(wrong, layer_infos(), kBuckets, kHash), util::Error);
  std::vector<ActivitySketch> bad_buckets = clean_set(3, 4);
  bad_buckets[0].layers[0].hist_frac.push_back(0.0);
  EXPECT_THROW(e.fit(bad_buckets, layer_infos(), kBuckets, kHash),
               util::Error);
}

}  // namespace
}  // namespace snnsec::obs
