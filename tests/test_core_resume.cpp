// Fault tolerance of the explorer: crash-safe journal resume, validated
// checkpoint loads, divergence sentinels with re-seeded retry, and
// per-cell timeouts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/explorer.hpp"
#include "core/journal.hpp"
#include "data/synth_digits.hpp"

namespace snnsec::core {
namespace {

namespace fs = std::filesystem;

/// Tiny two-cell grid: one learnable cell (v_th = 1) and one dead cell
/// (v_th = 6) — small enough to explore repeatedly in a unit test.
ExplorationConfig tiny_config() {
  ExplorationConfig cfg;
  cfg.v_th_grid = {1.0, 6.0};
  cfg.t_grid = {8};
  cfg.eps_grid = {0.1};
  cfg.accuracy_threshold = 0.25;
  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.train.epochs = 1;
  cfg.train.batch_size = 32;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = 200;
  cfg.data.test_n = 40;
  cfg.data.image_size = 16;
  cfg.pgd.steps = 3;
  cfg.pgd.rel_stepsize = 0.34;
  cfg.attack_test_cap = 16;
  cfg.eval_batch = 16;
  cfg.retry.base_delay_ms = 0.0;  // unit tests must not sleep
  return cfg;
}

data::DataBundle tiny_data(const ExplorationConfig& cfg) {
  data::DataSpec spec = cfg.data;
  spec.force_synthetic = true;
  return data::load_digits(spec);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream oss;
  oss << is.rdbuf();
  return oss.str();
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "snnsec_resume_test").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }
  std::string dir_;
};

TEST_F(ResumeTest, CellLineRoundTripsExactly) {
  CellResult cell;
  cell.v_th = 1.25;
  cell.time_steps = 16;
  cell.clean_accuracy = 0.8374625;
  cell.learnable = true;
  cell.status = CellStatus::kOk;
  cell.attempts = 2;
  cell.error = "quote \" backslash \\ newline \n tab \t done";
  cell.train_seconds = 12.5;
  cell.spike_rates = {0.1, 0.0325};
  attack::RobustnessPoint pt;
  pt.epsilon = 0.1;
  pt.robustness = 1.0 / 3.0;  // not representable in decimal: %.17g must hold
  pt.attack_success_rate = 2.0 / 3.0;
  pt.mean_linf = 0.09999999;
  pt.mean_loss = 1.5;
  cell.robustness.emplace(0.1, pt);

  const auto decoded = RunJournal::decode_cell(RunJournal::encode_cell(cell));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->v_th, cell.v_th);
  EXPECT_EQ(decoded->time_steps, cell.time_steps);
  EXPECT_EQ(decoded->clean_accuracy, cell.clean_accuracy);
  EXPECT_EQ(decoded->learnable, cell.learnable);
  EXPECT_EQ(decoded->status, cell.status);
  EXPECT_EQ(decoded->attempts, cell.attempts);
  EXPECT_EQ(decoded->error, cell.error);
  EXPECT_EQ(decoded->spike_rates, cell.spike_rates);
  ASSERT_EQ(decoded->robustness.size(), 1u);
  EXPECT_EQ(decoded->robustness.at(0.1).robustness, pt.robustness);
  EXPECT_EQ(decoded->robustness.at(0.1).mean_linf, pt.mean_linf);
}

TEST_F(ResumeTest, DecodeRejectsMalformedLines) {
  EXPECT_FALSE(RunJournal::decode_cell("").has_value());
  EXPECT_FALSE(RunJournal::decode_cell("{\"type\":\"run\"}").has_value());
  EXPECT_FALSE(RunJournal::decode_cell("not json at all").has_value());
  CellResult cell;
  const std::string line = RunJournal::encode_cell(cell);
  // A truncated tail (crash mid-append) must be rejected, not misparsed.
  EXPECT_FALSE(
      RunJournal::decode_cell(line.substr(0, line.size() / 2)).has_value());
}

TEST_F(ResumeTest, JournalWithDifferentConfigHashIsDiscarded) {
  const std::string jpath = path("run.journal.jsonl");
  {
    RunJournal journal(jpath, 0x1111);
    CellResult cell;
    cell.v_th = 1.0;
    cell.time_steps = 8;
    journal.append(cell);
  }
  RunJournal same(jpath, 0x1111);
  EXPECT_EQ(same.recovered().size(), 1u);

  RunJournal other(jpath, 0x2222);
  EXPECT_TRUE(other.recovered().empty())
      << "a journal from a different config must never seed a run";
}

TEST_F(ResumeTest, JournalDropsCorruptTailButKeepsIntactPrefix) {
  const std::string jpath = path("run.journal.jsonl");
  {
    RunJournal journal(jpath, 7);
    CellResult a;
    a.v_th = 1.0;
    a.time_steps = 8;
    CellResult b;
    b.v_th = 2.0;
    b.time_steps = 8;
    journal.append(a);
    journal.append(b);
  }
  // Simulate a crash mid-append: chop bytes off the last line.
  std::string bytes = read_file(jpath);
  bytes.resize(bytes.size() - 10);
  std::ofstream(jpath, std::ios::binary | std::ios::trunc) << bytes;

  RunJournal journal(jpath, 7);
  ASSERT_EQ(journal.recovered().size(), 1u);
  EXPECT_EQ(journal.recovered()[0].v_th, 1.0);
  EXPECT_TRUE(journal.recovered()[0].from_journal);
}

TEST_F(ResumeTest, KilledSweepResumesWithoutRetrainingCompletedCells) {
  const ExplorationConfig cfg = tiny_config();
  const auto data = tiny_data(cfg);

  // Reference: uninterrupted run in its own cache.
  fs::create_directories(path("ref_cache"));
  RobustnessExplorer reference(cfg, path("ref_cache"));
  const ExplorationReport ref_report = reference.explore(data);
  ASSERT_EQ(ref_report.cells.size(), 2u);
  EXPECT_EQ(ref_report.resumed_cells, 0u);

  // Crash after the first finished cell: the journal line is written
  // before on_cell fires, so throwing here models a kill right after.
  fs::create_directories(path("crash_cache"));
  struct Crash {};
  {
    RobustnessExplorer victim(cfg, path("crash_cache"));
    EXPECT_THROW(victim.explore(data,
                                [&](const CellResult&) { throw Crash{}; }),
                 Crash);
  }

  // Resume: first cell replays from the journal, second cell trains.
  RobustnessExplorer resumed(cfg, path("crash_cache"));
  int trained_cells = 0;
  const ExplorationReport res_report =
      resumed.explore(data, [&](const CellResult& cell) {
        if (!cell.from_journal) ++trained_cells;
      });
  ASSERT_EQ(res_report.cells.size(), 2u);
  EXPECT_EQ(res_report.resumed_cells, 1u);
  EXPECT_TRUE(res_report.cells[0].from_journal);
  EXPECT_EQ(trained_cells, 1);

  // The resumed report must be indistinguishable from the uninterrupted
  // one where it matters: identical accuracies, robustness and CSV bytes.
  EXPECT_EQ(res_report.cells[0].clean_accuracy,
            ref_report.cells[0].clean_accuracy);
  EXPECT_EQ(res_report.cells[0].robustness.size(),
            ref_report.cells[0].robustness.size());
  for (const auto& [eps, pt] : ref_report.cells[0].robustness)
    EXPECT_EQ(res_report.cells[0].robustness.at(eps).robustness,
              pt.robustness);
  ref_report.write_csv(path("ref.csv"));
  res_report.write_csv(path("res.csv"));
  EXPECT_EQ(read_file(path("ref.csv")), read_file(path("res.csv")));
}

TEST_F(ResumeTest, TruncatedCheckpointIsRejectedAndRetrained) {
  ExplorationConfig cfg = tiny_config();
  cfg.v_th_grid = {1.0};
  const auto data = tiny_data(cfg);

  RobustnessExplorer explorer(cfg, dir_);
  const auto first = explorer.train_cell(1.0, 8, data);
  EXPECT_FALSE(first.from_cache);

  // Find the checkpoint and truncate it.
  std::string ckpt;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".snnt") ckpt = entry.path().string();
  ASSERT_FALSE(ckpt.empty());
  std::string bytes = read_file(ckpt);
  bytes.resize(bytes.size() / 2);
  std::ofstream(ckpt, std::ios::binary | std::ios::trunc) << bytes;

  RobustnessExplorer again(cfg, dir_);
  const auto second = again.train_cell(1.0, 8, data);
  EXPECT_FALSE(second.from_cache) << "truncated checkpoint must retrain";
  EXPECT_EQ(second.status, CellStatus::kOk);
}

TEST_F(ResumeTest, BitflippedCheckpointIsRejectedAndRetrained) {
  ExplorationConfig cfg = tiny_config();
  cfg.v_th_grid = {1.0};
  const auto data = tiny_data(cfg);

  RobustnessExplorer explorer(cfg, dir_);
  explorer.train_cell(1.0, 8, data);

  std::string ckpt;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".snnt") ckpt = entry.path().string();
  ASSERT_FALSE(ckpt.empty());
  std::string bytes = read_file(ckpt);
  bytes[bytes.size() / 2] = static_cast<char>(
      static_cast<unsigned char>(bytes[bytes.size() / 2]) ^ 0x10);
  std::ofstream(ckpt, std::ios::binary | std::ios::trunc) << bytes;

  RobustnessExplorer again(cfg, dir_);
  const auto second = again.train_cell(1.0, 8, data);
  EXPECT_FALSE(second.from_cache)
      << "a single flipped bit must fail the payload digest";
}

TEST_F(ResumeTest, NanLossTriggersReseededRetryThatSucceeds) {
  ExplorationConfig cfg = tiny_config();
  cfg.v_th_grid = {1.0};
  const auto data = tiny_data(cfg);

  RobustnessExplorer explorer(cfg);
  int hook_calls = 0;
  explorer.set_train_fault_hook([&](double, std::int64_t, int attempt,
                                    snn::SpikingClassifier& model) {
    ++hook_calls;
    // Poison the readout-side bias with +inf: NaN would be swallowed by the
    // spike threshold and LiReadout's max-over-time decode (NaN loses every
    // comparison), but +inf wins the max, reaches the logits and turns the
    // log-softmax loss non-finite.
    if (attempt == 0)
      model.parameters().back()->value.data()[0] =
          std::numeric_limits<float>::infinity();
  });
  const auto cell = explorer.train_cell(1.0, 8, data);
  EXPECT_EQ(cell.status, CellStatus::kOk);
  EXPECT_EQ(cell.attempts, 2);
  EXPECT_EQ(hook_calls, 2);
  EXPECT_TRUE(cell.error.empty());
  ASSERT_NE(cell.model, nullptr);
  EXPECT_GT(cell.clean_accuracy, 0.0);
}

TEST_F(ResumeTest, ExhaustedRetriesMarkCellFailedAndGridContinues) {
  ExplorationConfig cfg = tiny_config();
  cfg.retry.max_attempts = 2;
  const auto data = tiny_data(cfg);

  RobustnessExplorer explorer(cfg);
  explorer.set_train_fault_hook([&](double v_th, std::int64_t, int,
                                    snn::SpikingClassifier& model) {
    // NOLINTNEXTLINE(snnsec-float-eq): grid v_th values are exact literals from the test config
    if (v_th == 1.0)  // poison every attempt of the first cell only
      model.parameters().back()->value.data()[0] =
          std::numeric_limits<float>::infinity();
  });
  const ExplorationReport report = explorer.explore(data);
  ASSERT_EQ(report.cells.size(), 2u) << "grid must continue past a failure";
  EXPECT_EQ(report.cells[0].status, CellStatus::kFailedDiverged);
  EXPECT_EQ(report.cells[0].attempts, 2);
  EXPECT_FALSE(report.cells[0].error.empty());
  EXPECT_FALSE(report.cells[0].robustness_at(0.0).has_value());
  EXPECT_NE(report.cells[1].status, CellStatus::kFailedDiverged);
  EXPECT_EQ(report.failed_count(), 1u);

  EXPECT_NE(report.heatmap(0.0).find("FAIL"), std::string::npos);
  report.write_csv(path("failed.csv"));
  EXPECT_NE(read_file(path("failed.csv")).find("failed_diverged"),
            std::string::npos);
}

TEST_F(ResumeTest, CellTimeoutMarksFailedTimeoutWithoutRetry) {
  ExplorationConfig cfg = tiny_config();
  cfg.v_th_grid = {1.0};
  cfg.cell_timeout_seconds = 1e-4;  // expires during the first batch
  const auto data = tiny_data(cfg);

  RobustnessExplorer explorer(cfg);
  const auto cell = explorer.train_cell(1.0, 8, data);
  EXPECT_EQ(cell.status, CellStatus::kFailedTimeout);
  EXPECT_EQ(cell.attempts, 1) << "timeouts must not be retried";
  EXPECT_EQ(cell.model, nullptr);
  EXPECT_FALSE(cell.error.empty());
}

}  // namespace
}  // namespace snnsec::core
