// Forward semantics of every nn layer.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace snnsec::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Linear, ComputesXWTPlusB) {
  util::Rng rng(1);
  Linear lin(3, 2, rng);
  // Overwrite params with known values.
  lin.weight().value = Tensor::from_vector(Shape{2, 3}, {1, 0, -1, 2, 1, 0});
  lin.bias().value = Tensor::from_vector(Shape{2}, {0.5f, -0.5f});
  const Tensor x = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 0, 1, 0});
  const Tensor y = lin.forward(x, Mode::kEval);
  // row0: [1-3+0.5, 2+2-0.5] = [-1.5, 3.5]; row1: [0.5, 0.5]
  EXPECT_TRUE(y.allclose(Tensor::from_vector(Shape{2, 2}, {-1.5f, 3.5f, 0.5f, 0.5f})));
}

TEST(Linear, NoBiasVariant) {
  util::Rng rng(2);
  Linear lin(2, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  lin.weight().value = Tensor::from_vector(Shape{2, 2}, {1, 0, 0, 1});
  const Tensor x = Tensor::from_vector(Shape{1, 2}, {3, 4});
  EXPECT_TRUE(lin.forward(x, Mode::kEval).allclose(x));
}

TEST(Linear, RejectsWrongInputWidth) {
  util::Rng rng(3);
  Linear lin(3, 2, rng);
  EXPECT_THROW(lin.forward(Tensor(Shape{1, 4}), Mode::kEval), util::Error);
  EXPECT_THROW(lin.forward(Tensor(Shape{3}), Mode::kEval), util::Error);
}

TEST(Linear, BackwardRequiresCachedForward) {
  util::Rng rng(4);
  Linear lin(2, 2, rng);
  EXPECT_THROW(lin.backward(Tensor(Shape{1, 2})), util::Error);
  lin.forward(Tensor(Shape{1, 2}), Mode::kEval);  // eval does not cache
  EXPECT_THROW(lin.backward(Tensor(Shape{1, 2})), util::Error);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Rng rng(5);
  Conv2d conv(Conv2dSpec{1, 1, 3, 1, 1}, rng, /*bias=*/false);
  conv.weight().value.zero_();
  conv.weight().value[4] = 1.0f;  // center tap of the 3x3 kernel
  util::Rng drng(6);
  const Tensor x = Tensor::randn(Shape{2, 1, 5, 5}, drng);
  EXPECT_TRUE(conv.forward(x, Mode::kEval).allclose(x, 1e-5f));
}

TEST(Conv2d, KnownAverageKernel) {
  util::Rng rng(7);
  Conv2d conv(Conv2dSpec{1, 1, 2, 2, 0}, rng, /*bias=*/false);
  conv.weight().value = Tensor::full(Shape{1, 4}, 0.25f);
  const Tensor x = Tensor::from_vector(
      Shape{1, 1, 2, 2}, {1, 3, 5, 7});
  const Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(Conv2d, BiasAddsPerChannel) {
  util::Rng rng(8);
  Conv2d conv(Conv2dSpec{1, 2, 1, 1, 0}, rng);
  conv.weight().value = Tensor::from_vector(Shape{2, 1}, {1, 2});
  conv.bias().value = Tensor::from_vector(Shape{2}, {10, 20});
  const Tensor x = Tensor::from_vector(Shape{1, 1, 1, 2}, {1, 2});
  const Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_TRUE(y.allclose(
      Tensor::from_vector(Shape{1, 2, 1, 2}, {11, 12, 22, 24})));
}

TEST(Conv2d, OutputShape) {
  util::Rng rng(9);
  Conv2d conv(Conv2dSpec{3, 8, 5, 1, 2}, rng);
  const Tensor y = conv.forward(Tensor(Shape{4, 3, 16, 16}), Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({4, 8, 16, 16}));
  EXPECT_EQ(conv.out_size(16), 16);
}

TEST(Conv2d, RejectsWrongChannels) {
  util::Rng rng(10);
  Conv2d conv(Conv2dSpec{3, 8, 3, 1, 1}, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 2, 8, 8}), Mode::kEval),
               util::Error);
}

TEST(AvgPool2d, AveragesWindows) {
  AvgPool2d pool(2);
  const Tensor x =
      Tensor::from_vector(Shape{1, 1, 2, 4}, {1, 3, 5, 7, 2, 4, 6, 8});
  const Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(MaxPool2d, TakesWindowMaxAndRoutesGradient) {
  MaxPool2d pool(2);
  const Tensor x =
      Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  const Tensor y = pool.forward(x, Mode::kTrain);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  const Tensor dx = pool.backward(Tensor::ones(Shape{1, 1, 1, 1}));
  EXPECT_TRUE(dx.allclose(Tensor::from_vector(Shape{1, 1, 2, 2}, {0, 1, 0, 0})));
}

TEST(Pooling, RejectsTooSmallInput) {
  AvgPool2d pool(4);
  EXPECT_THROW(pool.forward(Tensor(Shape{1, 1, 2, 2}), Mode::kEval),
               util::Error);
}

TEST(ReLU, ForwardAndMask) {
  ReLU relu;
  const Tensor x = Tensor::from_vector(Shape{4}, {-1, 0, 0.5f, 2});
  const Tensor y = relu.forward(x, Mode::kTrain);
  EXPECT_TRUE(y.allclose(Tensor::from_vector(Shape{4}, {0, 0, 0.5f, 2})));
  const Tensor dx = relu.backward(Tensor::ones(Shape{4}));
  EXPECT_TRUE(dx.allclose(Tensor::from_vector(Shape{4}, {0, 0, 1, 1})));
}

TEST(Scale, MultipliesForwardAndBackward) {
  Scale s(3.0f);
  const Tensor x = Tensor::from_vector(Shape{2}, {1, -2});
  EXPECT_TRUE(s.forward(x, Mode::kEval)
                  .allclose(Tensor::from_vector(Shape{2}, {3, -6})));
  EXPECT_TRUE(s.backward(Tensor::ones(Shape{2}))
                  .allclose(Tensor::full(Shape{2}, 3.0f)));
}

TEST(SigmoidTanh, RangeAndFixedPoints) {
  Sigmoid sig;
  Tanh tanh_layer;
  const Tensor x = Tensor::from_vector(Shape{3}, {-10, 0, 10});
  const Tensor ys = sig.forward(x, Mode::kEval);
  EXPECT_NEAR(ys[0], 0.0f, 1e-4f);
  EXPECT_FLOAT_EQ(ys[1], 0.5f);
  EXPECT_NEAR(ys[2], 1.0f, 1e-4f);
  const Tensor yt = tanh_layer.forward(x, Mode::kEval);
  EXPECT_NEAR(yt[0], -1.0f, 1e-4f);
  EXPECT_FLOAT_EQ(yt[1], 0.0f);
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten f;
  const Tensor x = Tensor::arange(24).reshaped(Shape{2, 3, 2, 2});
  const Tensor y = f.forward(x, Mode::kTrain);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor dx = f.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout d(0.5, util::Rng(1));
  const Tensor x = Tensor::ones(Shape{100});
  EXPECT_TRUE(d.forward(x, Mode::kEval).allclose(x));
  // kAttack is inference semantics too.
  EXPECT_TRUE(d.forward(x, Mode::kAttack).allclose(x));
}

TEST(Dropout, TrainModeZerosAndRescales) {
  Dropout d(0.5, util::Rng(2));
  const Tensor x = Tensor::ones(Shape{10000});
  const Tensor y = d.forward(x, Mode::kTrain);
  std::int64_t zeros = 0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    // NOLINTNEXTLINE(snnsec-float-eq): kAttack-mode dropout passes values through exactly: 0 or 2x input
    EXPECT_TRUE(y[i] == 0.0f || y[i] == 2.0f);  // inverted dropout scale
    // NOLINTNEXTLINE(snnsec-float-eq): train-mode dropout zeroes dropped units exactly
    zeros += (y[i] == 0.0f);
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
              0.5, 0.03);
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 1.0,
              0.05);  // expectation preserved
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(-0.1, util::Rng(3)), util::Error);
  EXPECT_THROW(Dropout(1.0, util::Rng(3)), util::Error);
}

TEST(Sequential, ChainsLayersAndCollectsParameters) {
  util::Rng rng(11);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2x (weight, bias)
  const Tensor y = seq.forward(Tensor(Shape{5, 4}), Mode::kEval);
  EXPECT_EQ(y.shape(), Shape({5, 2}));
  EXPECT_FALSE(seq.summary().empty());
}

TEST(Sequential, AddNullThrows) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), util::Error);
}

}  // namespace
}  // namespace snnsec::nn
