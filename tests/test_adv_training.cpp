// Adversarial training: robustness improves, clean accuracy stays usable.
#include <gtest/gtest.h>

#include "attacks/adv_training.hpp"
#include "attacks/evaluation.hpp"
#include "attacks/pgd.hpp"
#include "nn/activations.hpp"
#include "nn/feedforward.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"

namespace snnsec::attack {
namespace {

using nn::FeedforwardClassifier;
using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<FeedforwardClassifier> make_mlp(std::uint64_t seed) {
  util::Rng rng(seed);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(3, 16, rng);
  seq->emplace<nn::Tanh>();
  seq->emplace<nn::Linear>(16, 2, rng);
  return std::make_unique<FeedforwardClassifier>(std::move(seq), 2, "mlp");
}

/// Robust-vs-spurious-feature construction: features 0/1 are robustly
/// separated blobs (margin 0.3), feature 2 is perfectly predictive but
/// fragile (class gap 0.1 < 2*eps) — a standard learner latches onto it,
/// an adversarially trained one must fall back to the robust features.
void make_blobs(Tensor& x, std::vector<std::int64_t>& y, std::int64_t n,
                std::uint64_t seed) {
  util::Rng rng(seed);
  x = Tensor(Shape{n, 1, 1, 3});
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t c = i % 2;
    x[i * 3 + 0] =
        static_cast<float>(rng.normal(c == 0 ? 0.35 : 0.65, 0.04));
    x[i * 3 + 1] =
        static_cast<float>(rng.normal(c == 0 ? 0.65 : 0.35, 0.04));
    x[i * 3 + 2] =
        static_cast<float>(rng.normal(c == 0 ? 0.45 : 0.55, 0.01));
    y[static_cast<std::size_t>(i)] = c;
  }
}

TEST(AdversarialTraining, ImprovesRobustnessOverStandardTraining) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(x, y, 128, 1);

  // Standard training.
  auto standard = make_mlp(2);
  AdversarialTrainConfig clean_cfg;
  clean_cfg.base.epochs = 30;
  clean_cfg.epsilon = 0.0;  // no perturbation => plain training loop
  adversarial_fit(*standard, x, y, clean_cfg);

  // Adversarial training at the evaluation budget.
  auto robustified = make_mlp(2);
  AdversarialTrainConfig adv_cfg;
  adv_cfg.base.epochs = 30;
  adv_cfg.epsilon = 0.1;
  adv_cfg.clean_fraction = 0.5;
  adversarial_fit(*robustified, x, y, adv_cfg);

  // Both must learn the clean task.
  EXPECT_GT(nn::accuracy(*standard, x, y), 0.9);
  EXPECT_GT(nn::accuracy(*robustified, x, y), 0.85);

  PgdConfig pcfg;
  pcfg.steps = 10;
  pcfg.rel_stepsize = 0.2;
  Pgd pgd_a(pcfg), pgd_b(pcfg);
  const auto pt_std = evaluate_attack(*standard, pgd_a, x, y, 0.1);
  const auto pt_adv = evaluate_attack(*robustified, pgd_b, x, y, 0.1);
  EXPECT_GT(pt_adv.robustness, pt_std.robustness)
      << "adversarially trained model must resist PGD better";
}

TEST(AdversarialTraining, ZeroEpsilonMatchesPlainLoop) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(x, y, 64, 3);
  auto model = make_mlp(4);
  AdversarialTrainConfig cfg;
  cfg.base.epochs = 5;
  cfg.epsilon = 0.0;
  const auto history = adversarial_fit(*model, x, y, cfg);
  EXPECT_EQ(history.epochs.size(), 5u);
  EXPECT_LT(history.epochs.back().train_loss,
            history.epochs.front().train_loss);
}

TEST(AdversarialTraining, PureAdversarialModeRuns) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(x, y, 64, 5);
  auto model = make_mlp(6);
  AdversarialTrainConfig cfg;
  cfg.base.epochs = 3;
  cfg.epsilon = 0.1;
  cfg.clean_fraction = 0.0;  // every sample perturbed
  EXPECT_NO_THROW(adversarial_fit(*model, x, y, cfg));
}

TEST(AdversarialTraining, RejectsBadConfig) {
  Tensor x;
  std::vector<std::int64_t> y;
  make_blobs(x, y, 16, 7);
  auto model = make_mlp(8);
  AdversarialTrainConfig cfg;
  cfg.epsilon = -0.1;
  EXPECT_THROW(adversarial_fit(*model, x, y, cfg), util::Error);
  cfg = AdversarialTrainConfig{};
  cfg.clean_fraction = 1.5;
  EXPECT_THROW(adversarial_fit(*model, x, y, cfg), util::Error);
  cfg = AdversarialTrainConfig{};
  EXPECT_THROW(adversarial_fit(*model, Tensor(Shape{0, 1, 1, 3}), {}, cfg),
               util::Error);
}

}  // namespace
}  // namespace snnsec::attack
