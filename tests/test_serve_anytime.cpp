// AnytimeRunner: per-timestep logits must bit-match the one-shot forward at
// t = T, and truncated logits must be a deterministic prefix property.
#include <gtest/gtest.h>

#include <memory>

#include "snn/anytime.hpp"
#include "snn/spiking_lenet.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<SpikingClassifier> make_model(
    std::int64_t t = 7, NeuronModel neuron = NeuronModel::kLif,
    double input_gain = 3.0) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  SnnConfig cfg;
  cfg.v_th = 1.1;
  cfg.time_steps = t;
  cfg.neuron_model = neuron;
  cfg.input_gain = input_gain;
  util::Rng rng(42);
  return build_spiking_lenet(arch, cfg, rng);
}

Tensor random_batch(std::int64_t n, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  Tensor x(Shape{n, 1, 8, 8});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
}

TEST(AnytimeRunner, FullWindowMatchesOneShotBitwise) {
  auto model = make_model();
  const Tensor x = random_batch(3);
  const Tensor one_shot = model->logits(x);

  AnytimeRunner runner(*model);
  const Tensor& stepped = runner.run(x);
  EXPECT_TRUE(runner.done());
  EXPECT_EQ(runner.steps_done(), model->time_steps());
  expect_bitwise_equal(stepped, one_shot);
}

TEST(AnytimeRunner, FullWindowMatchesOneShotAlif) {
  auto model = make_model(5, NeuronModel::kAlif);
  const Tensor x = random_batch(2, 11);
  const Tensor one_shot = model->logits(x);

  AnytimeRunner runner(*model);
  expect_bitwise_equal(runner.run(x), one_shot);
}

TEST(AnytimeRunner, NoScaleLayerWhenInputGainIsOne) {
  // input_gain == 1 drops the Scale layer from the stack; the runner must
  // still compile and match.
  auto model = make_model(4, NeuronModel::kLif, 1.0);
  const Tensor x = random_batch(2, 13);
  AnytimeRunner runner(*model);
  expect_bitwise_equal(runner.run(x), model->logits(x));
}

TEST(AnytimeRunner, TruncatedLogitsArePrefixDeterministic) {
  auto model = make_model();
  const Tensor x = random_batch(2, 21);

  // Two independent runners truncated at the same depth agree bitwise.
  AnytimeRunner a(*model);
  AnytimeRunner b(*model);
  const std::int64_t cut = 3;
  Tensor at_cut = a.run(x, cut);
  EXPECT_EQ(a.steps_done(), cut);
  EXPECT_FALSE(a.done());
  expect_bitwise_equal(at_cut, b.run(x, cut));

  // Continuing the truncated runner to T converges to the one-shot logits:
  // truncation is a prefix of the same computation, not a different one.
  while (!a.done()) a.step();
  expect_bitwise_equal(a.logits(), model->logits(x));
}

TEST(AnytimeRunner, TruncationMatchesModelBuiltWithSmallerT) {
  // The running-max decode means logits after t steps equal the logits of
  // the same weights evaluated with window T' = t. Build a T'=3 model with
  // identical weights (same RNG seed) and compare.
  auto full = make_model(7);
  auto small = make_model(3);
  const Tensor x = random_batch(2, 31);

  AnytimeRunner runner(*full);
  expect_bitwise_equal(runner.run(x, 3), small->logits(x));
}

TEST(AnytimeRunner, RunnerIsReusableAcrossRequests) {
  auto model = make_model();
  AnytimeRunner runner(*model);

  const Tensor x1 = random_batch(2, 41);
  const Tensor x2 = random_batch(2, 43);
  const Tensor fresh1 = model->logits(x1);
  const Tensor fresh2 = model->logits(x2);

  expect_bitwise_equal(runner.run(x1), fresh1);
  expect_bitwise_equal(runner.run(x2), fresh2);
  // State fully resets: repeating the first request reproduces it.
  expect_bitwise_equal(runner.run(x1), fresh1);
}

TEST(AnytimeRunner, BatchedMatchesSingleRequestBitwise) {
  auto model = make_model();
  const std::int64_t n = 4;
  const Tensor batch = random_batch(n, 51);
  AnytimeRunner runner(*model);
  const Tensor batched = runner.run(batch);

  for (std::int64_t i = 0; i < n; ++i) {
    Tensor one(Shape{1, 1, 8, 8});
    std::copy(batch.data() + i * 64, batch.data() + (i + 1) * 64, one.data());
    const Tensor& single = runner.run(one);
    for (std::int64_t c = 0; c < model->num_classes(); ++c)
      EXPECT_EQ(single.data()[c],
                batched.data()[i * model->num_classes() + c])
          << "sample " << i << " class " << c;
  }
}

TEST(AnytimeRunner, RejectsPoissonEncoder) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  SnnConfig cfg;
  cfg.time_steps = 4;
  cfg.encoder = EncoderKind::kPoisson;
  util::Rng rng(42);
  auto model = build_spiking_lenet(arch, cfg, rng);
  EXPECT_THROW(AnytimeRunner{*model}, util::Error);
}

TEST(AnytimeRunner, RejectsArmedSpikeFault) {
  auto model = make_model();
  SpikeFault fault;
  fault.drop_prob = 0.1;
  for (std::size_t i = 0; i < model->net().size(); ++i)
    if (model->net().layer(i).kind() == "LifLayer")
      static_cast<LifLayer&>(model->net().layer(i)).set_spike_fault(fault);

  AnytimeRunner runner(*model);
  EXPECT_THROW(runner.begin(random_batch(1)), util::Error);
}

TEST(AnytimeRunner, AllowFaultsOptsIntoArmedSpikeFaults) {
  // Chaos mode: the same armed fault that a default runner rejects is
  // replayed per step under allow_faults, bit-identically to the one-shot
  // faulted forward and deterministically across runners.
  auto model = make_model();
  const Tensor x = random_batch(2, 21);
  const Tensor clean = model->logits(x);

  SpikeFault fault;
  fault.drop_prob = 0.0;
  fault.stuck_one_fraction = 1.0;  // saturate every LIF: visibly not clean
  fault.seed = 31;
  for (std::size_t i = 0; i < model->net().size(); ++i)
    if (model->net().layer(i).kind() == "LifLayer")
      static_cast<LifLayer&>(model->net().layer(i)).set_spike_fault(fault);

  AnytimeRunner strict(*model);
  EXPECT_THROW(strict.begin(x), util::Error)
      << "default runners must keep rejecting armed faults";

  const Tensor faulted = model->logits(x);  // one-shot under the fault
  AnytimeRunner a(*model, /*allow_faults=*/true);
  AnytimeRunner b(*model, /*allow_faults=*/true);
  const Tensor& la = a.run(x, model->time_steps());
  expect_bitwise_equal(la, faulted);
  expect_bitwise_equal(la, b.run(x, model->time_steps()));
  bool differs = false;
  for (std::int64_t i = 0; i < clean.numel(); ++i)
    if (la.data()[i] != clean.data()[i]) differs = true;
  EXPECT_TRUE(differs) << "a saturated network cannot match clean logits";

  // Disarming restores the clean bit-exact contract for default runners.
  for (std::size_t i = 0; i < model->net().size(); ++i)
    if (model->net().layer(i).kind() == "LifLayer")
      static_cast<LifLayer&>(model->net().layer(i))
          .set_spike_fault(SpikeFault{});
  AnytimeRunner healed(*model);
  expect_bitwise_equal(healed.run(x, model->time_steps()), clean);
}

TEST(AnytimeRunner, StepGuards) {
  auto model = make_model(2);
  AnytimeRunner runner(*model);
  EXPECT_THROW(runner.step(), util::Error);  // step before begin
  runner.run(random_batch(1));
  EXPECT_THROW(runner.step(), util::Error);  // step past T
}

}  // namespace
}  // namespace snnsec::snn
