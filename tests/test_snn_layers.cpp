// LifLayer BPTT, LiReadout decoding, and encoders.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gradcheck.hpp"
#include "snn/encoder.hpp"
#include "snn/li_readout.hpp"
#include "snn/lif_layer.hpp"
#include "tensor/ops.hpp"

namespace snnsec::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

LifParameters params_with_vth(float v_th) {
  LifParameters p;
  p.v_th = v_th;
  return p;
}

TEST(LifLayer, OutputsAreBinarySpikes) {
  LifLayer lif(8, params_with_vth(0.5f), Surrogate{});
  util::Rng rng(1);
  const Tensor x = Tensor::rand_uniform(Shape{8 * 4, 10}, rng, 0.0f, 2.0f);
  const Tensor z = lif.forward(x, nn::Mode::kEval);
  EXPECT_EQ(z.shape(), x.shape());
  for (std::int64_t i = 0; i < z.numel(); ++i)
    // NOLINTNEXTLINE(snnsec-float-eq): LIF spikes are exactly 0 or 1 by construction
    EXPECT_TRUE(z[i] == 0.0f || z[i] == 1.0f);
  EXPECT_GT(lif.last_spike_rate(), 0.0);
  EXPECT_LT(lif.last_spike_rate(), 1.0);
}

TEST(LifLayer, RequiresDivisibleTimeDimension) {
  LifLayer lif(8, params_with_vth(1.0f), Surrogate{});
  EXPECT_THROW(lif.forward(Tensor(Shape{9, 3}), nn::Mode::kEval),
               util::Error);
}

TEST(LifLayer, BackwardNeedsCachedForward) {
  LifLayer lif(4, params_with_vth(1.0f), Surrogate{});
  lif.forward(Tensor(Shape{4, 2}), nn::Mode::kEval);
  EXPECT_THROW(lif.backward(Tensor(Shape{4, 2})), util::Error);
  lif.forward(Tensor(Shape{4, 2}), nn::Mode::kTrain);
  EXPECT_NO_THROW(lif.backward(Tensor(Shape{4, 2})));
  lif.clear_cache();
  EXPECT_THROW(lif.backward(Tensor(Shape{4, 2})), util::Error);
}

// Hand-computed BPTT on 1 neuron, T=3 (see comments for the step math).
// Parameters: a=0.1, b=0.8, v_th=0.15, reset=0, StraightThrough(alpha=1)
// so the surrogate is exactly 1 for |v - v_th| < 0.5.
// Input x = (2, 0, 0):
//   t0: vd=0      z=0  i->2
//   t1: vd=0.2    z=1  (reset) i->1.6
//   t2: vd=0.16   z=1  (reset) i->1.28
class LifHandCase : public ::testing::Test {
 protected:
  LifHandCase()
      : lif_(3, params_with_vth(0.15f),
             Surrogate{SurrogateKind::kStraightThrough, 1.0f}) {}

  Tensor run_forward() {
    const Tensor x = Tensor::from_vector(Shape{3, 1}, {2.0f, 0.0f, 0.0f});
    return lif_.forward(x, nn::Mode::kTrain);
  }

  LifLayer lif_;
};

TEST_F(LifHandCase, ForwardSpikesAtExpectedSteps) {
  const Tensor z = run_forward();
  EXPECT_FLOAT_EQ(z[0], 0.0f);
  EXPECT_FLOAT_EQ(z[1], 1.0f);
  EXPECT_FLOAT_EQ(z[2], 1.0f);
}

TEST_F(LifHandCase, BackwardGradOfMiddleSpike) {
  run_forward();
  const Tensor g = Tensor::from_vector(Shape{3, 1}, {0.0f, 1.0f, 0.0f});
  const Tensor dx = lif_.backward(g);
  // Derived by hand: dz1/dx = (0.1, 0, 0).
  EXPECT_NEAR(dx[0], 0.1f, 1e-6f);
  EXPECT_NEAR(dx[1], 0.0f, 1e-6f);
  EXPECT_NEAR(dx[2], 0.0f, 1e-6f);
}

TEST_F(LifHandCase, BackwardGradOfLastSpikeIncludesResetPath) {
  run_forward();
  const Tensor g = Tensor::from_vector(Shape{3, 1}, {0.0f, 0.0f, 1.0f});
  const Tensor dx = lif_.backward(g);
  // Derived by hand: dz2/dx = (0.062, 0.1, 0) — the t0 component combines
  // the direct synaptic path (+0.1*0.8) with the reset-gate path (-0.018).
  EXPECT_NEAR(dx[0], 0.062f, 1e-5f);
  EXPECT_NEAR(dx[1], 0.1f, 1e-6f);
  EXPECT_NEAR(dx[2], 0.0f, 1e-6f);
}

TEST(LifLayer, BackwardIsLinearInUpstreamGradient) {
  LifLayer lif(6, params_with_vth(0.8f), Surrogate{});
  util::Rng rng(2);
  const Tensor x = Tensor::rand_uniform(Shape{6 * 2, 5}, rng, 0.0f, 2.0f);
  lif.forward(x, nn::Mode::kTrain);
  const Tensor g1 = Tensor::randn(Shape{6 * 2, 5}, rng);
  const Tensor g2 = Tensor::randn(Shape{6 * 2, 5}, rng);
  const Tensor d1 = lif.backward(g1);
  const Tensor d2 = lif.backward(g2);
  Tensor gsum = g1;
  gsum.add_(g2);
  const Tensor dsum = lif.backward(gsum);
  Tensor expect = d1;
  expect.add_(d2);
  EXPECT_TRUE(dsum.allclose(expect, 1e-4f));
}

TEST(LifLayer, GradientIsCausal) {
  // dx at time t must not depend on upstream gradients at times < t, and
  // dx at the last step is always zero (input enters the *next* membrane).
  LifLayer lif(5, params_with_vth(0.6f), Surrogate{});
  util::Rng rng(3);
  const Tensor x = Tensor::rand_uniform(Shape{5 * 2, 3}, rng, 0.0f, 2.0f);
  lif.forward(x, nn::Mode::kTrain);
  Tensor g(Shape{5 * 2, 3});
  // Upstream gradient only at t = 2.
  for (std::int64_t k = 0; k < 2 * 3; ++k) g[2 * 2 * 3 + k] = 1.0f;
  const Tensor dx = lif.backward(g);
  for (std::int64_t t = 2; t < 5; ++t)
    for (std::int64_t k = 0; k < 2 * 3; ++k)
      EXPECT_FLOAT_EQ(dx[t * 2 * 3 + k], 0.0f)
          << "acausal gradient at t=" << t;
}

TEST(LiReadout, DecodesMaxOverTime) {
  LiReadout li(16, params_with_vth(1.0f));
  // Class 1 gets strong constant current, class 0 weak.
  Tensor x(Shape{16 * 2, 2});
  for (std::int64_t t = 0; t < 16; ++t)
    for (std::int64_t n = 0; n < 2; ++n) {
      x[(t * 2 + n) * 2 + 0] = 0.1f;
      x[(t * 2 + n) * 2 + 1] = 1.0f;
    }
  const Tensor logits = li.forward(x, nn::Mode::kEval);
  EXPECT_EQ(logits.shape(), Shape({2, 2}));
  EXPECT_GT(logits.at({0, 1}), logits.at({0, 0}));
  EXPECT_GT(logits.at({1, 1}), logits.at({1, 0}));
}

TEST(LiReadout, FiniteDifferenceGradient) {
  LiReadout li(6, params_with_vth(1.0f));
  util::Rng drng(4);
  const Tensor x = Tensor::randn(Shape{6 * 2, 3}, drng);
  util::Rng wrng(5);
  snnsec::testutil::check_input_gradient(li, x, wrng, /*step=*/1e-2,
                                         /*tol=*/2e-2);
}

TEST(LiReadout, MonotoneInInputCurrent) {
  LiReadout li(8, params_with_vth(1.0f));
  Tensor weak(Shape{8, 1}, 0.5f);
  Tensor strong(Shape{8, 1}, 1.0f);
  const float weak_logit = li.forward(weak, nn::Mode::kEval)[0];
  const float strong_logit = li.forward(strong, nn::Mode::kEval)[0];
  EXPECT_GT(strong_logit, weak_logit);
}

TEST(LiReadout, RejectsBadShapes) {
  LiReadout li(4, params_with_vth(1.0f));
  EXPECT_THROW(li.forward(Tensor(Shape{5, 2}), nn::Mode::kEval), util::Error);
  EXPECT_THROW(li.forward(Tensor(Shape{4, 2, 2}), nn::Mode::kEval),
               util::Error);
}

TEST(ConstantCurrentEncoder, RateGrowsWithIntensity) {
  auto enc = make_constant_current_encoder(32, params_with_vth(1.0f),
                                           Surrogate{});
  // Three pixels at increasing intensity, replicated over T=32.
  Tensor x(Shape{32, 3});
  for (std::int64_t t = 0; t < 32; ++t) {
    x[t * 3 + 0] = 0.3f;
    x[t * 3 + 1] = 0.8f;
    x[t * 3 + 2] = 2.0f;
  }
  const Tensor z = enc->forward(x, nn::Mode::kEval);
  double rate[3] = {0, 0, 0};
  for (std::int64_t t = 0; t < 32; ++t)
    for (int k = 0; k < 3; ++k) rate[k] += z[t * 3 + k];
  EXPECT_LE(rate[0], rate[1]);
  EXPECT_LT(rate[1], rate[2]);
  EXPECT_GT(rate[2], 0.0);
}

TEST(PoissonEncoder, SpikeRateMatchesIntensity) {
  PoissonEncoder enc(1000, util::Rng(6));
  Tensor x(Shape{1000, 3});
  for (std::int64_t t = 0; t < 1000; ++t) {
    x[t * 3 + 0] = 0.0f;
    x[t * 3 + 1] = 0.4f;
    x[t * 3 + 2] = 1.5f;  // clamped to 1
  }
  const Tensor z = enc.forward(x, nn::Mode::kEval);
  double rate[3] = {0, 0, 0};
  for (std::int64_t t = 0; t < 1000; ++t)
    for (int k = 0; k < 3; ++k) rate[k] += z[t * 3 + k];
  EXPECT_DOUBLE_EQ(rate[0], 0.0);
  EXPECT_NEAR(rate[1] / 1000.0, 0.4, 0.05);
  EXPECT_DOUBLE_EQ(rate[2], 1000.0);
}

TEST(PoissonEncoder, NonFinitePixelsEncodeAsSilent) {
  // NaN fails both clamp comparisons, so the seed kernel fed bernoulli(NaN);
  // the hardened encoder treats any non-finite pixel as rate 0.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  PoissonEncoder enc(100, util::Rng(11));
  Tensor x(Shape{100, 4});
  for (std::int64_t t = 0; t < 100; ++t) {
    x[t * 4 + 0] = nan;
    x[t * 4 + 1] = inf;   // non-finite, silent (not clamped to 1)
    x[t * 4 + 2] = -inf;
    x[t * 4 + 3] = 1.0f;  // sanity: saturated channel still fires
  }
  const Tensor z = enc.forward(x, nn::Mode::kTrain);
  double rate[4] = {0, 0, 0, 0};
  for (std::int64_t t = 0; t < 100; ++t)
    for (int k = 0; k < 4; ++k) {
      // NOLINTNEXTLINE(snnsec-float-eq): LIF spikes are exactly 0 or 1 by construction
      EXPECT_TRUE(z[t * 4 + k] == 0.0f || z[t * 4 + k] == 1.0f);
      rate[k] += z[t * 4 + k];
    }
  EXPECT_DOUBLE_EQ(rate[0], 0.0);
  EXPECT_DOUBLE_EQ(rate[1], 0.0);
  EXPECT_DOUBLE_EQ(rate[2], 0.0);
  EXPECT_DOUBLE_EQ(rate[3], 100.0);
  // The straight-through gate must also stay closed on poisoned pixels.
  const Tensor dx = enc.backward(Tensor::ones(Shape{100, 4}));
  for (std::int64_t t = 0; t < 100; ++t) {
    EXPECT_FLOAT_EQ(dx[t * 4 + 0], 0.0f);
    EXPECT_FLOAT_EQ(dx[t * 4 + 1], 0.0f);
  }
}

TEST(PoissonEncoder, StraightThroughGradientGating) {
  PoissonEncoder enc(4, util::Rng(7));
  const Tensor x =
      Tensor::from_vector(Shape{4, 1}, {-0.5f, 0.5f, 0.5f, 2.0f});
  enc.forward(x, nn::Mode::kTrain);
  const Tensor dx = enc.backward(Tensor::ones(Shape{4, 1}));
  EXPECT_FLOAT_EQ(dx[0], 0.0f);  // below range: clamp kills gradient
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);  // above range
}

TEST(LifLayer, NamesDescribeConfiguration) {
  LifLayer lif(12, params_with_vth(1.5f), Surrogate{});
  EXPECT_NE(lif.name().find("T=12"), std::string::npos);
  EXPECT_NE(lif.name().find("1.5"), std::string::npos);
  LiReadout li(12, params_with_vth(1.0f));
  EXPECT_NE(li.name().find("max-over-time"), std::string::npos);
}

}  // namespace
}  // namespace snnsec::snn
