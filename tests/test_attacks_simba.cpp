// SimBA black-box attack: query accounting, budget guarantees,
// effectiveness without gradients.
#include <gtest/gtest.h>

#include "attacks/simba.hpp"
#include "nn/activations.hpp"
#include "nn/feedforward.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace snnsec::attack {
namespace {

using nn::FeedforwardClassifier;
using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<FeedforwardClassifier> make_identity_model() {
  util::Rng rng(1);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  auto lin = std::make_unique<nn::Linear>(2, 2, rng, /*bias=*/false);
  lin->weight().value = Tensor::from_vector(Shape{2, 2}, {1, 0, 0, 1});
  seq->add(std::move(lin));
  return std::make_unique<FeedforwardClassifier>(std::move(seq), 2, "id");
}

TEST(Simba, RespectsBudgetAndBox) {
  auto model = make_identity_model();
  util::Rng rng(2);
  const Tensor x = Tensor::rand_uniform(Shape{4, 1, 1, 2}, rng);
  std::vector<std::int64_t> labels(4, 0);
  Simba atk;
  AttackBudget budget;
  budget.epsilon = 0.12;
  const Tensor adv = atk.perturb(*model, x, labels, budget);
  EXPECT_LE(tensor::linf_distance(adv, x), 0.12f + 1e-6f);
  EXPECT_GE(tensor::min_value(adv), 0.0f);
  EXPECT_LE(tensor::max_value(adv), 1.0f);
  EXPECT_GT(atk.last_query_count(), 0);
}

TEST(Simba, StaysWithinQueryBudget) {
  auto model = make_identity_model();
  util::Rng rng(3);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 1, 2}, rng);
  SimbaConfig cfg;
  cfg.max_queries = 10;
  Simba atk(cfg);
  AttackBudget budget;
  budget.epsilon = 0.2;
  atk.perturb(*model, x, {0, 1}, budget);
  // A couple of candidate evaluations can be in flight when the cap hits.
  EXPECT_LE(atk.last_query_count(), cfg.max_queries + 2);
}

TEST(Simba, ZeroEpsilonIsIdentity) {
  auto model = make_identity_model();
  const Tensor x = Tensor::full(Shape{1, 1, 1, 2}, 0.4f);
  Simba atk;
  AttackBudget budget;
  budget.epsilon = 0.0;
  EXPECT_TRUE(atk.perturb(*model, x, {0}, budget).allclose(x, 0.0f));
  EXPECT_EQ(atk.last_query_count(), 0);
}

TEST(Simba, LowersTrueClassProbabilityOnLinearModel) {
  auto model = make_identity_model();
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 0.6f;
  x[1] = 0.4f;  // predicted 0, attacked as label 0
  Simba atk;
  AttackBudget budget;
  budget.epsilon = 0.15;
  const Tensor adv = atk.perturb(*model, x, {0}, budget);
  // Probability of class 0 must not increase; with eps 0.15 the optimal
  // perturbation (x0 -= eps, x1 += eps) actually flips the prediction.
  EXPECT_LE(adv[0], x[0] + 1e-6f);
  EXPECT_GE(adv[1], x[1] - 1e-6f);
  EXPECT_EQ(model->predict(adv)[0], 1);
}

TEST(Simba, FoolsATrainedModelWithoutGradients) {
  // Train a small MLP on tight blobs, then let the black-box attack fool it
  // using only logits queries.
  util::Rng rng(4);
  auto seq = std::make_unique<nn::Sequential>();
  seq->emplace<nn::Flatten>();
  seq->emplace<nn::Linear>(2, 12, rng);
  seq->emplace<nn::Tanh>();
  seq->emplace<nn::Linear>(12, 2, rng);
  FeedforwardClassifier model(std::move(seq), 2, "mlp");

  Tensor x(Shape{32, 1, 1, 2});
  std::vector<std::int64_t> y(32);
  util::Rng drng(5);
  for (std::int64_t i = 0; i < 32; ++i) {
    const std::int64_t c = i % 2;
    x[i * 2 + 0] = static_cast<float>(drng.normal(c == 0 ? 0.4 : 0.6, 0.02));
    x[i * 2 + 1] = static_cast<float>(drng.normal(c == 0 ? 0.6 : 0.4, 0.02));
    y[static_cast<std::size_t>(i)] = c;
  }
  nn::TrainConfig tcfg;
  tcfg.epochs = 60;
  tcfg.lr = 0.01;
  nn::Trainer(tcfg).fit(model, x, y);
  ASSERT_GT(nn::accuracy(model, x, y), 0.9);

  SimbaConfig cfg;
  cfg.max_queries = 500;
  Simba atk(cfg);
  AttackBudget budget;
  budget.epsilon = 0.25;  // enough to cross the tight margin
  const Tensor adv = atk.perturb(model, x, y, budget);
  const double adv_acc = [&] {
    const auto pred = model.predict(adv);
    int correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
      if (pred[i] == y[i]) ++correct;
    return static_cast<double>(correct) / 32.0;
  }();
  EXPECT_LT(adv_acc, 0.5) << "black-box attack should fool most samples";
}

TEST(Simba, InvalidConfigThrows) {
  EXPECT_THROW(Simba(SimbaConfig{.max_queries = 0}), util::Error);
}

}  // namespace
}  // namespace snnsec::attack
