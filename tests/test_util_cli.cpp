// ArgParser behavior.
#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace snnsec::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(ArgParser, DefaultsSurviveEmptyArgv) {
  ArgParser p("t", "test");
  auto& i = p.add_int("n", 5, "count");
  auto& d = p.add_double("x", 1.5, "value");
  auto& s = p.add_string("name", "abc", "label");
  auto& f = p.add_flag("fast", "go fast");
  const auto argv = argv_of({});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(i, 5);
  EXPECT_DOUBLE_EQ(d, 1.5);
  EXPECT_EQ(s, "abc");
  EXPECT_FALSE(f);
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p("t", "test");
  auto& i = p.add_int("n", 0, "count");
  auto& s = p.add_string("name", "", "label");
  const auto argv = argv_of({"--n", "42", "--name", "digit"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(i, 42);
  EXPECT_EQ(s, "digit");
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p("t", "test");
  auto& d = p.add_double("eps", 0.0, "budget");
  const auto argv = argv_of({"--eps=1.5"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(ArgParser, FlagSetsTrue) {
  ArgParser p("t", "test");
  auto& f = p.add_flag("full", "full profile");
  const auto argv = argv_of({"--full"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f);
}

TEST(ArgParser, FlagRejectsValue) {
  ArgParser p("t", "test");
  p.add_flag("full", "full profile");
  const auto argv = argv_of({"--full=yes"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
}

TEST(ArgParser, DoubleListParsing) {
  ArgParser p("t", "test");
  auto& list = p.add_double_list("eps", "0.1,0.5", "budgets");
  EXPECT_EQ(list.size(), 2u);
  const auto argv = argv_of({"--eps", "1,2,3.5"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[2], 3.5);
}

TEST(ArgParser, IntListParsing) {
  ArgParser p("t", "test");
  auto& list = p.add_int_list("t", "8,16", "time windows");
  const auto argv = argv_of({"--t=32,64"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 32);
  EXPECT_EQ(list[1], 64);
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser p("t", "test");
  const auto argv = argv_of({"--nope", "1"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p("t", "test");
  p.add_int("n", 0, "count");
  const auto argv = argv_of({"--n"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
}

TEST(ArgParser, PositionalArgumentThrows) {
  ArgParser p("t", "test");
  const auto argv = argv_of({"stray"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
}

TEST(ArgParser, MalformedNumberThrows) {
  ArgParser p("t", "test");
  p.add_int("n", 0, "count");
  const auto argv = argv_of({"--n", "12x"});
  EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()), Error);
}

TEST(ArgParser, UsageMentionsOptionsAndDefaults) {
  ArgParser p("prog", "does things");
  p.add_int("steps", 40, "PGD steps");
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--steps"), std::string::npos);
  EXPECT_NE(usage.find("40"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace snnsec::util
