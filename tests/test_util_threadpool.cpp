// Thread pool and parallel_for semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count++; });
  parallel_for(7, 3, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(10, 20, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::int64_t i) {
                     if (i == 513) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunked(0, kN, [&](std::int64_t lo, std::int64_t hi) {
    ASSERT_LE(lo, hi);
    for (std::int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallsDegradeToSerial) {
  // A worker thread calling parallel_for must not deadlock.
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 32, [&](std::int64_t) {
    parallel_for(0, 32, [&](std::int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32 * 32);
}

TEST(ParallelFor, LargeGrainRunsSerially) {
  std::vector<int> hits(100, 0);  // not atomic: serial execution expected
  parallel_for(
      0, 100, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
      /*grain=*/1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolGlobal, IsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace snnsec::util
