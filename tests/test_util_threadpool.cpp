// Thread pool and parallel_for semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::int64_t) { count++; });
  parallel_for(7, 3, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(10, 20, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::int64_t i) {
                     if (i == 513) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunked(0, kN, [&](std::int64_t lo, std::int64_t hi) {
    ASSERT_LE(lo, hi);
    for (std::int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedCallsDegradeToSerial) {
  // A worker thread calling parallel_for must not deadlock.
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 32, [&](std::int64_t) {
    parallel_for(0, 32, [&](std::int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32 * 32);
}

TEST(ParallelFor, LargeGrainRunsSerially) {
  std::vector<int> hits(100, 0);  // not atomic: serial execution expected
  parallel_for(
      0, 100, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; },
      /*grain=*/1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ThrowingSubmittedTaskDoesNotTerminateOrDeadlock) {
  // Regression: worker_loop ran task.fn() unprotected, so a throwing task
  // submitted via submit() escaped the worker thread (std::terminate) and
  // left in_flight_ forever non-zero (wait_idle() deadlock).
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 2 == 0) throw Error("boom");
    });
  pool.wait_idle();  // must return even though half the tasks threw
  EXPECT_EQ(ran.load(), 8);
  // The pool must still be fully operational afterwards.
  std::atomic<int> after{0};
  for (int i = 0; i < 16; ++i) pool.submit([&after] { after.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, ThrowingTaskOnGlobalPoolLeavesParallelForWorking) {
  ThreadPool& pool = ThreadPool::global();
  pool.submit([] { throw Error("swallowed"); });
  pool.wait_idle();
  // Subsequent parallel_for_chunked calls on the same pool must be intact.
  std::atomic<std::int64_t> sum{0};
  parallel_for_chunked(0, 1000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ParallelForChunked, PropagatesFirstExceptionWithoutHanging) {
  // Threaded stress: many chunks throw concurrently; exactly one exception
  // (the first) must surface on the caller, and the call must not hang or
  // leave the pool wedged for later work.
  for (int round = 0; round < 20; ++round) {
    try {
      parallel_for_chunked(0, 10000, [&](std::int64_t lo, std::int64_t) {
        throw Error("chunk " + std::to_string(lo));
      });
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
    }
  }
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolGlobal, IsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace snnsec::util
