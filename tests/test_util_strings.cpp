// String helpers: split/trim/join/parse.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace snnsec::util {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutDelimiter) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\nabc\r "), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatFloat, Precision) {
  EXPECT_EQ(format_float(1.23456, 2), "1.23");
  EXPECT_EQ(format_float(1.0, 3), "1.000");
  EXPECT_EQ(format_float(-0.5, 1), "-0.5");
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.5x"), Error);
  EXPECT_THROW(parse_double(""), Error);
  EXPECT_THROW(parse_double("   "), Error);
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsGarbageAndFloats) {
  EXPECT_THROW(parse_int("12.5"), Error);
  EXPECT_THROW(parse_int("x"), Error);
  EXPECT_THROW(parse_int(""), Error);
}

}  // namespace
}  // namespace snnsec::util
