// Server: end-to-end request path — bit-identical results vs the one-shot
// model, deadline/step truncation, shed + stop semantics, model cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::serve {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;
constexpr std::int64_t kT = 6;

std::string checkpoint_path() {
  static const std::string path =
      (fs::temp_directory_path() / "snnsec_test_serve_server.snnm").string();
  static bool written = false;
  if (!written) {
    nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
    arch.image_size = kImage;
    snn::SnnConfig cfg;
    cfg.v_th = 1.1;
    cfg.time_steps = kT;
    util::Rng rng(42);
    auto model = snn::build_spiking_lenet(arch, cfg, rng);
    snn::save_spiking_lenet(path, *model, arch, cfg);
    written = true;
  }
  return path;
}

ServerConfig inline_config(std::int64_t max_batch = 4,
                           std::int64_t delay_us = 500) {
  ServerConfig cfg;
  cfg.model_path = checkpoint_path();
  cfg.workers = 0;  // inline: deterministic, no resident threads
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.max_delay_us = delay_us;
  cfg.batcher.capacity = 16;
  return cfg;
}

Tensor random_image(std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(Shape{1, 1, kImage, kImage});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

TEST(ModelCacheTest, SecondAcquireIsAHit) {
  ModelCache cache;
  const auto a = cache.acquire(checkpoint_path());
  const auto b = cache.acquire(checkpoint_path());
  EXPECT_EQ(a.get(), b.get()) << "same path must share one artifact";
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(a->config().time_steps, kT);
  EXPECT_NE(a->config_hash(), 0u);
}

TEST(ModelCacheTest, ReplicasAreIndependentAndIdentical) {
  ModelCache cache;
  const auto artifact = cache.acquire(checkpoint_path());
  auto r1 = artifact->make_replica();
  auto r2 = artifact->make_replica();
  EXPECT_NE(r1.get(), r2.get());
  const Tensor x = random_image(3);
  const Tensor l1 = r1->logits(x);
  const Tensor l2 = r2->logits(x);
  for (std::int64_t i = 0; i < l1.numel(); ++i)
    EXPECT_EQ(l1.data()[i], l2.data()[i]);
}

TEST(ModelCacheTest, MissingFileThrows) {
  ModelCache cache;
  EXPECT_THROW(cache.acquire("/nonexistent/model.snnm"), util::Error);
}

TEST(ServerTest, SingleRequestMatchesOneShotModelBitwise) {
  Server server(inline_config());
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const Tensor x = random_image(seed);
    const Tensor expected = reference.model->logits(x);
    InferResult r;
    ASSERT_TRUE(server.infer(x, RequestOptions{}, r));
    EXPECT_EQ(r.status, ResultStatus::kOk);
    EXPECT_EQ(r.steps_used, kT);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.time_steps, kT);
    ASSERT_EQ(static_cast<std::int64_t>(r.scores.size()),
              expected.numel());
    std::int64_t best = 0;
    for (std::int64_t c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(r.scores[static_cast<std::size_t>(c)], expected.data()[c])
          << "seed " << seed << " class " << c;
      if (expected.data()[c] > expected.data()[best]) best = c;
    }
    EXPECT_EQ(r.pred, best);
  }
}

TEST(ServerTest, AcceptsChwImagesWithoutBatchDim) {
  Server server(inline_config());
  const Tensor x4 = random_image(5);
  Tensor x3(Shape{1, kImage, kImage});
  std::copy(x4.data(), x4.data() + x4.numel(), x3.data());
  InferResult r3;
  InferResult r4;
  ASSERT_TRUE(server.infer(x3, RequestOptions{}, r3));
  ASSERT_TRUE(server.infer(x4, RequestOptions{}, r4));
  EXPECT_EQ(r3.pred, r4.pred);
  for (std::size_t c = 0; c < r3.scores.size(); ++c)
    EXPECT_EQ(r3.scores[c], r4.scores[c]);
}

TEST(ServerTest, ConcurrentBatchedResultsAreBitIdenticalToSingle) {
  // Many clients against the inline server: requests ride micro-batches of
  // whatever composition the timing produces, and every result must still
  // be bit-identical to the model evaluated alone on that image.
  auto config = inline_config(4, 2000);
  Server server(config);
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::vector<float>> expected;
  std::vector<Tensor> images;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    images.push_back(random_image(100 + static_cast<std::uint64_t>(i)));
    const Tensor logits = reference.model->logits(images.back());
    expected.emplace_back(logits.data(), logits.data() + logits.numel());
  }

  std::vector<int> mismatches(kClients, 0);
  std::vector<std::int64_t> max_batch_seen(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferResult r;  // reused across requests, like a real client loop
      for (int i = 0; i < kPerClient; ++i) {
        const int idx = c * kPerClient + i;
        if (!server.infer(images[static_cast<std::size_t>(idx)],
                          RequestOptions{}, r)) {
          ++mismatches[static_cast<std::size_t>(c)];
          continue;
        }
        max_batch_seen[static_cast<std::size_t>(c)] =
            std::max(max_batch_seen[static_cast<std::size_t>(c)],
                     r.batch_size);
        const auto& want = expected[static_cast<std::size_t>(idx)];
        for (std::size_t k = 0; k < want.size(); ++k)
          if (r.scores[k] != want[k])
            ++mismatches[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0)
        << "client " << c;
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.errors, 0);
}

TEST(ServerTest, ResidentWorkersServeCorrectly) {
  // Same as above but with resident pool workers (skipped gracefully on a
  // 1-thread pool, where the server falls back to inline mode).
  ServerConfig config = inline_config(4, 1000);
  config.workers = 2;
  Server server(config);
  auto reference = snn::load_spiking_lenet(checkpoint_path());

  constexpr int kClients = 3;
  constexpr int kPerClient = 6;
  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      InferResult r;
      for (int i = 0; i < kPerClient; ++i) {
        const auto seed =
            static_cast<std::uint64_t>(500 + c * kPerClient + i);
        const Tensor x = random_image(seed);
        const Tensor want = reference.model->logits(x);
        if (!server.infer(x, RequestOptions{}, r)) {
          ++mismatches[static_cast<std::size_t>(c)];
          continue;
        }
        for (std::int64_t k = 0; k < want.numel(); ++k)
          if (r.scores[static_cast<std::size_t>(k)] != want.data()[k])
            ++mismatches[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0);
  server.stop();
  EXPECT_EQ(server.stats().completed, kClients * kPerClient);
}

TEST(ServerTest, MaxStepsTruncatesToPrefix) {
  Server server(inline_config());
  const auto artifact = ModelCache::global().acquire(checkpoint_path());
  auto replica = artifact->make_replica();
  snn::AnytimeRunner runner(*replica);

  const Tensor x = random_image(77);
  RequestOptions opt;
  opt.max_steps = 2;
  InferResult r;
  ASSERT_TRUE(server.infer(x, opt, r));
  EXPECT_EQ(r.steps_used, 2);
  EXPECT_TRUE(r.truncated);
  const Tensor& want = runner.run(x, 2);
  for (std::int64_t c = 0; c < want.numel(); ++c)
    EXPECT_EQ(r.scores[static_cast<std::size_t>(c)], want.data()[c]);
  EXPECT_EQ(server.stats().truncated, 1);
}

TEST(ServerTest, ExpiredDeadlineTruncatesAtMinSteps) {
  ServerConfig config = inline_config();
  config.min_steps = 2;
  Server server(config);
  RequestOptions opt;
  opt.deadline_us = 1;  // long expired by the first completed step
  InferResult r;
  ASSERT_TRUE(server.infer(random_image(88), opt, r));
  EXPECT_EQ(r.steps_used, 2) << "deadline must not cut below min_steps";
  EXPECT_TRUE(r.truncated);
  EXPECT_GT(r.latency_us, 0);
}

TEST(ServerTest, StoppedServerRejectsNewRequests) {
  Server server(inline_config());
  server.stop();
  InferResult r;
  EXPECT_FALSE(server.infer(random_image(99), RequestOptions{}, r));
  EXPECT_EQ(r.status, ResultStatus::kRejected);
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(ServerTest, RejectsBadInputShape) {
  Server server(inline_config());
  InferResult r;
  EXPECT_THROW(
      server.infer(Tensor(Shape{2, 1, kImage, kImage}), RequestOptions{}, r),
      util::Error);
  EXPECT_THROW(server.infer(Tensor(Shape{kImage * kImage}), RequestOptions{},
                            r),
               util::Error);
}

}  // namespace
}  // namespace snnsec::serve
