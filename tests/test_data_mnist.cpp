// MNIST IDX loader (against generated fixture files), provider fallback,
// and bilinear resize.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "data/mnist.hpp"
#include "data/provider.hpp"
#include "data/resize.hpp"

namespace snnsec::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

namespace fs = std::filesystem;

void write_be32(std::ofstream& os, std::uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                              static_cast<unsigned char>(v >> 16),
                              static_cast<unsigned char>(v >> 8),
                              static_cast<unsigned char>(v)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

/// Write a tiny 4-image 5x5 IDX pair + t10k pair into `dir`.
void write_fixture(const fs::path& dir) {
  fs::create_directories(dir);
  for (const bool train : {true, false}) {
    const char* img_name =
        train ? "train-images-idx3-ubyte" : "t10k-images-idx3-ubyte";
    const char* lbl_name =
        train ? "train-labels-idx1-ubyte" : "t10k-labels-idx1-ubyte";
    {
      std::ofstream os(dir / img_name, std::ios::binary);
      write_be32(os, 0x00000803);
      write_be32(os, 4);  // items
      write_be32(os, 5);  // rows
      write_be32(os, 5);  // cols
      for (int i = 0; i < 4 * 25; ++i) {
        const unsigned char px = static_cast<unsigned char>(i % 256);
        os.write(reinterpret_cast<const char*>(&px), 1);
      }
    }
    {
      std::ofstream os(dir / lbl_name, std::ios::binary);
      write_be32(os, 0x00000801);
      write_be32(os, 4);
      for (unsigned char l : {static_cast<unsigned char>(1),
                              static_cast<unsigned char>(7),
                              static_cast<unsigned char>(3),
                              static_cast<unsigned char>(9)}) {
        os.write(reinterpret_cast<const char*>(&l), 1);
      }
    }
  }
}

class MnistFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "snnsec_mnist_fixture";
    write_fixture(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(MnistFixture, AvailabilityDetection) {
  EXPECT_TRUE(mnist_available(dir_.string()));
  EXPECT_FALSE(mnist_available("/nonexistent/dir"));
  EXPECT_FALSE(mnist_available(""));
}

TEST_F(MnistFixture, LoadsImagesNormalizedToUnitRange) {
  const Tensor imgs =
      load_idx_images((dir_ / "train-images-idx3-ubyte").string());
  EXPECT_EQ(imgs.shape(), Shape({4, 1, 5, 5}));
  EXPECT_FLOAT_EQ(imgs[0], 0.0f);
  EXPECT_NEAR(imgs[1], 1.0f / 255.0f, 1e-6f);
  for (std::int64_t i = 0; i < imgs.numel(); ++i) {
    EXPECT_GE(imgs[i], 0.0f);
    EXPECT_LE(imgs[i], 1.0f);
  }
}

TEST_F(MnistFixture, LoadsLabels) {
  const auto labels =
      load_idx_labels((dir_ / "train-labels-idx1-ubyte").string());
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[3], 9);
}

TEST_F(MnistFixture, MaxItemsTruncates) {
  const Tensor imgs =
      load_idx_images((dir_ / "train-images-idx3-ubyte").string(), 2);
  EXPECT_EQ(imgs.dim(0), 2);
  const auto labels =
      load_idx_labels((dir_ / "train-labels-idx1-ubyte").string(), 3);
  EXPECT_EQ(labels.size(), 3u);
}

TEST_F(MnistFixture, LoadMnistSplits) {
  const Dataset train = load_mnist(dir_.string(), true);
  const Dataset test = load_mnist(dir_.string(), false);
  EXPECT_EQ(train.size(), 4);
  EXPECT_EQ(test.size(), 4);
  EXPECT_EQ(train.num_classes, 10);
}

TEST_F(MnistFixture, BadMagicRejected) {
  const auto path = dir_ / "bad-images";
  {
    std::ofstream os(path, std::ios::binary);
    write_be32(os, 0xDEADBEEF);
    write_be32(os, 1);
    write_be32(os, 5);
    write_be32(os, 5);
  }
  EXPECT_THROW(load_idx_images(path.string()), util::Error);
  // Labels magic on an image file is also rejected.
  EXPECT_THROW(load_idx_labels((dir_ / "train-images-idx3-ubyte").string()),
               util::Error);
}

TEST_F(MnistFixture, TruncatedPayloadRejected) {
  const auto path = dir_ / "truncated-images";
  {
    std::ofstream os(path, std::ios::binary);
    write_be32(os, 0x00000803);
    write_be32(os, 10);  // claims 10 images
    write_be32(os, 5);
    write_be32(os, 5);
    const unsigned char px = 0;
    os.write(reinterpret_cast<const char*>(&px), 1);  // only 1 byte
  }
  EXPECT_THROW(load_idx_images(path.string()), util::Error);
}

TEST_F(MnistFixture, ProviderUsesMnistWhenDirGiven) {
  DataSpec spec;
  spec.train_n = 3;
  spec.test_n = 2;
  spec.image_size = 5;
  spec.mnist_dir = dir_.string();
  const DataBundle bundle = load_digits(spec);
  EXPECT_TRUE(bundle.from_mnist);
  EXPECT_EQ(std::string(bundle.source()), "mnist");
  EXPECT_EQ(bundle.train.size(), 3);
  EXPECT_EQ(bundle.test.size(), 2);
}

TEST_F(MnistFixture, ProviderResizesMnist) {
  DataSpec spec;
  spec.train_n = 2;
  spec.test_n = 2;
  spec.image_size = 8;  // fixture is 5x5
  spec.mnist_dir = dir_.string();
  const DataBundle bundle = load_digits(spec);
  EXPECT_EQ(bundle.train.height(), 8);
  EXPECT_EQ(bundle.train.width(), 8);
}

TEST_F(MnistFixture, ForceSyntheticIgnoresMnist) {
  DataSpec spec;
  spec.train_n = 10;
  spec.test_n = 5;
  spec.image_size = 12;
  spec.mnist_dir = dir_.string();
  spec.force_synthetic = true;
  const DataBundle bundle = load_digits(spec);
  EXPECT_FALSE(bundle.from_mnist);
  EXPECT_EQ(bundle.train.size(), 10);
}

TEST(Provider, FallsBackToSyntheticWithoutMnist) {
  DataSpec spec;
  spec.train_n = 20;
  spec.test_n = 10;
  spec.image_size = 12;
  spec.mnist_dir = "/definitely/not/here";
  const DataBundle bundle = load_digits(spec);
  EXPECT_FALSE(bundle.from_mnist);
  EXPECT_EQ(bundle.train.size(), 20);
  EXPECT_EQ(bundle.test.size(), 10);
  EXPECT_NO_THROW(bundle.train.validate());
}

TEST(Provider, TrainAndTestSetsDiffer) {
  DataSpec spec;
  spec.train_n = 10;
  spec.test_n = 10;
  spec.image_size = 12;
  spec.force_synthetic = true;
  const DataBundle bundle = load_digits(spec);
  EXPECT_FALSE(bundle.train.images.allclose(bundle.test.images, 1e-3f));
}

TEST(Resize, IdentityWhenSameSize) {
  util::Rng rng(1);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 6, 6}, rng);
  EXPECT_TRUE(resize_bilinear(x, 6, 6).allclose(x, 0.0f));
}

TEST(Resize, ConstantImageStaysConstant) {
  const Tensor x = Tensor::full(Shape{1, 1, 7, 7}, 0.42f);
  const Tensor y = resize_bilinear(x, 13, 4);
  EXPECT_EQ(y.shape(), Shape({1, 1, 13, 4}));
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], 0.42f, 1e-5f);
}

TEST(Resize, PreservesMeanApproximately) {
  util::Rng rng(2);
  const Tensor x = Tensor::rand_uniform(Shape{1, 1, 16, 16}, rng);
  const Tensor y = resize_bilinear(x, 8, 8);
  double mx = 0.0, my = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) mx += x[i];
  for (std::int64_t i = 0; i < y.numel(); ++i) my += y[i];
  EXPECT_NEAR(mx / static_cast<double>(x.numel()),
              my / static_cast<double>(y.numel()), 0.05);
}

TEST(Resize, RejectsBadArgs) {
  EXPECT_THROW(resize_bilinear(Tensor(Shape{2, 2}), 4, 4), util::Error);
  EXPECT_THROW(resize_bilinear(Tensor(Shape{1, 1, 4, 4}), 0, 4), util::Error);
}

}  // namespace
}  // namespace snnsec::data
