// fleet::Router: threat-level routing, token-bucket quota, ensemble vote,
// kReroute escalation to the hardened group, and config validation.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fleet/router.hpp"
#include "obs/envelope.hpp"
#include "obs/sketch.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "snn/anytime.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::fleet {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;

/// One tiny untrained checkpoint per (Vth, T) cell, written once per run.
std::string checkpoint(const char* name, double v_th, std::int64_t steps) {
  const std::string path =
      (fs::temp_directory_path() / (std::string("snnsec_test_fleet_") + name +
                                    ".snnm"))
          .string();
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = kImage;
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = steps;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, cfg, rng);
  snn::save_spiking_lenet(path, *model, arch, cfg);
  return path;
}

const std::string& low_path() {
  static const std::string p = checkpoint("low", 0.8, 8);
  return p;
}
const std::string& bal_path() {
  static const std::string p = checkpoint("bal", 1.1, 8);
  return p;
}
const std::string& hard_path() {
  static const std::string p = checkpoint("hard", 1.4, 10);
  return p;
}

Tensor random_image(std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor x(Shape{1, 1, kImage, kImage});
  rng.fill_uniform(x.data(), static_cast<std::size_t>(x.numel()), 0.0f, 1.0f);
  return x;
}

serve::ServerConfig cell_server() {
  serve::ServerConfig sc;
  sc.workers = 0;
  sc.batcher.max_batch = 2;
  sc.batcher.max_delay_us = 200;
  sc.batcher.capacity = 16;
  return sc;
}

GroupConfig group(const char* name, GroupRole role, const std::string& path) {
  GroupConfig g;
  g.name = name;
  g.role = role;
  g.model_path = path;
  g.replicas = 1;
  g.server = cell_server();
  return g;
}

RouterConfig three_cell_config() {
  RouterConfig cfg;
  cfg.groups.push_back(group("low", GroupRole::kLowLatency, low_path()));
  cfg.groups.push_back(group("bal", GroupRole::kBalanced, bal_path()));
  cfg.groups.push_back(group("hard", GroupRole::kHardened, hard_path()));
  cfg.tenants.push_back({1, Threat::kTrusted, 0.0, 0.0});
  cfg.tenants.push_back({2, Threat::kSuspect, 0.0, 0.0});
  cfg.tenants.push_back({3, Threat::kHostile, 0.0, 0.0});
  cfg.default_tenant.threat = Threat::kTrusted;
  return cfg;
}

/// Envelope whose bands sit far from any real activity, fitted against the
/// given cell — every request scored by that cell is flagged.
std::shared_ptr<const obs::ActivityEnvelope> absurd_envelope(
    const std::string& model_path) {
  const auto artifact = serve::ModelCache::global().acquire(model_path);
  const auto replica = artifact->make_replica();
  snn::AnytimeRunner runner(*replica);
  obs::SketchAccumulator acc;
  acc.configure(runner.sketch_layers());
  std::vector<obs::ActivitySketch> sketches(2);
  for (auto& s : sketches) {
    s.steps = artifact->config().time_steps;
    s.layers.resize(runner.sketch_layers().size());
    for (auto& l : s.layers) {
      l.firing_rate = 100.0;
      l.silent_fraction = 100.0;
      l.saturated_fraction = 100.0;
      l.v_mean = 100.0;
      l.hist_frac.assign(static_cast<std::size_t>(acc.buckets()), 100.0);
    }
  }
  auto envelope = std::make_shared<obs::ActivityEnvelope>();
  envelope->fit(sketches, runner.sketch_layers(), acc.buckets(),
                artifact->config_hash());
  return envelope;
}

TEST(FleetRouter, AnchorsRolesAndSharedGeometry) {
  Router router(three_cell_config());
  ASSERT_EQ(router.num_groups(), 3);
  EXPECT_EQ(router.group_role(router.low_latency_group()),
            GroupRole::kLowLatency);
  EXPECT_EQ(router.group_role(router.hardened_group()),
            GroupRole::kHardened);
  EXPECT_EQ(router.group_name(router.hardened_group()), "hard");
  EXPECT_EQ(router.arch().image_size, kImage);
  EXPECT_EQ(router.num_classes(), 10);
  EXPECT_EQ(router.replica_count(0), 1);
}

TEST(FleetRouter, TrustedRidesLowLatencyCliffBudget) {
  Router router(three_cell_config());
  FleetResult r;
  ASSERT_TRUE(router.infer(1, random_image(10), {}, r));
  EXPECT_EQ(r.group, router.low_latency_group());
  EXPECT_FALSE(r.ensemble);
  EXPECT_FALSE(r.rerouted);
  // Low-latency default budget sits at the truncation cliff: 8 - 8/8 = 7.
  EXPECT_EQ(r.result.steps_used, 7);
  EXPECT_TRUE(r.result.truncated);
  EXPECT_GE(r.fleet_latency_us, 0);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.quota_rejected, 0);
}

TEST(FleetRouter, ExplicitStepBudgetOverridesGroupDefault) {
  Router router(three_cell_config());
  serve::RequestOptions opt;
  opt.max_steps = 3;
  FleetResult r;
  ASSERT_TRUE(router.infer(1, random_image(11), opt, r));
  EXPECT_EQ(r.result.steps_used, 3);
}

TEST(FleetRouter, SuspectRoutesToHardenedGroup) {
  Router router(three_cell_config());
  FleetResult r;
  ASSERT_TRUE(router.infer(2, random_image(12), {}, r));
  EXPECT_EQ(r.group, router.hardened_group());
  // The hardened group runs its full window by default.
  EXPECT_EQ(r.result.steps_used, 10);
}

TEST(FleetRouter, HostileGetsMajorityEnsembleVote) {
  Router router(three_cell_config());
  FleetResult r;
  ASSERT_TRUE(router.infer(3, random_image(13), {}, r));
  EXPECT_TRUE(r.ensemble);
  EXPECT_GE(r.votes_for, 1);
  ASSERT_GE(r.group, 0);
  ASSERT_LT(r.group, router.num_groups());
  // The returned prediction is the one the winning cell produced.
  ASSERT_EQ(static_cast<std::int64_t>(r.cell_results.size()),
            router.num_groups());
  ASSERT_TRUE(r.cell_ok[static_cast<std::size_t>(r.group)]);
  EXPECT_EQ(r.result.pred,
            r.cell_results[static_cast<std::size_t>(r.group)].pred);
  // Majority check: no losing class got more votes than the winner.
  std::int64_t best = 0;
  for (std::size_t g = 0; g < r.cell_results.size(); ++g) {
    if (!r.cell_ok[g]) continue;
    std::int64_t votes = 0;
    for (std::size_t h = 0; h < r.cell_results.size(); ++h) {
      if (r.cell_ok[h] && r.cell_results[h].pred == r.cell_results[g].pred)
        ++votes;
    }
    best = std::max(best, votes);
  }
  EXPECT_EQ(r.votes_for, best);
  EXPECT_EQ(router.stats().ensembles, 1);
}

TEST(FleetRouter, FixedQuotaBudgetAdmitsExactlyBurst) {
  RouterConfig cfg = three_cell_config();
  // rate 0 + burst 3: a fixed budget that never refills.
  cfg.tenants.push_back({7, Threat::kTrusted, 0.0, 3.0});
  Router router(cfg);
  FleetResult r;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(router.infer(7, random_image(20 + i), {}, r))
        << "request " << i << " should be admitted";
    EXPECT_FALSE(r.quota_rejected);
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(router.infer(7, random_image(30 + i), {}, r));
    EXPECT_TRUE(r.quota_rejected);
    EXPECT_EQ(r.result.error, "quota");
    EXPECT_EQ(r.group, -1);
  }
  const RouterStats s = router.stats();
  EXPECT_EQ(s.quota_rejected, 2);
  EXPECT_EQ(s.completed, 3);
  // Unrelated tenants are unaffected by tenant 7's empty bucket.
  ASSERT_TRUE(router.infer(1, random_image(40), {}, r));
}

TEST(FleetRouter, UnknownTenantFallsBackToDefaultPolicy) {
  RouterConfig cfg = three_cell_config();
  cfg.default_tenant.threat = Threat::kSuspect;
  Router router(cfg);
  EXPECT_EQ(router.tenant_threat(999), Threat::kSuspect);
  EXPECT_EQ(router.tenant_threat(2), Threat::kSuspect);
  EXPECT_EQ(router.tenant_threat(1), Threat::kTrusted);
  FleetResult r;
  ASSERT_TRUE(router.infer(999, random_image(50), {}, r));
  EXPECT_EQ(r.group, router.hardened_group());
}

TEST(FleetRouter, RerouteEscalatesFlaggedToHardenedCell) {
  RouterConfig cfg = three_cell_config();
  // The low-latency cell flags everything; policy kReroute escalates.
  auto& low = cfg.groups[0].server;
  low.envelope = absurd_envelope(low_path());
  low.detect_policy = serve::DetectPolicy::kReroute;
  Router router(cfg);

  FleetResult r;
  ASSERT_TRUE(router.infer(1, random_image(60), {}, r));
  EXPECT_TRUE(r.rerouted);
  // The prediction returned is the hardened cell's, not the flagged
  // low-latency answer: the hardened group runs without a detector, so the
  // served result carries no anomaly score and its full 10-step window.
  EXPECT_EQ(r.group, router.hardened_group());
  EXPECT_EQ(r.result.anomaly_score, -1.0);
  EXPECT_FALSE(r.result.flagged);
  EXPECT_EQ(r.result.steps_used, 10);

  const RouterStats s = router.stats();
  EXPECT_EQ(s.rerouted, 1);
  EXPECT_EQ(s.reroute_served, 1);
  // The low-latency replica saw (and flagged) the original request.
  EXPECT_GE(s.groups[static_cast<std::size_t>(router.low_latency_group())]
                .flagged,
            1);
}

TEST(FleetRouter, ReusedResultSurvivesRerouteThenEnsemble) {
  // Regression: the kReroute path grows cell_results alone. A FleetResult
  // reused across requests (exactly what Frontend executors and the
  // loadgen RouterClient do) then reaches the ensemble path with
  // cell_results already sized but cell_ok still empty; the ensemble must
  // size each scratch vector independently or it writes out of bounds.
  RouterConfig cfg = three_cell_config();
  auto& low = cfg.groups[0].server;
  low.envelope = absurd_envelope(low_path());
  low.detect_policy = serve::DetectPolicy::kReroute;
  Router router(cfg);

  FleetResult r;  // one result object reused across tenants
  ASSERT_TRUE(router.infer(1, random_image(80), {}, r));
  ASSERT_TRUE(r.rerouted);
  ASSERT_EQ(static_cast<std::int64_t>(r.cell_results.size()),
            router.num_groups());
  ASSERT_TRUE(r.cell_ok.empty());  // the precondition that triggered OOB

  ASSERT_TRUE(router.infer(3, random_image(81), {}, r));
  EXPECT_TRUE(r.ensemble);
  ASSERT_EQ(static_cast<std::int64_t>(r.cell_ok.size()),
            router.num_groups());
  ASSERT_GE(r.group, 0);
  EXPECT_EQ(r.result.pred,
            r.cell_results[static_cast<std::size_t>(r.group)].pred);

  // The winner represents its class with the structurally strongest cell:
  // no surviving same-pred cell has a higher (Vth, T) key.
  const RouterStats s = router.stats();
  const auto key = [&](std::int64_t g) {
    const auto& grp = s.groups[static_cast<std::size_t>(g)];
    return std::make_pair(grp.v_th, grp.time_steps);
  };
  for (std::int64_t g = 0; g < router.num_groups(); ++g) {
    if (!r.cell_ok[static_cast<std::size_t>(g)]) continue;
    if (r.cell_results[static_cast<std::size_t>(g)].pred != r.result.pred)
      continue;
    EXPECT_GE(key(r.group), key(g));
  }
}

TEST(FleetRouter, ObservePolicyDoesNotEscalate) {
  RouterConfig cfg = three_cell_config();
  auto& low = cfg.groups[0].server;
  low.envelope = absurd_envelope(low_path());
  low.detect_policy = serve::DetectPolicy::kObserve;
  Router router(cfg);
  FleetResult r;
  ASSERT_TRUE(router.infer(1, random_image(61), {}, r));
  EXPECT_FALSE(r.rerouted);
  EXPECT_EQ(r.group, router.low_latency_group());
  EXPECT_TRUE(r.result.flagged);
}

TEST(FleetRouter, StatsAggregateReplicaServers) {
  Router router(three_cell_config());
  FleetResult r;
  ASSERT_TRUE(router.infer(1, random_image(70), {}, r));
  ASSERT_TRUE(router.infer(2, random_image(71), {}, r));
  const RouterStats s = router.stats();
  ASSERT_EQ(s.groups.size(), 3U);
  EXPECT_EQ(s.groups[0].name, "low");
  EXPECT_NEAR(s.groups[static_cast<std::size_t>(router.hardened_group())]
                  .v_th,
              1.4, 1e-6);
  EXPECT_EQ(s.groups[static_cast<std::size_t>(router.hardened_group())]
                .time_steps,
            10);
  std::int64_t submitted = 0;
  for (const auto& g : s.groups) submitted += g.submitted;
  EXPECT_EQ(submitted, 2);
}

TEST(FleetRouter, RejectsDuplicateTenantIds) {
  RouterConfig cfg = three_cell_config();
  cfg.tenants.push_back({1, Threat::kSuspect, 0.0, 0.0});
  EXPECT_THROW(Router router(std::move(cfg)), util::Error);
}

TEST(FleetRouter, HostileTenantsNeedAtLeastThreeGroups) {
  RouterConfig cfg;
  cfg.groups.push_back(group("low", GroupRole::kLowLatency, low_path()));
  cfg.groups.push_back(group("hard", GroupRole::kHardened, hard_path()));
  cfg.tenants.push_back({3, Threat::kHostile, 0.0, 0.0});
  EXPECT_THROW(Router router(std::move(cfg)), util::Error);
}

}  // namespace
}  // namespace snnsec::fleet
