// Surrogate gradient properties across all kinds.
#include <gtest/gtest.h>

#include <cmath>

#include "snn/surrogate.hpp"

namespace snnsec::snn {
namespace {

class SurrogateKindTest : public ::testing::TestWithParam<SurrogateKind> {};

TEST_P(SurrogateKindTest, PeaksAtThreshold) {
  Surrogate sg{GetParam(), 10.0f};
  const float peak = sg.grad(0.0f);
  EXPECT_GT(peak, 0.0f);
  for (const float u : {-2.0f, -0.5f, 0.5f, 2.0f})
    EXPECT_LE(sg.grad(u), peak);
}

TEST_P(SurrogateKindTest, SymmetricAroundThreshold) {
  Surrogate sg{GetParam(), 10.0f};
  if (GetParam() == SurrogateKind::kSigmoidDeriv) {
    // Sigmoid derivative is symmetric too: s(u)(1-s(u)) = s(-u)(1-s(-u)).
    EXPECT_NEAR(sg.grad(0.3f), sg.grad(-0.3f), 1e-6f);
  } else {
    for (const float u : {0.01f, 0.1f, 1.0f})
      EXPECT_FLOAT_EQ(sg.grad(u), sg.grad(-u));
  }
}

TEST_P(SurrogateKindTest, NonNegativeEverywhere) {
  Surrogate sg{GetParam(), 10.0f};
  for (float u = -5.0f; u <= 5.0f; u += 0.1f)
    EXPECT_GE(sg.grad(u), 0.0f) << "at u=" << u;
}

TEST_P(SurrogateKindTest, MonotoneDecayFromPeak) {
  Surrogate sg{GetParam(), 10.0f};
  float prev = sg.grad(0.0f);
  for (float u = 0.05f; u <= 3.0f; u += 0.05f) {
    const float g = sg.grad(u);
    EXPECT_LE(g, prev + 1e-7f) << "at u=" << u;
    prev = g;
  }
}

TEST_P(SurrogateKindTest, ToStringMentionsAlpha) {
  Surrogate sg{GetParam(), 7.5f};
  EXPECT_NE(sg.to_string().find("7.5"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SurrogateKindTest,
                         ::testing::Values(SurrogateKind::kSuperSpike,
                                           SurrogateKind::kTriangle,
                                           SurrogateKind::kSigmoidDeriv,
                                           SurrogateKind::kStraightThrough));

TEST(SuperSpike, MatchesClosedForm) {
  Surrogate sg{SurrogateKind::kSuperSpike, 100.0f};
  EXPECT_FLOAT_EQ(sg.grad(0.0f), 1.0f);
  EXPECT_NEAR(sg.grad(0.01f), 1.0f / 4.0f, 1e-6f);   // (1+1)^2
  EXPECT_NEAR(sg.grad(-0.01f), 1.0f / 4.0f, 1e-6f);
  EXPECT_NEAR(sg.grad(0.1f), 1.0f / 121.0f, 1e-7f);  // (1+10)^2
}

TEST(Triangle, CompactSupport) {
  Surrogate sg{SurrogateKind::kTriangle, 2.0f};
  EXPECT_FLOAT_EQ(sg.grad(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(sg.grad(0.25f), 0.5f);
  EXPECT_FLOAT_EQ(sg.grad(0.5f), 0.0f);
  EXPECT_FLOAT_EQ(sg.grad(1.0f), 0.0f);
}

TEST(StraightThrough, WindowWidth) {
  Surrogate sg{SurrogateKind::kStraightThrough, 1.0f};
  EXPECT_FLOAT_EQ(sg.grad(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(sg.grad(0.49f), 1.0f);
  EXPECT_FLOAT_EQ(sg.grad(0.51f), 0.0f);
}

TEST(SigmoidDeriv, MatchesAnalyticDerivative) {
  Surrogate sg{SurrogateKind::kSigmoidDeriv, 4.0f};
  const float u = 0.2f;
  const double s = 1.0 / (1.0 + std::exp(-4.0 * u));
  EXPECT_NEAR(sg.grad(u), 4.0 * s * (1.0 - s), 1e-5);
}

TEST(Surrogate, AlphaControlsWidth) {
  // Larger alpha -> narrower support -> smaller gradient away from 0.
  Surrogate narrow{SurrogateKind::kSuperSpike, 100.0f};
  Surrogate wide{SurrogateKind::kSuperSpike, 5.0f};
  EXPECT_LT(narrow.grad(0.5f), wide.grad(0.5f));
}

}  // namespace
}  // namespace snnsec::snn
