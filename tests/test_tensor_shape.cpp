// Shape arithmetic and broadcasting rules.
#include <gtest/gtest.h>

#include "tensor/shape.hpp"
#include "util/error.hpp"

namespace snnsec::tensor {
namespace {

TEST(Shape, NumelAndRank) {
  EXPECT_EQ(Shape({2, 3, 4}).numel(), 24);
  EXPECT_EQ(Shape({2, 3, 4}).ndim(), 3);
  EXPECT_EQ(Shape{}.numel(), 1);  // rank-0 scalar
  EXPECT_EQ(Shape{}.ndim(), 0);
  EXPECT_EQ(Shape({5, 0, 2}).numel(), 0);
}

TEST(Shape, RowMajorStrides) {
  const auto s = Shape({2, 3, 4}).strides();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 12);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 1);
}

TEST(Shape, NegativeIndexing) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_THROW(s.dim(3), util::Error);
  EXPECT_THROW(s.dim(-4), util::Error);
}

TEST(Shape, NegativeExtentRejected) {
  EXPECT_THROW(Shape({2, -1}), util::Error);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(Shape, WithoutDim) {
  EXPECT_EQ(Shape({2, 3, 4}).without_dim(1), Shape({2, 4}));
  EXPECT_EQ(Shape({2, 3, 4}).without_dim(-1), Shape({2, 3}));
  EXPECT_THROW(Shape({2}).without_dim(1), util::Error);
}

TEST(Shape, WithDimInserted) {
  EXPECT_EQ(Shape({2, 3}).with_dim_inserted(0, 5), Shape({5, 2, 3}));
  EXPECT_EQ(Shape({2, 3}).with_dim_inserted(2, 1), Shape({2, 3, 1}));
  EXPECT_THROW(Shape({2}).with_dim_inserted(5, 1), util::Error);
}

struct BroadcastCase {
  Shape a;
  Shape b;
  Shape expect;
};

class BroadcastTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastTest, ProducesExpectedShape) {
  const auto& c = GetParam();
  EXPECT_EQ(Shape::broadcast(c.a, c.b), c.expect);
  EXPECT_EQ(Shape::broadcast(c.b, c.a), c.expect);  // symmetric
}

INSTANTIATE_TEST_SUITE_P(
    Rules, BroadcastTest,
    ::testing::Values(
        BroadcastCase{Shape({2, 3}), Shape({2, 3}), Shape({2, 3})},
        BroadcastCase{Shape({2, 3}), Shape({3}), Shape({2, 3})},
        BroadcastCase{Shape({2, 1}), Shape({1, 5}), Shape({2, 5})},
        BroadcastCase{Shape({4, 1, 3}), Shape({2, 1}), Shape({4, 2, 3})},
        BroadcastCase{Shape{}, Shape({2, 2}), Shape({2, 2})},
        BroadcastCase{Shape({1}), Shape({7}), Shape({7})}));

TEST(Broadcast, IncompatibleShapesThrow) {
  EXPECT_THROW(Shape::broadcast(Shape({2, 3}), Shape({2, 4})), util::Error);
  EXPECT_THROW(Shape::broadcast(Shape({5}), Shape({4})), util::Error);
}

}  // namespace
}  // namespace snnsec::tensor
