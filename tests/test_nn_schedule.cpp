// Learning-rate schedules and gradient clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/feedforward.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/schedule.hpp"
#include "nn/trainer.hpp"

namespace snnsec::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LrSchedule, ConstantIsConstant) {
  LrSchedule s;
  for (int e = 0; e < 10; ++e)
    EXPECT_DOUBLE_EQ(s.lr_at(e, 10, 0.01), 0.01);
}

TEST(LrSchedule, StepDecayHalvesEveryPeriod) {
  LrSchedule s;
  s.kind = ScheduleKind::kStepDecay;
  s.gamma = 0.5;
  s.step_epochs = 2;
  EXPECT_DOUBLE_EQ(s.lr_at(0, 10, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(s.lr_at(1, 10, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(s.lr_at(2, 10, 0.1), 0.05);
  EXPECT_DOUBLE_EQ(s.lr_at(5, 10, 0.1), 0.025);
}

TEST(LrSchedule, CosineStartsAtBaseEndsAtFloor) {
  LrSchedule s;
  s.kind = ScheduleKind::kCosine;
  s.min_lr = 0.001;
  EXPECT_NEAR(s.lr_at(0, 10, 0.1), 0.1, 1e-9);
  EXPECT_NEAR(s.lr_at(9, 10, 0.1), 0.001, 1e-9);
  // Monotone decreasing.
  double prev = 1.0;
  for (int e = 0; e < 10; ++e) {
    const double lr = s.lr_at(e, 10, 0.1);
    EXPECT_LE(lr, prev + 1e-12);
    prev = lr;
  }
}

TEST(LrSchedule, WarmupRampsUp) {
  LrSchedule s;
  s.kind = ScheduleKind::kLinearWarmup;
  s.warmup_epochs = 4;
  EXPECT_LT(s.lr_at(0, 10, 0.1), 0.1);
  EXPECT_LT(s.lr_at(0, 10, 0.1), s.lr_at(2, 10, 0.1));
  EXPECT_DOUBLE_EQ(s.lr_at(4, 10, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(s.lr_at(9, 10, 0.1), 0.1);
}

TEST(LrSchedule, InvalidInputsThrow) {
  LrSchedule s;
  EXPECT_THROW(s.lr_at(-1, 10, 0.1), util::Error);
  EXPECT_THROW(s.lr_at(0, 0, 0.1), util::Error);
  EXPECT_THROW(s.lr_at(0, 10, 0.0), util::Error);
  s.kind = ScheduleKind::kStepDecay;
  s.step_epochs = 0;
  EXPECT_THROW(s.lr_at(0, 10, 0.1), util::Error);
}

TEST(LrSchedule, ToStringNamesEveryKind) {
  for (const auto kind :
       {ScheduleKind::kConstant, ScheduleKind::kStepDecay,
        ScheduleKind::kCosine, ScheduleKind::kLinearWarmup}) {
    LrSchedule s;
    s.kind = kind;
    EXPECT_FALSE(s.to_string().empty());
  }
}

TEST(Optimizer, SetLrTakesEffect) {
  Parameter p("w", Tensor::zeros(Shape{1}));
  Sgd opt({&p}, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  EXPECT_DOUBLE_EQ(opt.lr(), 0.1);
  opt.set_lr(0.01);
  p.grad[0] = 1.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-7f);
}

TEST(Optimizer, GradClipScalesLargeGradients) {
  Parameter p("w", Tensor::zeros(Shape{2}));
  Sgd opt({&p}, {.lr = 1.0, .momentum = 0.0, .weight_decay = 0.0});
  opt.set_grad_clip_norm(1.0);
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;  // norm 5 -> scaled by 1/5
  opt.step();
  EXPECT_NEAR(p.value[0], -0.6f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.8f, 1e-6f);
}

TEST(Optimizer, GradClipLeavesSmallGradientsAlone) {
  Parameter p("w", Tensor::zeros(Shape{1}));
  Sgd opt({&p}, {.lr = 1.0, .momentum = 0.0, .weight_decay = 0.0});
  opt.set_grad_clip_norm(10.0);
  p.grad[0] = 0.5f;
  opt.step();
  EXPECT_NEAR(p.value[0], -0.5f, 1e-7f);
}

TEST(Trainer, SchedulePropagatesToEpochStats) {
  // Tiny linear problem; verify the recorded learning rates follow the
  // configured step decay.
  util::Rng rng(1);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Linear>(2, 2, rng);
  FeedforwardClassifier model(std::move(seq), 2, "lin");
  Tensor x(Shape{8, 2});
  std::vector<std::int64_t> y(8, 0);

  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.lr = 0.1;
  cfg.schedule.kind = ScheduleKind::kStepDecay;
  cfg.schedule.gamma = 0.1;
  cfg.schedule.step_epochs = 2;
  const TrainHistory h = Trainer(cfg).fit(model, x, y);
  ASSERT_EQ(h.epochs.size(), 4u);
  EXPECT_DOUBLE_EQ(h.epochs[0].learning_rate, 0.1);
  EXPECT_DOUBLE_EQ(h.epochs[1].learning_rate, 0.1);
  EXPECT_NEAR(h.epochs[2].learning_rate, 0.01, 1e-12);
  EXPECT_NEAR(h.epochs[3].learning_rate, 0.01, 1e-12);
}

}  // namespace
}  // namespace snnsec::nn
