// fleet loadgen engine: deterministic tenant mix, closed/open loop
// accounting, trace parse/replay, and an in-process Router integration
// pass with quota.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/loadgen.hpp"
#include "fleet/router.hpp"
#include "snn/model_io.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::fleet {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

constexpr std::int64_t kImage = 8;

/// In-process target that records every submission; no model involved.
struct FakeTarget : LoadTarget {
  struct Record {
    std::uint64_t tenant;
    std::int64_t deadline_us;
    std::int64_t max_steps;
  };

  struct Client : LoadClient {
    explicit Client(FakeTarget& t) : target(t) {}
    void submit(std::uint64_t tenant, const Tensor& x,
                const LoadOptions& opt, Reply& out) override {
      (void)x;
      {
        std::lock_guard<std::mutex> lk(target.m);
        target.records.push_back({tenant, opt.deadline_us, opt.max_steps});
      }
      out = Reply{};
      out.ok = true;
      out.pred = 0;
      out.latency_us = 10;
      out.batch_size = 1;
    }
    FakeTarget& target;
  };

  std::unique_ptr<LoadClient> connect() override {
    connects.fetch_add(1);
    return std::make_unique<Client>(*this);
  }

  std::map<std::uint64_t, std::int64_t> tenant_counts() {
    std::lock_guard<std::mutex> lk(m);
    std::map<std::uint64_t, std::int64_t> counts;
    for (const Record& r : records) ++counts[r.tenant];
    return counts;
  }

  std::mutex m;
  std::vector<Record> records;
  std::atomic<int> connects{0};
};

Tensor image_set(std::int64_t n) {
  util::Rng rng(7);
  Tensor images(Shape{n, 1, kImage, kImage});
  rng.fill_uniform(images.data(), static_cast<std::size_t>(images.numel()),
                   0.0f, 1.0f);
  return images;
}

TEST(FleetLoadgen, ClosedLoopOffersExactlyTotal) {
  FakeTarget target;
  const Tensor images = image_set(4);
  LoadSpec spec;
  spec.total = 7;  // does not divide clients evenly
  spec.clients = 3;
  const LoadReport r = run_load(target, images, spec);
  EXPECT_EQ(r.offered, 7);
  EXPECT_EQ(r.completed, 7);
  EXPECT_EQ(r.shed, 0);
  EXPECT_EQ(target.connects.load(), 3);
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
}

TEST(FleetLoadgen, TenantMixFollowsWeights) {
  FakeTarget target;
  const Tensor images = image_set(4);
  LoadSpec spec;
  spec.total = 2000;
  spec.clients = 2;
  spec.mix = {{1, 3.0}, {2, 1.0}};
  spec.seed = 11;
  const LoadReport r = run_load(target, images, spec);
  EXPECT_EQ(r.offered, 2000);
  const auto counts = target.tenant_counts();
  ASSERT_EQ(counts.size(), 2U);
  const double share1 =
      static_cast<double>(counts.at(1)) / static_cast<double>(spec.total);
  EXPECT_NEAR(share1, 0.75, 0.05);
}

TEST(FleetLoadgen, SeededMixIsDeterministic) {
  const Tensor images = image_set(4);
  LoadSpec spec;
  spec.total = 300;
  spec.clients = 2;
  spec.mix = {{1, 1.0}, {2, 1.0}, {3, 1.0}};
  spec.seed = 42;
  FakeTarget a;
  FakeTarget b;
  run_load(a, images, spec);
  run_load(b, images, spec);
  EXPECT_EQ(a.tenant_counts(), b.tenant_counts());
}

TEST(FleetLoadgen, EmptyMixDefaultsToTenantZero) {
  FakeTarget target;
  const Tensor images = image_set(2);
  LoadSpec spec;
  spec.total = 5;
  const LoadReport r = run_load(target, images, spec);
  EXPECT_EQ(r.offered, 5);
  const auto counts = target.tenant_counts();
  ASSERT_EQ(counts.size(), 1U);
  EXPECT_EQ(counts.at(0), 5);
}

TEST(FleetLoadgen, OptionsReachEveryRequest) {
  FakeTarget target;
  const Tensor images = image_set(2);
  LoadSpec spec;
  spec.total = 4;
  spec.options.deadline_us = 9000;
  spec.options.max_steps = 5;
  run_load(target, images, spec);
  for (const auto& rec : target.records) {
    EXPECT_EQ(rec.deadline_us, 9000);
    EXPECT_EQ(rec.max_steps, 5);
  }
}

TEST(FleetLoadgen, OpenLoopPacesArrivals) {
  FakeTarget target;
  const Tensor images = image_set(2);
  LoadSpec spec;
  spec.mode = LoadSpec::Mode::kOpen;
  spec.total = 20;
  spec.clients = 2;
  spec.rate_rps = 2000.0;
  const LoadReport r = run_load(target, images, spec);
  EXPECT_EQ(r.offered, 20);
  EXPECT_EQ(r.completed, 20);
  // 20 arrivals at 2000 rps occupy ~10 ms of wall clock.
  EXPECT_GE(r.wall_s, 0.005);
}

TEST(FleetLoadgen, ParseTraceSkipsCommentsAndDefaults) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "1 0\n"
      "2 3 5000\n"
      "7 1 2500 6\n");
  const auto entries = parse_trace(in);
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].tenant, 1U);
  EXPECT_EQ(entries[0].sample, 0);
  EXPECT_EQ(entries[0].deadline_us, 0);
  EXPECT_EQ(entries[0].max_steps, 0);
  EXPECT_EQ(entries[1].deadline_us, 5000);
  EXPECT_EQ(entries[2].tenant, 7U);
  EXPECT_EQ(entries[2].max_steps, 6);
}

TEST(FleetLoadgen, ParseTraceRejectsMalformedLines) {
  std::istringstream only_tenant("3\n");
  EXPECT_THROW(parse_trace(only_tenant), util::Error);
  std::istringstream negative("1 -2\n");
  EXPECT_THROW(parse_trace(negative), util::Error);
}

TEST(FleetLoadgen, ReplayDeliversEveryEntryWithItsOptions) {
  FakeTarget target;
  const Tensor images = image_set(4);
  std::vector<TraceEntry> entries;
  for (std::int64_t i = 0; i < 10; ++i)
    entries.push_back({static_cast<std::uint64_t>(i % 3), i % 4, 100 * i,
                       i % 5});
  const LoadReport r = replay_trace(target, images, entries, 2);
  EXPECT_EQ(r.offered, 10);
  EXPECT_EQ(r.completed, 10);
  ASSERT_EQ(target.records.size(), 10U);
  // Every recorded (tenant, deadline, steps) triple matches some entry.
  std::multiset<std::int64_t> want;
  std::multiset<std::int64_t> got;
  for (const auto& e : entries)
    want.insert(static_cast<std::int64_t>(e.tenant) * 1000000 +
                e.deadline_us + e.max_steps);
  for (const auto& rec : target.records)
    got.insert(static_cast<std::int64_t>(rec.tenant) * 1000000 +
               rec.deadline_us + rec.max_steps);
  EXPECT_EQ(want, got);
}

TEST(FleetLoadgen, RouterTargetHonoursQuota) {
  const std::string path =
      (fs::temp_directory_path() / "snnsec_test_fleetlg_cell.snnm")
          .string();
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = kImage;
  snn::SnnConfig scfg;
  scfg.v_th = 1.0;
  scfg.time_steps = 6;
  util::Rng rng(42);
  auto model = snn::build_spiking_lenet(arch, scfg, rng);
  snn::save_spiking_lenet(path, *model, arch, scfg);

  RouterConfig rc;
  GroupConfig g;
  g.name = "solo";
  g.role = GroupRole::kBalanced;
  g.model_path = path;
  g.server.workers = 0;
  g.server.batcher.max_batch = 2;
  g.server.batcher.max_delay_us = 200;
  g.server.batcher.capacity = 16;
  rc.groups.push_back(g);
  rc.tenants.push_back({5, Threat::kTrusted, 0.0, 4.0});  // budget of four
  Router router(rc);

  RouterTarget target(router);
  const Tensor images = image_set(4);
  LoadSpec spec;
  spec.total = 8;
  spec.clients = 1;
  spec.mix = {{5, 1.0}};
  const LoadReport r = run_load(target, images, spec);
  EXPECT_EQ(r.offered, 8);
  EXPECT_EQ(r.completed, 4);
  EXPECT_EQ(r.quota_rejected, 4);
  EXPECT_EQ(r.errors, 0);
}

}  // namespace
}  // namespace snnsec::fleet
