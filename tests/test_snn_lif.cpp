// LIF neuron dynamics: hand-computed trajectories and invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "snn/lif.hpp"
#include "util/error.hpp"

namespace snnsec::snn {
namespace {

LifParameters default_params() {
  LifParameters p;  // a = 0.1, b = 0.8 with the defaults
  return p;
}

TEST(LifParameters, DefaultFactors) {
  const LifParameters p = default_params();
  EXPECT_NEAR(p.a(), 0.1f, 1e-6f);
  EXPECT_NEAR(p.b(), 0.8f, 1e-6f);
  EXPECT_NO_THROW(p.validate());
  EXPECT_FALSE(p.to_string().empty());
}

TEST(LifParameters, UnstableDiscretizationRejected) {
  LifParameters p = default_params();
  p.dt = 1.0f;  // a = 100 -> unstable
  EXPECT_THROW(p.validate(), util::Error);
  p = default_params();
  p.tau_syn_inv = 2000.0f;  // b = -1
  EXPECT_THROW(p.validate(), util::Error);
  p = default_params();
  p.v_th = -1.0f;  // below leak
  EXPECT_THROW(p.validate(), util::Error);
  p = default_params();
  p.dt = 0.0f;
  EXPECT_THROW(p.validate(), util::Error);
}

TEST(LifStep, HandComputedTrajectory) {
  // One neuron, constant input current x = 1, defaults (a=0.1, b=0.8).
  // Step math:
  //   vd_t = 0.9 v + 0.1 i ; id = 0.8 i ; z = vd > 1 ; i' = id + 1
  const LifParameters p = default_params();
  float i = 0.0f, v = 0.0f, z = 0.0f, vd = 0.0f;
  const float x = 1.0f;

  // t=0: vd = 0, no spike, i = 1.
  lif_step(p, 1, &x, &i, &v, &z, &vd);
  EXPECT_FLOAT_EQ(vd, 0.0f);
  EXPECT_FLOAT_EQ(z, 0.0f);
  EXPECT_FLOAT_EQ(i, 1.0f);
  EXPECT_FLOAT_EQ(v, 0.0f);

  // t=1: vd = 0.9*0 + 0.1*1 = 0.1; i = 0.8*1 + 1 = 1.8.
  lif_step(p, 1, &x, &i, &v, &z, &vd);
  EXPECT_NEAR(vd, 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(z, 0.0f);
  EXPECT_NEAR(i, 1.8f, 1e-6f);

  // t=2: vd = 0.9*0.1 + 0.1*1.8 = 0.27; i = 0.8*1.8 + 1 = 2.44.
  lif_step(p, 1, &x, &i, &v, &z, &vd);
  EXPECT_NEAR(vd, 0.27f, 1e-5f);
  EXPECT_NEAR(i, 2.44f, 1e-5f);
}

TEST(LifStep, FiresAndResetsAtThreshold) {
  const LifParameters p = default_params();
  float i = 0.0f, v = 0.0f, z = 0.0f, vd = 0.0f;
  const float x = 2.0f;
  bool fired = false;
  for (int t = 0; t < 30 && !fired; ++t) {
    lif_step(p, 1, &x, &i, &v, &z, &vd);
    // NOLINTNEXTLINE(snnsec-float-eq): LIF spikes are exactly 0 or 1 by construction
    if (z == 1.0f) {
      fired = true;
      EXPECT_GT(vd, p.v_th);                // crossed pre-reset
      EXPECT_FLOAT_EQ(v, p.v_reset);        // reset applied
    } else {
      EXPECT_FLOAT_EQ(v, vd);               // no reset without spike
    }
  }
  EXPECT_TRUE(fired) << "constant suprathreshold current must fire";
}

TEST(LifStep, HigherThresholdFiresLater) {
  auto first_spike_time = [](float v_th) {
    LifParameters p = default_params();
    p.v_th = v_th;
    float i = 0.0f, v = 0.0f, z = 0.0f, vd = 0.0f;
    const float x = 1.5f;
    for (int t = 0; t < 200; ++t) {
      lif_step(p, 1, &x, &i, &v, &z, &vd);
      // NOLINTNEXTLINE(snnsec-float-eq): LIF spikes are exactly 0 or 1 by construction
      if (z == 1.0f) return t;
    }
    return 1000;
  };
  const int t_low = first_spike_time(0.5f);
  const int t_mid = first_spike_time(1.0f);
  const int t_high = first_spike_time(2.0f);
  EXPECT_LT(t_low, t_mid);
  EXPECT_LT(t_mid, t_high);
}

TEST(LifStep, SubthresholdNeverFires) {
  // Steady state v = i = x / (1 - b) = 5 x; with x = 0.15, v_ss = 0.75 < 1.
  const LifParameters p = default_params();
  float i = 0.0f, v = 0.0f, z = 0.0f, vd = 0.0f;
  const float x = 0.15f;
  for (int t = 0; t < 500; ++t) {
    lif_step(p, 1, &x, &i, &v, &z, &vd);
    EXPECT_FLOAT_EQ(z, 0.0f);
  }
  EXPECT_NEAR(v, 0.75f, 0.01f);
}

TEST(LifStep, ZeroInputDecaysToLeak) {
  const LifParameters p = default_params();
  float i = 5.0f, v = 0.9f, z = 0.0f, vd = 0.0f;
  const float x = 0.0f;
  // Note: stored current keeps charging the membrane briefly; with v_th=10
  // nothing fires and everything decays to the leak potential.
  LifParameters quiet = p;
  quiet.v_th = 10.0f;
  for (int t = 0; t < 300; ++t)
    lif_step(quiet, 1, &x, &i, &v, &z, &vd);
  EXPECT_NEAR(v, quiet.v_leak, 1e-3f);
  EXPECT_NEAR(i, 0.0f, 1e-3f);
}

TEST(LifStep, VectorizedMatchesScalar) {
  const LifParameters p = default_params();
  constexpr int kN = 17;
  std::vector<float> x(kN), iv(kN, 0.0f), vv(kN, 0.0f), z(kN), vd(kN);
  for (int k = 0; k < kN; ++k) x[static_cast<std::size_t>(k)] = 0.1f * static_cast<float>(k);
  // Reference: per-neuron scalar simulation.
  std::vector<float> ri(kN, 0.0f), rv(kN, 0.0f);
  for (int t = 0; t < 20; ++t) {
    lif_step(p, kN, x.data(), iv.data(), vv.data(), z.data(), vd.data());
    for (int k = 0; k < kN; ++k) {
      float zz = 0.0f, vvd = 0.0f;
      lif_step(p, 1, &x[static_cast<std::size_t>(k)],
               &ri[static_cast<std::size_t>(k)],
               &rv[static_cast<std::size_t>(k)], &zz, &vvd);
      EXPECT_FLOAT_EQ(vv[static_cast<std::size_t>(k)],
                      rv[static_cast<std::size_t>(k)]);
      EXPECT_FLOAT_EQ(z[static_cast<std::size_t>(k)], zz);
    }
  }
}

TEST(LiStep, IntegratesWithoutSpiking) {
  const LifParameters p = default_params();
  float i = 0.0f, v = 0.0f, trace = 0.0f;
  const float x = 1.0f;
  float prev = -1.0f;
  for (int t = 0; t < 100; ++t) {
    li_step(p, 1, &x, &i, &v, &trace);
    EXPECT_GE(trace, prev);  // monotone approach to steady state
    prev = trace;
  }
  // Steady state: v = i = x / (1 - b) = 5.
  EXPECT_NEAR(trace, 5.0f, 0.05f);
}

TEST(LiStep, TraceEqualsMembrane) {
  const LifParameters p = default_params();
  float i = 0.0f, v = 0.0f, trace = 0.0f;
  const float x = 0.7f;
  for (int t = 0; t < 10; ++t) {
    li_step(p, 1, &x, &i, &v, &trace);
    EXPECT_FLOAT_EQ(trace, v);
  }
}

}  // namespace
}  // namespace snnsec::snn
