// Synthetic Fashion-MNIST-like generator and polygon rasterization.
#include <gtest/gtest.h>

#include "data/provider.hpp"
#include "data/synth_fashion.hpp"

namespace snnsec::data {
namespace {

using tensor::Shape;

TEST(FashionGlyph, DefinedForAllClassesWithNames) {
  for (std::int64_t c = 0; c <= 9; ++c) {
    const FashionGlyph& g = fashion_glyph(c);
    EXPECT_FALSE(g.fills.empty()) << fashion_class_name(c);
    for (const auto& poly : g.fills) EXPECT_GE(poly.size(), 3u);
    EXPECT_NE(std::string(fashion_class_name(c)), "");
  }
  EXPECT_THROW(fashion_glyph(10), util::Error);
  EXPECT_THROW(fashion_class_name(-1), util::Error);
}

TEST(FillPolygon, CoversInteriorNotExterior) {
  Canvas canvas(16, 16);
  canvas.fill_polygon({{4, 4}, {12, 4}, {12, 12}, {4, 12}}, 1.0f);
  EXPECT_GT(canvas.pixels()[8 * 16 + 8], 0.9f);   // center filled
  EXPECT_FLOAT_EQ(canvas.pixels()[1 * 16 + 1], 0.0f);  // corner empty
  EXPECT_FLOAT_EQ(canvas.pixels()[14 * 16 + 14], 0.0f);
}

TEST(FillPolygon, TriangleRespectsEdges) {
  Canvas canvas(16, 16);
  canvas.fill_polygon({{8, 2}, {14, 14}, {2, 14}}, 1.0f);
  EXPECT_GT(canvas.pixels()[10 * 16 + 8], 0.9f);  // interior
  EXPECT_FLOAT_EQ(canvas.pixels()[4 * 16 + 2], 0.0f);  // above-left of apex
}

TEST(FillPolygon, SupersamplingSoftensEdges) {
  Canvas canvas(16, 16);
  // Diagonal edge: some pixels should have partial coverage.
  canvas.fill_polygon({{2, 2}, {14, 2}, {2, 14}}, 1.0f);
  bool partial = false;
  for (const float p : canvas.pixels())
    if (p > 0.1f && p < 0.9f) partial = true;
  EXPECT_TRUE(partial);
}

TEST(FillPolygon, RejectsDegenerate) {
  Canvas canvas(8, 8);
  EXPECT_THROW(canvas.fill_polygon({{1, 1}, {2, 2}}), util::Error);
}

TEST(RenderFashion, EveryClassLeavesDistinctInk) {
  SynthConfig cfg;
  cfg.image_size = 16;
  util::Rng rng(1);
  double prev_ink = -1.0;
  for (std::int64_t c = 0; c <= 9; ++c) {
    Canvas canvas(16, 16);
    render_fashion(c, cfg, rng, canvas);
    double ink = 0.0;
    for (const float p : canvas.pixels()) {
      ASSERT_GE(p, 0.0f);
      ASSERT_LE(p, 1.0f);
      ink += p;
    }
    EXPECT_GT(ink / 256.0, 0.03) << fashion_class_name(c);
    (void)prev_ink;
    prev_ink = ink;
  }
}

TEST(GenerateFashion, BalancedValidatedDataset) {
  SynthConfig cfg;
  cfg.image_size = 16;
  util::Rng rng(2);
  const Dataset d = generate_fashion(100, cfg, rng);
  EXPECT_EQ(d.size(), 100);
  EXPECT_NO_THROW(d.validate());
  for (const auto count : d.class_histogram()) EXPECT_EQ(count, 10);
}

TEST(GenerateFashion, ClassesDistinguishableByTemplateMatching) {
  SynthConfig cfg;
  cfg.image_size = 16;
  util::Rng rng(3);
  const Dataset train = generate_fashion(400, cfg, rng);
  const Dataset test = generate_fashion(100, cfg, rng);
  const std::int64_t px = 16 * 16;
  std::vector<std::vector<double>> mean(10, std::vector<double>(px, 0.0));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < train.size(); ++i) {
    const auto l = train.labels[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(l)];
    for (std::int64_t j = 0; j < px; ++j)
      mean[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)] +=
          train.images[i * px + j];
  }
  for (int c = 0; c < 10; ++c)
    for (auto& v : mean[static_cast<std::size_t>(c)])
      v /= counts[static_cast<std::size_t>(c)];
  int correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    double best = 1e18;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (std::int64_t j = 0; j < px; ++j) {
        const double e =
            test.images[i * px + j] -
            mean[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)];
        dist += e * e;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(correct, 55) << "nearest-template must beat chance widely";
}

TEST(Provider, FashionTaskSelectsGarmentGenerator) {
  DataSpec spec;
  spec.train_n = 20;
  spec.test_n = 10;
  spec.image_size = 12;
  spec.task = TaskKind::kFashion;
  spec.force_synthetic = true;
  const DataBundle bundle = load_digits(spec);
  EXPECT_FALSE(bundle.from_mnist);
  EXPECT_EQ(bundle.train.size(), 20);
  EXPECT_NO_THROW(bundle.train.validate());

  // The two tasks must generate different images for the same spec/seed.
  DataSpec digit_spec = spec;
  digit_spec.task = TaskKind::kDigits;
  const DataBundle digits = load_digits(digit_spec);
  EXPECT_FALSE(bundle.train.images.allclose(digits.train.images, 1e-3f));
}

}  // namespace
}  // namespace snnsec::data
