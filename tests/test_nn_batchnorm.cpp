// BatchNorm 1d/2d: normalization semantics, running statistics, gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.hpp"
#include "nn/batchnorm.hpp"
#include "nn/lenet.hpp"
#include "nn/metrics.hpp"

namespace snnsec::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(BatchNorm1d, NormalizesToZeroMeanUnitVar) {
  BatchNorm1d bn(3);
  util::Rng rng(1);
  const Tensor x = Tensor::randn(Shape{64, 3}, rng, 5.0f, 2.0f);
  const Tensor y = bn.forward(x, Mode::kTrain);
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t i = 0; i < 64; ++i) mean += y.at({i, c});
    mean /= 64.0;
    for (std::int64_t i = 0; i < 64; ++i) {
      const double d = y.at({i, c}) - mean;
      var += d * d;
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm1d, GammaBetaAffineApplied) {
  BatchNorm1d bn(2);
  bn.gamma().value = Tensor::from_vector(Shape{2}, {2.0f, 0.5f});
  bn.beta().value = Tensor::from_vector(Shape{2}, {1.0f, -1.0f});
  util::Rng rng(2);
  const Tensor x = Tensor::randn(Shape{32, 2}, rng);
  const Tensor y = bn.forward(x, Mode::kTrain);
  double mean0 = 0.0, mean1 = 0.0;
  for (std::int64_t i = 0; i < 32; ++i) {
    mean0 += y.at({i, 0});
    mean1 += y.at({i, 1});
  }
  EXPECT_NEAR(mean0 / 32.0, 1.0, 1e-4);   // beta
  EXPECT_NEAR(mean1 / 32.0, -1.0, 1e-4);
}

TEST(BatchNorm1d, RunningStatsConvergeToDataStats) {
  BatchNorm1d bn(1, /*momentum=*/0.5);
  util::Rng rng(3);
  for (int step = 0; step < 50; ++step) {
    const Tensor x = Tensor::randn(Shape{256, 1}, rng, 3.0f, 2.0f);
    bn.forward(x, Mode::kTrain);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.6f);
}

TEST(BatchNorm1d, EvalUsesRunningStats) {
  BatchNorm1d bn(1, /*momentum=*/1.0);  // running stats = last batch stats
  util::Rng rng(4);
  const Tensor train_batch = Tensor::randn(Shape{512, 1}, rng, 2.0f, 1.0f);
  bn.forward(train_batch, Mode::kTrain);
  // A constant eval input normalizes against the stored stats, not its own.
  const Tensor x = Tensor::full(Shape{4, 1}, 2.0f);
  const Tensor y = bn.forward(x, Mode::kEval);
  for (std::int64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(y[i], 0.0f, 0.15f);  // (2 - running_mean≈2) / std≈1
}

TEST(BatchNorm2d, PerChannelOverSpatialAndBatch) {
  BatchNorm2d bn(2);
  util::Rng rng(5);
  Tensor x(Shape{4, 2, 3, 3});
  // Channel 0 ~ N(10, 1), channel 1 ~ N(-5, 3).
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t c = 0; c < 2; ++c)
      for (std::int64_t j = 0; j < 9; ++j)
        x[(i * 2 + c) * 9 + j] = static_cast<float>(
            c == 0 ? rng.normal(10.0, 1.0) : rng.normal(-5.0, 3.0));
  const Tensor y = bn.forward(x, Mode::kTrain);
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < 4; ++i)
      for (std::int64_t j = 0; j < 9; ++j) mean += y[(i * 2 + c) * 9 + j];
    EXPECT_NEAR(mean / 36.0, 0.0, 1e-4) << "channel " << c;
  }
}

TEST(BatchNorm2d, TrainModeGradCheck) {
  BatchNorm2d bn(2);
  util::Rng drng(6);
  const Tensor x = Tensor::randn(Shape{3, 2, 2, 2}, drng);
  util::Rng wrng(7);
  // Custom check: batch statistics couple samples, so use the layer's own
  // train-mode forward inside the finite difference as well.
  const Tensor y0 = bn.forward(x, Mode::kTrain);
  const Tensor w = Tensor::randn(y0.shape(), wrng);
  for (Parameter* p : bn.parameters()) p->zero_grad();
  const Tensor analytic = bn.backward(w);
  const double step = 1e-2;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp[i] += static_cast<float>(step);
    Tensor xm = x;
    xm[i] -= static_cast<float>(step);
    // Fresh BN with same params so running stats do not drift the result.
    BatchNorm2d bn2(2);
    bn2.gamma().value = bn.gamma().value;
    bn2.beta().value = bn.beta().value;
    const double lp = snnsec::testutil::dot(w, bn2.forward(xp, Mode::kTrain));
    const double lm = snnsec::testutil::dot(w, bn2.forward(xm, Mode::kTrain));
    const double numeric = (lp - lm) / (2 * step);
    EXPECT_LT(snnsec::testutil::grad_error(numeric, analytic[i]), 3e-2)
        << "coord " << i;
  }
}

TEST(BatchNorm2d, FrozenStatsGradientIsDiagonal) {
  BatchNorm2d bn(1, /*momentum=*/1.0);
  util::Rng rng(8);
  bn.forward(Tensor::randn(Shape{16, 1, 2, 2}, rng), Mode::kTrain);
  // Attack-mode forward: frozen stats -> dx = dy * gamma * inv_std.
  const Tensor x = Tensor::randn(Shape{2, 1, 2, 2}, rng);
  bn.forward(x, Mode::kAttack);
  Tensor g(Shape{2, 1, 2, 2});
  g[3] = 1.0f;
  const Tensor dx = bn.backward(g);
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    if (i == 3) EXPECT_NE(dx[i], 0.0f);
    else EXPECT_FLOAT_EQ(dx[i], 0.0f);
  }
}

TEST(BatchNorm, ParameterGradients) {
  BatchNorm1d bn(4);
  util::Rng drng(9);
  const Tensor x = Tensor::randn(Shape{8, 4}, drng);
  util::Rng wrng(10);
  const Tensor y0 = bn.forward(x, Mode::kTrain);
  const Tensor w = Tensor::randn(y0.shape(), wrng);
  for (Parameter* p : bn.parameters()) p->zero_grad();
  bn.backward(w);
  // dbeta = column sums of w; dgamma = sum(w * x_hat). Check dbeta exactly.
  for (std::int64_t c = 0; c < 4; ++c) {
    double colsum = 0.0;
    for (std::int64_t i = 0; i < 8; ++i) colsum += w.at({i, c});
    EXPECT_NEAR(bn.beta().grad[c], colsum, 1e-4);
  }
}

TEST(BatchNorm, RejectsBadConfigAndShapes) {
  EXPECT_THROW(BatchNorm1d(0), util::Error);
  EXPECT_THROW(BatchNorm1d(4, /*momentum=*/0.0), util::Error);
  EXPECT_THROW(BatchNorm1d(4, 0.1, /*eps=*/0.0), util::Error);
  BatchNorm2d bn(3);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 3}), Mode::kTrain), util::Error);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 4, 2, 2}), Mode::kTrain),
               util::Error);
  BatchNorm1d bn1(3);
  EXPECT_THROW(bn1.forward(Tensor(Shape{2, 3, 2, 2}), Mode::kTrain),
               util::Error);
}

TEST(BatchNorm, LenetVariantBuildsTrainsAndAttacks) {
  LenetSpec spec = LenetSpec{}.scaled(0.25);
  spec.image_size = 8;
  spec.use_batchnorm = true;
  util::Rng rng(11);
  auto model = build_paper_cnn(spec, rng);
  // 3 conv BN layers add 6 parameters (gamma/beta each).
  EXPECT_EQ(model->parameters().size(), 16u);
  const Tensor x(Shape{4, 1, 8, 8});
  EXPECT_EQ(model->logits(x).shape(), Shape({4, 10}));
  // Attack-mode input gradient flows through frozen statistics.
  util::Rng drng(12);
  const Tensor xr = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  double loss = 0.0;
  const Tensor g = model->input_gradient(xr, {3, 7}, &loss);
  EXPECT_EQ(g.shape(), xr.shape());
  EXPECT_GT(loss, 0.0);
}

}  // namespace
}  // namespace snnsec::nn
