// Tests for the content-hash FileCache shared by snnsec_lint and
// snnsec_analyze (tools/lint/cache.hpp): hit/miss accounting, disk
// round-trip, version and digest invalidation, and the performance contract
// the tree gates rely on — a warm rerun must cost a small fraction of a
// cold one because cached files skip parsing entirely.
#include "cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "lint.hpp"
#include "source_view.hpp"

using snnsec::lint::FileCache;
using snnsec::lint::fnv1a;

namespace {

std::string temp_cache_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / (std::string("snnsec_cache_test_") + tag + ".txt")).string();
}

struct PathGuard {
  std::string path;
  ~PathGuard() { std::remove(path.c_str()); }
};

}  // namespace

TEST(FileCache, LookupMissesThenHitsAndCountsBoth) {
  FileCache cache("", "v1");  // empty path: in-memory only
  const std::uint64_t d = fnv1a("contents");
  EXPECT_FALSE(cache.lookup("a.cpp", d).has_value());
  cache.store("a.cpp", d, "payload");
  const auto hit = cache.lookup("a.cpp", d);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FileCache, DigestChangeInvalidatesEntry) {
  FileCache cache("", "v1");
  cache.store("a.cpp", fnv1a("old"), "stale");
  EXPECT_FALSE(cache.lookup("a.cpp", fnv1a("new")).has_value());
  // Storing under the new digest replaces the stale entry, not adds to it.
  cache.store("a.cpp", fnv1a("new"), "fresh");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(*cache.lookup("a.cpp", fnv1a("new")), "fresh");
}

TEST(FileCache, RoundTripsThroughDisk) {
  PathGuard guard{temp_cache_path("roundtrip")};
  const std::uint64_t d = fnv1a("body");
  {
    FileCache cache(guard.path, "v1");
    // Payloads are opaque blobs: newlines and separators must survive.
    cache.store("dir/a.cpp", d, "line1\nline2\x1f tail");
    cache.store("dir/b.cpp", fnv1a("other"), "");
    ASSERT_TRUE(cache.save());
  }
  FileCache reloaded(guard.path, "v1");
  EXPECT_EQ(reloaded.entries(), 2u);
  const auto hit = reloaded.lookup("dir/a.cpp", d);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "line1\nline2\x1f tail");
}

TEST(FileCache, VersionBumpDiscardsWholeCache) {
  PathGuard guard{temp_cache_path("version")};
  {
    FileCache cache(guard.path, "rules-v1");
    cache.store("a.cpp", fnv1a("body"), "payload");
    ASSERT_TRUE(cache.save());
  }
  FileCache reloaded(guard.path, "rules-v2");
  EXPECT_EQ(reloaded.entries(), 0u);
  EXPECT_FALSE(reloaded.lookup("a.cpp", fnv1a("body")).has_value());
}

TEST(FileCache, EmptyPathIsANoOpCache) {
  FileCache cache("", "v1");
  cache.store("a.cpp", 1, "p");
  EXPECT_TRUE(cache.save());  // nothing to write, nothing to fail
}

// The tree-gate performance contract: rerunning the linter over an
// unchanged tree must cost well under 10% of the cold run, because a cache
// hit skips lint_source() entirely and only pays for the digest. The
// fixture synthesizes a tree large enough that parsing dominates timing
// noise; the loop below mirrors the snnsec_lint main-loop cache protocol.
TEST(FileCache, WarmRerunIsUnderTenPercentOfCold) {
  // Short lines on purpose: a warm pass still pays the content digest
  // (per byte) while a cold pass pays the linter (per line), so dense
  // short-line files give the honest worst case for the warm/cold ratio.
  std::vector<std::pair<std::string, std::string>> files;
  std::string body;
  for (int line = 0; line < 800; ++line)
    body += "float g" + std::to_string(line) + "(float x);\n";
  for (int i = 0; i < 60; ++i)
    files.emplace_back("src/fake/file_" + std::to_string(i) + ".cpp",
                       body + "// tail " + std::to_string(i) + "\n");

  FileCache cache("", "timing-v1");
  const auto pass = [&](bool expect_hits) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t linted = 0;
    for (const auto& [path, src] : files) {
      const std::uint64_t digest = fnv1a(src);
      if (cache.lookup(path, digest).has_value()) continue;
      const auto r = snnsec::lint::lint_source(path, src);
      cache.store(path, digest, std::to_string(r.findings.size()));
      ++linted;
    }
    EXPECT_EQ(linted, expect_hits ? 0u : files.size());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  const double cold = pass(false);
  // Best of three warm passes, so one scheduler hiccup can't fail the
  // build; the cold pass parses ~50k lines and sits far above noise.
  double warm = pass(true);
  warm = std::min(warm, pass(true));
  warm = std::min(warm, pass(true));
  EXPECT_LT(warm, cold * 0.10)
      << "warm=" << warm << "s cold=" << cold << "s";
}

// The analyzer shares the cache type but stamps its own version string, so
// lint and analyze caches can never read each other's payloads.
TEST(FileCache, AnalyzeVersionStringIsDistinct) {
  EXPECT_NE(std::string(snnsec::analyze::analyze_cache_version()), "");
  EXPECT_NE(std::string(snnsec::analyze::analyze_cache_version()),
            std::string(snnsec::lint::lint_cache_version()));
}
