// Model checkpoint save/load round-trips.
#include <gtest/gtest.h>

#include <filesystem>

#include <map>

#include "snn/model_io.hpp"
#include "tensor/serialize.hpp"
#include "tensor/ops.hpp"

namespace snnsec::snn {
namespace {

namespace fs = std::filesystem;
using tensor::Shape;
using tensor::Tensor;

struct Fixture {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  SnnConfig cfg;
  std::unique_ptr<SpikingClassifier> model;

  explicit Fixture(double v_th = 1.25, std::int64_t t = 7) {
    arch.image_size = 8;
    cfg.v_th = v_th;
    cfg.time_steps = t;
    cfg.surrogate.alpha = 12.5f;
    util::Rng rng(99);
    model = build_spiking_lenet(arch, cfg, rng);
  }
};

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(ModelIo, RoundTripPreservesLogits) {
  Fixture fx;
  const std::string path = temp_path("snnsec_model_io.snnm");
  save_spiking_lenet(path, *fx.model, fx.arch, fx.cfg);

  LoadedModel loaded = load_spiking_lenet(path);
  EXPECT_EQ(loaded.arch.image_size, 8);
  EXPECT_DOUBLE_EQ(loaded.config.v_th, 1.25);
  EXPECT_EQ(loaded.config.time_steps, 7);
  EXPECT_FLOAT_EQ(loaded.config.surrogate.alpha, 12.5f);

  util::Rng drng(1);
  const Tensor x = Tensor::rand_uniform(Shape{3, 1, 8, 8}, drng);
  EXPECT_TRUE(fx.model->logits(x).allclose(loaded.model->logits(x), 0.0f));
  fs::remove(path);
}

TEST(ModelIo, PreservesStructuralParameters) {
  Fixture fx(2.0, 12);
  fx.cfg.encoder_uses_vth = false;
  fx.cfg.weight_gain = 8.0;
  fx.cfg.input_gain = 2.0;
  util::Rng rng(100);
  fx.model = build_spiking_lenet(fx.arch, fx.cfg, rng);
  const std::string path = temp_path("snnsec_model_io2.snnm");
  save_spiking_lenet(path, *fx.model, fx.arch, fx.cfg);
  const LoadedModel loaded = load_spiking_lenet(path);
  EXPECT_FALSE(loaded.config.encoder_uses_vth);
  EXPECT_DOUBLE_EQ(loaded.config.weight_gain, 8.0);
  EXPECT_DOUBLE_EQ(loaded.config.input_gain, 2.0);
  EXPECT_EQ(loaded.model->time_steps(), 12);
  fs::remove(path);
}

TEST(ModelIo, RoundTripsAlifVariant) {
  Fixture fx;
  fx.cfg.neuron_model = NeuronModel::kAlif;
  fx.cfg.alif_beta = 0.7f;
  fx.cfg.alif_rho = 0.85f;
  util::Rng rng(101);
  fx.model = build_spiking_lenet(fx.arch, fx.cfg, rng);
  const std::string path = temp_path("snnsec_model_io3.snnm");
  save_spiking_lenet(path, *fx.model, fx.arch, fx.cfg);
  const LoadedModel loaded = load_spiking_lenet(path);
  EXPECT_EQ(loaded.config.neuron_model, NeuronModel::kAlif);
  EXPECT_FLOAT_EQ(loaded.config.alif_beta, 0.7f);
  util::Rng drng(2);
  const Tensor x = Tensor::rand_uniform(Shape{2, 1, 8, 8}, drng);
  EXPECT_TRUE(fx.model->logits(x).allclose(loaded.model->logits(x), 0.0f));
  fs::remove(path);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_spiking_lenet("/nonexistent/model.snnm"), util::Error);
}

TEST(ModelIo, CorruptMetadataThrows) {
  // An archive without the metadata records is rejected.
  const std::string path = temp_path("snnsec_model_io_bad.snnm");
  std::map<std::string, Tensor> junk;
  junk.emplace("p000", Tensor::zeros(Shape{3}));
  tensor::save_archive_file(path, junk);
  EXPECT_THROW(load_spiking_lenet(path), util::Error);
  fs::remove(path);
}

TEST(ModelIo, TrainedWeightsSurviveRoundTrip) {
  Fixture fx;
  // Nudge a weight so the file provably carries non-initial values.
  auto params = fx.model->parameters();
  params[0]->value[0] = 123.456f;
  const std::string path = temp_path("snnsec_model_io4.snnm");
  save_spiking_lenet(path, *fx.model, fx.arch, fx.cfg);
  const LoadedModel loaded = load_spiking_lenet(path);
  EXPECT_FLOAT_EQ(loaded.model->parameters()[0]->value[0], 123.456f);
  fs::remove(path);
}

}  // namespace
}  // namespace snnsec::snn
