// Spike-activity / energy analysis.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "data/synth_digits.hpp"
#include "snn/spiking_lenet.hpp"

namespace snnsec::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<snn::SpikingClassifier> make_model(double v_th,
                                                   std::int64_t t,
                                                   std::uint64_t seed = 1) {
  nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  arch.image_size = 8;
  snn::SnnConfig cfg;
  cfg.v_th = v_th;
  cfg.time_steps = t;
  util::Rng rng(seed);
  return snn::build_spiking_lenet(arch, cfg, rng);
}

Tensor sample_batch(std::uint64_t seed = 2) {
  data::SynthConfig cfg;
  cfg.image_size = 8;
  util::Rng rng(seed);
  return data::generate_digits(16, cfg, rng).images;
}

TEST(Analysis, ReportsOneEntryPerLifLayer) {
  auto model = make_model(1.0, 6);
  const ActivityReport report = measure_activity(*model, sample_batch());
  EXPECT_EQ(report.layers.size(), 5u);  // encoder + 3 conv + 1 fc
  EXPECT_EQ(report.time_steps, 6);
  for (const auto& layer : report.layers) {
    EXPECT_GE(layer.spike_rate, 0.0);
    EXPECT_LE(layer.spike_rate, 1.0);
    EXPECT_GT(layer.neurons, 0);
    EXPECT_GE(layer.spikes_per_inference, 0.0);
  }
  EXPECT_FALSE(report.summary().empty());
}

TEST(Analysis, SpikesScaleWithTimeWindow) {
  // Same threshold, doubled window -> roughly doubled spike count.
  auto short_model = make_model(1.0, 8);
  auto long_model = make_model(1.0, 16);
  const Tensor batch = sample_batch();
  const auto short_report = measure_activity(*short_model, batch);
  const auto long_report = measure_activity(*long_model, batch);
  EXPECT_GT(long_report.total_spikes_per_inference,
            short_report.total_spikes_per_inference * 1.3);
}

TEST(Analysis, HigherThresholdFiresLess) {
  auto low = make_model(0.5, 8);
  auto high = make_model(2.0, 8);
  const Tensor batch = sample_batch();
  const auto low_report = measure_activity(*low, batch);
  const auto high_report = measure_activity(*high, batch);
  EXPECT_GT(low_report.total_spikes_per_inference,
            high_report.total_spikes_per_inference);
}

TEST(Analysis, SynopsExceedSpikesViaFanout) {
  auto model = make_model(1.0, 6);
  const auto report = measure_activity(*model, sample_batch());
  if (report.total_spikes_per_inference > 0.0) {
    EXPECT_GT(report.synops_per_inference,
              report.total_spikes_per_inference);
  }
}

TEST(Analysis, EnergyEstimateScalesLinearly) {
  auto model = make_model(1.0, 6);
  const auto report = measure_activity(*model, sample_batch());
  const double e1 = estimate_energy_nj(report, 0.077);
  const double e2 = estimate_energy_nj(report, 0.154);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
  EXPECT_THROW(estimate_energy_nj(report, 0.0), util::Error);
}

TEST(Analysis, NeuronCountsMatchArchitecture) {
  auto model = make_model(1.0, 6);
  const auto report = measure_activity(*model, sample_batch());
  // Encoder population = input pixels (1x8x8); conv1 = c1 x 8 x 8.
  EXPECT_EQ(report.layers[0].neurons, 64);
  const nn::LenetSpec arch = nn::LenetSpec{}.scaled(0.25);
  EXPECT_EQ(report.layers[1].neurons, arch.conv1_channels * 64);
}

TEST(Analysis, RejectsBadBatch) {
  auto model = make_model(1.0, 6);
  EXPECT_THROW(measure_activity(*model, Tensor(Shape{2, 8, 8})), util::Error);
}

}  // namespace
}  // namespace snnsec::core
