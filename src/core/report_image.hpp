// Render ExplorationReport heat maps as PPM images — the visual twin of the
// paper's Figures 6-8 (viridis colormap, V_th on x, T on y with the longest
// window on top, gray cells = skipped by the learnability filter).
#pragma once

#include <string>

#include "core/report.hpp"

namespace snnsec::core {

struct HeatmapImageOptions {
  int cell_size = 32;  ///< pixels per grid cell
  int border = 2;      ///< grid line thickness
  /// Value range mapped onto the colormap.
  double min_value = 0.0;
  double max_value = 1.0;
};

/// Write the clean-accuracy map (epsilon == 0) or the robustness map at
/// `epsilon` to a binary PPM file.
void write_heatmap_ppm(const ExplorationReport& report, double epsilon,
                       const std::string& path,
                       const HeatmapImageOptions& options = {});

}  // namespace snnsec::core
