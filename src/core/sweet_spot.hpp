// Sweet-spot analysis: "design trustworthy SNNs by fine-tuning their
// structural parameters around the previously-found sweet spots"
// (paper Sec. I-C / VI-C).
//
// A sweet spot is a learnable (V_th, T) cell whose robustness at the
// target noise budget is maximal; ranking also exposes the paper's central
// counter-example — cells with high clean accuracy and *low* robustness.
#pragma once

#include <vector>

#include "core/report.hpp"

namespace snnsec::core {

struct RankedCell {
  const CellResult* cell = nullptr;
  double score = 0.0;  ///< robustness at the target ε
};

class SweetSpotFinder {
 public:
  /// `epsilon`: the noise budget robustness is ranked at;
  /// `min_clean_accuracy`: learnability constraint (paper's A_th).
  SweetSpotFinder(double epsilon, double min_clean_accuracy)
      : epsilon_(epsilon), min_clean_accuracy_(min_clean_accuracy) {}

  /// Learnable cells sorted by robustness at ε, best first.
  std::vector<RankedCell> rank(const ExplorationReport& report) const;

  /// The single best cell, or nullptr when no cell qualifies.
  const CellResult* best(const ExplorationReport& report) const;

  /// Cells that look trustworthy by accuracy but are fragile under attack:
  /// clean accuracy >= `min_clean_accuracy` yet robustness at ε below
  /// `fragility_threshold`. These are the paper's (A3) counter-examples.
  std::vector<RankedCell> fragile_high_accuracy_cells(
      const ExplorationReport& report, double fragility_threshold) const;

 private:
  double epsilon_;
  double min_clean_accuracy_;
};

}  // namespace snnsec::core
