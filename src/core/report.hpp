// Exploration results: per-cell records, heatmap rendering, CSV emission.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attacks/evaluation.hpp"
#include "obs/probe.hpp"

namespace snnsec::core {

/// One (V_th, T) grid cell of Algorithm 1.
struct CellResult {
  double v_th = 0.0;
  std::int64_t time_steps = 0;
  double clean_accuracy = 0.0;
  bool learnable = false;  ///< clean_accuracy >= A_th
  /// ε -> robustness point (only filled for learnable cells).
  std::map<double, attack::RobustnessPoint> robustness;
  /// Mean spike rate per LIF layer after the final evaluation forward.
  std::vector<double> spike_rates;
  /// Per-LIF-layer activity probes (firing rate, silent/saturated neuron
  /// fractions, membrane histograms) from a probed forward on a held-out
  /// batch — the statistics that explain the cell's robustness number.
  std::vector<obs::ActivityStats> activity;
  double train_seconds = 0.0;

  /// Robustness at ε (clean accuracy when ε == 0); nullopt when the cell
  /// was skipped or ε was not evaluated.
  std::optional<double> robustness_at(double epsilon) const;
};

struct ExplorationReport {
  std::vector<double> v_th_grid;
  std::vector<std::int64_t> t_grid;
  std::vector<double> eps_grid;
  double accuracy_threshold = 0.0;
  std::vector<CellResult> cells;  ///< row-major: v_th outer, T inner

  const CellResult* find(double v_th, std::int64_t t) const;

  /// ASCII heatmap of clean accuracy (the paper's Fig. 6), or of
  /// robustness at `epsilon` (Figs. 7–8) when epsilon > 0. Skipped cells
  /// print as "----".
  std::string heatmap(double epsilon = 0.0) const;

  /// Flat CSV: v_th, T, clean_acc, learnable, then one robustness column
  /// per ε in eps_grid.
  void write_csv(const std::string& path) const;

  /// Long-format activity CSV: one row per (cell, LIF layer) with firing
  /// rate, spike counts and silent/saturated fractions. Empty cells (no
  /// probe ran) are skipped.
  void write_activity_csv(const std::string& path) const;

  /// Fraction of grid cells that passed the learnability filter.
  double learnable_fraction() const;
};

}  // namespace snnsec::core
