// Exploration results: per-cell records, heatmap rendering, CSV emission.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attacks/evaluation.hpp"
#include "obs/probe.hpp"

namespace snnsec::core {

/// Terminal state of one (V_th, T) grid cell. A fault-tolerant sweep never
/// aborts on a bad cell: it either completes it (kOk), filters it
/// (kSkippedLearnability, Algorithm 1's A_th gate) or marks it failed and
/// moves on (divergence after exhausting re-seeded retries, or the per-cell
/// wall-clock budget).
enum class CellStatus {
  kOk,
  kSkippedLearnability,
  kFailedDiverged,
  kFailedTimeout,
};

const char* to_string(CellStatus status);
/// Inverse of to_string; nullopt for unknown names (journal forward-compat).
std::optional<CellStatus> cell_status_from_string(const std::string& name);

/// One (V_th, T) grid cell of Algorithm 1.
struct CellResult {
  double v_th = 0.0;
  std::int64_t time_steps = 0;
  double clean_accuracy = 0.0;
  bool learnable = false;  ///< clean_accuracy >= A_th
  CellStatus status = CellStatus::kOk;
  int attempts = 1;          ///< training attempts consumed (retries + 1)
  bool from_cache = false;   ///< weights restored from a cell checkpoint
  bool from_journal = false; ///< whole cell restored from a resume journal
  std::string error;         ///< failure reason (failed cells only)
  /// ε -> robustness point (only filled for learnable cells).
  std::map<double, attack::RobustnessPoint> robustness;
  /// Mean spike rate per LIF layer after the final evaluation forward.
  std::vector<double> spike_rates;
  /// Per-LIF-layer activity probes (firing rate, silent/saturated neuron
  /// fractions, membrane histograms) from a probed forward on a held-out
  /// batch — the statistics that explain the cell's robustness number.
  std::vector<obs::ActivityStats> activity;
  double train_seconds = 0.0;

  /// Robustness at ε (clean accuracy when ε == 0); nullopt when the cell
  /// failed, was skipped, or ε was not evaluated.
  std::optional<double> robustness_at(double epsilon) const;

  bool failed() const {
    return status == CellStatus::kFailedDiverged ||
           status == CellStatus::kFailedTimeout;
  }
};

struct ExplorationReport {
  std::vector<double> v_th_grid;
  std::vector<std::int64_t> t_grid;
  std::vector<double> eps_grid;
  double accuracy_threshold = 0.0;
  std::vector<CellResult> cells;  ///< row-major: v_th outer, T inner
  /// Cells restored from a resume journal instead of being re-run.
  std::size_t resumed_cells = 0;

  const CellResult* find(double v_th, std::int64_t t) const;

  /// Cells that ended in a failed_* status.
  std::size_t failed_count() const;

  /// ASCII heatmap of clean accuracy (the paper's Fig. 6), or of
  /// robustness at `epsilon` (Figs. 7–8) when epsilon > 0. Skipped cells
  /// print as "----"; failed cells as "FAIL".
  std::string heatmap(double epsilon = 0.0) const;

  /// Flat CSV: v_th, T, clean_acc, learnable, status, attempts, then one
  /// robustness column per ε in eps_grid. Deliberately excludes volatile
  /// provenance (from_cache/from_journal/train_seconds) so a resumed run's
  /// CSV is byte-comparable against an uninterrupted run's.
  void write_csv(const std::string& path) const;

  /// Long-format activity CSV: one row per (cell, LIF layer) with firing
  /// rate, spike counts and silent/saturated fractions. Empty cells (no
  /// probe ran) are skipped.
  void write_activity_csv(const std::string& path) const;

  /// Fraction of grid cells that passed the learnability filter.
  double learnable_fraction() const;
};

}  // namespace snnsec::core
