#include "core/report_image.hpp"

#include "util/error.hpp"
#include "util/pgm.hpp"

namespace snnsec::core {

void write_heatmap_ppm(const ExplorationReport& report, double epsilon,
                       const std::string& path,
                       const HeatmapImageOptions& options) {
  SNNSEC_CHECK(!report.v_th_grid.empty() && !report.t_grid.empty(),
               "write_heatmap_ppm: empty report grid");
  SNNSEC_CHECK(options.cell_size > 0 && options.border >= 0,
               "write_heatmap_ppm: bad geometry options");
  SNNSEC_CHECK(options.max_value > options.min_value,
               "write_heatmap_ppm: bad value range");
  const std::int64_t cols =
      static_cast<std::int64_t>(report.v_th_grid.size());
  const std::int64_t rows = static_cast<std::int64_t>(report.t_grid.size());
  const std::int64_t cell = options.cell_size;
  const std::int64_t border = options.border;
  util::RgbImage image(cols * cell + (cols + 1) * border,
                       rows * cell + (rows + 1) * border);
  // Dark background doubles as the grid lines.
  image.fill_rect(0, 0, image.width, image.height, 24, 24, 24);

  for (std::int64_t row = 0; row < rows; ++row) {
    // Longest window on top, matching the paper's axes.
    const std::int64_t t =
        report.t_grid[static_cast<std::size_t>(rows - 1 - row)];
    for (std::int64_t col = 0; col < cols; ++col) {
      const double v_th = report.v_th_grid[static_cast<std::size_t>(col)];
      const CellResult* result = report.find(v_th, t);
      const std::int64_t x0 = border + col * (cell + border);
      const std::int64_t y0 = border + row * (cell + border);
      if (result == nullptr) {
        image.fill_rect(x0, y0, cell, cell, 60, 60, 60);
        continue;
      }
      if (result->failed()) {
        // Failed cell (diverged / timed out): red block with dark stripes,
        // visually distinct from the learnability-filtered gray hatch.
        image.fill_rect(x0, y0, cell, cell, 150, 40, 40);
        for (std::int64_t d = 0; d < cell; d += 4)
          image.fill_rect(x0, y0 + d, cell, 2, 90, 20, 20);
        continue;
      }
      const auto value = result->robustness_at(epsilon);
      if (!value) {
        // Skipped by the learnability filter: hatched gray block.
        image.fill_rect(x0, y0, cell, cell, 96, 96, 96);
        for (std::int64_t d = 0; d < cell; d += 4)
          image.fill_rect(x0 + d, y0 + d, 2, 2, 140, 140, 140);
        continue;
      }
      const double t_norm = (*value - options.min_value) /
                            (options.max_value - options.min_value);
      std::uint8_t r = 0, g = 0, b = 0;
      util::colormap_viridis(t_norm, r, g, b);
      image.fill_rect(x0, y0, cell, cell, r, g, b);
    }
  }
  util::write_ppm(path, image);
}

}  // namespace snnsec::core
