#include "core/analysis.hpp"

#include <sstream>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "snn/lif_layer.hpp"
#include "util/error.hpp"

namespace snnsec::core {

namespace {

/// Outgoing synapses per spike for the next weight layer after index `i`
/// in the stack (approximate for convolutions: each input activation feeds
/// ~ Cout * k^2 / stride^2 synapses, border effects ignored).
double downstream_fanout(nn::Sequential& net, std::size_t i) {
  for (std::size_t j = i + 1; j < net.size(); ++j) {
    if (const auto* lin = dynamic_cast<const nn::Linear*>(&net.layer(j)))
      return static_cast<double>(lin->out_features());
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&net.layer(j))) {
      const auto& spec = conv->spec();
      return static_cast<double>(spec.out_channels * spec.kernel *
                                 spec.kernel) /
             static_cast<double>(spec.stride * spec.stride);
    }
  }
  return 0.0;  // nothing downstream consumes these spikes
}

}  // namespace

ActivityReport measure_activity(snn::SpikingClassifier& model,
                                const tensor::Tensor& batch) {
  SNNSEC_CHECK(batch.ndim() == 4 && batch.dim(0) > 0,
               "measure_activity: batch must be non-empty [N,C,H,W]");
  const std::int64_t n = batch.dim(0);
  const std::int64_t t = model.time_steps();

  // One inference pass populates every LifLayer's activity counters.
  (void)model.logits(batch);

  ActivityReport report;
  report.time_steps = t;
  nn::Sequential& net = model.net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto* lif = dynamic_cast<const snn::LifLayer*>(&net.layer(i));
    if (lif == nullptr) continue;
    LayerActivity activity;
    activity.layer_name = net.layer(i).name();
    activity.spike_rate = lif->last_spike_rate();
    activity.neurons = lif->last_output_numel() / (t * n);
    activity.spikes_per_inference =
        activity.spike_rate * static_cast<double>(activity.neurons) *
        static_cast<double>(t);
    report.total_spikes_per_inference += activity.spikes_per_inference;
    report.synops_per_inference +=
        activity.spikes_per_inference * downstream_fanout(net, i);
    report.layers.push_back(std::move(activity));
  }
  return report;
}

double estimate_energy_nj(const ActivityReport& report, double nj_per_synop) {
  SNNSEC_CHECK(nj_per_synop > 0.0, "estimate_energy_nj: non-positive cost");
  return report.synops_per_inference * nj_per_synop;
}

std::string ActivityReport::summary() const {
  std::ostringstream oss;
  oss << "T=" << time_steps << ", "
      << static_cast<long long>(total_spikes_per_inference)
      << " spikes/inference, "
      << static_cast<long long>(synops_per_inference) << " synops/inference";
  for (const auto& layer : layers)
    oss << "\n  " << layer.layer_name << ": rate=" << layer.spike_rate
        << " neurons=" << layer.neurons
        << " spikes=" << layer.spikes_per_inference;
  return oss.str();
}

}  // namespace snnsec::core
