// Experiment configuration for the (V_th, T) robustness exploration
// (Algorithm 1 of the paper) plus the quick/full profiles used by the
// figure harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/pgd.hpp"
#include "data/provider.hpp"
#include "nn/lenet.hpp"
#include "nn/trainer.hpp"
#include "snn/spiking_lenet.hpp"
#include "util/retry.hpp"

namespace snnsec::core {

struct ExplorationConfig {
  /// Structural-parameter grids (Algorithm 1 inputs V_i and T_j).
  std::vector<double> v_th_grid;
  std::vector<std::int64_t> t_grid;
  /// Adversarial noise budgets ε_k.
  std::vector<double> eps_grid;
  /// Learnability threshold A_th: cells below it are skipped by the
  /// security study (paper uses 70%).
  double accuracy_threshold = 0.70;

  nn::LenetSpec arch;            ///< shared CNN/SNN architecture
  snn::SnnConfig snn_template;   ///< v_th/time_steps overridden per cell
  nn::TrainConfig train;
  attack::PgdConfig pgd;
  data::DataSpec data;

  std::int64_t eval_batch = 32;
  /// Cap on test samples used for adversarial evaluation (PGD is ~steps×
  /// more expensive than inference); -1 = all.
  std::int64_t attack_test_cap = -1;
  std::uint64_t seed = 42;

  /// Fault tolerance: how often a diverged cell is retrained with a
  /// re-seeded init before being marked failed, and with what backoff.
  util::RetryPolicy retry;
  /// Wall-clock training budget per grid cell, across all retry attempts;
  /// 0 = unlimited. A cell that exceeds it is marked failed_timeout (never
  /// retried — a second attempt would hit the same wall).
  double cell_timeout_seconds = 0.0;

  void validate() const;
  std::string summary() const;

  /// Hash of everything that determines one cell's trained weights except
  /// (v_th, T) — the cache key shared by all cell checkpoints of a run.
  std::uint64_t train_fingerprint() const;
  /// Full-run identity: train_fingerprint() plus the grids, ε budgets,
  /// learnability threshold and attack settings. Two configs with equal
  /// fingerprints produce identical reports, so a resume journal written
  /// under one may be replayed under the other.
  std::uint64_t fingerprint() const;
};

/// The paper's full grid: V_th ∈ {0.25, 0.5, …, 2.5}, T ∈ {8, 16, …, 96},
/// ε ∈ {0.1, 0.5, 1.0, 1.5}, 28×28 images, full LeNet channels.
ExplorationConfig paper_profile();

/// Laptop-scale profile used by default in the figure benches: coarser
/// subgrid, 16×16 images, scaled-down channels, short training, fewer PGD
/// steps. Set SNNSEC_FULL=1 to get paper_profile() from the benches.
ExplorationConfig quick_profile();

/// quick_profile() or paper_profile() based on util::full_profile_enabled().
ExplorationConfig default_profile();

}  // namespace snnsec::core
