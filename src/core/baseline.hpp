// CNN baseline helpers for the CNN-vs-SNN comparisons (Figs. 1 and 9).
#pragma once

#include <memory>

#include "core/experiment_config.hpp"
#include "data/provider.hpp"
#include "nn/feedforward.hpp"

namespace snnsec::core {

struct TrainedBaseline {
  std::unique_ptr<nn::FeedforwardClassifier> model;
  double clean_accuracy = 0.0;
  double train_seconds = 0.0;
};

/// Train the paper's 5-layer CNN with the exploration config's architecture
/// and training budget.
TrainedBaseline train_cnn_baseline(const ExplorationConfig& config,
                                   const data::DataBundle& data);

}  // namespace snnsec::core
