// Spike-activity analysis: the energy side of the paper's story.
//
// The paper positions SNNs as "efficient and robust"; on neuromorphic
// hardware (TrueNorth/Loihi) energy is dominated by synaptic events, i.e.
// spikes × fan-out. The structural parameters that shape robustness also
// shape the spike count: a higher V_th fires less (cheaper, and — per the
// exploration study — often *more* robust), a longer window T costs
// proportionally more. This module measures that trade-off.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "snn/spiking_network.hpp"

namespace snnsec::core {

struct LayerActivity {
  std::string layer_name;
  double spike_rate = 0.0;     ///< mean spikes per neuron per time step
  std::int64_t neurons = 0;    ///< population size (per sample)
  double spikes_per_inference = 0.0;  ///< rate * neurons * T
};

struct ActivityReport {
  std::vector<LayerActivity> layers;
  std::int64_t time_steps = 0;
  /// Total spikes emitted per classified sample (all LIF populations).
  double total_spikes_per_inference = 0.0;
  /// Synaptic-operation proxy: spikes weighted by each population's
  /// outgoing fan-out (events delivered to downstream synapses).
  double synops_per_inference = 0.0;

  std::string summary() const;
};

/// Run `batch` through the model (inference) and measure per-layer spike
/// activity. The batch should be representative test data.
ActivityReport measure_activity(snn::SpikingClassifier& model,
                                const tensor::Tensor& batch);

/// Energy proxy in nanojoules using a per-synaptic-event cost
/// (default 0.077 nJ ~ Loihi-class published estimates; configurable since
/// absolute numbers are hardware-specific).
double estimate_energy_nj(const ActivityReport& report,
                          double nj_per_synop = 0.077);

}  // namespace snnsec::core
