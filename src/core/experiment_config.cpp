#include "core/experiment_config.hpp"

#include <sstream>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::core {

namespace {

/// Key string behind train_fingerprint(). Field order and formatting are
/// frozen: the hash names on-disk cell checkpoints, so any change here
/// invalidates every existing cache.
std::string train_key(const ExplorationConfig& c) {
  std::ostringstream key;
  key << "a" << c.arch.image_size << "_" << c.arch.conv1_channels << "_"
      << c.arch.conv2_channels << "_" << c.arch.conv3_channels << "_"
      << c.arch.fc_hidden << "_t" << c.train.epochs << "_"
      << c.train.batch_size << "_" << c.train.lr << "_d" << c.data.train_n
      << "_" << c.data.image_size << "_" << c.data.seed << "_s" << c.seed
      << "_sg" << static_cast<int>(c.snn_template.surrogate.kind) << "_"
      << c.snn_template.surrogate.alpha << "_e"
      << static_cast<int>(c.snn_template.encoder);
  return key.str();
}

}  // namespace

std::uint64_t ExplorationConfig::train_fingerprint() const {
  return util::hash_label(train_key(*this));
}

std::uint64_t ExplorationConfig::fingerprint() const {
  std::ostringstream key;
  key << train_key(*this) << "_vg";
  for (const double v : v_th_grid) key << v << ",";
  key << "_tg";
  for (const auto t : t_grid) key << t << ",";
  key << "_eg";
  for (const double e : eps_grid) key << e << ",";
  key << "_ath" << accuracy_threshold << "_pgd" << pgd.steps << "_"
      << pgd.rel_stepsize << "_" << pgd.abs_stepsize << "_"
      << pgd.random_start << "_" << pgd.seed << "_cap" << attack_test_cap
      << "_eb" << eval_batch << "_dt" << data.test_n;
  return util::hash_label(key.str());
}

void ExplorationConfig::validate() const {
  SNNSEC_CHECK(!v_th_grid.empty() && !t_grid.empty(),
               "ExplorationConfig: empty structural grid");
  for (const double v : v_th_grid)
    SNNSEC_CHECK(v > 0.0, "ExplorationConfig: non-positive v_th " << v);
  for (const auto t : t_grid)
    SNNSEC_CHECK(t > 0, "ExplorationConfig: non-positive T " << t);
  for (const double e : eps_grid)
    SNNSEC_CHECK(e >= 0.0, "ExplorationConfig: negative epsilon " << e);
  SNNSEC_CHECK(accuracy_threshold >= 0.0 && accuracy_threshold <= 1.0,
               "ExplorationConfig: A_th outside [0, 1]");
  SNNSEC_CHECK(eval_batch > 0, "ExplorationConfig: bad eval_batch");
  SNNSEC_CHECK(cell_timeout_seconds >= 0.0,
               "ExplorationConfig: negative cell_timeout_seconds");
  retry.validate();
  arch.validate();
}

std::string ExplorationConfig::summary() const {
  std::ostringstream oss;
  oss << "grid " << v_th_grid.size() << " V_th x " << t_grid.size()
      << " T cells, " << eps_grid.size() << " eps budgets, A_th="
      << accuracy_threshold << ", " << arch.image_size << "x"
      << arch.image_size << " images, train_n=" << data.train_n
      << ", test_n=" << data.test_n << ", epochs=" << train.epochs
      << ", pgd_steps=" << pgd.steps;
  return oss.str();
}

ExplorationConfig paper_profile() {
  ExplorationConfig cfg;
  for (int i = 1; i <= 10; ++i) cfg.v_th_grid.push_back(0.25 * i);
  for (int j = 1; j <= 12; ++j) cfg.t_grid.push_back(8 * j);
  cfg.eps_grid = {0.1, 0.5, 1.0, 1.5};
  cfg.accuracy_threshold = 0.70;

  cfg.arch = nn::LenetSpec{};  // 28x28, full LeNet channel counts
  cfg.snn_template = snn::SnnConfig{};
  cfg.train.epochs = 5;
  cfg.train.batch_size = 32;
  cfg.train.lr = 1e-3;
  cfg.data.train_n = 60000;
  cfg.data.test_n = 10000;
  cfg.data.image_size = 28;
  cfg.pgd.steps = 40;
  cfg.attack_test_cap = 1000;
  return cfg;
}

ExplorationConfig quick_profile() {
  ExplorationConfig cfg;
  cfg.v_th_grid = {0.5, 1.0, 1.5, 2.0, 2.5};
  cfg.t_grid = {8, 16, 24, 32};
  // Calibrated ε axis: on 16x16 synthetic digits the informative L∞ range
  // is ~10x smaller than on 28x28 MNIST, so quick ε ≈ paper ε / 10
  // (0.05 -> 0.5 crossover region, 0.1 -> 1.0, 0.15 -> 1.5). The full
  // profile keeps the paper's axis. See EXPERIMENTS.md.
  cfg.eps_grid = {0.025, 0.05, 0.1, 0.15};
  cfg.accuracy_threshold = 0.70;

  cfg.arch = nn::LenetSpec{}.scaled(0.5);
  cfg.arch.image_size = 16;
  cfg.snn_template = snn::SnnConfig{};
  cfg.train.epochs = 5;
  cfg.train.batch_size = 32;
  cfg.train.lr = 4e-3;
  cfg.data.train_n = 1000;
  cfg.data.test_n = 200;
  cfg.data.image_size = 16;
  cfg.pgd.steps = 10;
  cfg.pgd.rel_stepsize = 0.1;  // 10 steps x 0.1ε spans the full ball
  cfg.attack_test_cap = 60;
  cfg.eval_batch = 32;
  return cfg;
}

ExplorationConfig default_profile() {
  return util::full_profile_enabled() ? paper_profile() : quick_profile();
}

}  // namespace snnsec::core
