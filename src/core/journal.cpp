#include "core/journal.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fs_atomic.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace snnsec::core {

namespace {

constexpr int kJournalVersion = 1;

// ---------------------------------------------------------------------------
// JSON emission. %.17g round-trips every double exactly, which is what lets
// a resumed run's CSV diff clean against the uninterrupted run's.

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string run_header(std::uint64_t config_hash) {
  std::string line = "{\"type\":\"run\",\"version\":";
  line += std::to_string(kJournalVersion);
  line += ",\"config_hash\":\"" + hex16(config_hash) + "\"}";
  return line;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough for journal lines.
// Malformed input yields nullopt, never a throw: a truncated tail after a
// crash is an expected condition, not an error.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool eat_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // The writer only emits \u00XX; anything wider degrades to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) return false;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_value(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (++depth_ > 32) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    bool ok = false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (eat('}')) { ok = true; break; }
        while (true) {
          std::string key;
          JsonValue val;
          if (!parse_string(key) || !eat(':') || !parse_value(val)) break;
          out.members.emplace_back(std::move(key), std::move(val));
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
        break;
      }
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (eat(']')) { ok = true; break; }
        while (true) {
          JsonValue val;
          if (!parse_value(val)) break;
          out.items.push_back(std::move(val));
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
        break;
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = parse_string(out.str);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = eat_literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = eat_literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = eat_literal("null");
        break;
      default:
        ok = parse_number(out);
    }
    --depth_;
    return ok;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool get_number(const JsonValue& obj, std::string_view key, double& out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::kNumber) return false;
  out = v->number;
  return true;
}

bool get_string(const JsonValue& obj, std::string_view key,
                std::string& out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::kString) return false;
  out = v->str;
  return true;
}

bool get_bool(const JsonValue& obj, std::string_view key, bool& out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::kBool) return false;
  out = v->boolean;
  return true;
}

/// Header check: matching run line for this (version, config_hash)?
bool header_matches(const std::string& line, std::uint64_t config_hash) {
  auto parsed = JsonParser(line).parse();
  if (!parsed || parsed->kind != JsonValue::Kind::kObject) return false;
  std::string type, hash;
  double version = 0.0;
  return get_string(*parsed, "type", type) && type == "run" &&
         get_number(*parsed, "version", version) &&
         static_cast<int>(version) == kJournalVersion &&
         get_string(*parsed, "config_hash", hash) &&
         hash == hex16(config_hash);
}

}  // namespace

std::string RunJournal::encode_cell(const CellResult& cell) {
  std::string line = "{\"type\":\"cell\"";
  line += ",\"v_th\":" + json_number(cell.v_th);
  line += ",\"T\":" + std::to_string(cell.time_steps);
  line += ",\"clean_accuracy\":" + json_number(cell.clean_accuracy);
  line += std::string(",\"learnable\":") + (cell.learnable ? "true" : "false");
  line += std::string(",\"status\":\"") + to_string(cell.status) + "\"";
  line += ",\"attempts\":" + std::to_string(cell.attempts);
  line += ",\"error\":\"" + json_escape(cell.error) + "\"";
  line += ",\"train_seconds\":" + json_number(cell.train_seconds);
  line += ",\"spike_rates\":[";
  for (std::size_t i = 0; i < cell.spike_rates.size(); ++i) {
    if (i) line += ',';
    line += json_number(cell.spike_rates[i]);
  }
  line += "],\"robustness\":[";
  bool first = true;
  for (const auto& [eps, pt] : cell.robustness) {
    if (!first) line += ',';
    first = false;
    line += "{\"eps\":" + json_number(eps);
    line += ",\"robustness\":" + json_number(pt.robustness);
    line += ",\"attack_success_rate\":" + json_number(pt.attack_success_rate);
    line += ",\"mean_linf\":" + json_number(pt.mean_linf);
    line += ",\"mean_loss\":" + json_number(pt.mean_loss) + "}";
  }
  line += "]}";
  return line;
}

std::optional<CellResult> RunJournal::decode_cell(const std::string& line) {
  auto parsed = JsonParser(line).parse();
  if (!parsed || parsed->kind != JsonValue::Kind::kObject) return std::nullopt;
  std::string type;
  if (!get_string(*parsed, "type", type) || type != "cell")
    return std::nullopt;

  CellResult cell;
  double t = 0.0, attempts = 0.0;
  std::string status;
  if (!get_number(*parsed, "v_th", cell.v_th) ||
      !get_number(*parsed, "T", t) ||
      !get_number(*parsed, "clean_accuracy", cell.clean_accuracy) ||
      !get_bool(*parsed, "learnable", cell.learnable) ||
      !get_string(*parsed, "status", status) ||
      !get_number(*parsed, "attempts", attempts) ||
      !get_string(*parsed, "error", cell.error) ||
      !get_number(*parsed, "train_seconds", cell.train_seconds))
    return std::nullopt;
  cell.time_steps = static_cast<std::int64_t>(t);
  cell.attempts = static_cast<int>(attempts);
  const auto parsed_status = cell_status_from_string(status);
  if (!parsed_status) return std::nullopt;
  cell.status = *parsed_status;

  const JsonValue* rates = parsed->find("spike_rates");
  if (!rates || rates->kind != JsonValue::Kind::kArray) return std::nullopt;
  for (const auto& r : rates->items) {
    if (r.kind != JsonValue::Kind::kNumber) return std::nullopt;
    cell.spike_rates.push_back(r.number);
  }

  const JsonValue* rob = parsed->find("robustness");
  if (!rob || rob->kind != JsonValue::Kind::kArray) return std::nullopt;
  for (const auto& p : rob->items) {
    if (p.kind != JsonValue::Kind::kObject) return std::nullopt;
    double eps = 0.0;
    attack::RobustnessPoint pt;
    if (!get_number(p, "eps", eps) ||
        !get_number(p, "robustness", pt.robustness) ||
        !get_number(p, "attack_success_rate", pt.attack_success_rate) ||
        !get_number(p, "mean_linf", pt.mean_linf) ||
        !get_number(p, "mean_loss", pt.mean_loss))
      return std::nullopt;
    pt.epsilon = eps;
    cell.robustness.emplace(eps, pt);
  }
  return cell;
}

RunJournal::RunJournal(std::string path, std::uint64_t config_hash)
    : path_(std::move(path)) {
  if (path_.empty()) return;

  std::size_t dropped = 0;
  {
    std::ifstream is(path_);
    std::string line;
    if (is.is_open() && std::getline(is, line)) {
      if (header_matches(line, config_hash)) {
        while (std::getline(is, line)) {
          if (util::trim(line).empty()) continue;
          if (auto cell = decode_cell(line)) {
            cell->from_journal = true;
            recovered_.push_back(std::move(*cell));
          } else {
            // Truncated tail from a crash mid-append, or bit rot: drop this
            // line and everything after it — later lines may depend on a
            // state we no longer trust.
            ++dropped;
            break;
          }
        }
      } else {
        SNNSEC_LOG_WARN("journal " << path_
                                   << ": header mismatch or corrupt; "
                                      "starting fresh (previous run used a "
                                      "different configuration?)");
        SNNSEC_COUNTER_ADD("journal.discarded", 1);
      }
    }
  }
  if (dropped > 0) {
    SNNSEC_LOG_WARN("journal " << path_ << ": dropped corrupt tail after "
                               << recovered_.size() << " intact cells");
    SNNSEC_COUNTER_ADD("journal.lines.dropped",
                       static_cast<std::int64_t>(dropped));
  }
  if (!recovered_.empty())
    SNNSEC_COUNTER_ADD("journal.cells.recovered",
                       static_cast<std::int64_t>(recovered_.size()));

  // Rewrite with exactly the trusted lines so appends always start from a
  // clean, newline-terminated tail (a crash mid-append may have left a
  // partial line that a naive append would corrupt further).
  util::atomic_write_file(path_, [&](std::ostream& os) {
    os << run_header(config_hash) << '\n';
    for (const auto& cell : recovered_) os << encode_cell(cell) << '\n';
  });

  out_.open(path_, std::ios::app);
  SNNSEC_CHECK(out_.is_open(), "RunJournal: cannot open " << path_
                                                          << " for append");
}

void RunJournal::append(const CellResult& cell) {
  if (!out_.is_open()) return;
  out_ << encode_cell(cell) << '\n';
  out_.flush();
  SNNSEC_CHECK(out_.good(), "RunJournal: append to " << path_ << " failed");
  util::fsync_path(path_);
}

}  // namespace snnsec::core
