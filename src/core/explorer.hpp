// RobustnessExplorer: the paper's Algorithm 1.
//
//   for each V_th in the threshold grid:
//     for each T in the time-window grid:
//       train SNN(V_th, T)
//       if clean accuracy >= A_th:              (learnability filter)
//         for each noise budget ε:
//           Robustness(ε) = 1 − fooled/|D|      (white-box PGD)
//
// Models are trained once per cell and optionally checkpointed to a cache
// directory so the three heatmap figures (6, 7, 8) share one training pass.
#pragma once

#include <functional>
#include <memory>

#include "core/experiment_config.hpp"
#include "core/report.hpp"
#include "data/provider.hpp"
#include "snn/spiking_network.hpp"

namespace snnsec::core {

class RobustnessExplorer {
 public:
  /// `cache_dir` (optional): directory for per-cell weight checkpoints.
  RobustnessExplorer(ExplorationConfig config, std::string cache_dir = "");

  /// Run the full grid on the given data. `on_cell` (optional) observes
  /// each finished cell (progress reporting).
  ExplorationReport explore(
      const data::DataBundle& data,
      const std::function<void(const CellResult&)>& on_cell = nullptr);

  /// Train (or load from cache) the SNN for one grid cell and return it
  /// together with its clean accuracy. Exposed for the curve benches
  /// (Fig. 9) that track individual (V_th, T) combinations.
  struct TrainedCell {
    std::unique_ptr<snn::SpikingClassifier> model;
    double clean_accuracy = 0.0;
    double train_seconds = 0.0;
    bool from_cache = false;
  };
  TrainedCell train_cell(double v_th, std::int64_t time_steps,
                         const data::DataBundle& data);

  const ExplorationConfig& config() const { return config_; }

 private:
  std::string cell_cache_path(double v_th, std::int64_t time_steps) const;

  ExplorationConfig config_;
  std::string cache_dir_;
};

}  // namespace snnsec::core
