// RobustnessExplorer: the paper's Algorithm 1.
//
//   for each V_th in the threshold grid:
//     for each T in the time-window grid:
//       train SNN(V_th, T)
//       if clean accuracy >= A_th:              (learnability filter)
//         for each noise budget ε:
//           Robustness(ε) = 1 − fooled/|D|      (white-box PGD)
//
// Models are trained once per cell and optionally checkpointed to a cache
// directory so the three heatmap figures (6, 7, 8) share one training pass.
//
// Fault tolerance: every cell is trained under the config's RetryPolicy —
// a diverged attempt (NaN/Inf or exploding loss, see nn::Trainer) is
// retrained with a re-seeded init after an exponential backoff; exhausted
// cells are marked failed_diverged and the grid continues. When a cache
// directory is set, explore() also keeps a crash-safe JSONL journal
// (core/journal.hpp): a killed sweep re-run with the same config replays
// the journaled cells instead of retraining them.
#pragma once

#include <functional>
#include <memory>

#include "core/experiment_config.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "data/provider.hpp"
#include "snn/spiking_network.hpp"

namespace snnsec::core {

class RobustnessExplorer {
 public:
  /// `cache_dir` (optional): directory for per-cell weight checkpoints and
  /// the resume journal. `journal_path` (optional) overrides the journal
  /// location (default: `<cache_dir>/run_<fingerprint>.journal.jsonl`; no
  /// journaling when both are empty).
  RobustnessExplorer(ExplorationConfig config, std::string cache_dir = "",
                     std::string journal_path = "");

  /// Run the full grid on the given data. `on_cell` (optional) observes
  /// each finished cell (progress reporting) — including cells replayed
  /// from the resume journal, and only after the cell has been journaled,
  /// so a crash inside on_cell never loses the cell.
  ExplorationReport explore(
      const data::DataBundle& data,
      const std::function<void(const CellResult&)>& on_cell = nullptr);

  /// Train (or load from cache) the SNN for one grid cell and return it
  /// together with its clean accuracy. Exposed for the curve benches
  /// (Fig. 9) that track individual (V_th, T) combinations. `model` is
  /// null when the cell failed (status != kOk).
  struct TrainedCell {
    std::unique_ptr<snn::SpikingClassifier> model;
    double clean_accuracy = 0.0;
    double train_seconds = 0.0;
    bool from_cache = false;
    int attempts = 1;
    CellStatus status = CellStatus::kOk;
    std::string error;
  };
  TrainedCell train_cell(double v_th, std::int64_t time_steps,
                         const data::DataBundle& data);

  /// Fault-injection hook for tests and resilience demos: invoked after
  /// model construction, before each training attempt, with
  /// (v_th, T, attempt, model). A hook that poisons a weight with NaN on
  /// attempt 0 exercises the full sentinel → retry path.
  using TrainFaultHook = std::function<void(
      double, std::int64_t, int, snn::SpikingClassifier&)>;
  void set_train_fault_hook(TrainFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  const ExplorationConfig& config() const { return config_; }

  /// Resume-journal path explore() will use ("" = journaling disabled).
  std::string journal_path() const;

 private:
  std::string cell_cache_path(double v_th, std::int64_t time_steps) const;
  /// Config hash stored in (and demanded of) one cell's checkpoint file.
  std::uint64_t cell_checkpoint_hash(double v_th,
                                     std::int64_t time_steps) const;

  ExplorationConfig config_;
  std::string cache_dir_;
  std::string journal_path_;
  TrainFaultHook fault_hook_;
};

}  // namespace snnsec::core
