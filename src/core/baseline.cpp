#include "core/baseline.hpp"

#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::core {

TrainedBaseline train_cnn_baseline(const ExplorationConfig& config,
                                   const data::DataBundle& data) {
  SNNSEC_TRACE_SCOPE("baseline.train_cnn");
  TrainedBaseline out;
  util::Rng rng(config.seed);
  util::Rng init_rng = rng.fork("cnn-init");
  out.model = nn::build_paper_cnn(config.arch, init_rng);

  util::Stopwatch watch;
  nn::Trainer trainer(config.train);
  trainer.fit(*out.model, data.train.images, data.train.labels);
  out.train_seconds = watch.seconds();
  out.clean_accuracy = nn::accuracy(*out.model, data.test.images,
                                    data.test.labels, config.eval_batch);
  if (obs::Registry::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    reg.record("baseline.clean_accuracy", out.clean_accuracy);
    reg.record("baseline.train_seconds", out.train_seconds);
  }
  return out;
}

}  // namespace snnsec::core
