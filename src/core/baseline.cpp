#include "core/baseline.hpp"

#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::core {

TrainedBaseline train_cnn_baseline(const ExplorationConfig& config,
                                   const data::DataBundle& data) {
  TrainedBaseline out;
  util::Rng rng(config.seed);
  util::Rng init_rng = rng.fork("cnn-init");
  out.model = nn::build_paper_cnn(config.arch, init_rng);

  util::Stopwatch watch;
  nn::Trainer trainer(config.train);
  trainer.fit(*out.model, data.train.images, data.train.labels);
  out.train_seconds = watch.seconds();
  out.clean_accuracy = nn::accuracy(*out.model, data.test.images,
                                    data.test.labels, config.eval_batch);
  return out;
}

}  // namespace snnsec::core
