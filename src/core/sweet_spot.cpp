#include "core/sweet_spot.hpp"

#include <algorithm>

namespace snnsec::core {

std::vector<RankedCell> SweetSpotFinder::rank(
    const ExplorationReport& report) const {
  std::vector<RankedCell> out;
  for (const auto& cell : report.cells) {
    if (!cell.learnable || cell.clean_accuracy < min_clean_accuracy_)
      continue;
    const auto r = cell.robustness_at(epsilon_);
    if (!r) continue;
    out.push_back({&cell, *r});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedCell& a, const RankedCell& b) {
                     return a.score > b.score;
                   });
  return out;
}

const CellResult* SweetSpotFinder::best(
    const ExplorationReport& report) const {
  const auto ranked = rank(report);
  return ranked.empty() ? nullptr : ranked.front().cell;
}

std::vector<RankedCell> SweetSpotFinder::fragile_high_accuracy_cells(
    const ExplorationReport& report, double fragility_threshold) const {
  std::vector<RankedCell> out;
  for (const auto& ranked : rank(report)) {
    if (ranked.score < fragility_threshold) out.push_back(ranked);
  }
  // rank() returns best-first; fragile list reads worst-first.
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace snnsec::core
