#include "core/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "snn/model_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

namespace snnsec::core {

using tensor::Tensor;

RobustnessExplorer::RobustnessExplorer(ExplorationConfig config,
                                       std::string cache_dir,
                                       std::string journal_path)
    : config_(std::move(config)),
      cache_dir_(std::move(cache_dir)),
      journal_path_(std::move(journal_path)) {
  config_.validate();
}

std::string RobustnessExplorer::cell_cache_path(
    double v_th, std::int64_t time_steps) const {
  if (cache_dir_.empty()) return {};
  // Fingerprint everything that determines the trained weights so stale
  // checkpoints are never reused across config changes.
  const std::uint64_t h = config_.train_fingerprint();
  char name[128];
  std::snprintf(name, sizeof(name), "cell_v%.4f_t%lld_%016llx.snnt", v_th,
                static_cast<long long>(time_steps),
                static_cast<unsigned long long>(h));
  return (std::filesystem::path(cache_dir_) / name).string();
}

std::uint64_t RobustnessExplorer::cell_checkpoint_hash(
    double v_th, std::int64_t time_steps) const {
  // The filename already encodes (v_th, T, train fingerprint); hashing them
  // again into the checkpoint header catches renamed/copied files.
  char key[128];
  std::snprintf(key, sizeof(key), "cell_v%.4f_t%lld_%016llx", v_th,
                static_cast<long long>(time_steps),
                static_cast<unsigned long long>(config_.train_fingerprint()));
  return util::hash_label(key);
}

std::string RobustnessExplorer::journal_path() const {
  if (!journal_path_.empty()) return journal_path_;
  if (cache_dir_.empty()) return {};
  char name[64];
  std::snprintf(name, sizeof(name), "run_%016llx.journal.jsonl",
                static_cast<unsigned long long>(config_.fingerprint()));
  return (std::filesystem::path(cache_dir_) / name).string();
}

RobustnessExplorer::TrainedCell RobustnessExplorer::train_cell(
    double v_th, std::int64_t time_steps, const data::DataBundle& data) {
  SNNSEC_TRACE_SCOPE("explorer.train_cell");
  TrainedCell out;
  snn::SnnConfig snn_cfg = config_.snn_template;
  snn_cfg.v_th = v_th;
  snn_cfg.time_steps = time_steps;

  const std::string cache_path = cell_cache_path(v_th, time_steps);
  const std::uint64_t ckpt_hash = cell_checkpoint_hash(v_th, time_steps);

  // Validated cache load: a truncated, bit-flipped or stale checkpoint is
  // rejected (with a warning) and the cell retrains instead.
  if (!cache_path.empty()) {
    if (auto payload = snn::try_load_checkpoint(cache_path, ckpt_hash)) {
      util::Rng rng(config_.seed);
      util::Rng init_rng = rng.fork("snn-init");
      auto model = snn::build_spiking_lenet(config_.arch, snn_cfg, init_rng);
      auto params = model->parameters();
      bool ok = payload->count("meta") == 1 &&
                payload->size() == params.size() + 1;
      for (std::size_t i = 0; ok && i < params.size(); ++i) {
        char pname[32];
        std::snprintf(pname, sizeof(pname), "p%03zu", i);
        const auto it = payload->find(pname);
        if (it == payload->end() ||
            !(it->second.shape() == params[i]->value.shape()))
          ok = false;
        else
          params[i]->value = it->second;
      }
      if (ok) {
        const Tensor& meta = payload->at("meta");
        out.model = std::move(model);
        out.clean_accuracy = meta[0];
        out.train_seconds = meta[1];
        out.from_cache = true;
        return out;
      }
      SNNSEC_LOG_WARN("cell checkpoint " << cache_path
                                         << ": parameter set does not match "
                                            "the architecture; retraining");
      SNNSEC_COUNTER_ADD("checkpoint.rejected", 1);
    }
    // A present-but-rejected file would be overwritten on success anyway;
    // remove it eagerly so a failed cell doesn't leave bad bytes behind.
    std::error_code ec;
    std::filesystem::remove(cache_path, ec);
  }

  const int max_attempts = std::max(1, config_.retry.max_attempts);
  util::Stopwatch cell_watch;  // spans all attempts: the cell's budget
  for (int attempt = 0;; ++attempt) {
    out.attempts = attempt + 1;
    // Attempt 0 reproduces the historical init stream bit-for-bit; retries
    // fork a fresh sub-stream so a divergence-prone init is not replayed.
    util::Rng rng(config_.seed);
    util::Rng init_rng = rng.fork("snn-init");
    if (attempt > 0)
      init_rng = init_rng.fork(static_cast<std::uint64_t>(attempt));
    out.model = snn::build_spiking_lenet(config_.arch, snn_cfg, init_rng);
    if (fault_hook_) fault_hook_(v_th, time_steps, attempt, *out.model);

    nn::TrainConfig tc = config_.train;
    if (config_.cell_timeout_seconds > 0.0) {
      const double remaining =
          config_.cell_timeout_seconds - cell_watch.seconds();
      if (remaining <= 0.0) {
        out.status = CellStatus::kFailedTimeout;
        out.error = "cell budget exhausted before attempt " +
                    std::to_string(attempt);
        out.model.reset();
        SNNSEC_COUNTER_ADD("explorer.cell.failed", 1);
        return out;
      }
      tc.max_seconds = tc.max_seconds > 0.0
                           ? std::min(tc.max_seconds, remaining)
                           : remaining;
    }

    util::Stopwatch watch;
    try {
      nn::Trainer trainer(tc);
      trainer.fit(*out.model, data.train.images, data.train.labels);
      out.train_seconds = watch.seconds();
      break;
    } catch (const util::TimeoutError& e) {
      // Not retried: a re-run would burn the same wall-clock again.
      out.status = CellStatus::kFailedTimeout;
      out.error = e.what();
      out.model.reset();
      SNNSEC_COUNTER_ADD("explorer.cell.failed", 1);
      SNNSEC_LOG_WARN("cell (v_th=" << v_th << ", T=" << time_steps
                                    << ") timed out: " << e.what());
      return out;
    } catch (const util::DivergenceError& e) {
      out.error = e.what();
      SNNSEC_COUNTER_ADD("explorer.cell.retry", 1);
      if (attempt + 1 >= max_attempts) {
        out.status = CellStatus::kFailedDiverged;
        out.model.reset();
        SNNSEC_COUNTER_ADD("explorer.cell.failed", 1);
        SNNSEC_LOG_WARN("cell (v_th=" << v_th << ", T=" << time_steps
                                      << ") diverged on all " << max_attempts
                                      << " attempts; marked failed: "
                                      << e.what());
        return out;
      }
      SNNSEC_LOG_WARN("cell (v_th=" << v_th << ", T=" << time_steps
                                    << ") attempt " << attempt + 1
                                    << " diverged (" << e.what()
                                    << "); retrying with re-seeded init");
      util::sleep_for_ms(config_.retry.delay_ms(attempt + 1));
    }
  }
  out.error.clear();  // a retried-then-successful cell carries no error
  out.clean_accuracy = nn::accuracy(*out.model, data.test.images,
                                    data.test.labels, config_.eval_batch);

  if (!cache_path.empty()) {
    std::map<std::string, Tensor> archive;
    auto params = out.model->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      char pname[32];
      std::snprintf(pname, sizeof(pname), "p%03zu", i);
      archive.emplace(pname, params[i]->value);
    }
    Tensor meta(tensor::Shape{2});
    meta[0] = static_cast<float>(out.clean_accuracy);
    meta[1] = static_cast<float>(out.train_seconds);
    archive.emplace("meta", std::move(meta));
    snn::save_checkpoint(cache_path, archive, ckpt_hash);
  }
  return out;
}

ExplorationReport RobustnessExplorer::explore(
    const data::DataBundle& data,
    const std::function<void(const CellResult&)>& on_cell) {
  ExplorationReport report;
  report.v_th_grid = config_.v_th_grid;
  report.t_grid = config_.t_grid;
  report.eps_grid = config_.eps_grid;
  report.accuracy_threshold = config_.accuracy_threshold;

  // Crash-safe resume: completed cells of an interrupted run under the
  // exact same config are replayed from the journal instead of re-run.
  RunJournal journal(journal_path(), config_.fingerprint());
  const auto journaled = [&](double v, std::int64_t t) -> const CellResult* {
    for (const auto& c : journal.recovered())
      if (c.time_steps == t && std::fabs(c.v_th - v) < 1e-9) return &c;
    return nullptr;
  };

  // Attack evaluation set (optionally capped: PGD is ~steps x inference).
  data::Dataset attack_set = data.test;
  if (config_.attack_test_cap > 0 &&
      attack_set.size() > config_.attack_test_cap)
    attack_set = attack_set.take(config_.attack_test_cap);

  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = config_.eval_batch;

  const std::size_t total = config_.v_th_grid.size() * config_.t_grid.size();
  std::size_t done = 0;
  // One watch for the whole grid; lap() yields the per-cell time without
  // re-constructing a stopwatch in every iteration.
  util::Stopwatch watch;
  SNNSEC_TRACE_SCOPE("explorer.grid");
  for (const double v_th : config_.v_th_grid) {
    for (const std::int64_t t : config_.t_grid) {
      SNNSEC_TRACE_SCOPE("explorer.cell");
      ++done;

      if (const CellResult* prev = journaled(v_th, t)) {
        CellResult cell = *prev;
        ++report.resumed_cells;
        SNNSEC_COUNTER_ADD("explorer.cells.resumed", 1);
        watch.lap();
        SNNSEC_LOG_INFO("cell " << done << "/" << total << " (v_th=" << v_th
                                << ", T=" << t
                                << ") resumed from journal: acc="
                                << cell.clean_accuracy << " ["
                                << to_string(cell.status) << "]");
        if (on_cell) on_cell(cell);
        report.cells.push_back(std::move(cell));
        continue;
      }

      TrainedCell trained = train_cell(v_th, t, data);

      CellResult cell;
      cell.v_th = v_th;
      cell.time_steps = t;
      cell.clean_accuracy = trained.clean_accuracy;
      cell.train_seconds = trained.train_seconds;
      cell.status = trained.status;
      cell.attempts = trained.attempts;
      cell.from_cache = trained.from_cache;
      cell.error = trained.error;

      if (cell.status == CellStatus::kOk) {
        cell.learnable =
            trained.clean_accuracy >= config_.accuracy_threshold;
        if (!cell.learnable) cell.status = CellStatus::kSkippedLearnability;
      }

      if (cell.learnable) {
        // Security study (Algorithm 1 lines 5-15): fresh PGD per budget.
        try {
          for (const double eps : config_.eps_grid) {
            attack::Pgd pgd(config_.pgd);
            cell.robustness.emplace(
                eps,
                attack::evaluate_attack(*trained.model, pgd,
                                        attack_set.images, attack_set.labels,
                                        eps, eval_cfg));
          }
        } catch (const util::DivergenceError& e) {
          // Attack-side divergence is not retried (PGD is deterministic
          // given its seed): the cell is marked failed and the grid moves
          // on with whatever budgets completed dropped.
          cell.status = CellStatus::kFailedDiverged;
          cell.error = e.what();
          cell.learnable = false;
          cell.robustness.clear();
          SNNSEC_COUNTER_ADD("explorer.cell.failed", 1);
          SNNSEC_LOG_WARN("cell (v_th=" << v_th << ", T=" << t
                                        << ") attack evaluation diverged: "
                                        << e.what());
        }
      }

      if (!cell.failed() && trained.model) {
        cell.spike_rates = trained.model->spike_rates();

        // Probe spike activity on a held-out batch so every grid cell ships
        // the statistics (firing rate, silent neurons, membrane histogram)
        // that explain its learnability/robustness numbers.
        if (obs::Registry::enabled()) {
          const std::int64_t probe_n =
              std::min<std::int64_t>(attack_set.size(), config_.eval_batch);
          cell.activity = trained.model->collect_activity(
              nn::slice_batch(attack_set.images, 0, probe_n));
          const obs::Labels cell_labels{
              {"v_th", util::format_float(v_th, 4)},
              {"T", std::to_string(t)}};
          obs::record_activity(cell.activity, cell_labels);
          obs::Registry& reg = obs::Registry::instance();
          reg.record("explorer.cell.clean_accuracy", cell.clean_accuracy,
                     cell_labels);
          reg.record("explorer.cell.train_seconds", cell.train_seconds,
                     cell_labels);
          for (const auto& [eps, pt] : cell.robustness)
            reg.record("explorer.cell.robustness", pt.robustness,
                       {{"v_th", util::format_float(v_th, 4)},
                        {"T", std::to_string(t)},
                        {"eps", util::format_float(eps, 4)}});
          SNNSEC_COUNTER_ADD("explorer.cells", 1);
        }
      }

      const double cell_seconds = watch.lap();
      SNNSEC_LOG_INFO("cell " << done << "/" << total << " (v_th=" << v_th
                              << ", T=" << t << "): acc="
                              << cell.clean_accuracy
                              << (cell.failed()
                                      ? std::string(" [") +
                                            to_string(cell.status) + "]"
                                      : std::string(
                                            cell.learnable ? "" : " [skipped]"))
                              << " in "
                              << util::format_duration(cell_seconds)
                              << (trained.from_cache ? " (cached)" : "")
                              << (cell.attempts > 1
                                      ? " (attempts=" +
                                            std::to_string(cell.attempts) + ")"
                                      : ""));
      // Journal before notifying: a crash inside on_cell (or right after)
      // must find this cell durable on resume.
      journal.append(cell);
      if (on_cell) on_cell(cell);
      report.cells.push_back(std::move(cell));
    }
  }
  SNNSEC_LOG_INFO("explored " << total << " cells in " << watch.pretty()
                              << (report.resumed_cells
                                      ? " (" +
                                            std::to_string(
                                                report.resumed_cells) +
                                            " resumed from journal)"
                                      : "")
                              << (report.failed_count()
                                      ? " (" +
                                            std::to_string(
                                                report.failed_count()) +
                                            " failed)"
                                      : ""));
  return report;
}

}  // namespace snnsec::core
