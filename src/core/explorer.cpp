#include "core/explorer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "tensor/serialize.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

namespace snnsec::core {

using tensor::Tensor;

RobustnessExplorer::RobustnessExplorer(ExplorationConfig config,
                                       std::string cache_dir)
    : config_(std::move(config)), cache_dir_(std::move(cache_dir)) {
  config_.validate();
}

std::string RobustnessExplorer::cell_cache_path(
    double v_th, std::int64_t time_steps) const {
  if (cache_dir_.empty()) return {};
  // Fingerprint everything that determines the trained weights so stale
  // checkpoints are never reused across config changes.
  std::ostringstream key;
  key << "a" << config_.arch.image_size << "_" << config_.arch.conv1_channels
      << "_" << config_.arch.conv2_channels << "_"
      << config_.arch.conv3_channels << "_" << config_.arch.fc_hidden << "_t"
      << config_.train.epochs << "_" << config_.train.batch_size << "_"
      << config_.train.lr << "_d" << config_.data.train_n << "_"
      << config_.data.image_size << "_" << config_.data.seed << "_s"
      << config_.seed << "_sg" << static_cast<int>(config_.snn_template.surrogate.kind)
      << "_" << config_.snn_template.surrogate.alpha << "_e"
      << static_cast<int>(config_.snn_template.encoder);
  std::uint64_t h = util::hash_label(key.str());
  char name[128];
  std::snprintf(name, sizeof(name), "cell_v%.4f_t%lld_%016llx.snnt", v_th,
                static_cast<long long>(time_steps),
                static_cast<unsigned long long>(h));
  return (std::filesystem::path(cache_dir_) / name).string();
}

RobustnessExplorer::TrainedCell RobustnessExplorer::train_cell(
    double v_th, std::int64_t time_steps, const data::DataBundle& data) {
  SNNSEC_TRACE_SCOPE("explorer.train_cell");
  TrainedCell out;
  snn::SnnConfig snn_cfg = config_.snn_template;
  snn_cfg.v_th = v_th;
  snn_cfg.time_steps = time_steps;

  util::Rng rng(config_.seed);
  util::Rng init_rng = rng.fork("snn-init");
  out.model = snn::build_spiking_lenet(config_.arch, snn_cfg, init_rng);

  const std::string cache_path = cell_cache_path(v_th, time_steps);
  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    std::ifstream is(cache_path, std::ios::binary);
    auto archive = tensor::load_archive(is);
    auto params = out.model->parameters();
    SNNSEC_CHECK(archive.count("meta") == 1 &&
                     archive.size() == params.size() + 1,
                 "corrupt cell checkpoint " << cache_path);
    for (std::size_t i = 0; i < params.size(); ++i) {
      char pname[16];
      std::snprintf(pname, sizeof(pname), "p%03zu", i);
      const auto it = archive.find(pname);
      SNNSEC_CHECK(it != archive.end() &&
                       it->second.shape() == params[i]->value.shape(),
                   "checkpoint parameter mismatch in " << cache_path);
      params[i]->value = it->second;
    }
    const Tensor& meta = archive.at("meta");
    out.clean_accuracy = meta[0];
    out.train_seconds = meta[1];
    out.from_cache = true;
    return out;
  }

  util::Stopwatch watch;
  nn::Trainer trainer(config_.train);
  trainer.fit(*out.model, data.train.images, data.train.labels);
  out.train_seconds = watch.seconds();
  out.clean_accuracy = nn::accuracy(*out.model, data.test.images,
                                    data.test.labels, config_.eval_batch);

  if (!cache_path.empty()) {
    std::map<std::string, Tensor> archive;
    auto params = out.model->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      char pname[16];
      std::snprintf(pname, sizeof(pname), "p%03zu", i);
      archive.emplace(pname, params[i]->value);
    }
    Tensor meta(tensor::Shape{2});
    meta[0] = static_cast<float>(out.clean_accuracy);
    meta[1] = static_cast<float>(out.train_seconds);
    archive.emplace("meta", std::move(meta));
    tensor::save_archive_file(cache_path, archive);
  }
  return out;
}

ExplorationReport RobustnessExplorer::explore(
    const data::DataBundle& data,
    const std::function<void(const CellResult&)>& on_cell) {
  ExplorationReport report;
  report.v_th_grid = config_.v_th_grid;
  report.t_grid = config_.t_grid;
  report.eps_grid = config_.eps_grid;
  report.accuracy_threshold = config_.accuracy_threshold;

  // Attack evaluation set (optionally capped: PGD is ~steps x inference).
  data::Dataset attack_set = data.test;
  if (config_.attack_test_cap > 0 &&
      attack_set.size() > config_.attack_test_cap)
    attack_set = attack_set.take(config_.attack_test_cap);

  attack::EvalConfig eval_cfg;
  eval_cfg.batch_size = config_.eval_batch;

  const std::size_t total = config_.v_th_grid.size() * config_.t_grid.size();
  std::size_t done = 0;
  // One watch for the whole grid; lap() yields the per-cell time without
  // re-constructing a stopwatch in every iteration.
  util::Stopwatch watch;
  SNNSEC_TRACE_SCOPE("explorer.grid");
  for (const double v_th : config_.v_th_grid) {
    for (const std::int64_t t : config_.t_grid) {
      SNNSEC_TRACE_SCOPE("explorer.cell");
      TrainedCell trained = train_cell(v_th, t, data);

      CellResult cell;
      cell.v_th = v_th;
      cell.time_steps = t;
      cell.clean_accuracy = trained.clean_accuracy;
      cell.learnable = trained.clean_accuracy >= config_.accuracy_threshold;
      cell.train_seconds = trained.train_seconds;

      if (cell.learnable) {
        // Security study (Algorithm 1 lines 5-15): fresh PGD per budget.
        for (const double eps : config_.eps_grid) {
          attack::Pgd pgd(config_.pgd);
          cell.robustness.emplace(
              eps, attack::evaluate_attack(*trained.model, pgd,
                                           attack_set.images,
                                           attack_set.labels, eps, eval_cfg));
        }
      }
      cell.spike_rates = trained.model->spike_rates();

      // Probe spike activity on a held-out batch so every grid cell ships
      // the statistics (firing rate, silent neurons, membrane histogram)
      // that explain its learnability/robustness numbers.
      if (obs::Registry::enabled()) {
        const std::int64_t probe_n =
            std::min<std::int64_t>(attack_set.size(), config_.eval_batch);
        cell.activity = trained.model->collect_activity(
            nn::slice_batch(attack_set.images, 0, probe_n));
        const obs::Labels cell_labels{
            {"v_th", util::format_float(v_th, 4)},
            {"T", std::to_string(t)}};
        obs::record_activity(cell.activity, cell_labels);
        obs::Registry& reg = obs::Registry::instance();
        reg.record("explorer.cell.clean_accuracy", cell.clean_accuracy,
                   cell_labels);
        reg.record("explorer.cell.train_seconds", cell.train_seconds,
                   cell_labels);
        for (const auto& [eps, pt] : cell.robustness)
          reg.record("explorer.cell.robustness", pt.robustness,
                     {{"v_th", util::format_float(v_th, 4)},
                      {"T", std::to_string(t)},
                      {"eps", util::format_float(eps, 4)}});
        SNNSEC_COUNTER_ADD("explorer.cells", 1);
      }

      ++done;
      const double cell_seconds = watch.lap();
      SNNSEC_LOG_INFO("cell " << done << "/" << total << " (v_th=" << v_th
                              << ", T=" << t << "): acc="
                              << cell.clean_accuracy
                              << (cell.learnable ? "" : " [skipped]") << " in "
                              << util::format_duration(cell_seconds)
                              << (trained.from_cache ? " (cached)" : ""));
      if (on_cell) on_cell(cell);
      report.cells.push_back(std::move(cell));
    }
  }
  SNNSEC_LOG_INFO("explored " << total << " cells in " << watch.pretty());
  return report;
}

}  // namespace snnsec::core
