// Crash-safe run journal for the (V_th, T) exploration.
//
// An append-only JSONL file next to the cell cache: a header line
// identifying the run ({"type":"run","version":1,"config_hash":"<hex16>"})
// followed by one {"type":"cell",...} line per finished grid cell, each
// flushed and fsynced before the explorer moves on. A killed sweep is
// resumed by re-opening the same path under the same config fingerprint:
// every journaled cell is replayed into the report without retraining and
// the grid loop continues from the first missing cell.
//
// Only the report-level cell payload is journaled (accuracy, status,
// robustness points, spike rates) — activity probes are recomputed only for
// freshly-run cells, so replayed cells carry empty `activity`.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace snnsec::core {

class RunJournal {
 public:
  /// Inactive journal: recovered() is empty and append() is a no-op.
  RunJournal() = default;

  /// Open `path` for a run identified by `config_hash`. An existing journal
  /// with a matching header has its intact cell lines recovered (truncated
  /// or corrupt tails are dropped with a warning); a mismatched or
  /// unparseable header discards the file — a journal from a different
  /// config must never seed this run. The file is then rewritten atomically
  /// with exactly the recovered lines, so appends always start from a clean
  /// tail even after a crash mid-write.
  RunJournal(std::string path, std::uint64_t config_hash);

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  bool active() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  /// Cells recovered from a previous interrupted run (grid order).
  const std::vector<CellResult>& recovered() const { return recovered_; }

  /// Durably append one finished cell (flush + fsync). No-op when inactive.
  void append(const CellResult& cell);

  /// One-line JSON encoding of a cell (exposed for tests).
  static std::string encode_cell(const CellResult& cell);
  /// Parse one journal cell line; nullopt on malformed input.
  static std::optional<CellResult> decode_cell(const std::string& line);

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<CellResult> recovered_;
};

}  // namespace snnsec::core
