#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace snnsec::core {

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kSkippedLearnability:
      return "skipped_learnability";
    case CellStatus::kFailedDiverged:
      return "failed_diverged";
    case CellStatus::kFailedTimeout:
      return "failed_timeout";
  }
  return "unknown";
}

std::optional<CellStatus> cell_status_from_string(const std::string& name) {
  if (name == "ok") return CellStatus::kOk;
  if (name == "skipped_learnability") return CellStatus::kSkippedLearnability;
  if (name == "failed_diverged") return CellStatus::kFailedDiverged;
  if (name == "failed_timeout") return CellStatus::kFailedTimeout;
  return std::nullopt;
}

std::optional<double> CellResult::robustness_at(double epsilon) const {
  if (failed() || !learnable) return std::nullopt;
  // NOLINTNEXTLINE(snnsec-float-eq): epsilon 0 is the exact clean-accuracy sentinel of the sweep grid
  if (epsilon == 0.0) return clean_accuracy;
  // Tolerant key lookup (grid values are exact doubles from config, but be
  // safe against formatting round-trips).
  for (const auto& [eps, pt] : robustness)
    if (std::fabs(eps - epsilon) < 1e-9) return pt.robustness;
  return std::nullopt;
}

const CellResult* ExplorationReport::find(double v_th, std::int64_t t) const {
  for (const auto& cell : cells)
    if (cell.time_steps == t && std::fabs(cell.v_th - v_th) < 1e-9)
      return &cell;
  return nullptr;
}

std::string ExplorationReport::heatmap(double epsilon) const {
  std::ostringstream oss;
  // NOLINTNEXTLINE(snnsec-float-eq): epsilon 0 is the exact clean-accuracy sentinel of the sweep grid
  if (epsilon == 0.0)
    oss << "clean accuracy [%] over (V_th, T)\n";
  else
    oss << "robustness [%] under PGD eps=" << epsilon << " over (V_th, T)\n";
  // Header: V_th columns.
  oss << "  T \\ V_th |";
  for (const double v : v_th_grid) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), " %5.2f", v);
    oss << buf;
  }
  oss << '\n';
  oss << "  ---------+" << std::string(v_th_grid.size() * 6, '-') << '\n';
  // Rows: highest T at the top, like the paper's figures.
  for (auto it = t_grid.rbegin(); it != t_grid.rend(); ++it) {
    char head[16];
    std::snprintf(head, sizeof(head), "  %6lld   |",
                  static_cast<long long>(*it));
    oss << head;
    for (const double v : v_th_grid) {
      const CellResult* cell = find(v, *it);
      const auto r = cell ? cell->robustness_at(epsilon) : std::nullopt;
      if (!cell) {
        oss << "     ?";
      } else if (cell->failed()) {
        oss << "  FAIL";
      // NOLINTNEXTLINE(snnsec-float-eq): epsilon 0 is the exact clean-accuracy sentinel of the sweep grid
      } else if (epsilon == 0.0) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), " %5.1f", cell->clean_accuracy * 100);
        oss << buf;
      } else if (r) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), " %5.1f", *r * 100);
        oss << buf;
      } else {
        oss << "  ----";  // skipped: failed the learnability filter
      }
    }
    oss << '\n';
  }
  return oss.str();
}

void ExplorationReport::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  std::vector<std::string> header = {"v_th", "T", "clean_accuracy",
                                     "learnable", "status", "attempts"};
  for (const double eps : eps_grid)
    header.push_back("robustness_eps_" + util::format_float(eps, 2));
  csv.write_header(header);
  for (const auto& cell : cells) {
    util::CsvWriter::Row row;
    row << cell.v_th << cell.time_steps << cell.clean_accuracy
        << (cell.learnable ? "1" : "0") << to_string(cell.status)
        << cell.attempts;
    for (const double eps : eps_grid) {
      const auto r = cell.robustness_at(eps);
      row << (r ? util::format_float(*r, 6) : std::string("NA"));
    }
    csv.write(row);
  }
}

void ExplorationReport::write_activity_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_header({"v_th", "T", "status", "layer", "firing_rate",
                    "spike_count", "neuron_steps", "silent_fraction",
                    "saturated_fraction", "v_mean", "v_min", "v_max"});
  for (const auto& cell : cells) {
    for (const auto& a : cell.activity) {
      util::CsvWriter::Row row;
      row << cell.v_th << cell.time_steps << to_string(cell.status) << a.layer
          << a.firing_rate
          << a.spike_count << a.neuron_steps << a.silent_fraction
          << a.saturated_fraction << a.v_mean << a.v_min << a.v_max;
      csv.write(row);
    }
  }
}

std::size_t ExplorationReport::failed_count() const {
  std::size_t n = 0;
  for (const auto& cell : cells)
    if (cell.failed()) ++n;
  return n;
}

double ExplorationReport::learnable_fraction() const {
  if (cells.empty()) return 0.0;
  std::int64_t n = 0;
  for (const auto& cell : cells)
    if (cell.learnable) ++n;
  return static_cast<double>(n) / static_cast<double>(cells.size());
}

}  // namespace snnsec::core
