// SNNSEC_KERNEL_CLONES: function multi-versioning for hot scalar loops.
//
// The baseline x86-64 ABI only guarantees SSE2, which caps vector kernels
// well below what the machines this actually runs on (CI and dev boxes are
// all AVX2+FMA capable) can do. target_clones compiles the annotated
// function twice — generic and x86-64-v3 — and picks at load time, so one
// binary serves both without a -march flag that would break older hosts.
// GCC-only: clang's target_clones doesn't accept arch= strings.
//
// Determinism note: the v3 clone may contract mul+add into FMA, so results
// can differ in the last ulp from the generic clone. The choice is fixed per
// machine at load time, never per call — every kernel annotated with this
// macro is deterministic for a given host, which is the contract the
// batched-vs-single and serial-vs-parallel bit-identity tests rely on.
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define SNNSEC_KERNEL_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define SNNSEC_KERNEL_CLONES
#endif
