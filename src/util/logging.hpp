// Leveled, timestamped logging to stderr.
//
// Level is controlled programmatically or via SNNSEC_LOG
// (trace|debug|info|warn|error|off). Logging is thread-safe at line
// granularity: the level is an atomic (worker threads check enabled()
// while the main thread may call set_level()), and line emission is
// serialized by a mutex. Use the SNNSEC_LOG_* macros so disabled levels
// cost one branch and no formatting.
//
// When SNNSEC_LOG_FILE names a file (or set_log_file() is called), every
// line is additionally appended there — long grid-explorer runs keep a
// persistent log alongside the metric sinks.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace snnsec::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Parse "trace".."off" (case-insensitive); unknown strings leave the
  /// level unchanged and return false.
  bool set_level(const std::string& name);

  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Tee every line to `path` (append); an empty path disables the tee.
  /// Returns false when the file cannot be opened (stderr keeps working).
  bool set_log_file(const std::string& path);

  void write(LogLevel level, const std::string& message);

  ~Logger();

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  std::mutex mutex_;
  std::FILE* file_ = nullptr;  // guarded by mutex_
};

const char* to_string(LogLevel level);

}  // namespace snnsec::util

#define SNNSEC_LOG_AT(lvl, msg)                                       \
  do {                                                                \
    auto& snnsec_logger_ = ::snnsec::util::Logger::instance();        \
    if (snnsec_logger_.enabled(lvl)) {                                \
      std::ostringstream snnsec_log_oss_;                             \
      snnsec_log_oss_ << msg; /* NOLINT */                            \
      snnsec_logger_.write(lvl, snnsec_log_oss_.str());               \
    }                                                                 \
  } while (false)

#define SNNSEC_LOG_TRACE(msg) SNNSEC_LOG_AT(::snnsec::util::LogLevel::kTrace, msg)
#define SNNSEC_LOG_DEBUG(msg) SNNSEC_LOG_AT(::snnsec::util::LogLevel::kDebug, msg)
#define SNNSEC_LOG_INFO(msg) SNNSEC_LOG_AT(::snnsec::util::LogLevel::kInfo, msg)
#define SNNSEC_LOG_WARN(msg) SNNSEC_LOG_AT(::snnsec::util::LogLevel::kWarn, msg)
#define SNNSEC_LOG_ERROR(msg) SNNSEC_LOG_AT(::snnsec::util::LogLevel::kError, msg)
