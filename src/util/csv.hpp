// CSV emission for experiment results.
//
// Every figure/bench harness writes its series through CsvWriter so results
// can be re-plotted outside C++. Quoting follows RFC 4180 (fields containing
// comma, quote or newline are quoted; quotes doubled).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace snnsec::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws util::Error when the file cannot be
  /// created. Parent directories are created when missing.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (for tests); read back with str().
  CsvWriter();

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience row builder: CsvWriter::row() << 1 << "x" << 2.5; w.write(r).
  class Row {
   public:
    Row& operator<<(const std::string& v);
    Row& operator<<(const char* v);
    Row& operator<<(double v);
    Row& operator<<(std::int64_t v);
    Row& operator<<(int v);
    const std::vector<std::string>& fields() const { return fields_; }

   private:
    std::vector<std::string> fields_;
  };

  void write(const Row& row) { write_row(row.fields()); }

  /// Contents so far (in-memory mode only; for file mode returns "").
  std::string str() const { return buffer_; }

  const std::string& path() const { return path_; }

 private:
  void emit(const std::string& line);
  static std::string escape(const std::string& field);

  std::string path_;
  std::ofstream file_;
  std::string buffer_;
  bool to_file_ = false;
};

/// Ensure the directory for `file_path` exists (mkdir -p of the parent).
void ensure_parent_dir(const std::string& file_path);

}  // namespace snnsec::util
