#include "util/env.hpp"

#include <cstdlib>

namespace snnsec::util {

namespace {
bool truthy(const char* value) {
  if (value == nullptr) return false;
  const std::string v = value;
  return v == "1" || v == "true" || v == "TRUE" || v == "yes" || v == "YES" ||
         v == "on" || v == "ON";
}
}  // namespace

bool full_profile_enabled() { return truthy(std::getenv("SNNSEC_FULL")); }

std::uint64_t master_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("SNNSEC_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return fallback;
}

std::string env_or(const std::string& name, const std::string& fallback) {
  if (const char* env = std::getenv(name.c_str())) return env;
  return fallback;
}

std::int64_t env_int_or(const std::string& name, std::int64_t fallback) {
  if (const char* env = std::getenv(name.c_str())) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::int64_t>(v);
  }
  return fallback;
}

}  // namespace snnsec::util
