#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <iterator>

#include "util/error.hpp"
#include "util/metrics_hooks.hpp"

namespace snnsec::util {

namespace {
// Set inside pool workers so nested parallel_for calls degrade to serial
// execution instead of deadlocking (a worker must never block on the pool).
thread_local bool g_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  Task entry;
  entry.fn = std::move(task);
  if (metrics::enabled())
    entry.enqueued = std::chrono::steady_clock::now();
  std::size_t depth;
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): queue handoff, O(1) critical section
    std::lock_guard lock(mutex_);
    SNNSEC_CHECK(!stop_, "submit() on stopped ThreadPool");
    // NOLINTNEXTLINE(snnsec-hot-path-alloc): deque growth amortized, steady state reuses blocks
    tasks_.push(std::move(entry));
    ++in_flight_;
    depth = tasks_.size();
  }
  metrics::counter_add("pool.tasks", 1);
  metrics::gauge_set("pool.queue_depth", static_cast<double>(depth));
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  // Mark the thread once for its whole lifetime: it is always a pool worker,
  // so nested parallel_for calls degrade to serial, and a throwing task can
  // never leave the flag stale the way a set/clear pair around each task
  // could.
  g_inside_pool_worker = true;
  for (;;) {
    Task task;
    std::size_t depth;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      depth = tasks_.size();
    }
    metrics::gauge_set("pool.queue_depth", static_cast<double>(depth));
    if (task.enqueued != std::chrono::steady_clock::time_point{}) {
      const double wait_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count();
      static constexpr double kWaitBoundsMs[] = {0.01, 0.1, 1.0,
                                                 10.0, 100.0, 1000.0};
      metrics::histogram_observe("pool.task_wait_ms", wait_ms, kWaitBoundsMs,
                                 std::size(kWaitBoundsMs));
    }
    // in_flight_ must reach zero even when the task throws — otherwise
    // wait_idle() deadlocks — so the decrement is RAII, not a statement
    // after the call.
    struct InFlightGuard {
      ThreadPool& pool;
      ~InFlightGuard() {
        std::lock_guard lock(pool.mutex_);
        if (--pool.in_flight_ == 0) pool.cv_idle_.notify_all();
      }
    } guard{*this};
    try {
      task.fn();
    } catch (...) {
      // A raw submit() has no caller to deliver the exception to
      // (parallel_for catches and rethrows its own); letting it escape a
      // worker thread would std::terminate the process mid-sweep. Swallow
      // it, count the drop, keep the worker alive.
      metrics::counter_add("pool.task_exceptions", 1);
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SNNSEC_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 4 : hw);
  }());
  return pool;
}

bool inside_pool_worker() { return g_inside_pool_worker; }

void detail::parallel_for_chunked_impl(
    std::int64_t begin, std::int64_t end, std::int64_t workers,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::int64_t chunk = (n + workers - 1) / workers;
  std::atomic<std::int64_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::int64_t launched = 0;
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    const std::int64_t hi = std::min(end, lo + chunk);
    ++launched;
    pool.submit([&, lo, hi] {
      try {
        // NOLINTNEXTLINE(snnsec-relaxed-atomic): advisory probe, exchange is seq_cst
        if (!failed.load(std::memory_order_relaxed)) fn(lo, hi);
      } catch (...) {
        // NOLINTNEXTLINE(snnsec-hot-path-lock): first-error latch, exception path only
        std::lock_guard lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
      {
        // NOLINTNEXTLINE(snnsec-hot-path-lock): completion count, O(1) critical section
        std::lock_guard lock(done_mutex);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  {
    // NOLINTNEXTLINE(snnsec-hot-path-lock): join barrier, fan-out caller must block here
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return done.load() == launched; });
  }
  if (failed.load()) std::rethrow_exception(first_error);
}

}  // namespace snnsec::util
