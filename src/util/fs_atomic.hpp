// Crash-safe file replacement: write-to-temp + fsync + rename.
//
// A process killed mid-write must never leave a truncated checkpoint or
// report where the next run will try to load it. atomic_write_file() stages
// the payload in a sibling temp file, flushes it to stable storage, and
// renames it over the destination — rename(2) is atomic on POSIX, so readers
// observe either the old complete file or the new complete file, never a
// prefix.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace snnsec::util {

/// Atomically replace `path` with the bytes produced by `write`. The writer
/// receives a binary output stream positioned at offset 0 of a temp file in
/// the same directory; on success the temp file is fsync'd and renamed over
/// `path` (the parent directory is created when missing and fsync'd after
/// the rename). Throws util::Error — and removes the temp file — when the
/// write or rename fails.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write);

/// Flush a file (or directory) to stable storage by path. Returns false
/// when the path cannot be opened or the platform lacks fsync; callers that
/// only need best-effort durability may ignore the result.
bool fsync_path(const std::string& path);

}  // namespace snnsec::util
