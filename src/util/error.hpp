// Checked-error primitives for the snnsec library.
//
// Library code reports contract violations and runtime failures through
// snnsec::util::Error (derived from std::runtime_error) so that callers can
// catch one exception type at API boundaries. The SNNSEC_CHECK* macros give
// file/line context for free and keep the hot path branch-predictable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace snnsec::util {

/// Exception type thrown on any contract violation or runtime failure
/// inside the snnsec library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Numerical divergence detected by a sentinel (NaN/Inf loss, loss
/// explosion). Distinct from Error so the explorer's retry layer can
/// re-seed and try again instead of aborting the grid.
class DivergenceError : public Error {
 public:
  explicit DivergenceError(const std::string& what) : Error(what) {}
};

/// A wall-clock budget was exceeded. Not retried: retrying a timed-out
/// cell would blow the budget again.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& message);
}  // namespace detail

}  // namespace snnsec::util

/// Check `cond`; on failure throw snnsec::util::Error with streamable context:
///   SNNSEC_CHECK(a.size() == b.size(), "size mismatch " << a.size());
#define SNNSEC_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream snnsec_oss_;                                      \
      snnsec_oss_ << msg; /* NOLINT */                                     \
      ::snnsec::util::detail::throw_error(__FILE__, __LINE__, #cond,       \
                                          snnsec_oss_.str());              \
    }                                                                      \
  } while (false)

/// Unconditional failure with streamable message.
#define SNNSEC_FAIL(msg)                                                   \
  do {                                                                     \
    std::ostringstream snnsec_oss_;                                        \
    snnsec_oss_ << msg; /* NOLINT */                                       \
    ::snnsec::util::detail::throw_error(__FILE__, __LINE__, "failure",     \
                                        snnsec_oss_.str());                \
  } while (false)
