#include "util/error.hpp"

namespace snnsec::util::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::ostringstream oss;
  oss << "[snnsec] check failed: (" << cond << ") at " << file << ":" << line;
  if (!message.empty()) oss << " — " << message;
  throw Error(oss.str());
}

}  // namespace snnsec::util::detail
