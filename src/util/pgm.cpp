#include "util/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/csv.hpp"  // ensure_parent_dir
#include "util/error.hpp"

namespace snnsec::util {

void RgbImage::set(std::int64_t x, std::int64_t y, std::uint8_t r,
                   std::uint8_t g, std::uint8_t b) {
  if (x < 0 || x >= width || y < 0 || y >= height) return;
  const std::size_t i = static_cast<std::size_t>(3 * (y * width + x));
  pixels[i] = r;
  pixels[i + 1] = g;
  pixels[i + 2] = b;
}

void RgbImage::fill_rect(std::int64_t x0, std::int64_t y0, std::int64_t w,
                         std::int64_t h, std::uint8_t r, std::uint8_t g,
                         std::uint8_t b) {
  for (std::int64_t y = std::max<std::int64_t>(0, y0);
       y < std::min(height, y0 + h); ++y)
    for (std::int64_t x = std::max<std::int64_t>(0, x0);
         x < std::min(width, x0 + w); ++x)
      set(x, y, r, g, b);
}

void write_pgm(const std::string& path, const float* gray,
               std::int64_t width, std::int64_t height) {
  SNNSEC_CHECK(width > 0 && height > 0, "write_pgm: empty image");
  ensure_parent_dir(path);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SNNSEC_CHECK(os.is_open(), "write_pgm: cannot open " << path);
  os << "P5\n" << width << " " << height << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width));
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const float v = std::clamp(gray[y * width + x], 0.0f, 1.0f);
      row[static_cast<std::size_t>(x)] =
          static_cast<std::uint8_t>(std::lround(v * 255.0f));
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  SNNSEC_CHECK(os.good(), "write_pgm: write failed for " << path);
}

void write_ppm(const std::string& path, const RgbImage& image) {
  SNNSEC_CHECK(image.width > 0 && image.height > 0, "write_ppm: empty image");
  ensure_parent_dir(path);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SNNSEC_CHECK(os.is_open(), "write_ppm: cannot open " << path);
  os << "P6\n" << image.width << " " << image.height << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.pixels.data()),
           static_cast<std::streamsize>(image.pixels.size()));
  SNNSEC_CHECK(os.good(), "write_ppm: write failed for " << path);
}

void colormap_viridis(double t, std::uint8_t& r, std::uint8_t& g,
                      std::uint8_t& b) {
  t = std::clamp(t, 0.0, 1.0);
  // Piecewise-linear approximation of viridis over 5 anchors.
  struct Anchor {
    double t;
    double r, g, b;
  };
  static constexpr Anchor kAnchors[] = {
      {0.00, 68, 1, 84},    {0.25, 59, 82, 139},  {0.50, 33, 145, 140},
      {0.75, 94, 201, 98},  {1.00, 253, 231, 37},
  };
  const Anchor* lo = &kAnchors[0];
  const Anchor* hi = &kAnchors[4];
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    if (t >= kAnchors[i].t && t <= kAnchors[i + 1].t) {
      lo = &kAnchors[i];
      hi = &kAnchors[i + 1];
      break;
    }
  }
  const double u = (hi->t > lo->t) ? (t - lo->t) / (hi->t - lo->t) : 0.0;
  r = static_cast<std::uint8_t>(std::lround(lo->r + u * (hi->r - lo->r)));
  g = static_cast<std::uint8_t>(std::lround(lo->g + u * (hi->g - lo->g)));
  b = static_cast<std::uint8_t>(std::lround(lo->b + u * (hi->b - lo->b)));
}

}  // namespace snnsec::util
