// Environment-driven experiment profiles.
//
// Every figure harness runs a reduced "quick" profile by default so the
// whole bench suite finishes on a laptop CPU; exporting SNNSEC_FULL=1
// switches to the paper-scale grids/datasets. SNNSEC_SEED overrides the
// default master seed.
#pragma once

#include <cstdint>
#include <string>

namespace snnsec::util {

/// True when SNNSEC_FULL is set to a truthy value (1/true/yes/on).
bool full_profile_enabled();

/// Master seed: SNNSEC_SEED when set, otherwise `fallback`.
std::uint64_t master_seed(std::uint64_t fallback = 42);

/// Environment string lookup with default.
std::string env_or(const std::string& name, const std::string& fallback);

/// Environment integer lookup with default (malformed values -> fallback).
std::int64_t env_int_or(const std::string& name, std::int64_t fallback);

}  // namespace snnsec::util
