#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace snnsec::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::int64_t& ArgParser::add_int(const std::string& name,
                                 std::int64_t default_value,
                                 const std::string& help) {
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = help;
  opt.default_repr = std::to_string(default_value);
  opt.int_value = std::make_unique<std::int64_t>(default_value);
  auto& ref = *opt.int_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

double& ArgParser::add_double(const std::string& name, double default_value,
                              const std::string& help) {
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = help;
  opt.default_repr = format_float(default_value, 4);
  opt.double_value = std::make_unique<double>(default_value);
  auto& ref = *opt.double_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

std::string& ArgParser::add_string(const std::string& name,
                                   const std::string& default_value,
                                   const std::string& help) {
  Option opt;
  opt.kind = Kind::kString;
  opt.help = help;
  opt.default_repr = default_value;
  opt.string_value = std::make_unique<std::string>(default_value);
  auto& ref = *opt.string_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

bool& ArgParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = help;
  opt.default_repr = "false";
  opt.flag_value = std::make_unique<bool>(false);
  auto& ref = *opt.flag_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

std::vector<double>& ArgParser::add_double_list(const std::string& name,
                                                const std::string& default_csv,
                                                const std::string& help) {
  Option opt;
  opt.kind = Kind::kDoubleList;
  opt.help = help;
  opt.default_repr = default_csv;
  opt.double_list = std::make_unique<std::vector<double>>();
  for (const auto& part : split(default_csv, ','))
    if (!trim(part).empty()) opt.double_list->push_back(parse_double(part));
  auto& ref = *opt.double_list;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

std::vector<std::int64_t>& ArgParser::add_int_list(
    const std::string& name, const std::string& default_csv,
    const std::string& help) {
  Option opt;
  opt.kind = Kind::kIntList;
  opt.help = help;
  opt.default_repr = default_csv;
  opt.int_list = std::make_unique<std::vector<std::int64_t>>();
  for (const auto& part : split(default_csv, ','))
    if (!trim(part).empty()) opt.int_list->push_back(parse_int(part));
  auto& ref = *opt.int_list;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
  return ref;
}

void ArgParser::set_value(Option& opt, const std::string& name,
                          const std::string& value) {
  switch (opt.kind) {
    case Kind::kInt:
      *opt.int_value = parse_int(value);
      break;
    case Kind::kDouble:
      *opt.double_value = parse_double(value);
      break;
    case Kind::kString:
      *opt.string_value = value;
      break;
    case Kind::kFlag:
      SNNSEC_FAIL("flag --" << name << " does not take a value");
      break;
    case Kind::kDoubleList: {
      opt.double_list->clear();
      for (const auto& part : split(value, ','))
        if (!trim(part).empty())
          opt.double_list->push_back(parse_double(part));
      break;
    }
    case Kind::kIntList: {
      opt.int_list->clear();
      for (const auto& part : split(value, ','))
        if (!trim(part).empty()) opt.int_list->push_back(parse_int(part));
      break;
    }
  }
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    SNNSEC_CHECK(starts_with(arg, "--"),
                 "unexpected positional argument '" << arg << "'");
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const auto it = options_.find(name);
    SNNSEC_CHECK(it != options_.end(), "unknown flag --" << name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      SNNSEC_CHECK(!has_value, "flag --" << name << " does not take a value");
      *opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      SNNSEC_CHECK(i + 1 < argc, "flag --" << name << " expects a value");
      value = argv[++i];
    }
    set_value(opt, name, value);
  }
}

std::string ArgParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    oss << "  --" << name;
    if (opt.kind != Kind::kFlag) oss << " <value>";
    oss << "\n      " << opt.help << " (default: " << opt.default_repr
        << ")\n";
  }
  oss << "  --help\n      show this message\n";
  return oss.str();
}

}  // namespace snnsec::util
