// Wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>
#include <string>

namespace snnsec::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

  /// "1m 23.4s"-style human-readable elapsed time.
  std::string pretty() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace snnsec::util
