// Wall-clock stopwatch for coarse experiment timing.
//
// Supports pause()/resume() (seconds() accumulates only running time) and
// lap() (seconds since the previous lap), so one watch can time a whole
// grid exploration and each cell within it.
#pragma once

#include <chrono>
#include <string>

namespace snnsec::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() {
    start_ = clock::now();
    accumulated_ = 0.0;
    lap_mark_ = 0.0;
    running_ = true;
  }

  /// Total running (non-paused) time since construction/reset.
  double seconds() const {
    double s = accumulated_;
    if (running_)
      s += std::chrono::duration<double>(clock::now() - start_).count();
    return s;
  }
  double millis() const { return seconds() * 1e3; }

  /// Freeze accumulation; idempotent.
  void pause() {
    if (!running_) return;
    accumulated_ +=
        std::chrono::duration<double>(clock::now() - start_).count();
    running_ = false;
  }

  /// Continue accumulating after pause(); idempotent.
  void resume() {
    if (running_) return;
    start_ = clock::now();
    running_ = true;
  }

  bool paused() const { return !running_; }

  /// Running time since the previous lap() (or reset/construction), and
  /// start the next lap.
  double lap() {
    const double total = seconds();
    const double delta = total - lap_mark_;
    lap_mark_ = total;
    return delta;
  }

  /// "1m 23.4s"-style human-readable elapsed time.
  std::string pretty() const;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;     // start of the current running segment
  double accumulated_ = 0.0;    // completed running segments
  double lap_mark_ = 0.0;       // seconds() value at the previous lap
  bool running_ = true;
};

/// "1m 23.4s"-style rendering of a duration in seconds.
std::string format_duration(double seconds);

}  // namespace snnsec::util
