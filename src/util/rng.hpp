// Deterministic pseudo-random number generation for snnsec.
//
// Design goals:
//  * Bit-for-bit reproducibility across platforms (no std::mt19937 /
//    std::normal_distribution, whose outputs are implementation-defined for
//    floating point).
//  * Cheap stream splitting: one master seed fans out to per-component
//    sub-streams (weights, data synthesis, attack random starts, ...) via
//    splitmix64 so experiments stay reproducible when components are added,
//    removed or reordered.
//
// The core generator is xoshiro256** (public domain, Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace snnsec::util {

/// splitmix64 step: used for seeding and for hashing stream labels.
std::uint64_t splitmix64(std::uint64_t& state);

/// Hash a label string into a 64-bit value (FNV-1a), used to derive named
/// sub-streams deterministically from a master seed.
std::uint64_t hash_label(std::string_view label);

/// xoshiro256** engine with explicit, portable seeding.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Jump ahead 2^128 steps — useful for long-lived parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// High-level RNG with the distributions the library needs.
///
/// All floating-point draws are derived from the 64-bit integer stream via
/// fixed bit manipulation, so results are identical on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  /// Derive an independent named sub-stream (e.g. rng.fork("weights")).
  Rng fork(std::string_view label) const;
  /// Derive an independent indexed sub-stream (e.g. per-thread, per-sample).
  Rng fork(std::uint64_t index) const;

  std::uint64_t seed() const { return seed_; }

  std::uint64_t next_u64() { return engine_(); }
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (deterministic, cached second value).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Fill with iid samples.
  void fill_uniform(float* dst, std::size_t n, float lo, float hi);
  void fill_normal(float* dst, std::size_t n, float mean, float stddev);
  void fill_bernoulli(float* dst, std::size_t n, double p);

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_ = 0;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace snnsec::util
