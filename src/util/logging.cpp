#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace snnsec::util {

namespace {
std::string lowercase(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return s;
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  if (const char* env = std::getenv("SNNSEC_LOG")) set_level(env);
  if (const char* path = std::getenv("SNNSEC_LOG_FILE")) {
    if (path[0] != '\0') set_log_file(path);
  }
}

Logger::~Logger() {
  std::lock_guard lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

bool Logger::set_level(const std::string& name) {
  const std::string n = lowercase(name);
  if (n == "trace") set_level(LogLevel::kTrace);
  else if (n == "debug") set_level(LogLevel::kDebug);
  else if (n == "info") set_level(LogLevel::kInfo);
  else if (n == "warn" || n == "warning") set_level(LogLevel::kWarn);
  else if (n == "error") set_level(LogLevel::kError);
  else if (n == "off" || n == "none") set_level(LogLevel::kOff);
  else return false;
  return true;
}

bool Logger::set_log_file(const std::string& path) {
  std::FILE* next =
      path.empty() ? nullptr : std::fopen(path.c_str(), "a");
  std::lock_guard lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = next;
  return path.empty() || next != nullptr;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, const std::string& message) {
  using clock = std::chrono::system_clock;
  const auto now = clock::now();
  const std::time_t t = clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &t);
#else
  localtime_r(&t, &tm_buf);
#endif
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "[%s %s] %s\n", stamp, to_string(level),
               message.c_str());
  if (file_ != nullptr) {
    std::fprintf(file_, "[%s %s] %s\n", stamp, to_string(level),
                 message.c_str());
    std::fflush(file_);
  }
}

}  // namespace snnsec::util
