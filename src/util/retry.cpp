#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/logging.hpp"
#include "util/metrics_hooks.hpp"

namespace snnsec::util {

double RetryPolicy::delay_ms(int retry) const {
  if (retry <= 0) return 0.0;
  const double d =
      base_delay_ms * std::pow(backoff_factor, static_cast<double>(retry - 1));
  return std::min(d, max_delay_ms);
}

void RetryPolicy::validate() const {
  SNNSEC_CHECK(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  SNNSEC_CHECK(base_delay_ms >= 0.0, "RetryPolicy: negative base delay");
  SNNSEC_CHECK(backoff_factor >= 1.0,
               "RetryPolicy: backoff_factor must be >= 1");
  SNNSEC_CHECK(max_delay_ms >= 0.0, "RetryPolicy: negative max delay");
}

void sleep_for_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

RetryOutcome retry_with_backoff(
    const RetryPolicy& policy, const std::string& label,
    const std::function<void(int)>& fn,
    const std::function<bool(const Error&)>& retryable) {
  policy.validate();
  RetryOutcome outcome;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++outcome.attempts;
    try {
      fn(attempt);
      outcome.succeeded = true;
      return outcome;
    } catch (const Error& e) {
      if (retryable && !retryable(e)) throw;
      outcome.errors.emplace_back(e.what());
      metrics::counter_add("retry.failures", 1);
      if (attempt + 1 >= policy.max_attempts) break;
      const double delay = policy.delay_ms(attempt + 1);
      SNNSEC_LOG_WARN("retry " << label << ": attempt " << attempt + 1 << "/"
                               << policy.max_attempts << " failed ("
                               << e.what() << "); retrying in " << delay
                               << " ms");
      sleep_for_ms(delay);
    }
  }
  SNNSEC_LOG_WARN("retry " << label << ": exhausted " << policy.max_attempts
                           << " attempts");
  metrics::counter_add("retry.exhausted", 1);
  return outcome;
}

}  // namespace snnsec::util
