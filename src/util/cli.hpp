// Tiny declarative CLI flag parser used by benches and examples.
//
//   util::ArgParser args("fig9", "Reproduce Fig. 9 robustness curves");
//   auto& steps = args.add_int("pgd-steps", 40, "PGD iterations");
//   auto& full  = args.add_flag("full", "run the paper-scale profile");
//   args.parse(argc, argv);   // exits(0) on --help, throws on bad input
//
// Flags accept "--name value" and "--name=value" spellings.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace snnsec::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  std::int64_t& add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help);
  double& add_double(const std::string& name, double default_value,
                     const std::string& help);
  std::string& add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help);
  bool& add_flag(const std::string& name, const std::string& help);
  /// Comma-separated list of doubles, e.g. --eps 0.1,0.5,1.0
  std::vector<double>& add_double_list(const std::string& name,
                                       const std::string& default_csv,
                                       const std::string& help);
  std::vector<std::int64_t>& add_int_list(const std::string& name,
                                          const std::string& default_csv,
                                          const std::string& help);

  /// Parse argv. Prints usage and calls std::exit(0) for --help/-h.
  /// Throws util::Error on unknown flags or malformed values.
  void parse(int argc, const char* const* argv);

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag, kDoubleList, kIntList };
  struct Option {
    Kind kind;
    std::string help;
    std::string default_repr;
    std::unique_ptr<std::int64_t> int_value;
    std::unique_ptr<double> double_value;
    std::unique_ptr<std::string> string_value;
    std::unique_ptr<bool> flag_value;
    std::unique_ptr<std::vector<double>> double_list;
    std::unique_ptr<std::vector<std::int64_t>> int_list;
  };

  void set_value(Option& opt, const std::string& name,
                 const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace snnsec::util
