// Function-pointer seam that lets src/util emit metrics without including
// src/obs: util is the bottom layer (the snnsec-layering rule forbids
// util -> {nn,snn,serve,obs,tensor} includes), yet the thread pool and retry
// helpers are exactly the places whose queue depths and failure counts the
// observability layer wants. src/obs/metrics.cpp installs the hooks from a
// namespace-scope initializer, so any binary that links an obs symbol gets
// them before main(); binaries without obs see null hooks and every emit is
// a cheap branch.
//
// Names must be string literals (or otherwise process-lifetime pointers):
// the obs-side implementation caches the resolved series per name *pointer*
// so steady-state emission stays allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace snnsec::util {

struct MetricsHooks {
  bool (*enabled)() = nullptr;
  void (*counter_add)(const char* name, std::int64_t delta) = nullptr;
  void (*gauge_set)(const char* name, double value) = nullptr;
  void (*histogram_observe)(const char* name, double value,
                            const double* bounds,
                            std::size_t n_bounds) = nullptr;
};

/// The process-wide hook table. Written once during static initialization
/// (before threads exist) and read-only afterwards.
MetricsHooks& metrics_hooks();

namespace metrics {

inline bool enabled() {
  const MetricsHooks& h = metrics_hooks();
  return h.enabled != nullptr && h.enabled();
}

inline void counter_add(const char* name, std::int64_t delta) {
  const MetricsHooks& h = metrics_hooks();
  if (h.counter_add != nullptr) h.counter_add(name, delta);
}

inline void gauge_set(const char* name, double value) {
  const MetricsHooks& h = metrics_hooks();
  if (h.gauge_set != nullptr) h.gauge_set(name, value);
}

inline void histogram_observe(const char* name, double value,
                              const double* bounds, std::size_t n_bounds) {
  const MetricsHooks& h = metrics_hooks();
  if (h.histogram_observe != nullptr)
    h.histogram_observe(name, value, bounds, n_bounds);
}

}  // namespace metrics

}  // namespace snnsec::util
