// ASCII line charts for terminal-first experiment output.
//
// Renders one or more (x, y) series on a shared axis grid, e.g. the
// robustness-vs-ε curves of Figs. 1 and 9:
//
//   1.00 |*
//        |   *o
//   0.50 |      o
//        |        * o
//   0.00 +-----------*--o----
//        0.0       eps      0.3     * CNN   o SNN
#pragma once

#include <string>
#include <vector>

namespace snnsec::util {

struct PlotSeries {
  std::string name;
  std::vector<double> y;  ///< same length as the shared x axis
};

struct PlotOptions {
  int width = 56;    ///< interior columns
  int height = 14;   ///< interior rows
  double y_min = 0.0;
  double y_max = 1.0;
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Render the chart. Throws util::Error when series lengths do not match
/// the x axis or the axis is empty/degenerate. Series are drawn with the
/// marker cycle * o + x # @ (later series overdraw earlier ones).
std::string ascii_plot(const std::vector<double>& x,
                       const std::vector<PlotSeries>& series,
                       const PlotOptions& options = {});

}  // namespace snnsec::util
