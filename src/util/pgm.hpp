// Minimal PGM/PPM (netpbm) image writers — lets the figure harnesses emit
// actual image files (heat maps, adversarial examples) with no external
// imaging dependency. Any image viewer and most toolchains read netpbm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snnsec::util {

/// 8-bit RGB image buffer, row-major, origin top-left.
struct RgbImage {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::vector<std::uint8_t> pixels;  ///< 3 * width * height bytes

  RgbImage(std::int64_t w, std::int64_t h)
      : width(w), height(h),
        pixels(static_cast<std::size_t>(3 * w * h), 0) {}

  void set(std::int64_t x, std::int64_t y, std::uint8_t r, std::uint8_t g,
           std::uint8_t b);

  /// Fill an axis-aligned rectangle (clipped to the image).
  void fill_rect(std::int64_t x0, std::int64_t y0, std::int64_t w,
                 std::int64_t h, std::uint8_t r, std::uint8_t g,
                 std::uint8_t b);
};

/// Write binary PGM (P5) from floats in [0, 1]; values are clamped.
void write_pgm(const std::string& path, const float* gray,
               std::int64_t width, std::int64_t height);

/// Write binary PPM (P6).
void write_ppm(const std::string& path, const RgbImage& image);

/// Map a value in [0, 1] to the viridis-like palette used by the heat-map
/// renderer (dark violet -> teal -> yellow).
void colormap_viridis(double t, std::uint8_t& r, std::uint8_t& g,
                      std::uint8_t& b);

}  // namespace snnsec::util
