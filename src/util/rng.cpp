#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace snnsec::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed the full 256-bit state from splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t mix = seed_ ^ hash_label(label);
  return Rng(splitmix64(mix));
}

Rng Rng::fork(std::uint64_t index) const {
  std::uint64_t mix = seed_ ^ (0x9E3779B97F4A7C15ULL + index * 0xD1342543DE82EF95ULL);
  return Rng(splitmix64(mix));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SNNSEC_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection-free-enough bounded draw with rejection to kill
  // modulo bias exactly.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = engine_();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SNNSEC_CHECK(lo <= hi, "uniform_int requires lo <= hi, got " << lo << " > " << hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // fits: hi-lo < 2^63
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::fill_uniform(float* dst, std::size_t n, float lo, float hi) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(uniform(lo, hi));
}

void Rng::fill_normal(float* dst, std::size_t n, float mean, float stddev) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_bernoulli(float* dst, std::size_t n, double p) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bernoulli(p) ? 1.0f : 0.0f;
}

}  // namespace snnsec::util
