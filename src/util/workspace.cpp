#include "util/workspace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace snnsec::util {

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

void Workspace::add_block(std::size_t at_least) {
  std::size_t size = blocks_.empty() ? kMinBlock
                                     : std::min(kMaxBlock, blocks_.back().size * 2);
  size = std::max(size, at_least);
  Block b;
  // for_overwrite: arena memory is scratch by contract; value-init would
  // memset every new block (up to 64 MiB) for nothing.
  b.data = std::make_unique_for_overwrite<std::byte[]>(size);
  b.size = size;
  blocks_.push_back(std::move(b));
}

void* Workspace::allocate(std::size_t bytes, std::size_t align) {
  SNNSEC_CHECK(align != 0 && (align & (align - 1)) == 0,
               "Workspace::allocate: alignment " << align
                                                 << " is not a power of two");
  // Worst-case room for alignment padding so a block "fits" check is exact.
  const std::size_t need = bytes + align;
  if (blocks_.empty()) add_block(need);
  for (;;) {
    Block& blk = blocks_[active_];
    const auto base = reinterpret_cast<std::uintptr_t>(blk.data.get());
    const std::uintptr_t raw = base + offset_;
    const std::uintptr_t aligned = (raw + align - 1) & ~(align - 1);
    const std::size_t end = static_cast<std::size_t>(aligned - base) + bytes;
    if (end <= blk.size) {
      offset_ = end;
      return reinterpret_cast<void*>(aligned);
    }
    // Current block exhausted: advance to the first later block that fits,
    // growing the arena only when none does. Scanning (rather than checking
    // just active_+1) matters: a recurring large request must land in the
    // block a previous round grew for it, not append a fresh block every
    // call — that turns a steady-state loop into an unbounded leak. Skipped
    // blocks' capacity comes back on rewind.
    std::size_t next = active_ + 1;
    while (next < blocks_.size() && blocks_[next].size < need) ++next;
    if (next == blocks_.size()) add_block(need);
    active_ = next;
    offset_ = 0;
  }
}

void Workspace::rewind(Mark m) {
  SNNSEC_CHECK(m.block < blocks_.size() || (m.block == 0 && m.offset == 0),
               "Workspace::rewind: mark past end of arena");
  active_ = blocks_.empty() ? 0 : m.block;
  offset_ = m.offset;
}

std::size_t Workspace::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace snnsec::util
