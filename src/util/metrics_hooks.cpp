#include "util/metrics_hooks.hpp"

namespace snnsec::util {

MetricsHooks& metrics_hooks() {
  static MetricsHooks hooks;
  return hooks;
}

}  // namespace snnsec::util
