// Bounded retry with exponential backoff.
//
// Long (V_th, T) grid sweeps hit transient failures — a diverged training
// run under a bad seed, a flaky filesystem — that should cost one retry,
// not the whole experiment. RetryPolicy describes the bound and the delay
// curve; retry_with_backoff() runs a callable under it, collecting the
// error of every failed attempt so callers can report *why* a cell was
// eventually marked failed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace snnsec::util {

struct RetryPolicy {
  int max_attempts = 3;          ///< total tries, including the first
  double base_delay_ms = 100.0;  ///< sleep before the first retry
  double backoff_factor = 2.0;   ///< delay multiplier per further retry
  double max_delay_ms = 5000.0;  ///< cap on any single sleep

  /// Sleep before retry number `retry` (1-based): base * factor^(retry-1),
  /// capped at max_delay_ms.
  double delay_ms(int retry) const;

  void validate() const;
};

struct RetryOutcome {
  bool succeeded = false;
  int attempts = 0;                 ///< attempts actually consumed
  std::vector<std::string> errors;  ///< what() of every failed attempt
};

/// Block the calling thread for `ms` milliseconds (no-op for ms <= 0).
void sleep_for_ms(double ms);

/// Run `fn(attempt)` (attempt = 0-based) until it returns without throwing
/// or the policy is exhausted, sleeping delay_ms() between attempts. Only
/// exceptions for which `retryable` returns true are retried; others
/// propagate immediately. Never throws on exhaustion — inspect the outcome.
RetryOutcome retry_with_backoff(
    const RetryPolicy& policy, const std::string& label,
    const std::function<void(int)>& fn,
    const std::function<bool(const Error&)>& retryable = nullptr);

}  // namespace snnsec::util
