// Workspace: a per-thread, grow-only bump arena for hot-path scratch.
//
// The compute kernels (GEMM pack buffers, conv im2col columns, LIF state
// vectors) need large scratch arrays on every call. Allocating them from the
// heap each time costs a malloc/free pair per op — measurable at attack-sweep
// scale where a single PGD run is millions of kernel invocations. The
// Workspace amortizes that to zero: each thread owns an arena of stable
// blocks that only ever grows; once the high-water mark is reached no further
// heap traffic happens.
//
// Usage pattern (top-level op):
//
//   util::Workspace& ws = util::Workspace::local();
//   util::Workspace::Scope scope(ws);              // RAII rewind
//   float* pack = ws.alloc<float>(kc * nc);
//   ... use pack; nested ops may open their own scopes ...
//   // scope destructor rewinds the arena to its entry mark
//
// Guarantees:
//  * Pointers returned by alloc() stay valid until the enclosing Scope (or an
//    explicit rewind past their mark) releases them — growth appends new
//    blocks, it never moves old ones.
//  * alloc() zero-fills nothing; callers own initialization.
//  * Each thread sees its own arena (thread_local singleton), so pool workers
//    allocating scratch inside parallel_for bodies never contend or alias.
//  * Grow-only: rewinding keeps capacity, so steady-state ops allocate from
//    warm memory. block_allocations() exposes the heap-allocation count for
//    the zero-alloc assertions in bench_runner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace snnsec::util {

class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// This thread's arena (lazily constructed, lives for the thread).
  static Workspace& local();

  /// Raw aligned allocation. Alignment must be a power of two; 64 bytes
  /// (a cache line) is enough for any SIMD width we generate.
  void* allocate(std::size_t bytes, std::size_t align = 64);

  /// Typed convenience: `n` default-constructible elements, uninitialized.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Workspace only holds trivially destructible scratch");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T) < 64 ? 64 : alignof(T)));
  }

  /// Opaque position cookie for rewind(). Monotonic within one arena.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  Mark mark() const { return Mark{active_, offset_}; }

  /// Release everything allocated after `m`. Capacity is retained.
  void rewind(Mark m);

  /// Release everything. Capacity is retained.
  void reset() { rewind(Mark{}); }

  /// RAII scope: rewinds to the construction-time mark on destruction.
  /// Scopes nest; inner scopes must be destroyed before outer ones (normal
  /// stack discipline gives this for free).
  class Scope {
   public:
    explicit Scope(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
    ~Scope() { ws_.rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    Mark mark_;
  };

  /// Total bytes of capacity across all blocks (diagnostics).
  std::size_t capacity() const;

  /// Number of heap block allocations made so far. Stable once the arena is
  /// warm — bench_runner asserts this stops moving in steady state.
  std::size_t block_allocations() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// First block is 1 MiB; each subsequent block doubles (capped at 64 MiB)
  /// so a handful of blocks covers any realistic scratch footprint.
  static constexpr std::size_t kMinBlock = std::size_t{1} << 20;
  static constexpr std::size_t kMaxBlock = std::size_t{1} << 26;

  void add_block(std::size_t at_least);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block we bump-allocate from
  std::size_t offset_ = 0;  ///< bump offset within blocks_[active_]
};

}  // namespace snnsec::util
