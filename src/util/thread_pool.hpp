// Minimal work-stealing-free thread pool with a blocking parallel_for.
//
// The library's hot loops (GEMM tiles, per-sample attack generation, grid
// cells in the explorer) are embarrassingly parallel, so a simple
// static-partition parallel_for over a shared pool is enough. The pool is a
// process-wide singleton sized from the hardware, overridable via the
// SNNSEC_THREADS environment variable (SNNSEC_THREADS=1 gives fully
// deterministic serial execution regardless of reduction order).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snnsec::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the pool runs it as soon as a worker is free.
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  /// Process-wide pool (lazily constructed; size from SNNSEC_THREADS or
  /// hardware_concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// Queued task plus its enqueue time (only stamped while the metrics
  /// registry is enabled; a default time_point means "not measured").
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end) across the global pool. Blocks until all
/// iterations finish. Exceptions thrown by fn are rethrown on the caller
/// (first one wins). Serial when the range is small or the pool has 1 thread.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 1);

/// Like parallel_for but hands each worker a contiguous [lo, hi) chunk —
/// lower overhead for tight numeric loops.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace snnsec::util
