// Minimal work-stealing-free thread pool with a blocking parallel_for.
//
// The library's hot loops (GEMM tiles, per-sample attack generation, grid
// cells in the explorer) are embarrassingly parallel, so a simple
// static-partition parallel_for over a shared pool is enough. The pool is a
// process-wide singleton sized from the hardware, overridable via the
// SNNSEC_THREADS environment variable (SNNSEC_THREADS=1 gives fully
// deterministic serial execution regardless of reduction order).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snnsec::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the pool runs it as soon as a worker is free.
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  /// Process-wide pool (lazily constructed; size from SNNSEC_THREADS or
  /// hardware_concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// Queued task plus its enqueue time (only stamped while the metrics
  /// registry is enabled; a default time_point means "not measured").
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// True on a thread owned by the global pool. Nested parallel_for calls on
/// such threads run serially — a worker must never block on its own pool.
bool inside_pool_worker();

namespace detail {
/// Out-of-line fan-out/join core; only reached when the work will actually
/// be dispatched to the pool.
void parallel_for_chunked_impl(
    std::int64_t begin, std::int64_t end, std::int64_t workers,
    const std::function<void(std::int64_t, std::int64_t)>& fn);
}  // namespace detail

/// Hand contiguous [lo, hi) chunks of [begin, end) to the global pool and
/// block until all finish. Exceptions thrown by fn are rethrown on the
/// caller (first one wins). Serial — calling fn directly, without erasing it
/// into a heap-allocated std::function — when the range is empty, the pool
/// has one thread, or the caller is itself a pool worker; hot loops that hit
/// the serial path therefore allocate nothing.
template <typename Fn>
void parallel_for_chunked(std::int64_t begin, std::int64_t end, Fn&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (inside_pool_worker()) {  // nested parallelism runs serially
    fn(begin, end);
    return;
  }
  const std::int64_t workers = std::min<std::int64_t>(
      static_cast<std::int64_t>(ThreadPool::global().size()), n);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  detail::parallel_for_chunked_impl(begin, end, workers, fn);
}

/// Run fn(i) for i in [begin, end) across the global pool. Same serial
/// fast-path and exception contract as parallel_for_chunked.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, Fn&& fn,
                  std::int64_t grain = 1) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (n <= grain || inside_pool_worker() || ThreadPool::global().size() <= 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  parallel_for_chunked(begin, end, [&fn](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace snnsec::util
