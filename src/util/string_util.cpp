#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace snnsec::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_float(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

double parse_double(std::string_view s) {
  const std::string_view t = trim(s);
  SNNSEC_CHECK(!t.empty(), "parse_double on empty string");
  // std::from_chars for double is not universally available; strtod is fine
  // here since inputs are short and NUL-terminated copies are cheap.
  const std::string copy(t);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  SNNSEC_CHECK(end == copy.c_str() + copy.size(),
               "parse_double: trailing garbage in '" << copy << "'");
  return v;
}

std::int64_t parse_int(std::string_view s) {
  const std::string_view t = trim(s);
  SNNSEC_CHECK(!t.empty(), "parse_int on empty string");
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  SNNSEC_CHECK(ec == std::errc{} && ptr == t.data() + t.size(),
               "parse_int: malformed integer '" << std::string(t) << "'");
  return v;
}

}  // namespace snnsec::util
