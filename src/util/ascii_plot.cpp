#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace snnsec::util {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@'};
}

std::string ascii_plot(const std::vector<double>& x,
                       const std::vector<PlotSeries>& series,
                       const PlotOptions& options) {
  SNNSEC_CHECK(x.size() >= 2, "ascii_plot: need at least 2 x points");
  SNNSEC_CHECK(!series.empty(), "ascii_plot: no series");
  for (const auto& s : series)
    SNNSEC_CHECK(s.y.size() == x.size(),
                 "ascii_plot: series '" << s.name << "' has " << s.y.size()
                                        << " points for " << x.size()
                                        << " x values");
  SNNSEC_CHECK(options.width >= 8 && options.height >= 4,
               "ascii_plot: canvas too small");
  const double x_min = *std::min_element(x.begin(), x.end());
  const double x_max = *std::max_element(x.begin(), x.end());
  SNNSEC_CHECK(x_max > x_min, "ascii_plot: degenerate x axis");
  SNNSEC_CHECK(options.y_max > options.y_min, "ascii_plot: bad y range");

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  auto col_of = [&](double xv) {
    const double t = (xv - x_min) / (x_max - x_min);
    return std::clamp(static_cast<int>(std::lround(t * (w - 1))), 0, w - 1);
  };
  auto row_of = [&](double yv) {
    const double t =
        (yv - options.y_min) / (options.y_max - options.y_min);
    const int r = static_cast<int>(std::lround((1.0 - t) * (h - 1)));
    return std::clamp(r, 0, h - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % sizeof(kMarkers)];
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double yv =
          std::clamp(series[si].y[i], options.y_min, options.y_max);
      canvas[static_cast<std::size_t>(row_of(yv))]
            [static_cast<std::size_t>(col_of(x[i]))] = mark;
    }
  }

  std::ostringstream oss;
  char buf[32];
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof(buf), "%6.2f |", options.y_max);
      oss << buf;
    } else if (r == h - 1) {
      std::snprintf(buf, sizeof(buf), "%6.2f |", options.y_min);
      oss << buf;
    } else if (r == h / 2) {
      std::snprintf(buf, sizeof(buf), "%6.2f |",
                    (options.y_min + options.y_max) / 2.0);
      oss << buf;
    } else {
      oss << "       |";
    }
    oss << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  oss << "       +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  std::snprintf(buf, sizeof(buf), "%-8.3g", x_min);
  oss << "        " << buf;
  const std::string xlab = options.x_label;
  const int pad_mid =
      std::max(1, w - 16 - static_cast<int>(xlab.size()) / 2);
  oss << std::string(static_cast<std::size_t>(pad_mid / 2), ' ') << xlab;
  std::snprintf(buf, sizeof(buf), "%8.3g", x_max);
  oss << std::string(
             static_cast<std::size_t>(std::max(1, pad_mid - pad_mid / 2)),
             ' ')
      << buf << '\n';
  oss << "        legend:";
  for (std::size_t si = 0; si < series.size(); ++si)
    oss << "  " << kMarkers[si % sizeof(kMarkers)] << " " << series[si].name;
  oss << '\n';
  return oss.str();
}

}  // namespace snnsec::util
