#include "util/stopwatch.hpp"

#include <cstdio>

namespace snnsec::util {

std::string Stopwatch::pretty() const {
  const double s = seconds();
  char buf[64];
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1e3);
  } else if (s < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  } else {
    const int minutes = static_cast<int>(s / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", minutes, s - 60.0 * minutes);
  }
  return buf;
}

}  // namespace snnsec::util
