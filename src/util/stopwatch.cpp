#include "util/stopwatch.hpp"

#include <cstdio>

namespace snnsec::util {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", minutes,
                  seconds - 60.0 * minutes);
  }
  return buf;
}

std::string Stopwatch::pretty() const { return format_duration(seconds()); }

}  // namespace snnsec::util
