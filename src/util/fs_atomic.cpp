#include "util/fs_atomic.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/csv.hpp"  // ensure_parent_dir
#include "util/error.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace snnsec::util {

namespace fs = std::filesystem;

bool fsync_path(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  ensure_parent_dir(path);
  // PID suffix keeps concurrent writers (two explorer processes sharing a
  // cache directory) from clobbering each other's staging file.
#ifndef _WIN32
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    SNNSEC_CHECK(os.is_open(), "atomic_write_file: cannot open staging file "
                                   << tmp);
    write(os);
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ignored;
      fs::remove(tmp, ignored);
      SNNSEC_FAIL("atomic_write_file: write to " << tmp << " failed");
    }
  }
  fsync_path(tmp);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    SNNSEC_FAIL("atomic_write_file: rename " << tmp << " -> " << path
                                             << " failed: " << ec.message());
  }
  // Make the rename itself durable: sync the containing directory.
  const fs::path parent = fs::path(path).parent_path();
  fsync_path(parent.empty() ? std::string(".") : parent.string());
}

}  // namespace snnsec::util
