// Checked-build macros (-DSNNSEC_CHECKED=ON).
//
// Release builds must run as fast as the hardware allows, so pervasive
// bounds/shape checking cannot live in the always-on SNNSEC_CHECK tier.
// These macros form a second tier that compiles to *nothing* unless the
// build sets SNNSEC_CHECKED (CMake option of the same name): CI runs the
// full test suite once with the checked tier live, which is where
// off-by-one index arithmetic (im2col edges, pooling windows, flat-index
// walks) dies loudly instead of reading garbage.
//
//   SNNSEC_DCHECK(cond, msg)       — SNNSEC_CHECK, checked builds only.
//   SNNSEC_ASSERT_SHAPE(t, shape)  — tensor shape assertion, checked only.
//
// Both throw snnsec::util::Error (via SNNSEC_CHECK) so the checked test
// suite fails with file/line context rather than crashing.
#pragma once

#include "util/error.hpp"

#if defined(SNNSEC_CHECKED) && SNNSEC_CHECKED

#define SNNSEC_DCHECK(cond, msg) SNNSEC_CHECK(cond, msg)

#define SNNSEC_ASSERT_SHAPE(t, ...)                                        \
  SNNSEC_CHECK((t).shape() == (__VA_ARGS__),                               \
               "shape assertion failed: " << (t).shape().to_string()       \
                                          << " != expected "               \
                                          << (__VA_ARGS__).to_string())

#else

#define SNNSEC_DCHECK(cond, msg) \
  do {                           \
  } while (false)

#define SNNSEC_ASSERT_SHAPE(t, ...) \
  do {                              \
  } while (false)

#endif
