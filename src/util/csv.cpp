#include "util/csv.hpp"

#include <filesystem>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace snnsec::util {

void ensure_parent_dir(const std::string& file_path) {
  const std::filesystem::path p(file_path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // An already-existing directory is fine; only surface hard failures.
    SNNSEC_CHECK(!ec || std::filesystem::exists(p.parent_path()),
                 "cannot create directory " << p.parent_path().string()
                                            << ": " << ec.message());
  }
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), to_file_(true) {
  ensure_parent_dir(path);
  file_.open(path, std::ios::trunc);
  SNNSEC_CHECK(file_.is_open(), "cannot open CSV file for writing: " << path);
}

CsvWriter::CsvWriter() = default;

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
    file_.flush();
  } else {
    buffer_ += line;
    buffer_ += '\n';
  }
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::vector<std::string> escaped;
  escaped.reserve(fields.size());
  for (const auto& f : fields) escaped.push_back(escape(f));
  emit(join(escaped, ","));
}

CsvWriter::Row& CsvWriter::Row::operator<<(const std::string& v) {
  fields_.push_back(v);
  return *this;
}
CsvWriter::Row& CsvWriter::Row::operator<<(const char* v) {
  fields_.emplace_back(v);
  return *this;
}
CsvWriter::Row& CsvWriter::Row::operator<<(double v) {
  fields_.push_back(format_float(v, 6));
  return *this;
}
CsvWriter::Row& CsvWriter::Row::operator<<(std::int64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}
CsvWriter::Row& CsvWriter::Row::operator<<(int v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

}  // namespace snnsec::util
