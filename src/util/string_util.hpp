// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace snnsec::util {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-precision float formatting ("%.3f" by default).
std::string format_float(double value, int precision = 3);

/// Parse helpers that throw util::Error with context on malformed input.
double parse_double(std::string_view s);
std::int64_t parse_int(std::string_view s);

}  // namespace snnsec::util
