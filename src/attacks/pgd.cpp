#include "attacks/pgd.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::attack {

using tensor::Tensor;

Pgd::Pgd(PgdConfig config) : config_(config), rng_(config.seed) {
  SNNSEC_CHECK(config_.steps > 0, "Pgd: steps must be positive");
  SNNSEC_CHECK(config_.rel_stepsize > 0.0 || config_.abs_stepsize > 0.0,
               "Pgd: need a positive step size");
}

Tensor Pgd::perturb(nn::Classifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& labels,
                    const AttackBudget& budget) {
  SNNSEC_TRACE_SCOPE("attack.pgd");
  // Count every call — including ε <= 0 no-ops, which the explorer issues
  // for the clean baseline column — so per-ε accounting in the sweep CSVs
  // matches the number of perturb() invocations.
  SNNSEC_COUNTER_ADD("attack.pgd.calls", 1);
  SNNSEC_COUNTER_ADD("attack.pgd.samples", x.dim(0));
  if (budget.epsilon <= 0.0) {
    SNNSEC_COUNTER_ADD("attack.pgd.skipped", 1);
    return x;
  }
  const float alpha = static_cast<float>(config_.step_size(budget.epsilon));

  Tensor adv = x;
  if (config_.random_start) {
    const float eps = static_cast<float>(budget.epsilon);
    float* p = adv.data();
    for (std::int64_t i = 0; i < adv.numel(); ++i)
      p[i] += static_cast<float>(rng_.uniform(-eps, eps));
    project_linf(adv, x, budget);
  }

  // Untargeted: ascend the loss on the true labels. Targeted: descend the
  // loss on the target labels (labels are then the attacker's targets).
  const float direction = config_.targeted ? -alpha : alpha;
  for (std::int64_t step = 0; step < config_.steps; ++step) {
    SNNSEC_TRACE_SCOPE("attack.pgd.step");
    const Tensor grad = model.input_gradient(adv, labels);
    adv.axpy_(direction, tensor::sign(grad));
    project_linf(adv, x, budget);
    SNNSEC_COUNTER_ADD("attack.grad_evals", 1);
  }
  return adv;
}

std::string Pgd::name() const {
  std::ostringstream oss;
  oss << "PGD(steps=" << config_.steps << ", alpha=";
  if (config_.abs_stepsize > 0.0)
    oss << config_.abs_stepsize;
  else
    oss << config_.rel_stepsize << "*eps";
  oss << (config_.random_start ? ", random start" : "")
      << (config_.targeted ? ", targeted" : "") << ")";
  return oss.str();
}

}  // namespace snnsec::attack
