#include "attacks/adv_training.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace snnsec::attack {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::unique_ptr<nn::Optimizer> make_optimizer(nn::Classifier& model,
                                              const nn::TrainConfig& cfg) {
  if (cfg.optimizer == nn::OptimizerKind::kSgd) {
    nn::Sgd::Config sc;
    sc.lr = cfg.lr;
    sc.momentum = cfg.momentum;
    sc.weight_decay = cfg.weight_decay;
    return std::make_unique<nn::Sgd>(model.parameters(), sc);
  }
  nn::Adam::Config ac;
  ac.lr = cfg.lr;
  ac.weight_decay = cfg.weight_decay;
  return std::make_unique<nn::Adam>(model.parameters(), ac);
}

Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& order,
                   std::int64_t begin, std::int64_t end) {
  std::vector<std::int64_t> dims = x.shape().dims();
  dims[0] = end - begin;
  Tensor out((Shape(dims)));
  const std::int64_t row = x.numel() / x.dim(0);
  for (std::int64_t i = begin; i < end; ++i)
    std::memcpy(out.data() + (i - begin) * row,
                x.data() + order[static_cast<std::size_t>(i)] * row,
                static_cast<std::size_t>(row) * sizeof(float));
  return out;
}

}  // namespace

nn::TrainHistory adversarial_fit(nn::Classifier& model, const Tensor& x,
                                 const std::vector<std::int64_t>& labels,
                                 const AdversarialTrainConfig& config) {
  const std::int64_t n = x.dim(0);
  SNNSEC_CHECK(n > 0, "adversarial_fit: empty training set");
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "adversarial_fit: label count mismatch");
  SNNSEC_CHECK(config.epsilon >= 0.0, "adversarial_fit: negative epsilon");
  SNNSEC_CHECK(config.clean_fraction >= 0.0 && config.clean_fraction <= 1.0,
               "adversarial_fit: clean_fraction outside [0, 1]");

  auto optimizer = make_optimizer(model, config.base);
  util::Rng shuffle_rng(config.base.shuffle_seed);
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  AttackBudget budget;
  budget.epsilon = config.epsilon;

  nn::TrainHistory history;
  SNNSEC_TRACE_SCOPE("advtrain.fit");
  for (std::int64_t epoch = 0; epoch < config.base.epochs; ++epoch) {
    SNNSEC_TRACE_SCOPE("advtrain.epoch");
    util::Stopwatch watch;
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t b = 0; b < n; b += config.base.batch_size) {
      SNNSEC_TRACE_SCOPE("advtrain.batch");
      const std::int64_t e = std::min(n, b + config.base.batch_size);
      Tensor xb = gather_rows(x, order, b, e);
      std::vector<std::int64_t> yb(static_cast<std::size_t>(e - b));
      for (std::int64_t i = b; i < e; ++i)
        yb[static_cast<std::size_t>(i - b)] =
            labels[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];

      if (config.epsilon > 0.0) {
        // Perturb the adversarial tail of the batch against the current
        // model; the head stays clean.
        const std::int64_t clean_n = static_cast<std::int64_t>(
            std::llround(config.clean_fraction * static_cast<double>(e - b)));
        if (clean_n < e - b) {
          Pgd pgd(config.pgd);
          const Tensor tail = nn::slice_batch(xb, clean_n, e - b);
          const std::vector<std::int64_t> tail_labels(yb.begin() + clean_n,
                                                      yb.end());
          const Tensor adv_tail =
              pgd.perturb(model, tail, tail_labels, budget);
          const std::int64_t row = xb.numel() / xb.dim(0);
          std::memcpy(xb.data() + clean_n * row, adv_tail.data(),
                      static_cast<std::size_t>(adv_tail.numel()) *
                          sizeof(float));
        }
      }
      loss_sum += model.train_batch(xb, yb, *optimizer);
      ++batches;
    }

    nn::EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss =
        loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1));
    const std::int64_t eval_n = std::min<std::int64_t>(n, 512);
    stats.train_accuracy =
        nn::accuracy(model, nn::slice_batch(x, 0, eval_n),
                     {labels.begin(), labels.begin() + eval_n},
                     config.base.batch_size);
    stats.seconds = watch.seconds();
    if (obs::Registry::enabled()) {
      const obs::Labels epoch_label{{"epoch", std::to_string(epoch)}};
      obs::Registry& reg = obs::Registry::instance();
      reg.record("advtrain.epoch.loss", stats.train_loss, epoch_label);
      reg.record("advtrain.epoch.accuracy", stats.train_accuracy, epoch_label);
      reg.record("advtrain.epoch.seconds", stats.seconds, epoch_label);
    }
    if (config.base.verbose)
      SNNSEC_LOG_INFO("adv epoch " << epoch << ": loss=" << stats.train_loss
                                   << " acc=" << stats.train_accuracy);
    history.epochs.push_back(stats);
  }
  return history;
}

}  // namespace snnsec::attack
