// Non-adaptive noise "attacks" — sanity baselines that separate adversarial
// vulnerability from plain noise sensitivity.
#pragma once

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace snnsec::attack {

/// Uniform noise in [-ε, ε] added to every pixel.
class UniformNoise final : public Attack {
 public:
  explicit UniformNoise(std::uint64_t seed = 123) : rng_(seed) {}

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override { return "UniformNoise"; }

 private:
  util::Rng rng_;
};

/// Gaussian noise with stddev ε (clipped into the L∞ ball so budgets stay
/// comparable with the gradient attacks).
class GaussianNoise final : public Attack {
 public:
  explicit GaussianNoise(std::uint64_t seed = 321) : rng_(seed) {}

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override { return "GaussianNoise"; }

 private:
  util::Rng rng_;
};

}  // namespace snnsec::attack
