// Adversarial training (Madry et al., 2018): the classical defense the
// paper's structural-parameter tuning is an alternative to. Provided so
// the two defenses can be compared on the same substrate — each mini-batch
// is (partially) replaced by PGD examples generated against the current
// model before the optimization step.
#pragma once

#include "attacks/pgd.hpp"
#include "nn/classifier.hpp"
#include "nn/trainer.hpp"

namespace snnsec::attack {

struct AdversarialTrainConfig {
  nn::TrainConfig base;      ///< optimizer/epochs/batching
  double epsilon = 0.1;      ///< training perturbation budget
  PgdConfig pgd{.steps = 5, .rel_stepsize = 0.25, .abs_stepsize = -1.0,
                .random_start = true, .seed = 77};
  /// Fraction of each batch left clean (0 = pure adversarial training,
  /// 0.5 = half/half as in many practical recipes).
  double clean_fraction = 0.5;
};

/// Train `model` on (x, labels) with on-the-fly PGD examples. Returns the
/// same per-epoch statistics as nn::Trainer::fit (loss is measured on the
/// possibly-perturbed batches).
nn::TrainHistory adversarial_fit(nn::Classifier& model,
                                 const tensor::Tensor& x,
                                 const std::vector<std::int64_t>& labels,
                                 const AdversarialTrainConfig& config);

}  // namespace snnsec::attack
