// DeepFool (Moosavi-Dezfooli et al., CVPR 2016), untargeted L2 variant,
// used here as a minimal-perturbation probe of the decision boundary.
//
// Per iteration, for the current class c and every other class k it
// linearizes f_k - f_c and steps to the nearest linearized boundary:
//
//   w_k = ∇f_k(x) − ∇f_c(x),  f'_k = f_k(x) − f_c(x)
//   l*  = argmin_k |f'_k| / ||w_k||_2
//   x  += (1 + overshoot) * |f'_{l*}| / ||w_{l*}||² * w_{l*}
//
// Per-class gradients come from Classifier::output_gradient (one backward
// per class per sample batch). The result is finally clipped into the
// requested L∞ budget/box so DeepFool plugs into the same evaluation
// harness as PGD.
#pragma once

#include "attacks/attack.hpp"

namespace snnsec::attack {

struct DeepFoolConfig {
  std::int64_t max_iterations = 20;
  double overshoot = 0.02;
};

class DeepFool final : public Attack {
 public:
  explicit DeepFool(DeepFoolConfig config = {});

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override;

  /// Mean L2 norm of the minimal perturbations found in the most recent
  /// perturb() call (before the L∞ clip) — DeepFool's native robustness
  /// metric rho.
  double last_mean_l2() const { return last_mean_l2_; }

 private:
  DeepFoolConfig config_;
  double last_mean_l2_ = 0.0;
};

}  // namespace snnsec::attack
