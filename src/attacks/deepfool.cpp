#include "attacks/deepfool.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::attack {

using tensor::Shape;
using tensor::Tensor;

DeepFool::DeepFool(DeepFoolConfig config) : config_(config) {
  SNNSEC_CHECK(config_.max_iterations > 0,
               "DeepFool: max_iterations must be positive");
  SNNSEC_CHECK(config_.overshoot >= 0.0, "DeepFool: negative overshoot");
}

Tensor DeepFool::perturb(nn::Classifier& model, const Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) {
  const std::int64_t n = x.dim(0);
  const std::int64_t classes = model.num_classes();
  const std::int64_t per_sample = x.numel() / n;
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "DeepFool: label count mismatch");

  Tensor adv = x;
  std::vector<bool> done(static_cast<std::size_t>(n), false);

  for (std::int64_t iter = 0; iter < config_.max_iterations; ++iter) {
    const Tensor logits = model.logits(adv);
    const auto pred = tensor::argmax_rows(logits);
    bool any_active = false;
    for (std::int64_t i = 0; i < n; ++i) {
      if (pred[static_cast<std::size_t>(i)] !=
          labels[static_cast<std::size_t>(i)])
        done[static_cast<std::size_t>(i)] = true;
      if (!done[static_cast<std::size_t>(i)]) any_active = true;
    }
    if (!any_active) break;

    // One batched backward per class: grads[k] = d logits[:,k] / dx.
    std::vector<Tensor> grads;
    grads.reserve(static_cast<std::size_t>(classes));
    for (std::int64_t k = 0; k < classes; ++k) {
      Tensor cotangent(Shape{n, classes});
      for (std::int64_t i = 0; i < n; ++i)
        cotangent[i * classes + k] = 1.0f;
      grads.push_back(model.output_gradient(adv, cotangent));
    }

    // Per active sample: nearest linearized boundary step.
    float* padv = adv.data();
    for (std::int64_t i = 0; i < n; ++i) {
      if (done[static_cast<std::size_t>(i)]) continue;
      const std::int64_t c = labels[static_cast<std::size_t>(i)];
      double best_ratio = std::numeric_limits<double>::infinity();
      std::int64_t best_k = -1;
      double best_fk = 0.0;
      double best_w2 = 0.0;
      for (std::int64_t k = 0; k < classes; ++k) {
        if (k == c) continue;
        const double fk = static_cast<double>(logits[i * classes + k]) -
                          logits[i * classes + c];
        double w2 = 0.0;
        const float* gk = grads[static_cast<std::size_t>(k)].data() +
                          i * per_sample;
        const float* gc = grads[static_cast<std::size_t>(c)].data() +
                          i * per_sample;
        for (std::int64_t j = 0; j < per_sample; ++j) {
          const double w = static_cast<double>(gk[j]) - gc[j];
          w2 += w * w;
        }
        if (w2 <= 1e-20) continue;  // degenerate direction
        const double ratio = std::fabs(fk) / std::sqrt(w2);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_k = k;
          best_fk = fk;
          best_w2 = w2;
        }
      }
      if (best_k < 0) {
        // All gradients vanished (e.g. dead SNN cell): nothing to follow.
        done[static_cast<std::size_t>(i)] = true;
        continue;
      }
      const double scale =
          (1.0 + config_.overshoot) * (std::fabs(best_fk) + 1e-6) / best_w2;
      const float* gk = grads[static_cast<std::size_t>(best_k)].data() +
                        i * per_sample;
      const float* gc =
          grads[static_cast<std::size_t>(c)].data() + i * per_sample;
      for (std::int64_t j = 0; j < per_sample; ++j) {
        padv[i * per_sample + j] +=
            static_cast<float>(scale * (static_cast<double>(gk[j]) - gc[j]));
      }
    }
  }

  // Native metric before the harness clip.
  double l2_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double d2 = 0.0;
    for (std::int64_t j = 0; j < per_sample; ++j) {
      const double d = static_cast<double>(adv[i * per_sample + j]) -
                       x[i * per_sample + j];
      d2 += d * d;
    }
    l2_sum += std::sqrt(d2);
  }
  last_mean_l2_ = l2_sum / static_cast<double>(n);

  project_linf(adv, x, budget);
  return adv;
}

std::string DeepFool::name() const {
  std::ostringstream oss;
  oss << "DeepFool(iters=" << config_.max_iterations
      << ", overshoot=" << config_.overshoot << ")";
  return oss.str();
}

}  // namespace snnsec::attack
