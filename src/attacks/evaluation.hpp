// Robustness evaluation: the inner loop of the paper's Algorithm 1
// (lines 5–15). For a trained model and a noise budget ε, generate one
// adversarial example per test sample and count the failures:
//
//   Robustness(ε) = 1 − Adv / |D|
//
// i.e. exactly the model's accuracy on the adversarial set (an attack
// "succeeds" when the perturbed sample is classified wrong, matching the
// algorithm's S_ij(X*) ≠ L_t check).
#pragma once

#include <vector>

#include "attacks/attack.hpp"

namespace snnsec::attack {

struct RobustnessPoint {
  double epsilon = 0.0;
  double robustness = 0.0;          ///< 1 - Adv/|D| (adversarial accuracy)
  double attack_success_rate = 0.0; ///< Adv/|D|
  double mean_linf = 0.0;           ///< mean L∞ distance actually used
  double mean_loss = 0.0;           ///< model loss on adversarial inputs
};

struct EvalConfig {
  std::int64_t batch_size = 32;
  float pixel_min = 0.0f;
  float pixel_max = 1.0f;
};

/// Evaluate one (model, attack, ε) triple over the whole test set.
RobustnessPoint evaluate_attack(nn::Classifier& model, Attack& atk,
                                const tensor::Tensor& x,
                                const std::vector<std::int64_t>& labels,
                                double epsilon, const EvalConfig& cfg = {});

/// Sweep a list of noise budgets (the ε axis of Figs. 1 and 9).
std::vector<RobustnessPoint> robustness_curve(
    nn::Classifier& model, Attack& atk, const tensor::Tensor& x,
    const std::vector<std::int64_t>& labels,
    const std::vector<double>& epsilons, const EvalConfig& cfg = {});

}  // namespace snnsec::attack
