// Fast Gradient Sign Method (Goodfellow et al., 2015):
//   x* = clip(x + ε · sign(∇_x L(x, y))).
// The single-step special case of PGD; used as a cheap baseline attack.
#pragma once

#include "attacks/attack.hpp"

namespace snnsec::attack {

class Fgsm final : public Attack {
 public:
  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override { return "FGSM"; }
};

}  // namespace snnsec::attack
