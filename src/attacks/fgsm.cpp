#include "attacks/fgsm.hpp"

#include "tensor/ops.hpp"

namespace snnsec::attack {

using tensor::Tensor;

Tensor Fgsm::perturb(nn::Classifier& model, const Tensor& x,
                     const std::vector<std::int64_t>& labels,
                     const AttackBudget& budget) {
  const Tensor grad = model.input_gradient(x, labels);
  Tensor adv = x;
  adv.axpy_(static_cast<float>(budget.epsilon), tensor::sign(grad));
  project_linf(adv, x, budget);
  return adv;
}

}  // namespace snnsec::attack
