#include "attacks/fgsm.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace snnsec::attack {

using tensor::Tensor;

Tensor Fgsm::perturb(nn::Classifier& model, const Tensor& x,
                     const std::vector<std::int64_t>& labels,
                     const AttackBudget& budget) {
  SNNSEC_TRACE_SCOPE("attack.fgsm");
  SNNSEC_COUNTER_ADD("attack.fgsm.calls", 1);
  SNNSEC_COUNTER_ADD("attack.grad_evals", 1);
  const Tensor grad = model.input_gradient(x, labels);
  Tensor adv = x;
  adv.axpy_(static_cast<float>(budget.epsilon), tensor::sign(grad));
  project_linf(adv, x, budget);
  return adv;
}

}  // namespace snnsec::attack
