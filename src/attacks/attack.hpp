// Attack: the white-box adversarial-example generator interface.
//
// Threat model (paper Sec. IV): the adversary has full knowledge of the
// victim — architecture, weights, and the structural parameters (V_th, T)
// — and ascends the exact input gradient the model exposes through
// Classifier::input_gradient (for the SNN, that gradient flows through the
// full unrolled time window via surrogate derivatives).
//
// All attacks here are untargeted L∞ attacks on images in [0, 1]: the
// produced example satisfies ||x* − x||∞ ≤ ε and x* ∈ [0, 1]^d.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/classifier.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::attack {

struct AttackBudget {
  double epsilon = 0.1;  ///< L∞ noise budget ε
  /// Valid pixel range (images are normalized to [0, 1]).
  float pixel_min = 0.0f;
  float pixel_max = 1.0f;
};

class Attack {
 public:
  virtual ~Attack() = default;

  Attack() = default;
  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  /// Perturb a batch [N, C, H, W] given its true labels; returns the
  /// adversarial batch (same shape), guaranteed within budget and range.
  virtual tensor::Tensor perturb(nn::Classifier& model,
                                 const tensor::Tensor& x,
                                 const std::vector<std::int64_t>& labels,
                                 const AttackBudget& budget) = 0;

  virtual std::string name() const = 0;
};

using AttackPtr = std::unique_ptr<Attack>;

/// Project `x` onto the L∞ ball of radius eps around `reference`, then
/// clamp to the pixel range. In-place.
void project_linf(tensor::Tensor& x, const tensor::Tensor& reference,
                  const AttackBudget& budget);

}  // namespace snnsec::attack
