#include "attacks/mifgsm.hpp"

#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::attack {

using tensor::Tensor;

MiFgsm::MiFgsm(MiFgsmConfig config) : config_(config) {
  SNNSEC_CHECK(config_.steps > 0, "MiFgsm: steps must be positive");
  SNNSEC_CHECK(config_.decay >= 0.0, "MiFgsm: negative momentum decay");
  SNNSEC_CHECK(config_.rel_stepsize > 0.0, "MiFgsm: non-positive step size");
}

Tensor MiFgsm::perturb(nn::Classifier& model, const Tensor& x,
                       const std::vector<std::int64_t>& labels,
                       const AttackBudget& budget) {
  SNNSEC_COUNTER_ADD("attack.mifgsm.calls", 1);
  SNNSEC_COUNTER_ADD("attack.mifgsm.samples", x.dim(0));
  if (budget.epsilon <= 0.0) {
    SNNSEC_COUNTER_ADD("attack.mifgsm.skipped", 1);
    return x;
  }
  const float alpha =
      static_cast<float>(config_.rel_stepsize * budget.epsilon);
  const std::int64_t n = x.dim(0);
  const std::int64_t per_sample = x.numel() / n;

  Tensor adv = x;
  Tensor momentum(x.shape());
  const float mu = static_cast<float>(config_.decay);
  for (std::int64_t step = 0; step < config_.steps; ++step) {
    const Tensor grad = model.input_gradient(adv, labels);
    // Per-sample L1 normalization (the paper's formulation).
    float* pm = momentum.data();
    const float* pg = grad.data();
    for (std::int64_t i = 0; i < n; ++i) {
      double l1 = 0.0;
      for (std::int64_t j = 0; j < per_sample; ++j)
        l1 += std::fabs(pg[i * per_sample + j]);
      const float inv =
          l1 > 0.0 ? static_cast<float>(1.0 / l1) : 0.0f;
      for (std::int64_t j = 0; j < per_sample; ++j) {
        const std::int64_t k = i * per_sample + j;
        pm[k] = mu * pm[k] + pg[k] * inv;
      }
    }
    adv.axpy_(alpha, tensor::sign(momentum));
    project_linf(adv, x, budget);
  }
  return adv;
}

std::string MiFgsm::name() const {
  std::ostringstream oss;
  oss << "MI-FGSM(steps=" << config_.steps << ", mu=" << config_.decay << ")";
  return oss.str();
}

}  // namespace snnsec::attack
