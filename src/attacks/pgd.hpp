// Projected Gradient Descent (Madry et al., 2018) — Eq. 3 of the paper:
//
//   x^{t+1} = P_{S_x}( x^t + α · sign(∇_x L_θ(x^t, y)) )
//
// with P the projection onto the L∞ ball of radius ε intersected with the
// valid pixel box. Defaults follow Foolbox v3's LinfPGD (the attack
// implementation the paper used): random uniform start inside the ball,
// 40 steps, relative step size 0.025 (α = 0.025·ε... see PgdConfig).
#pragma once

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace snnsec::attack {

struct PgdConfig {
  std::int64_t steps = 40;
  /// Targeted mode: instead of maximizing the loss on the true label,
  /// minimize it on the provided target labels (the classic "misread the
  /// amount as a chosen digit" threat from the paper's bank-check intro).
  bool targeted = false;
  /// α = rel_stepsize · ε (Foolbox LinfPGD convention). When abs_stepsize
  /// is positive it overrides the relative one.
  double rel_stepsize = 0.025;
  double abs_stepsize = -1.0;
  bool random_start = true;
  std::uint64_t seed = 99;

  double step_size(double epsilon) const {
    return abs_stepsize > 0.0 ? abs_stepsize : rel_stepsize * epsilon;
  }
};

class Pgd final : public Attack {
 public:
  explicit Pgd(PgdConfig config = {});

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override;

  const PgdConfig& config() const { return config_; }

 private:
  PgdConfig config_;
  util::Rng rng_;
};

}  // namespace snnsec::attack
