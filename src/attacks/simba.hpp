// SimBA — Simple Black-box Attack (Guo et al., ICML 2019), pixel basis.
//
// A *score-based black-box* attack: it never queries gradients, only the
// victim's output probabilities. Per iteration it picks an unused pixel
// direction q and keeps x ± step·q whenever the true-class probability
// drops. Complements the white-box suite: if white-box PGD fails on an SNN
// cell but SimBA succeeds, the cell's apparent robustness is gradient
// obfuscation rather than a flat decision landscape (relevant to how much
// of the paper's "inherent robustness" survives a gradient-free adversary;
// cf. the black-box comparison of Marchisio et al. [14]).
#pragma once

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace snnsec::attack {

struct SimbaConfig {
  /// Query budget: at most this many candidate directions are tried
  /// (each costs 1-2 model evaluations).
  std::int64_t max_queries = 2000;
  /// Step per pixel; defaults to the full budget ε (set smaller for finer
  /// staircases at more queries).
  double step = -1.0;
  std::uint64_t seed = 7;
};

class Simba final : public Attack {
 public:
  explicit Simba(SimbaConfig config = {});

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override;

  /// Model evaluations consumed by the most recent perturb() call.
  std::int64_t last_query_count() const { return last_query_count_; }

 private:
  SimbaConfig config_;
  util::Rng rng_;
  std::int64_t last_query_count_ = 0;
};

}  // namespace snnsec::attack
