#include "attacks/attack.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace snnsec::attack {

void project_linf(tensor::Tensor& x, const tensor::Tensor& reference,
                  const AttackBudget& budget) {
  SNNSEC_CHECK(x.shape() == reference.shape(),
               "project_linf: shape mismatch " << x.shape().to_string()
                                               << " vs "
                                               << reference.shape().to_string());
  SNNSEC_CHECK(budget.epsilon >= 0.0, "project_linf: negative epsilon");
  const float eps = static_cast<float>(budget.epsilon);
  float* px = x.data();
  const float* pr = reference.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float lo = std::max(budget.pixel_min, pr[i] - eps);
    const float hi = std::min(budget.pixel_max, pr[i] + eps);
    px[i] = std::clamp(px[i], lo, hi);
  }
}

}  // namespace snnsec::attack
