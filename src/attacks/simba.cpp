#include "attacks/simba.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "obs/metrics.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace snnsec::attack {

using tensor::Shape;
using tensor::Tensor;

Simba::Simba(SimbaConfig config) : config_(config), rng_(config.seed) {
  SNNSEC_CHECK(config_.max_queries > 0, "Simba: max_queries must be positive");
}

Tensor Simba::perturb(nn::Classifier& model, const Tensor& x,
                      const std::vector<std::int64_t>& labels,
                      const AttackBudget& budget) {
  last_query_count_ = 0;
  SNNSEC_COUNTER_ADD("attack.simba.calls", 1);
  SNNSEC_COUNTER_ADD("attack.simba.samples", x.dim(0));
  if (budget.epsilon <= 0.0) {
    SNNSEC_COUNTER_ADD("attack.simba.skipped", 1);
    return x;
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t per_sample = x.numel() / n;
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "Simba: label count mismatch");
  const float step = static_cast<float>(
      config_.step > 0.0 ? config_.step : budget.epsilon);

  // Per-sample random pixel visit order (the "pixel basis").
  std::vector<std::vector<std::int64_t>> order(static_cast<std::size_t>(n));
  for (auto& o : order) {
    o.resize(static_cast<std::size_t>(per_sample));
    std::iota(o.begin(), o.end(), 0);
    rng_.shuffle(o);
  }

  Tensor adv = x;
  // True-class probabilities on the current adversarial batch.
  auto true_probs = [&](const Tensor& batch) {
    const Tensor probs = tensor::softmax_rows(model.logits(batch));
    ++last_query_count_;
    std::vector<float> out(static_cast<std::size_t>(n));
    const std::int64_t c = probs.dim(1);
    for (std::int64_t i = 0; i < n; ++i)
      out[static_cast<std::size_t>(i)] =
          probs[i * c + labels[static_cast<std::size_t>(i)]];
    return out;
  };
  auto predictions = [&](const Tensor& batch) {
    return tensor::argmax_rows(model.logits(batch));
  };

  std::vector<float> best_p = true_probs(adv);
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  {
    const auto pred = predictions(adv);
    for (std::int64_t i = 0; i < n; ++i)
      if (pred[static_cast<std::size_t>(i)] !=
          labels[static_cast<std::size_t>(i)])
        done[static_cast<std::size_t>(i)] = true;
  }

  std::vector<std::int64_t> cursor(static_cast<std::size_t>(n), 0);
  while (last_query_count_ < config_.max_queries) {
    // Propose one new pixel direction per unfinished sample.
    bool any_active = false;
    std::vector<std::int64_t> pixel(static_cast<std::size_t>(n), -1);
    for (std::int64_t i = 0; i < n; ++i) {
      auto& cur = cursor[static_cast<std::size_t>(i)];
      if (done[static_cast<std::size_t>(i)] || cur >= per_sample) continue;
      pixel[static_cast<std::size_t>(i)] =
          order[static_cast<std::size_t>(i)][static_cast<std::size_t>(cur++)];
      any_active = true;
    }
    if (!any_active) break;

    for (const float sign : {+1.0f, -1.0f}) {
      Tensor candidate = adv;
      bool any_candidate = false;
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t j = pixel[static_cast<std::size_t>(i)];
        if (j < 0 || done[static_cast<std::size_t>(i)]) continue;
        candidate[i * per_sample + j] += sign * step;
        any_candidate = true;
      }
      if (!any_candidate) break;
      project_linf(candidate, x, budget);
      const auto p = true_probs(candidate);
      bool improved_any = false;
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t j = pixel[static_cast<std::size_t>(i)];
        if (j < 0 || done[static_cast<std::size_t>(i)]) continue;
        if (p[static_cast<std::size_t>(i)] <
            best_p[static_cast<std::size_t>(i)]) {
          best_p[static_cast<std::size_t>(i)] =
              p[static_cast<std::size_t>(i)];
          adv[i * per_sample + j] = candidate[i * per_sample + j];
          pixel[static_cast<std::size_t>(i)] = -1;  // consumed
          improved_any = true;
        }
      }
      if (!improved_any && sign < 0.0f) break;
      (void)improved_any;
    }

    // Periodically retire samples that already flipped.
    if ((last_query_count_ & 15) == 0) {
      const auto pred = predictions(adv);
      for (std::int64_t i = 0; i < n; ++i)
        if (pred[static_cast<std::size_t>(i)] !=
            labels[static_cast<std::size_t>(i)])
          done[static_cast<std::size_t>(i)] = true;
    }
  }
  return adv;
}

std::string Simba::name() const {
  std::ostringstream oss;
  oss << "SimBA(queries<=" << config_.max_queries << ")";
  return oss.str();
}

}  // namespace snnsec::attack
