// Momentum Iterative FGSM (Dong et al., CVPR 2018).
//
// Accumulates a momentum term over normalized gradients to escape poor
// local ascent directions — typically stronger than plain BIM and more
// transferable than PGD:
//
//   g_{t+1} = mu * g_t + grad / ||grad||_1
//   x_{t+1} = P( x_t + alpha * sign(g_{t+1}) )
#pragma once

#include "attacks/attack.hpp"

namespace snnsec::attack {

struct MiFgsmConfig {
  std::int64_t steps = 10;
  double decay = 1.0;         ///< momentum factor mu
  double rel_stepsize = 0.1;  ///< alpha = rel_stepsize * eps
};

class MiFgsm final : public Attack {
 public:
  explicit MiFgsm(MiFgsmConfig config = {});

  tensor::Tensor perturb(nn::Classifier& model, const tensor::Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const AttackBudget& budget) override;
  std::string name() const override;

  const MiFgsmConfig& config() const { return config_; }

 private:
  MiFgsmConfig config_;
};

}  // namespace snnsec::attack
