#include "attacks/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace snnsec::attack {

using tensor::Tensor;

RobustnessPoint evaluate_attack(nn::Classifier& model, Attack& atk,
                                const Tensor& x,
                                const std::vector<std::int64_t>& labels,
                                double epsilon, const EvalConfig& cfg) {
  SNNSEC_TRACE_SCOPE("attack.evaluate");
  const std::int64_t n = x.dim(0);
  SNNSEC_CHECK(n > 0, "evaluate_attack: empty test set");
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == n,
               "evaluate_attack: label count mismatch");
  SNNSEC_CHECK(cfg.batch_size > 0, "evaluate_attack: bad batch size");

  AttackBudget budget;
  budget.epsilon = epsilon;
  budget.pixel_min = cfg.pixel_min;
  budget.pixel_max = cfg.pixel_max;

  std::int64_t fooled = 0;
  double linf_sum = 0.0;
  double loss_sum = 0.0;
  std::int64_t batches = 0;
  for (std::int64_t b = 0; b < n; b += cfg.batch_size) {
    SNNSEC_TRACE_SCOPE("attack.eval_batch");
    const std::int64_t e = std::min(n, b + cfg.batch_size);
    const Tensor xb = nn::slice_batch(x, b, e);
    const std::vector<std::int64_t> yb(labels.begin() + b, labels.begin() + e);
    const Tensor adv = atk.perturb(model, xb, yb, budget);
    SNNSEC_CHECK(tensor::linf_distance(adv, xb) <=
                     static_cast<float>(epsilon) + 1e-5f,
                 atk.name() << " exceeded the L-inf budget");
    double loss = 0.0;
    // One extra forward for predictions; reuse logits for the loss proxy.
    const Tensor lg = model.logits(adv);
    const auto pred = tensor::argmax_rows(lg);
    for (std::size_t i = 0; i < pred.size(); ++i)
      if (pred[i] != yb[i]) ++fooled;
    // Mean CE loss on adversarial inputs (diagnostic).
    {
      const Tensor logp = tensor::log_softmax_rows(lg);
      const std::int64_t c = logp.dim(1);
      for (std::size_t i = 0; i < yb.size(); ++i)
        loss -= logp[static_cast<std::int64_t>(i) * c + yb[i]];
      loss /= static_cast<double>(yb.size());
    }
    // Divergence sentinel: NaN logits on adversarial inputs mean the model
    // (or the attack's gradients) blew up — surface it to the explorer's
    // retry/failure path instead of folding NaN into the robustness number.
    if (!std::isfinite(loss)) {
      SNNSEC_COUNTER_ADD("attack.divergence", 1);
      std::ostringstream oss;
      oss << "evaluate_attack(" << atk.name() << ", eps=" << epsilon
          << "): non-finite adversarial loss " << loss << " in batch "
          << batches;
      throw util::DivergenceError(oss.str());
    }
    loss_sum += loss;
    linf_sum += tensor::linf_distance(adv, xb);
    ++batches;
  }

  RobustnessPoint pt;
  pt.epsilon = epsilon;
  pt.attack_success_rate = static_cast<double>(fooled) / static_cast<double>(n);
  pt.robustness = 1.0 - pt.attack_success_rate;
  pt.mean_linf = linf_sum / static_cast<double>(std::max<std::int64_t>(batches, 1));
  pt.mean_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1));
  SNNSEC_COUNTER_ADD("attack.eval.examples", n);
  SNNSEC_COUNTER_ADD("attack.eval.fooled", fooled);
  if (obs::Registry::enabled()) {
    obs::Registry::instance().record(
        "attack.robustness", pt.robustness,
        {{"attack", atk.name()}, {"eps", util::format_float(epsilon, 4)}});
  }
  return pt;
}

std::vector<RobustnessPoint> robustness_curve(
    nn::Classifier& model, Attack& atk, const Tensor& x,
    const std::vector<std::int64_t>& labels,
    const std::vector<double>& epsilons, const EvalConfig& cfg) {
  std::vector<RobustnessPoint> out;
  out.reserve(epsilons.size());
  for (const double eps : epsilons)
    out.push_back(evaluate_attack(model, atk, x, labels, eps, cfg));
  return out;
}

}  // namespace snnsec::attack
