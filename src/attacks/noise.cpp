#include "attacks/noise.hpp"

namespace snnsec::attack {

using tensor::Tensor;

Tensor UniformNoise::perturb(nn::Classifier& /*model*/, const Tensor& x,
                             const std::vector<std::int64_t>& /*labels*/,
                             const AttackBudget& budget) {
  Tensor adv = x;
  const float eps = static_cast<float>(budget.epsilon);
  float* p = adv.data();
  for (std::int64_t i = 0; i < adv.numel(); ++i)
    p[i] += static_cast<float>(rng_.uniform(-eps, eps));
  project_linf(adv, x, budget);
  return adv;
}

Tensor GaussianNoise::perturb(nn::Classifier& /*model*/, const Tensor& x,
                              const std::vector<std::int64_t>& /*labels*/,
                              const AttackBudget& budget) {
  Tensor adv = x;
  const double eps = budget.epsilon;
  float* p = adv.data();
  for (std::int64_t i = 0; i < adv.numel(); ++i)
    p[i] += static_cast<float>(rng_.normal(0.0, eps));
  project_linf(adv, x, budget);
  return adv;
}

}  // namespace snnsec::attack
