// Binary tensor (de)serialization — used to checkpoint trained models so
// expensive grid cells can be cached across bench runs.
//
// Format (little-endian):
//   magic "SNNT" | u32 version | u32 ndim | i64 dims[ndim] | f32 data[numel]
// A named archive simply concatenates (u32 name_len | name | tensor) records
// after a "SNNA" header. The *_file writers replace the destination
// atomically (write-to-temp + fsync + rename) so a killed process never
// leaves a truncated checkpoint behind.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

void save_tensor(std::ostream& os, const Tensor& t);
Tensor load_tensor(std::istream& is);

void save_tensor_file(const std::string& path, const Tensor& t);
Tensor load_tensor_file(const std::string& path);

/// Ordered name->tensor archive.
void save_archive(std::ostream& os, const std::map<std::string, Tensor>& items);
std::map<std::string, Tensor> load_archive(std::istream& is);

void save_archive_file(const std::string& path,
                       const std::map<std::string, Tensor>& items);
std::map<std::string, Tensor> load_archive_file(const std::string& path);

}  // namespace snnsec::tensor
