// Tensor: dense, contiguous, row-major float32 array with value semantics.
//
// Design notes:
//  * float32 only — the precision the paper's stack (PyTorch/Norse) trains
//    in; keeping one dtype keeps every kernel simple and testable.
//  * Deep-copy value semantics; moves are O(1). No views/aliasing — layers
//    that need zero-copy reshapes use reshaped(), which reuses the buffer
//    when called on an rvalue.
//  * All indexing is bounds-checked through at(); hot kernels use data()
//    pointers after validating shapes once.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::tensor {

class Tensor {
 public:
  /// Empty (rank-0, one element, value 0).
  Tensor() : shape_(), data_(1, 0.0f) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}

  /// Adopt an existing buffer; sizes must match.
  Tensor(Shape shape, std::vector<float> data);

  // ---- factories -------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  static Tensor from_vector(Shape shape, std::vector<float> data) {
    return Tensor(std::move(shape), std::move(data));
  }
  static Tensor scalar(float value) {
    Tensor t;
    t.data_[0] = value;
    return t;
  }
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo = 0.0f,
                             float hi = 1.0f);
  static Tensor bernoulli(Shape shape, util::Rng& rng, double p);
  /// [n] tensor with evenly spaced values from `start` (inclusive) stepping
  /// by `step`.
  static Tensor arange(std::int64_t n, float start = 0.0f, float step = 1.0f);

  // ---- geometry --------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return shape_.ndim(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }

  /// Same data, new shape (numel must match). On an lvalue this copies; on
  /// an rvalue the buffer is moved.
  Tensor reshaped(Shape new_shape) const&;
  Tensor reshaped(Shape new_shape) &&;

  Tensor clone() const { return *this; }

  // ---- element access --------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // Flat access is the hot-loop path, so the bounds check lives in the
  // checked tier only (-DSNNSEC_CHECKED=ON); at() is always checked.
  float& operator[](std::int64_t flat) {
    SNNSEC_DCHECK(flat >= 0 && flat < numel(),
                  "flat index " << flat << " out of range [0, " << numel()
                                << ") for " << shape_.to_string());
    return data_[static_cast<std::size_t>(flat)];
  }
  float operator[](std::int64_t flat) const {
    SNNSEC_DCHECK(flat >= 0 && flat < numel(),
                  "flat index " << flat << " out of range [0, " << numel()
                                << ") for " << shape_.to_string());
    return data_[static_cast<std::size_t>(flat)];
  }

  /// Bounds-checked multi-index access (rank must match argument count).
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// Flat offset of a multi-index (bounds-checked).
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  // ---- in-place element-wise helpers ------------------------------------
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);          ///< this += other (same shape)
  Tensor& sub_(const Tensor& other);          ///< this -= other (same shape)
  Tensor& mul_(const Tensor& other);          ///< this *= other (same shape)
  Tensor& add_scalar_(float s);
  Tensor& mul_scalar_(float s);
  Tensor& axpy_(float alpha, const Tensor& x);  ///< this += alpha * x
  Tensor& clamp_(float lo, float hi);
  Tensor& zero_() { return fill(0.0f); }

  // ---- misc --------------------------------------------------------------
  /// True when shapes are equal and all elements are within `atol`.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  /// Short debug string: "Tensor[2, 3] {0.1, 0.2, ...}".
  std::string to_string(std::int64_t max_elems = 8) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace snnsec::tensor
