#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace snnsec::tensor {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SNNSEC_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
               "buffer size " << data_.size() << " does not match shape "
                              << shape_.to_string());
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  rng.fill_normal(t.data(), static_cast<std::size_t>(t.numel()), mean, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t.data(), static_cast<std::size_t>(t.numel()), lo, hi);
  return t;
}

Tensor Tensor::bernoulli(Shape shape, util::Rng& rng, double p) {
  Tensor t(std::move(shape));
  rng.fill_bernoulli(t.data(), static_cast<std::size_t>(t.numel()), p);
  return t;
}

Tensor Tensor::arange(std::int64_t n, float start, float step) {
  SNNSEC_CHECK(n >= 0, "arange with negative n");
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i)
    t[i] = start + step * static_cast<float>(i);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
  SNNSEC_CHECK(new_shape.numel() == numel(),
               "reshape " << shape_.to_string() << " -> "
                          << new_shape.to_string() << " changes numel");
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

Tensor Tensor::reshaped(Shape new_shape) && {
  SNNSEC_CHECK(new_shape.numel() == numel(),
               "reshape " << shape_.to_string() << " -> "
                          << new_shape.to_string() << " changes numel");
  shape_ = std::move(new_shape);
  return std::move(*this);
}

std::int64_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  SNNSEC_CHECK(static_cast<std::int64_t>(idx.size()) == ndim(),
               "index rank " << idx.size() << " != tensor rank " << ndim());
  std::int64_t flat = 0;
  std::int64_t i = 0;
  const auto strides = shape_.strides();
  for (const std::int64_t v : idx) {
    const std::int64_t extent = shape_[i];
    SNNSEC_CHECK(v >= 0 && v < extent, "index " << v << " out of bounds for dim "
                                                << i << " of "
                                                << shape_.to_string());
    flat += v * strides[static_cast<std::size_t>(i)];
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset(idx))];
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  SNNSEC_CHECK(shape_ == other.shape_, "add_: shape mismatch "
                                           << shape_.to_string() << " vs "
                                           << other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  SNNSEC_CHECK(shape_ == other.shape_, "sub_: shape mismatch "
                                           << shape_.to_string() << " vs "
                                           << other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  SNNSEC_CHECK(shape_ == other.shape_, "mul_: shape mismatch "
                                           << shape_.to_string() << " vs "
                                           << other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::add_scalar_(float s) {
  for (float& v : data_) v += s;
  return *this;
}

Tensor& Tensor::mul_scalar_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  SNNSEC_CHECK(shape_ == x.shape_, "axpy_: shape mismatch "
                                       << shape_.to_string() << " vs "
                                       << x.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * x.data_[i];
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  SNNSEC_CHECK(lo <= hi, "clamp_: lo > hi");
  for (float& v : data_) v = std::min(hi, std::max(lo, v));
  return *this;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  return true;
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream oss;
  oss << "Tensor" << shape_.to_string() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) oss << ", ";
    oss << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) oss << ", ...";
  oss << '}';
  return oss.str();
}

}  // namespace snnsec::tensor
