// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "tensor/im2col.hpp"

#include "obs/trace.hpp"
#include "util/checked.hpp"

namespace snnsec::tensor {

void ConvGeometry::validate() const {
  SNNSEC_CHECK(channels > 0 && height > 0 && width > 0,
               "ConvGeometry: non-positive input dims");
  SNNSEC_CHECK(kernel_h > 0 && kernel_w > 0, "ConvGeometry: non-positive kernel");
  SNNSEC_CHECK(stride_h > 0 && stride_w > 0, "ConvGeometry: non-positive stride");
  SNNSEC_CHECK(pad_h >= 0 && pad_w >= 0, "ConvGeometry: negative padding");
  SNNSEC_CHECK(out_h() > 0 && out_w() > 0,
               "ConvGeometry: empty output (" << out_h() << "x" << out_w()
                                              << ")");
}

void im2col(const ConvGeometry& g, const float* image, float* columns) {
  SNNSEC_TRACE_SCOPE("im2col");
  im2col_ld(g, image, columns, g.out_h() * g.out_w(), 0);
}

void col2im(const ConvGeometry& g, const float* columns, float* image_grad) {
  SNNSEC_TRACE_SCOPE("col2im");
  col2im_ld(g, columns, image_grad, g.out_h() * g.out_w(), 0);
}

void im2col_ld(const ConvGeometry& g, const float* image, float* columns,
               std::int64_t ld, std::int64_t col0) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  SNNSEC_DCHECK(ld >= oh * ow && col0 >= 0 && col0 + oh * ow <= ld,
                "im2col_ld: window [" << col0 << ", " << col0 + oh * ow
                                      << ") exceeds leading dim " << ld);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* plane = image + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = columns + row * ld + col0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) {
            for (std::int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* src_row = plane + iy * g.width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride_w + kw - g.pad_w;
            dst[oy * ow + ox] =
                (ix >= 0 && ix < g.width) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_ld(const ConvGeometry& g, const float* columns, float* image_grad,
               std::int64_t ld, std::int64_t col0) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  SNNSEC_DCHECK(ld >= oh * ow && col0 >= 0 && col0 + oh * ow <= ld,
                "col2im_ld: window [" << col0 << ", " << col0 + oh * ow
                                      << ") exceeds leading dim " << ld);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* plane = image_grad + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = columns + row * ld + col0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) continue;
          float* dst_row = plane + iy * g.width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride_w + kw - g.pad_w;
            if (ix >= 0 && ix < g.width) dst_row[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace snnsec::tensor
