// Event-driven spike kernels: compressed per-row index lists + the
// event-accumulate GEMM that consumes them.
//
// Spike tensors are mostly zeros (obs probes show 5–20% firing rates), so a
// GEMM whose A operand is a spike slab wastes 80–95% of its work touching
// zeros. The zero-skip row kernel in gemm.cpp already skips the multiplies
// but still scans every element of every row on every call. This module goes
// one step further: the operand is compressed ONCE into per-row event lists
// (column index + value per non-zero), and the kernel streams rows of the
// packed B operand only for firing indices.
//
// Representation (EventRows): per-row counts over a fixed-capacity layout —
// row i's events occupy index/value[i*stride .. i*stride + count[i]). The
// fixed stride makes the build single-pass and embarrassingly parallel (no
// prefix sum), and capacity is bump-arena virtual memory: untouched tail
// pages of a mostly-silent slab never cost RSS.
//
// Determinism contract: events are emitted in strictly increasing column
// order, the accumulate kernel processes them in that order with a fixed
// 4-way association, and every row of C is computed independently — so
// results are bit-identical across batch sizes, call counts, and thread
// counts. This is what lets layers resolve the event kernel once and rely
// on batched-vs-single and serial-vs-parallel bit-identity (DESIGN.md §14).
//
// All scratch and the event lists themselves live in util::Workspace arenas;
// steady-state calls perform zero heap allocations.
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace snnsec::util {
class Workspace;
}

namespace snnsec::tensor {

/// Compressed view of a sparse [rows, cols] operand. Row i's events live at
/// index/value[i*stride .. i*stride + count[i]), in increasing column order.
/// The arrays are borrowed (typically workspace memory) — an EventRows is
/// only valid while the arena scope it was built under is alive.
struct EventRows {
  const std::int32_t* count = nullptr;  ///< [rows] events per row
  const std::int32_t* index = nullptr;  ///< column index per event
  const float* value = nullptr;         ///< operand value per event
  std::int64_t rows = 0;
  std::int64_t cols = 0;    ///< logical width (the GEMM K dimension)
  std::int64_t stride = 0;  ///< capacity per row in index/value
};

/// Compress a row-major matrix [rows, cols] (leading dimension lda >= cols)
/// into event lists allocated from `ws`. Scans each row left-to-right, so
/// event order is increasing column index; rows build independently (and in
/// parallel for large operands) with bit-identical results either way.
EventRows build_event_rows(const float* a, std::int64_t lda, std::int64_t rows,
                           std::int64_t cols, util::Workspace& ws);

/// Compress a conv input batch [batch, C, H, W] (contiguous, flattened)
/// directly into the event lists of its im2row matrix [batch*OH*OW, patch]
/// — the transpose of the im2col column matrix — without materializing the
/// dense lowering. Patch indices follow im2col's row order
/// (c*KH*KW + kh*KW + kw), so conv-as-GEMM becomes
///   Ct [batch*OH*OW, Cout] = events x W^T
/// with the spike sparsity in the event operand where the kernel can use it.
///
/// This is the REFERENCE formulation of the event conv: materializing the
/// patch lists duplicates every input event up to KH*KW-fold (receptive
/// fields overlap), so the production path is conv_events below; this stays
/// as the independently-testable spec the scatter kernel is checked against.
EventRows build_conv_events(const ConvGeometry& g, const float* images,
                            std::int64_t batch, util::Workspace& ws);

/// Event-driven conv forward, scatter formulation:
///   Ct [batch*OH*OW, cout] (row-major, leading dimension cout) with
///   Ct[(i*OH*OW + oy*OW + ox), :] = sum over patch events of v * W^T[p, :]
/// computed by walking the INPUT events once — each nonzero input pixel
/// accumulates its value-scaled weight row into every receptive-field
/// window it occupies — instead of materializing per-patch lists. Work and
/// memory traffic scale with input events x KH*KW x cout; silent scanlines
/// cost one count load. `w` is the [cout, patch] GEMM-ready weight matrix
/// (packed transposed internally). Result equals
/// gemm_events(build_conv_events(...), Trans::kYes, ...) up to summation
/// association (each output element still accumulates in ascending patch
/// order, but one event at a time rather than four-way grouped).
///
/// Determinism: samples are independent (parallelism is over the batch
/// only) and events within a sample apply in (c, iy, ix) scan order, so
/// results are bit-identical across batch sizes, call counts, and thread
/// counts.
void conv_events(const ConvGeometry& g, const float* images,
                 std::int64_t batch, const float* w, std::int64_t cout,
                 float* ct, util::Workspace& ws);

/// C = alpha * E * op(B) + beta * C, where E is the [rows, cols] operand
/// described by `ev` and op(B) is [cols, n]. Same stride semantics as
/// gemm_raw: op(B)[p,j] lives at b[p*ldb + j] (kNo) or b[j*ldb + p] (kYes);
/// C row i starts at c[i*ldc]. Rows are computed independently — serial and
/// parallel execution are bit-identical.
void gemm_events(const EventRows& ev, Trans trans_b, std::int64_t n,
                 float alpha, const float* b, std::int64_t ldb, float beta,
                 float* c, std::int64_t ldc);

}  // namespace snnsec::tensor
