#include "tensor/serialize.hpp"

#include <cstring>
#include <fstream>

#include "util/fs_atomic.hpp"

namespace snnsec::tensor {

namespace {
constexpr char kTensorMagic[4] = {'S', 'N', 'N', 'T'};
constexpr char kArchiveMagic[4] = {'S', 'N', 'N', 'A'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SNNSEC_CHECK(is.good(), "truncated tensor stream (u32)");
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SNNSEC_CHECK(is.good(), "truncated tensor stream (i64)");
  return v;
}
}  // namespace

void save_tensor(std::ostream& os, const Tensor& t) {
  os.write(kTensorMagic, 4);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(t.ndim()));
  for (std::int64_t i = 0; i < t.ndim(); ++i) write_i64(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  SNNSEC_CHECK(os.good(), "tensor write failed");
}

Tensor load_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  SNNSEC_CHECK(is.good() && std::memcmp(magic, kTensorMagic, 4) == 0,
               "bad tensor magic");
  const std::uint32_t version = read_u32(is);
  SNNSEC_CHECK(version == kVersion, "unsupported tensor version " << version);
  const std::uint32_t ndim = read_u32(is);
  SNNSEC_CHECK(ndim <= 16, "implausible tensor rank " << ndim);
  std::vector<std::int64_t> dims(ndim);
  for (auto& d : dims) {
    d = read_i64(is);
    SNNSEC_CHECK(d >= 0 && d <= (1LL << 40), "implausible tensor dim " << d);
  }
  Tensor t((Shape(dims)));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  SNNSEC_CHECK(is.good(), "truncated tensor payload");
  return t;
}

void save_tensor_file(const std::string& path, const Tensor& t) {
  // Write-then-rename: a crash mid-checkpoint must not leave a truncated
  // file where the next run's cache load will find it.
  util::atomic_write_file(path,
                          [&](std::ostream& os) { save_tensor(os, t); });
}

Tensor load_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SNNSEC_CHECK(is.is_open(), "cannot open " << path << " for reading");
  return load_tensor(is);
}

void save_archive(std::ostream& os,
                  const std::map<std::string, Tensor>& items) {
  os.write(kArchiveMagic, 4);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(items.size()));
  for (const auto& [name, t] : items) {
    write_u32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    save_tensor(os, t);
  }
  SNNSEC_CHECK(os.good(), "archive write failed");
}

std::map<std::string, Tensor> load_archive(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  SNNSEC_CHECK(is.good() && std::memcmp(magic, kArchiveMagic, 4) == 0,
               "bad archive magic");
  const std::uint32_t version = read_u32(is);
  SNNSEC_CHECK(version == kVersion, "unsupported archive version " << version);
  const std::uint32_t count = read_u32(is);
  std::map<std::string, Tensor> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = read_u32(is);
    SNNSEC_CHECK(len <= 4096, "implausible archive entry name length " << len);
    std::string name(len, '\0');
    is.read(name.data(), len);
    SNNSEC_CHECK(is.good(), "truncated archive entry name");
    out.emplace(std::move(name), load_tensor(is));
  }
  return out;
}

void save_archive_file(const std::string& path,
                       const std::map<std::string, Tensor>& items) {
  util::atomic_write_file(path,
                          [&](std::ostream& os) { save_archive(os, items); });
}

std::map<std::string, Tensor> load_archive_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SNNSEC_CHECK(is.is_open(), "cannot open " << path << " for reading");
  return load_archive(is);
}

}  // namespace snnsec::tensor
