// Shape: the dimension vector of a dense row-major tensor.
//
// A Shape owns a small vector of non-negative extents. Rank-0 (scalar)
// shapes are allowed and have numel() == 1. Strides are derived, not stored:
// all snnsec tensors are contiguous row-major.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace snnsec::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::int64_t ndim() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t operator[](std::int64_t i) const;
  /// Python-style: dim(-1) is the last dimension.
  std::int64_t dim(std::int64_t i) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Product of all extents (1 for rank-0).
  std::int64_t numel() const;

  /// Row-major strides, in elements.
  std::vector<std::int64_t> strides() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 4]"
  std::string to_string() const;

  /// Shape with dimension `i` removed (for reductions).
  Shape without_dim(std::int64_t i) const;

  /// Shape with an extra size-1 dimension inserted at `i`.
  Shape with_dim_inserted(std::int64_t i, std::int64_t extent) const;

  /// Result shape of broadcasting `a` against `b` (NumPy trailing-alignment
  /// rules). Throws util::Error when incompatible.
  static Shape broadcast(const Shape& a, const Shape& b);

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace snnsec::tensor
