// im2col / col2im: lower 2-D convolution to GEMM.
//
// Layout conventions (all row-major):
//   image  : [C, H, W]                        (single sample)
//   column : [C*KH*KW, OH*OW]
// so that conv output = weight_matrix [Cout, C*KH*KW] x column.
// col2im is the exact adjoint (scatter-add), used by conv backward.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;

  std::int64_t out_h() const {
    return (height + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  /// Rows of the column matrix.
  std::int64_t patch_size() const { return channels * kernel_h * kernel_w; }

  /// Throws util::Error when kernel/stride/padding do not produce a
  /// positive output size.
  void validate() const;
};

/// Expand `image` ([C,H,W] flattened, length C*H*W) into `columns`
/// ([patch_size, OH*OW] flattened). `columns` must be pre-sized; padding
/// contributes zeros.
void im2col(const ConvGeometry& g, const float* image, float* columns);

/// Adjoint of im2col: scatter-add `columns` back into `image_grad`
/// (length C*H*W). Caller zeroes image_grad beforehand if required.
void col2im(const ConvGeometry& g, const float* columns, float* image_grad);

/// Strided variants for batched lowering: the column matrix has `ld` total
/// columns (ld >= OH*OW) and this sample's block starts at column `col0`,
/// i.e. element (row, j) lives at columns[row * ld + col0 + j]. Used to
/// build one [patch_size, N*OH*OW] matrix for a whole batch so conv becomes
/// a single large GEMM.
void im2col_ld(const ConvGeometry& g, const float* image, float* columns,
               std::int64_t ld, std::int64_t col0);
void col2im_ld(const ConvGeometry& g, const float* columns, float* image_grad,
               std::int64_t ld, std::int64_t col0);

}  // namespace snnsec::tensor
