// Element-wise, broadcast, and reduction kernels over Tensor.
//
// All functions return new tensors (value semantics); in-place variants live
// on Tensor itself. Binary ops support full NumPy-style trailing-dimension
// broadcasting via Shape::broadcast.
#pragma once

#include <cstdint>
#include <functional>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

// ---- broadcast binary ops -------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);

/// Generic broadcast binary op (used by the named ops above and by tests).
Tensor broadcast_binary(const Tensor& a, const Tensor& b,
                        const std::function<float(float, float)>& op);

// ---- scalar ops -------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- unary ops --------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);  ///< -1 / 0 / +1 per element
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);  ///< natural log; caller ensures positivity
Tensor sqrt(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor relu(const Tensor& a);
/// Heaviside step: 1 where a > 0, else 0.
Tensor heaviside(const Tensor& a);

// ---- reductions -------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);
float min_value(const Tensor& a);
/// Index of the max element in a flat view.
std::int64_t argmax_flat(const Tensor& a);
/// Max L∞ distance between two same-shaped tensors.
float linf_distance(const Tensor& a, const Tensor& b);
/// Frobenius / L2 norm.
float l2_norm(const Tensor& a);

/// Sum over one dimension: [d0,...,di,...,dn] -> [d0,...,dn] (dim removed).
Tensor sum_dim(const Tensor& a, std::int64_t dim);
/// Mean over one dimension.
Tensor mean_dim(const Tensor& a, std::int64_t dim);
/// Max over one dimension; when `indices` is non-null it receives the argmax
/// positions (same shape as the result) for gradient routing.
Tensor max_dim(const Tensor& a, std::int64_t dim,
               std::vector<std::int64_t>* indices = nullptr);
/// Row-wise argmax of a [N, C] matrix -> vector of N class indices.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

// ---- matrix ops --------------------------------------------------------------
/// 2-D transpose.
Tensor transpose(const Tensor& a);

/// Row-wise softmax of [N, C].
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of [N, C] (numerically stable).
Tensor log_softmax_rows(const Tensor& logits);

/// One-hot encode `labels` (size N, values in [0, classes)) as [N, classes].
Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t classes);

}  // namespace snnsec::tensor
