#include "tensor/shape.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace snnsec::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_)
    SNNSEC_CHECK(d >= 0, "negative extent in shape " << to_string());
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_)
    SNNSEC_CHECK(d >= 0, "negative extent in shape " << to_string());
}

std::int64_t Shape::operator[](std::int64_t i) const { return dim(i); }

std::int64_t Shape::dim(std::int64_t i) const {
  const std::int64_t n = ndim();
  if (i < 0) i += n;
  SNNSEC_CHECK(i >= 0 && i < n,
               "dim index " << i << " out of range for " << to_string());
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (std::int64_t i = ndim() - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) oss << ", ";
    oss << dims_[i];
  }
  oss << ']';
  return oss.str();
}

Shape Shape::without_dim(std::int64_t i) const {
  const std::int64_t n = ndim();
  if (i < 0) i += n;
  SNNSEC_CHECK(i >= 0 && i < n,
               "without_dim index " << i << " out of range for " << to_string());
  std::vector<std::int64_t> out = dims_;
  out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
  return Shape(std::move(out));
}

Shape Shape::with_dim_inserted(std::int64_t i, std::int64_t extent) const {
  const std::int64_t n = ndim();
  if (i < 0) i += n + 1;
  SNNSEC_CHECK(i >= 0 && i <= n, "with_dim_inserted index " << i
                                     << " out of range for " << to_string());
  SNNSEC_CHECK(extent >= 0, "negative extent " << extent);
  std::vector<std::int64_t> out = dims_;
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(i), extent);
  return Shape(std::move(out));
}

Shape Shape::broadcast(const Shape& a, const Shape& b) {
  const std::int64_t na = a.ndim();
  const std::int64_t nb = b.ndim();
  const std::int64_t n = std::max(na, nb);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 1);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t da = (i < na) ? a.dims_[static_cast<std::size_t>(na - 1 - i)] : 1;
    const std::int64_t db = (i < nb) ? b.dims_[static_cast<std::size_t>(nb - 1 - i)] : 1;
    SNNSEC_CHECK(da == db || da == 1 || db == 1,
                 "cannot broadcast " << a.to_string() << " with "
                                     << b.to_string());
    out[static_cast<std::size_t>(n - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(out));
}

}  // namespace snnsec::tensor
