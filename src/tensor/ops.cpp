#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace snnsec::tensor {

namespace {

/// Apply `op` element-wise with broadcasting. Fast path when shapes match.
Tensor binary_impl(const Tensor& a, const Tensor& b, float (*op)(float, float)) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const std::int64_t n = a.numel();
    for (std::int64_t i = 0; i < n; ++i) po[i] = op(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = Shape::broadcast(a.shape(), b.shape());
  Tensor out(out_shape);
  const std::int64_t ndim = out_shape.ndim();
  const auto out_strides = out_shape.strides();

  // Build broadcast strides for each input: stride 0 where the input extent
  // is 1, aligned at trailing dimensions.
  auto bcast_strides = [&](const Shape& s) {
    std::vector<std::int64_t> st(static_cast<std::size_t>(ndim), 0);
    const auto own = s.strides();
    const std::int64_t offset = ndim - s.ndim();
    for (std::int64_t i = 0; i < s.ndim(); ++i) {
      st[static_cast<std::size_t>(offset + i)] =
          (s[i] == 1) ? 0 : own[static_cast<std::size_t>(i)];
    }
    return st;
  };
  const auto sa = bcast_strides(a.shape());
  const auto sb = bcast_strides(b.shape());

  const std::int64_t total = out_shape.numel();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(ndim), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  std::int64_t off_a = 0;
  std::int64_t off_b = 0;
  for (std::int64_t flat = 0; flat < total; ++flat) {
    po[flat] = op(pa[off_a], pb[off_b]);
    // Odometer increment over the output index, updating input offsets.
    for (std::int64_t d = ndim - 1; d >= 0; --d) {
      auto& iv = idx[static_cast<std::size_t>(d)];
      ++iv;
      off_a += sa[static_cast<std::size_t>(d)];
      off_b += sb[static_cast<std::size_t>(d)];
      if (iv < out_shape[d]) break;
      off_a -= sa[static_cast<std::size_t>(d)] * iv;
      off_b -= sb[static_cast<std::size_t>(d)] * iv;
      iv = 0;
    }
  }
  return out;
}

Tensor unary_impl(const Tensor& a, float (*op)(float)) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = op(pa[i]);
  return out;
}

}  // namespace

Tensor broadcast_binary(const Tensor& a, const Tensor& b,
                        const std::function<float(float, float)>& op) {
  // Generic (std::function) version used by tests; routes through a thunk.
  thread_local const std::function<float(float, float)>* current = nullptr;
  current = &op;
  return binary_impl(a, b, [](float x, float y) { return (*current)(x, y); });
}

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return x / y; });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return std::max(x, y); });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return binary_impl(a, b, [](float x, float y) { return std::min(x, y); });
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  out.add_scalar_(s);
  return out;
}
Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a;
  out.mul_scalar_(s);
  return out;
}

Tensor neg(const Tensor& a) {
  return unary_impl(a, [](float x) { return -x; });
}
Tensor abs(const Tensor& a) {
  return unary_impl(a, [](float x) { return std::fabs(x); });
}
Tensor sign(const Tensor& a) {
  return unary_impl(a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}
Tensor exp(const Tensor& a) {
  return unary_impl(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_impl(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_impl(a, [](float x) { return std::sqrt(x); });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out = a;
  out.clamp_(lo, hi);
  return out;
}
Tensor relu(const Tensor& a) {
  return unary_impl(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor heaviside(const Tensor& a) {
  return unary_impl(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

float sum(const Tensor& a) {
  // Pairwise-ish accumulation in double for stable reductions.
  double acc = 0.0;
  const float* p = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  SNNSEC_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  SNNSEC_CHECK(a.numel() > 0, "max of empty tensor");
  return *std::max_element(a.data(), a.data() + a.numel());
}

float min_value(const Tensor& a) {
  SNNSEC_CHECK(a.numel() > 0, "min of empty tensor");
  return *std::min_element(a.data(), a.data() + a.numel());
}

std::int64_t argmax_flat(const Tensor& a) {
  SNNSEC_CHECK(a.numel() > 0, "argmax of empty tensor");
  return std::max_element(a.data(), a.data() + a.numel()) - a.data();
}

float linf_distance(const Tensor& a, const Tensor& b) {
  SNNSEC_CHECK(a.shape() == b.shape(), "linf_distance shape mismatch");
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

namespace {
/// Decompose a shape around `dim` into (outer, extent, inner) so that
/// flat = (o * extent + k) * inner + j.
struct DimSplit {
  std::int64_t outer = 1;
  std::int64_t extent = 1;
  std::int64_t inner = 1;
};
DimSplit split_at(const Shape& s, std::int64_t dim) {
  if (dim < 0) dim += s.ndim();
  SNNSEC_CHECK(dim >= 0 && dim < s.ndim(),
               "reduction dim " << dim << " out of range for " << s.to_string());
  DimSplit out;
  for (std::int64_t i = 0; i < dim; ++i) out.outer *= s[i];
  out.extent = s[dim];
  for (std::int64_t i = dim + 1; i < s.ndim(); ++i) out.inner *= s[i];
  return out;
}
}  // namespace

Tensor sum_dim(const Tensor& a, std::int64_t dim) {
  const DimSplit sp = split_at(a.shape(), dim);
  Tensor out(a.shape().without_dim(dim));
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t o = 0; o < sp.outer; ++o) {
    for (std::int64_t k = 0; k < sp.extent; ++k) {
      const float* src = pa + (o * sp.extent + k) * sp.inner;
      float* dst = po + o * sp.inner;
      for (std::int64_t j = 0; j < sp.inner; ++j) dst[j] += src[j];
    }
  }
  return out;
}

Tensor mean_dim(const Tensor& a, std::int64_t dim) {
  const DimSplit sp = split_at(a.shape(), dim);
  SNNSEC_CHECK(sp.extent > 0, "mean_dim over empty dimension");
  Tensor out = sum_dim(a, dim);
  out.mul_scalar_(1.0f / static_cast<float>(sp.extent));
  return out;
}

Tensor max_dim(const Tensor& a, std::int64_t dim,
               std::vector<std::int64_t>* indices) {
  const DimSplit sp = split_at(a.shape(), dim);
  SNNSEC_CHECK(sp.extent > 0, "max_dim over empty dimension");
  Tensor out(a.shape().without_dim(dim),
             -std::numeric_limits<float>::infinity());
  if (indices != nullptr)
    indices->assign(static_cast<std::size_t>(out.numel()), 0);
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t o = 0; o < sp.outer; ++o) {
    for (std::int64_t k = 0; k < sp.extent; ++k) {
      const float* src = pa + (o * sp.extent + k) * sp.inner;
      float* dst = po + o * sp.inner;
      for (std::int64_t j = 0; j < sp.inner; ++j) {
        if (src[j] > dst[j]) {
          dst[j] = src[j];
          if (indices != nullptr)
            (*indices)[static_cast<std::size_t>(o * sp.inner + j)] = k;
        }
      }
    }
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  SNNSEC_CHECK(a.ndim() == 2, "argmax_rows expects [N, C], got "
                                  << a.shape().to_string());
  const std::int64_t n = a.dim(0);
  const std::int64_t c = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * c;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + c) - row;
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  SNNSEC_CHECK(a.ndim() == 2, "transpose expects rank-2, got "
                                  << a.shape().to_string());
  const std::int64_t r = a.dim(0);
  const std::int64_t c = a.dim(1);
  Tensor out(Shape{c, r});
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[j * r + i] = pa[i * c + j];
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  SNNSEC_CHECK(logits.ndim() == 2, "softmax_rows expects [N, C], got "
                                       << logits.shape().to_string());
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    const float m = *std::max_element(row, row + c);
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - m);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  SNNSEC_CHECK(logits.ndim() == 2, "log_softmax_rows expects [N, C], got "
                                       << logits.shape().to_string());
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    const float m = *std::max_element(row, row + c);
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - m);
    const float lse = m + static_cast<float>(std::log(denom));
    for (std::int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t classes) {
  SNNSEC_CHECK(classes > 0, "one_hot: classes must be positive");
  Tensor out(Shape{static_cast<std::int64_t>(labels.size()), classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::int64_t l = labels[i];
    SNNSEC_CHECK(l >= 0 && l < classes,
                 "one_hot: label " << l << " outside [0, " << classes << ")");
    out[static_cast<std::int64_t>(i) * classes + l] = 1.0f;
  }
  return out;
}

}  // namespace snnsec::tensor
