// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::tensor {

namespace {

struct Dims {
  std::int64_t m = 0, n = 0, k = 0;
};

Dims check_dims(Trans trans_a, Trans trans_b, const Tensor& a,
                const Tensor& b) {
  SNNSEC_CHECK(a.ndim() == 2 && b.ndim() == 2,
               "gemm expects rank-2 operands, got " << a.shape().to_string()
                                                    << " and "
                                                    << b.shape().to_string());
  Dims d;
  const std::int64_t a_rows = a.dim(0), a_cols = a.dim(1);
  const std::int64_t b_rows = b.dim(0), b_cols = b.dim(1);
  d.m = (trans_a == Trans::kNo) ? a_rows : a_cols;
  d.k = (trans_a == Trans::kNo) ? a_cols : a_rows;
  const std::int64_t bk = (trans_b == Trans::kNo) ? b_rows : b_cols;
  d.n = (trans_b == Trans::kNo) ? b_cols : b_rows;
  SNNSEC_CHECK(d.k == bk, "gemm inner-dimension mismatch: "
                              << a.shape().to_string() << " x "
                              << b.shape().to_string());
  return d;
}

inline float load_a(Trans ta, const float* a, std::int64_t lda, std::int64_t i,
                    std::int64_t p) {
  return (ta == Trans::kNo) ? a[i * lda + p] : a[p * lda + i];
}

inline float load_b(Trans tb, const float* b, std::int64_t ldb, std::int64_t p,
                    std::int64_t j) {
  return (tb == Trans::kNo) ? b[p * ldb + j] : b[j * ldb + p];
}

// ---- blocked dense kernel --------------------------------------------------
//
// BLIS-style three-level blocking: C is computed in MC x NC tiles, each as a
// sum over KC slabs. Within a tile the work is an array of MR x NR register
// microkernels reading zero-padded pack buffers, so the innermost loops have
// no branches and fixed trip counts the compiler unrolls and vectorizes.
//
// MR*NR accumulators (4x8 = 8 SSE vectors) plus one B row and one A
// broadcast fit the x86-64 baseline register file without spilling.
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kNR = 8;
constexpr std::int64_t kMC = 128;  // A block rows   (multiple of MR)
constexpr std::int64_t kKC = 256;  // shared K slab
constexpr std::int64_t kNC = 512;  // B block cols   (multiple of NR)

inline std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

/// Pack op(A)[i0:i0+mb, p0:p0+kb] into MR-row panels, ap[panel][kk][r],
/// zero-padding the ragged last panel so microkernels never branch on m.
void pack_a_block(Trans ta, const float* a, std::int64_t lda, std::int64_t i0,
                  std::int64_t mb, std::int64_t p0, std::int64_t kb,
                  float* ap) {
  const std::int64_t panels = (mb + kMR - 1) / kMR;
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    float* dst = ap + ip * kb * kMR;
    const std::int64_t rows = std::min(kMR, mb - ip * kMR);
    for (std::int64_t kk = 0; kk < kb; ++kk) {
      for (std::int64_t r = 0; r < rows; ++r)
        dst[kk * kMR + r] = load_a(ta, a, lda, i0 + ip * kMR + r, p0 + kk);
      for (std::int64_t r = rows; r < kMR; ++r) dst[kk * kMR + r] = 0.0f;
    }
  }
}

/// Pack op(B)[p0:p0+kb, j0:j0+nb] into NR-column panels, bp[panel][kk][c],
/// zero-padded to a multiple of NR columns.
void pack_b_block(Trans tb, const float* b, std::int64_t ldb, std::int64_t p0,
                  std::int64_t kb, std::int64_t j0, std::int64_t nb,
                  float* bp) {
  const std::int64_t panels = (nb + kNR - 1) / kNR;
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    float* dst = bp + jp * kb * kNR;
    const std::int64_t cols = std::min(kNR, nb - jp * kNR);
    for (std::int64_t kk = 0; kk < kb; ++kk) {
      for (std::int64_t c = 0; c < cols; ++c)
        dst[kk * kNR + c] = load_b(tb, b, ldb, p0 + kk, j0 + jp * kNR + c);
      for (std::int64_t c = cols; c < kNR; ++c) dst[kk * kNR + c] = 0.0f;
    }
  }
}

/// MR x NR register tile over a kb-long packed panel pair. The fixed trip
/// counts let the compiler keep all MR*NR accumulators in registers and emit
/// wide FMAs for the c loop.
inline void micro_kernel(std::int64_t kb, const float* ap, const float* bp,
                         float* acc) {
  float t[kMR * kNR] = {};
  for (std::int64_t kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kMR;
    const float* brow = bp + kk * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      for (std::int64_t c = 0; c < kNR; ++c) t[r * kNR + c] += av * brow[c];
    }
  }
  for (std::int64_t i = 0; i < kMR * kNR; ++i) acc[i] = t[i];
}

/// Write the valid rows x cols corner of an accumulator tile into C with the
/// alpha/beta contract. beta_eff is 0 on the first K slab (overwrite,
/// ignoring whatever garbage C held), 1 on subsequent slabs (accumulate).
inline void store_tile(float* c, std::int64_t ldc, const float* acc,
                       std::int64_t rows, std::int64_t cols, float alpha,
                       float beta_eff) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* arow = acc + r * kNR;
    // NOLINTNEXTLINE(snnsec-float-eq): beta 0/1 select the exact overwrite/accumulate fast paths; near-zero must still scale
    if (beta_eff == 0.0f) {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] = alpha * arow[j];
    // NOLINTNEXTLINE(snnsec-float-eq): beta exactly 1 selects the pure-accumulate fast path
    } else if (beta_eff == 1.0f) {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] += alpha * arow[j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j)
        crow[j] = beta_eff * crow[j] + alpha * arow[j];
    }
  }
}

/// All register-tile work for one packed (A block, B block) pair: the
/// jp x ip sweep of MR x NR microkernels plus the C stores.
SNNSEC_KERNEL_CLONES
void dense_tiles(std::int64_t kb, std::int64_t mb, std::int64_t nb,
                 std::int64_t nb_pad, const float* ap, const float* bp,
                 float* c, std::int64_t ldc, float alpha, float beta_eff) {
  const std::int64_t jps = nb_pad / kNR;
  const std::int64_t ips = (mb + kMR - 1) / kMR;
  for (std::int64_t jp = 0; jp < jps; ++jp) {
    for (std::int64_t ip = 0; ip < ips; ++ip) {
      float acc[kMR * kNR];
      micro_kernel(kb, ap + ip * kb * kMR, bp + jp * kb * kNR, acc);
      store_tile(c + ip * kMR * ldc + jp * kNR, ldc, acc,
                 std::min(kMR, mb - ip * kMR), std::min(kNR, nb - jp * kNR),
                 alpha, beta_eff);
    }
  }
}

/// One C row of the zero-skip kernel: saxpy rows of packed B for every
/// non-zero of op(A)'s row, then the alpha/beta store.
SNNSEC_KERNEL_CLONES
void sparse_row(std::int64_t k, std::int64_t n, Trans ta, const float* a,
                std::int64_t lda, std::int64_t i, const float* bp, float alpha,
                float beta, float* crow, float* acc) {
  std::fill(acc, acc + n, 0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float av = load_a(ta, a, lda, i, kk);
    // NOLINTNEXTLINE(snnsec-float-eq): spike operands are exactly 0 or 1; the sparsity skip must only drop true zeros
    if (av == 0.0f) continue;  // spike tensors are sparse; skip zeros
    const float* brow = bp + kk * n;
    for (std::int64_t j = 0; j < n; ++j) acc[j] += av * brow[j];
  }
  // NOLINTNEXTLINE(snnsec-float-eq): beta exactly 0 selects the overwrite path; near-zero must still scale C
  if (beta == 0.0f) {
    for (std::int64_t j = 0; j < n; ++j) crow[j] = alpha * acc[j];
  } else {
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] = beta * crow[j] + alpha * acc[j];
  }
}

void gemm_dense(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, std::int64_t lda,
                const float* b, std::int64_t ldb, float beta, float* c,
                std::int64_t ldc) {
  util::Workspace& ws = util::Workspace::local();
  const bool parallel = (m * n * k) >= (std::int64_t{1} << 16);
  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nb = std::min(kNC, n - jc);
    const std::int64_t nb_pad = round_up(nb, kNR);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kb = std::min(kKC, k - pc);
      const float beta_eff = (pc == 0) ? beta : 1.0f;
      util::Workspace::Scope pack_scope(ws);
      float* bp = ws.alloc<float>(static_cast<std::size_t>(kb * nb_pad));
      pack_b_block(tb, b, ldb, pc, kb, jc, nb, bp);

      const std::int64_t ic_blocks = (m + kMC - 1) / kMC;
      auto run_blocks = [&](std::int64_t blo, std::int64_t bhi) {
        // Workers pack A into their own thread's arena; bp is read-only
        // shared state owned by the caller's scope.
        util::Workspace& tws = util::Workspace::local();
        util::Workspace::Scope tile_scope(tws);
        float* ap = tws.alloc<float>(static_cast<std::size_t>(kb * kMC));
        for (std::int64_t bi = blo; bi < bhi; ++bi) {
          const std::int64_t ic = bi * kMC;
          const std::int64_t mb = std::min(kMC, m - ic);
          pack_a_block(ta, a, lda, ic, mb, pc, kb, ap);
          dense_tiles(kb, mb, nb, nb_pad, ap, bp, c + ic * ldc + jc, ldc,
                      alpha, beta_eff);
        }
      };
      if (!parallel || ic_blocks == 1)
        run_blocks(0, ic_blocks);
      else
        util::parallel_for_chunked(0, ic_blocks, run_blocks);
    }
  }
}

// ---- sparse (zero-skip) kernel ---------------------------------------------
//
// The seed row-panel kernel: for each row of C stream rows of packed op(B),
// skipping kk where op(A)[i,kk] == 0. With spike-train operands (typical
// firing rates 5–30%) the skip removes most of the memory traffic, which the
// blocked kernel cannot do. Scratch comes from the workspace, so unlike the
// seed this path no longer allocates per call.
void gemm_sparse(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float* a, std::int64_t lda,
                 const float* b, std::int64_t ldb, float beta, float* c,
                 std::int64_t ldc) {
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  float* bp = ws.alloc<float>(static_cast<std::size_t>(k * n));
  if (tb == Trans::kNo && ldb == n) {
    std::copy(b, b + k * n, bp);
  } else {
    for (std::int64_t kk = 0; kk < k; ++kk)
      for (std::int64_t j = 0; j < n; ++j)
        bp[kk * n + j] = load_b(tb, b, ldb, kk, j);
  }

  auto row_panel = [&](std::int64_t lo, std::int64_t hi) {
    util::Workspace& tws = util::Workspace::local();
    util::Workspace::Scope row_scope(tws);
    float* acc = tws.alloc<float>(static_cast<std::size_t>(n));
    for (std::int64_t i = lo; i < hi; ++i)
      sparse_row(k, n, ta, a, lda, i, bp, alpha, beta, c + i * ldc, acc);
  };

  if ((m * n * k) < (std::int64_t{1} << 16))
    row_panel(0, m);
  else
    util::parallel_for_chunked(0, m, row_panel);
}

}  // namespace

// Diagnostic only (header comment): no production call site reaches this —
// kernel selection is declared per layer and sticky, never data-probed.
bool probe_sparse(Trans trans_a, const float* a, std::int64_t lda,
                  std::int64_t m, std::int64_t k) {
  const std::int64_t total = m * k;
  const std::int64_t samples = std::min<std::int64_t>(256, total);
  if (samples <= 0) return false;
  std::int64_t zeros = 0;
  for (std::int64_t t = 0; t < samples; ++t) {
    // Rounded endpoint positions: t = samples-1 lands exactly on total-1,
    // so the matrix tail is always sampled (the old floor-stride walk ended
    // at most (total % samples) short of it and over-weighted early rows).
    const std::int64_t pos = ((t + 1) * total) / samples - 1;
    // NOLINTNEXTLINE(snnsec-float-eq): sparsity probe counts exact zeros, mirroring the kernel's skip test
    if (load_a(trans_a, a, lda, pos / k, pos % k) == 0.0f) ++zeros;
  }
  return zeros * 10 >= samples * 6;  // >= 60% zeros
}

void gemm_raw(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c,
              std::int64_t ldc, SparsityHint hint) {
  if (m <= 0 || n <= 0) return;
  SNNSEC_CHECK(hint != SparsityHint::kEvents,
               "gemm_raw: kEvents needs prebuilt event lists — build them "
               "with build_event_rows and call gemm_events instead");
  SNNSEC_COUNTER_ADD("tensor.gemm.calls", 1);
  SNNSEC_COUNTER_ADD("tensor.gemm.flops", 2 * m * n * k);
  if (hint == SparsityHint::kSparse) {
    SNNSEC_COUNTER_ADD("tensor.gemm.sparse_path", 1);
    gemm_sparse(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
  } else {
    gemm_dense(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc);
  }
}

// SNNSEC_HOT entry: every conv/fc lowers onto this call.
void gemm(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c, SparsityHint hint) {
  SNNSEC_TRACE_SCOPE("gemm");
  const Dims d = check_dims(trans_a, trans_b, a, b);
  SNNSEC_CHECK(c.ndim() == 2 && c.dim(0) == d.m && c.dim(1) == d.n,
               "gemm output shape " << c.shape().to_string() << " != ["
                                    << d.m << ", " << d.n << "]");
  gemm_raw(trans_a, trans_b, d.m, d.n, d.k, alpha, a.data(), a.dim(1),
           b.data(), b.dim(1), beta, c.data(), d.n, hint);
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a, Trans trans_b,
              SparsityHint hint) {
  const Dims d = check_dims(trans_a, trans_b, a, b);
  Tensor c(Shape{d.m, d.n});
  gemm(trans_a, trans_b, 1.0f, a, b, 0.0f, c, hint);
  return c;
}

// ---- frozen seed kernel ----------------------------------------------------

void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
                    const Tensor& b, float beta, Tensor& c) {
  const Dims d = check_dims(trans_a, trans_b, a, b);
  SNNSEC_CHECK(c.ndim() == 2 && c.dim(0) == d.m && c.dim(1) == d.n,
               "gemm_reference output shape " << c.shape().to_string()
                                              << " != [" << d.m << ", " << d.n
                                              << "]");
  // Seed implementation, serial, per-call scratch — kept bit-exact on
  // purpose; see the header note.
  std::vector<float> bp(static_cast<std::size_t>(d.k * d.n));
  {
    const float* pb = b.data();
    if (trans_b == Trans::kNo) {
      std::copy(pb, pb + d.k * d.n, bp.begin());
    } else {
      const std::int64_t ldb = b.dim(1);
      for (std::int64_t j = 0; j < d.n; ++j)
        for (std::int64_t kk = 0; kk < d.k; ++kk)
          bp[static_cast<std::size_t>(kk * d.n + j)] = pb[j * ldb + kk];
    }
  }
  const float* pb = bp.data();
  const float* pa = a.data();
  float* pc = c.data();
  const std::int64_t lda = a.dim(1);
  std::vector<float> acc(static_cast<std::size_t>(d.n));
  for (std::int64_t i = 0; i < d.m; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::int64_t kk = 0; kk < d.k; ++kk) {
      const float av =
          (trans_a == Trans::kNo) ? pa[i * lda + kk] : pa[kk * lda + i];
      // NOLINTNEXTLINE(snnsec-float-eq): spike operands are exactly 0 or 1; the sparsity skip must only drop true zeros
      if (av == 0.0f) continue;
      const float* brow = pb + kk * d.n;
      for (std::int64_t j = 0; j < d.n; ++j)
        acc[static_cast<std::size_t>(j)] += av * brow[j];
    }
    float* crow = pc + i * d.n;
    // NOLINTNEXTLINE(snnsec-float-eq): beta exactly 0 selects the overwrite path; near-zero must still scale C
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < d.n; ++j)
        crow[j] = alpha * acc[static_cast<std::size_t>(j)];
    } else {
      for (std::int64_t j = 0; j < d.n; ++j)
        crow[j] = beta * crow[j] + alpha * acc[static_cast<std::size_t>(j)];
    }
  }
}

}  // namespace snnsec::tensor
