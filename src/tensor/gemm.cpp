#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace snnsec::tensor {

namespace {

struct Dims {
  std::int64_t m = 0, n = 0, k = 0;
};

Dims check_dims(Trans trans_a, Trans trans_b, const Tensor& a,
                const Tensor& b) {
  SNNSEC_CHECK(a.ndim() == 2 && b.ndim() == 2,
               "gemm expects rank-2 operands, got " << a.shape().to_string()
                                                    << " and "
                                                    << b.shape().to_string());
  Dims d;
  const std::int64_t a_rows = a.dim(0), a_cols = a.dim(1);
  const std::int64_t b_rows = b.dim(0), b_cols = b.dim(1);
  d.m = (trans_a == Trans::kNo) ? a_rows : a_cols;
  d.k = (trans_a == Trans::kNo) ? a_cols : a_rows;
  const std::int64_t bk = (trans_b == Trans::kNo) ? b_rows : b_cols;
  d.n = (trans_b == Trans::kNo) ? b_cols : b_rows;
  SNNSEC_CHECK(d.k == bk, "gemm inner-dimension mismatch: "
                              << a.shape().to_string() << " x "
                              << b.shape().to_string());
  return d;
}

// Pack op(B) row-panel [K, N] contiguously once so the inner loop streams.
// For our sizes (K,N up to a few thousand) a full pack of B is affordable
// and keeps the kernel simple.
void pack_b(Trans trans_b, const Tensor& b, std::int64_t k, std::int64_t n,
            std::vector<float>& packed) {
  packed.resize(static_cast<std::size_t>(k * n));
  const float* pb = b.data();
  if (trans_b == Trans::kNo) {
    std::copy(pb, pb + k * n, packed.begin());
  } else {
    // b is [N, K]; packed[kk*n + j] = b[j, kk]
    const std::int64_t ldb = b.dim(1);
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t kk = 0; kk < k; ++kk)
        packed[static_cast<std::size_t>(kk * n + j)] = pb[j * ldb + kk];
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c) {
  SNNSEC_TRACE_SCOPE("gemm");
  const Dims d = check_dims(trans_a, trans_b, a, b);
  SNNSEC_COUNTER_ADD("tensor.gemm.calls", 1);
  SNNSEC_COUNTER_ADD("tensor.gemm.flops", 2 * d.m * d.n * d.k);
  SNNSEC_CHECK(c.ndim() == 2 && c.dim(0) == d.m && c.dim(1) == d.n,
               "gemm output shape " << c.shape().to_string() << " != ["
                                    << d.m << ", " << d.n << "]");

  std::vector<float> bp;
  pack_b(trans_b, b, d.k, d.n, bp);
  const float* pb = bp.data();
  const float* pa = a.data();
  float* pc = c.data();
  const std::int64_t lda = a.dim(1);

  // Row panel task: compute C[i, :] for i in [lo, hi).
  auto row_panel = [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(d.n));
    for (std::int64_t i = lo; i < hi; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::int64_t kk = 0; kk < d.k; ++kk) {
        const float av = (trans_a == Trans::kNo) ? pa[i * lda + kk]
                                                 : pa[kk * lda + i];
        if (av == 0.0f) continue;  // spike tensors are sparse; skip zeros
        const float* brow = pb + kk * d.n;
        for (std::int64_t j = 0; j < d.n; ++j) acc[static_cast<std::size_t>(j)] += av * brow[j];
      }
      float* crow = pc + i * d.n;
      if (beta == 0.0f) {
        for (std::int64_t j = 0; j < d.n; ++j)
          crow[j] = alpha * acc[static_cast<std::size_t>(j)];
      } else {
        for (std::int64_t j = 0; j < d.n; ++j)
          crow[j] = beta * crow[j] + alpha * acc[static_cast<std::size_t>(j)];
      }
    }
  };

  // Parallelize across row panels when the work is big enough to amortize
  // task dispatch.
  const std::int64_t flops = d.m * d.n * d.k;
  if (flops < (1 << 16)) {
    row_panel(0, d.m);
  } else {
    util::parallel_for_chunked(0, d.m, row_panel);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a, Trans trans_b) {
  const Dims d = check_dims(trans_a, trans_b, a, b);
  Tensor c(Shape{d.m, d.n});
  gemm(trans_a, trans_b, 1.0f, a, b, 0.0f, c);
  return c;
}

}  // namespace snnsec::tensor
