// Single-precision GEMM: the workhorse behind Linear and (via im2col)
// Conv2d, forward and backward.
//
// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
//
// Two kernels sit behind the public entry points:
//  * a cache-blocked (MC/KC/NC), register-tiled (MR x NR) dense kernel whose
//    inner loop is branch-free and written to auto-vectorize — the default;
//  * the seed row-panel kernel with the per-element zero-skip, kept for
//    spike-train operands where most of A is zero and skipping whole rows of
//    B beats streaming them.
// SparsityHint picks between them. The hint is declared by the caller from
// the operand's ROLE (weights are dense, spike slabs are sparse), never
// probed from its data: data-dependent dispatch could flip the summation
// order between batched and single execution of the same layer, breaking
// the serve/detection bit-identity contracts (DESIGN.md §14). Layers
// resolve their kernel once and keep it for life.
//
// kEvents names the third, fully event-driven path: the operand is
// compressed to per-row index lists and consumed by gemm_events
// (spike_events.hpp). It is a layer-level resolution only — the dense-matrix
// entry points below cannot take it because they have no event lists.
//
// All scratch (pack buffers, accumulators) comes from the per-thread
// util::Workspace arena: steady-state calls perform zero heap allocations.
// The seed scalar kernel survives verbatim as gemm_reference(), the numerics
// baseline the property tests and bench_runner compare against.
//
// Parallelized over row blocks of C through util::parallel_for_chunked; with
// SNNSEC_THREADS=1 every path is fully deterministic.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

enum class Trans { kNo, kYes };

/// How the caller declares op(A) to be populated. Resolved from the
/// operand's role (layer kind + position), sticky for the call site's
/// lifetime — see the header comment for why probing is forbidden.
///  kDense  — run the blocked branch-free kernel.
///  kSparse — run the zero-skip row kernel (spike trains).
///  kEvents — event-list path; only valid as a layer resolution, consumed
///            through gemm_events (spike_events.hpp), rejected here.
enum class SparsityHint { kDense, kSparse, kEvents };

/// General matrix multiply into an existing, correctly-sized C.
/// Shapes (logical, after op): A is [M,K], B is [K,N], C is [M,N].
void gemm(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c,
          SparsityHint hint = SparsityHint::kDense);

/// Convenience: returns op(A)*op(B) as a fresh [M,N] tensor.
Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo,
              SparsityHint hint = SparsityHint::kDense);

/// Raw-pointer core for callers that manage their own buffers (the conv
/// hot path runs GEMM straight on workspace memory). Strides are row-major
/// leading dimensions of the *stored* matrices: op(A)[i,p] lives at
/// a[i*lda + p] (kNo) or a[p*lda + i] (kYes), likewise for B; C is always
/// untransposed with stride ldc.
void gemm_raw(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c,
              std::int64_t ldc, SparsityHint hint = SparsityHint::kDense);

/// Offline/diagnostic sparsity probe: true when >= 60% of a strided sample
/// (up to 256 elements) of op(A) is exactly zero. Sample positions are the
/// rounded endpoints ((t+1) * total) / samples - 1, so the final element of
/// the matrix is always covered and no region is over-weighted — the seed's
/// floor-stride walk (stride = total/samples) stopped well short of the tail
/// on non-divisible sizes. NOT called on any hot path: kernel selection is
/// declared per layer, never probed per call (see SparsityHint).
bool probe_sparse(Trans trans_a, const float* a, std::int64_t lda,
                  std::int64_t m, std::int64_t k);

/// The seed scalar kernel, frozen: serial row-panel loop with the
/// per-element zero-skip and per-call heap scratch. Not for production use —
/// it exists so tests can pin the blocked kernel's numerics to the exact
/// code the repo grew up on, and so bench_runner can report speedup against
/// a stable baseline.
void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
                    const Tensor& b, float beta, Tensor& c);

}  // namespace snnsec::tensor
