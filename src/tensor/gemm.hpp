// Single-precision GEMM: the workhorse behind Linear and (via im2col)
// Conv2d, forward and backward.
//
// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
// The kernel is cache-blocked and parallelized over row panels of C through
// util::parallel_for; with SNNSEC_THREADS=1 it is fully deterministic.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

enum class Trans { kNo, kYes };

/// General matrix multiply into an existing, correctly-sized C.
/// Shapes (logical, after op): A is [M,K], B is [K,N], C is [M,N].
void gemm(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c);

/// Convenience: returns op(A)*op(B) as a fresh [M,N] tensor.
Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo);

}  // namespace snnsec::tensor
