// Single-precision GEMM: the workhorse behind Linear and (via im2col)
// Conv2d, forward and backward.
//
// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
//
// Two kernels sit behind the public entry points:
//  * a cache-blocked (MC/KC/NC), register-tiled (MR x NR) dense kernel whose
//    inner loop is branch-free and written to auto-vectorize — the default;
//  * the seed row-panel kernel with the per-element zero-skip, kept for
//    spike-train operands where most of A is zero and skipping whole rows of
//    B beats streaming them.
// SparsityHint picks between them; kAuto probes a small sample of A so spike
// tensors get the skip and dense operands never pay its branch.
//
// All scratch (pack buffers, accumulators) comes from the per-thread
// util::Workspace arena: steady-state calls perform zero heap allocations.
// The seed scalar kernel survives verbatim as gemm_reference(), the numerics
// baseline the property tests and bench_runner compare against.
//
// Parallelized over row blocks of C through util::parallel_for_chunked; with
// SNNSEC_THREADS=1 every path is fully deterministic.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace snnsec::tensor {

enum class Trans { kNo, kYes };

/// How the caller expects op(A) to be populated.
///  kAuto   — probe a strided sample of A and pick a kernel.
///  kDense  — always run the blocked branch-free kernel.
///  kSparse — always run the zero-skip row kernel (spike trains).
enum class SparsityHint { kAuto, kDense, kSparse };

/// General matrix multiply into an existing, correctly-sized C.
/// Shapes (logical, after op): A is [M,K], B is [K,N], C is [M,N].
void gemm(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor& c,
          SparsityHint hint = SparsityHint::kAuto);

/// Convenience: returns op(A)*op(B) as a fresh [M,N] tensor.
Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo,
              SparsityHint hint = SparsityHint::kAuto);

/// Raw-pointer core for callers that manage their own buffers (the conv
/// hot path runs GEMM straight on workspace memory). Strides are row-major
/// leading dimensions of the *stored* matrices: op(A)[i,p] lives at
/// a[i*lda + p] (kNo) or a[p*lda + i] (kYes), likewise for B; C is always
/// untransposed with stride ldc.
void gemm_raw(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c,
              std::int64_t ldc, SparsityHint hint = SparsityHint::kAuto);

/// The seed scalar kernel, frozen: serial row-panel loop with the
/// per-element zero-skip and per-call heap scratch. Not for production use —
/// it exists so tests can pin the blocked kernel's numerics to the exact
/// code the repo grew up on, and so bench_runner can report speedup against
/// a stable baseline.
void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Tensor& a,
                    const Tensor& b, float beta, Tensor& c);

}  // namespace snnsec::tensor
