// SNNSEC_HOT — steady-state kernel file: naked heap allocation and
// container growth are forbidden here (snnsec_lint snnsec-hot-alloc);
// scratch memory comes from util::Workspace so warmed-up runs are
// zero-alloc (asserted by bench_runner's operator-new hook).
#include "tensor/spike_events.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/checked.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace snnsec::tensor {

namespace {

/// One C row of the event kernel: accumulate value-scaled rows of packed B
/// for every event, four events per trip with a fixed association order, then
/// the alpha/beta store. The trip count and association depend only on the
/// row's own event count, never on neighboring rows or the thread schedule —
/// the bit-identity the serial-vs-parallel tests pin down.
SNNSEC_KERNEL_CLONES
void event_accum_row(std::int64_t cnt, const std::int32_t* idx,
                     const float* val, const float* bp, std::int64_t n,
                     float alpha, float beta, float* crow, float* acc) {
  std::fill(acc, acc + n, 0.0f);
  std::int64_t e = 0;
  for (; e + 4 <= cnt; e += 4) {
    const float* b0 = bp + static_cast<std::int64_t>(idx[e]) * n;
    const float* b1 = bp + static_cast<std::int64_t>(idx[e + 1]) * n;
    const float* b2 = bp + static_cast<std::int64_t>(idx[e + 2]) * n;
    const float* b3 = bp + static_cast<std::int64_t>(idx[e + 3]) * n;
    const float v0 = val[e];
    const float v1 = val[e + 1];
    const float v2 = val[e + 2];
    const float v3 = val[e + 3];
    for (std::int64_t j = 0; j < n; ++j)
      acc[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
  }
  for (; e < cnt; ++e) {
    const float* brow = bp + static_cast<std::int64_t>(idx[e]) * n;
    const float v = val[e];
    for (std::int64_t j = 0; j < n; ++j) acc[j] += v * brow[j];
  }
  // NOLINTNEXTLINE(snnsec-float-eq): beta exactly 0 selects the overwrite path; near-zero must still scale C
  if (beta == 0.0f) {
    for (std::int64_t j = 0; j < n; ++j) crow[j] = alpha * acc[j];
  } else {
    for (std::int64_t j = 0; j < n; ++j)
      crow[j] = beta * crow[j] + alpha * acc[j];
  }
}

/// Scatter one sample's input events into its Ct panel. Per event: find the
/// [oy_min, oy_max] x [ox_min, ox_max] window rectangle it occupies, then
/// FMA the value-scaled W^T row of the corresponding patch position into
/// each window's output row. For a fixed output row the (ch, iy, ix) scan
/// order visits contributions in ascending (ch, kh, kw) — ascending patch
/// index — so per-element accumulation order is a pure function of the
/// sample's data and the geometry.
SNNSEC_KERNEL_CLONES
void conv_scatter_sample(const ConvGeometry& g, std::int64_t oh,
                         std::int64_t ow, const std::int32_t* cnt,
                         const std::int32_t* idx, const float* val,
                         const float* wt, std::int64_t cout, float* cti) {
  for (std::int64_t ch = 0; ch < g.channels; ++ch) {
    for (std::int64_t iy = 0; iy < g.height; ++iy) {
      const std::int64_t r = ch * g.height + iy;
      const std::int32_t rc = cnt[r];
      if (rc == 0) continue;
      const std::int32_t* rix = idx + r * g.width;
      const float* rv = val + r * g.width;
      const std::int64_t y = iy + g.pad_h;
      const std::int64_t oy_max = std::min(oh - 1, y / g.stride_h);
      const std::int64_t ya = y - g.kernel_h + 1;
      const std::int64_t oy_min =
          ya > 0 ? (ya + g.stride_h - 1) / g.stride_h : 0;
      for (std::int32_t e = 0; e < rc; ++e) {
        const std::int64_t x = rix[e] + g.pad_w;
        const std::int64_t ox_max = std::min(ow - 1, x / g.stride_w);
        const std::int64_t xa = x - g.kernel_w + 1;
        const std::int64_t ox_min =
            xa > 0 ? (xa + g.stride_w - 1) / g.stride_w : 0;
        const float v = rv[e];
        for (std::int64_t oy = oy_min; oy <= oy_max; ++oy) {
          const std::int64_t kh = y - oy * g.stride_h;
          const std::int64_t prow = (ch * g.kernel_h + kh) * g.kernel_w;
          float* crow0 = cti + oy * ow * cout;
          for (std::int64_t ox = ox_min; ox <= ox_max; ++ox) {
            const float* wrow = wt + (prow + (x - ox * g.stride_w)) * cout;
            float* crow = crow0 + ox * cout;
            for (std::int64_t j = 0; j < cout; ++j) crow[j] += v * wrow[j];
          }
        }
      }
    }
  }
}

}  // namespace

EventRows build_event_rows(const float* a, std::int64_t lda, std::int64_t rows,
                           std::int64_t cols, util::Workspace& ws) {
  SNNSEC_CHECK(rows >= 0 && cols >= 0 && lda >= cols,
               "build_event_rows: bad geometry rows=" << rows << " cols="
                                                      << cols << " lda="
                                                      << lda);
  SNNSEC_CHECK(cols <= std::numeric_limits<std::int32_t>::max(),
               "build_event_rows: cols " << cols << " overflows int32 index");
  EventRows ev;
  ev.rows = rows;
  ev.cols = cols;
  ev.stride = cols;
  std::int32_t* cnt = ws.alloc<std::int32_t>(static_cast<std::size_t>(rows));
  std::int32_t* idx =
      ws.alloc<std::int32_t>(static_cast<std::size_t>(rows * cols));
  float* val = ws.alloc<float>(static_cast<std::size_t>(rows * cols));
  auto build_rows = [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = a + i * lda;
      std::int32_t* irow = idx + i * cols;
      float* vrow = val + i * cols;
      std::int32_t c = 0;
      for (std::int64_t j = 0; j < cols; ++j) {
        const float v = arow[j];
        // NOLINTNEXTLINE(snnsec-float-eq): spike operands are exactly 0 or 1; only true zeros may be dropped
        if (v == 0.0f) continue;
        irow[c] = static_cast<std::int32_t>(j);
        vrow[c] = v;
        ++c;
      }
      cnt[i] = c;
    }
  };
  if (rows * cols < (std::int64_t{1} << 16))
    build_rows(0, rows);
  else
    util::parallel_for_chunked(0, rows, build_rows);
  ev.count = cnt;
  ev.index = idx;
  ev.value = val;
  return ev;
}

EventRows build_conv_events(const ConvGeometry& g, const float* images,
                            std::int64_t batch, util::Workspace& ws) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  SNNSEC_CHECK(batch >= 0, "build_conv_events: negative batch");
  SNNSEC_CHECK(patch <= std::numeric_limits<std::int32_t>::max(),
               "build_conv_events: patch " << patch
                                           << " overflows int32 index");
  EventRows ev;
  ev.rows = batch * ohw;
  ev.cols = patch;
  ev.stride = patch;
  std::int32_t* cnt =
      ws.alloc<std::int32_t>(static_cast<std::size_t>(ev.rows));
  std::int32_t* idx =
      ws.alloc<std::int32_t>(static_cast<std::size_t>(ev.rows * patch));
  float* val = ws.alloc<float>(static_cast<std::size_t>(ev.rows * patch));
  // Event-driven build, two stages, so work scales with the spikes that
  // exist rather than with the patch volume (receptive fields overlap up to
  // KH*KW-fold):
  //   1. compress every input scanline into its own event list — the whole
  //      batch viewed as a [batch*C*H, W] matrix, each pixel read once;
  //   2. for each (oy, ch, kh), sweep the contributing scanline's events
  //      ONCE and scatter each into the ox windows it falls in, advancing a
  //      per-ox write cursor. A silent scanline — the common case for spike
  //      planes — costs a single count load, and padding rows are skipped
  //      without reading anything.
  // Emission order per output row: (ch, kh) ascend in the outer loops and,
  // within one (ch, kh), a row receives events in ascending ix, hence
  // ascending patch index c*KH*KW + kh*KW + kw — exactly im2col's row
  // order, so the lists are identical to a direct patch scan's.
  const std::int64_t in_rows = batch * g.channels * g.height;
  const EventRows in_ev =
      build_event_rows(images, g.width, in_rows, g.width, ws);
  const std::int32_t* in_cnt = in_ev.count;
  const std::int32_t* in_idx = in_ev.index;
  const float* in_val = in_ev.value;
  util::parallel_for(0, batch, [=](std::int64_t i) {
    util::Workspace& tws = util::Workspace::local();
    util::Workspace::Scope scope(tws);
    std::int32_t* cur = tws.alloc<std::int32_t>(static_cast<std::size_t>(ow));
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      const std::int64_t row0 = i * ohw + oy * ow;
      std::fill(cur, cur + ow, 0);
      for (std::int64_t ch = 0; ch < g.channels; ++ch) {
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
          const std::int64_t iy = oy * g.stride_h + kh - g.pad_h;
          if (iy < 0 || iy >= g.height) continue;
          const std::int64_t r = (i * g.channels + ch) * g.height + iy;
          const std::int32_t rc = in_cnt[r];
          if (rc == 0) continue;
          const std::int32_t* rix = in_idx + r * g.width;
          const float* rv = in_val + r * g.width;
          const std::int64_t base = (ch * g.kernel_h + kh) * g.kernel_w;
          for (std::int32_t e = 0; e < rc; ++e) {
            const std::int64_t x = rix[e] + g.pad_w;
            const std::int64_t ox_max = std::min(ow - 1, x / g.stride_w);
            const std::int64_t a = x - g.kernel_w + 1;
            const std::int64_t ox_min =
                a > 0 ? (a + g.stride_w - 1) / g.stride_w : 0;
            const float v = rv[e];
            for (std::int64_t ox = ox_min; ox <= ox_max; ++ox) {
              const std::int64_t row = row0 + ox;
              const std::int32_t c = cur[ox]++;
              idx[row * patch + c] =
                  static_cast<std::int32_t>(base + x - ox * g.stride_w);
              val[row * patch + c] = v;
            }
          }
        }
      }
      for (std::int64_t ox = 0; ox < ow; ++ox) cnt[row0 + ox] = cur[ox];
    }
  });
  ev.count = cnt;
  ev.index = idx;
  ev.value = val;
  return ev;
}

void conv_events(const ConvGeometry& g, const float* images,
                 std::int64_t batch, const float* w, std::int64_t cout,
                 float* ct, util::Workspace& ws) {
  SNNSEC_CHECK(batch >= 0 && cout > 0,
               "conv_events: bad batch=" << batch << " cout=" << cout);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t patch = g.patch_size();
  SNNSEC_COUNTER_ADD("tensor.gemm.calls", 1);
  SNNSEC_COUNTER_ADD("tensor.gemm.events_path", 1);
  util::Workspace::Scope scope(ws);
  // Pack W^T [patch, cout] once so the scatter's inner FMA is unit-stride.
  float* wt = ws.alloc<float>(static_cast<std::size_t>(patch * cout));
  for (std::int64_t p = 0; p < patch; ++p)
    for (std::int64_t j = 0; j < cout; ++j) wt[p * cout + j] = w[j * patch + p];
  // Scanline event lists for the whole batch: each input pixel read once.
  const EventRows in_ev = build_event_rows(
      images, g.width, batch * g.channels * g.height, g.width, ws);
  const std::int32_t* cnt = in_ev.count;
  const std::int32_t* idx = in_ev.index;
  const float* val = in_ev.value;
  const std::int64_t sample_rows = g.channels * g.height;
  util::parallel_for(0, batch, [=](std::int64_t i) {
    float* cti = ct + i * ohw * cout;
    std::fill(cti, cti + ohw * cout, 0.0f);
    conv_scatter_sample(g, oh, ow, cnt + i * sample_rows,
                        idx + i * sample_rows * g.width,
                        val + i * sample_rows * g.width, wt, cout, cti);
  });
}

void gemm_events(const EventRows& ev, Trans trans_b, std::int64_t n,
                 float alpha, const float* b, std::int64_t ldb, float beta,
                 float* c, std::int64_t ldc) {
  if (ev.rows <= 0 || n <= 0) return;
  SNNSEC_CHECK(ev.count != nullptr && ev.index != nullptr &&
                   ev.value != nullptr && ev.stride >= 0,
               "gemm_events: uninitialized EventRows");
  const std::int64_t k = ev.cols;
  SNNSEC_COUNTER_ADD("tensor.gemm.calls", 1);
  SNNSEC_COUNTER_ADD("tensor.gemm.events_path", 1);
  util::Workspace& ws = util::Workspace::local();
  util::Workspace::Scope scope(ws);
  // Pack op(B) contiguous [k, n] once, exactly as the zero-skip kernel does,
  // so the per-event row streams are unit-stride.
  float* bp = ws.alloc<float>(static_cast<std::size_t>(k * n));
  if (trans_b == Trans::kNo && ldb == n) {
    std::copy(b, b + k * n, bp);
  } else if (trans_b == Trans::kNo) {
    for (std::int64_t kk = 0; kk < k; ++kk)
      for (std::int64_t j = 0; j < n; ++j) bp[kk * n + j] = b[kk * ldb + j];
  } else {
    for (std::int64_t kk = 0; kk < k; ++kk)
      for (std::int64_t j = 0; j < n; ++j) bp[kk * n + j] = b[j * ldb + kk];
  }

  const std::int32_t* cnt = ev.count;
  const std::int32_t* idx = ev.index;
  const float* val = ev.value;
  const std::int64_t stride = ev.stride;
  auto row_panel = [=](std::int64_t lo, std::int64_t hi) {
    util::Workspace& tws = util::Workspace::local();
    util::Workspace::Scope row_scope(tws);
    float* acc = tws.alloc<float>(static_cast<std::size_t>(n));
    for (std::int64_t i = lo; i < hi; ++i)
      event_accum_row(cnt[i], idx + i * stride, val + i * stride, bp, n,
                      alpha, beta, c + i * ldc, acc);
  };
  // Same size threshold as the dense/sparse kernels — a shape property, not
  // a data property, so the schedule is deterministic per call site.
  if ((ev.rows * n * k) < (std::int64_t{1} << 16))
    row_panel(0, ev.rows);
  else
    util::parallel_for_chunked(0, ev.rows, row_panel);
}

}  // namespace snnsec::tensor
