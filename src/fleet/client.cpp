#include "fleet/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.hpp"

namespace snnsec::fleet {

WireClient::WireClient(const std::string& host, int port,
                       std::size_t max_payload)
    : dec_(max_payload) {
  tx_.resize(encoded_size(max_payload));
  const char* addr = host == "localhost" ? "127.0.0.1" : host.c_str();
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, addr, &sa.sin_addr) != 1) {
    SNNSEC_LOG_WARN("fleet::WireClient: bad IPv4 address '" << host << "'");
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dec_.reset();
}

bool WireClient::send_all(const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool WireClient::read_frame(FrameView& f) {
  std::uint8_t chunk[4096];
  for (;;) {
    if (dec_.next(f)) return true;
    if (dec_.error() != WireError::kNone) {
      close();
      return false;
    }
    const std::size_t want = std::min(sizeof(chunk), dec_.free());
    const ssize_t r = ::recv(fd_, chunk, want, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {  // peer closed or transport error
      close();
      return false;
    }
    if (!dec_.feed(chunk, static_cast<std::size_t>(r))) {
      close();
      return false;
    }
  }
}

bool WireClient::request(const RequestMeta& meta, const float* pixels,
                         std::size_t n, ResponseMeta& out,
                         std::vector<float>* scores,
                         std::string* error_out) {
  if (fd_ < 0) {
    if (error_out != nullptr) error_out->assign("not connected");
    return false;
  }
  const std::size_t len =
      encode_request(tx_.data(), tx_.size(), meta, pixels, n);
  if (len == 0) {
    if (error_out != nullptr) error_out->assign("request too large");
    return false;
  }
  if (!send_all(tx_.data(), len)) {
    if (error_out != nullptr) error_out->assign("send failed");
    return false;
  }
  FrameView f;
  for (;;) {
    if (!read_frame(f)) {
      if (error_out != nullptr) error_out->assign("connection lost");
      return false;
    }
    if (f.request_id != meta.request_id) continue;  // stale reply
    if (f.type == FrameType::kError) {
      if (error_out != nullptr)
        error_out->assign(reinterpret_cast<const char*>(f.payload),
                          f.payload_len);
      return false;
    }
    if (f.type != FrameType::kResponse) continue;
    const std::uint8_t* raw_scores = nullptr;
    if (!decode_response_payload(f, out, raw_scores)) {
      if (error_out != nullptr) error_out->assign("bad response payload");
      close();
      return false;
    }
    if (scores != nullptr) {
      scores->resize(out.num_scores);
      if (out.num_scores > 0)
        std::memcpy(scores->data(), raw_scores, 4 * out.num_scores);
    }
    return true;
  }
}

bool WireClient::ping(const void* payload, std::size_t n) {
  if (fd_ < 0) return false;
  const std::size_t len = encode_frame(tx_.data(), tx_.size(),
                                       FrameType::kPing, 0, 0, 0, 0, payload,
                                       n);
  if (len == 0 || !send_all(tx_.data(), len)) return false;
  FrameView f;
  if (!read_frame(f)) return false;
  return f.type == FrameType::kPong && f.payload_len == n &&
         (n == 0 || std::memcmp(f.payload, payload, n) == 0);
}

}  // namespace snnsec::fleet
