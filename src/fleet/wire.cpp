// SNNSEC_HOT: per-frame encode/decode path — steady state must not allocate.
#include "fleet/wire.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace snnsec::fleet {
namespace {

// Explicit little-endian serialization: the wire format is defined in LE
// regardless of host order.
void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

std::uint64_t payload_digest(const void* payload, std::size_t len) {
  // FNV-1a 64, same function the RNG label hasher uses.
  return util::hash_label(std::string_view(
      static_cast<const char*>(len == 0 ? "" : payload), len));
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadType: return "bad-type";
    case WireError::kOversized: return "oversized";
    case WireError::kBadDigest: return "bad-digest";
    case WireError::kOverflow: return "overflow";
  }
  return "unknown";
}

std::size_t encode_frame(std::uint8_t* dst, std::size_t cap, FrameType type,
                         std::uint8_t flags, std::uint64_t request_id,
                         std::uint64_t tenant, std::int64_t deadline_us,
                         const void* payload, std::size_t len) {
  const std::size_t total = encoded_size(len);
  if (cap < total || len > 0xFFFFFFFFULL) return 0;
  dst[0] = kWireMagic;
  dst[1] = kWireVersion;
  dst[2] = static_cast<std::uint8_t>(type);
  dst[3] = flags;
  store_u32(dst + 4, static_cast<std::uint32_t>(len));
  store_u64(dst + 8, request_id);
  store_u64(dst + 16, tenant);
  store_u64(dst + 24, static_cast<std::uint64_t>(deadline_us));
  store_u64(dst + 32, payload_digest(payload, len));
  if (len > 0) std::memcpy(dst + kWireHeaderSize, payload, len);
  return total;
}

std::size_t encode_request(std::uint8_t* dst, std::size_t cap,
                           const RequestMeta& meta, const float* pixels,
                           std::size_t n) {
  const std::size_t payload_len = 4 + 4 * n;
  const std::size_t total = encoded_size(payload_len);
  if (cap < total) return 0;
  std::uint8_t* p = dst + kWireHeaderSize;
  store_u32(p, meta.max_steps);
  if (n > 0) std::memcpy(p + 4, pixels, 4 * n);
  // Header last: the digest covers the payload bytes just written.
  return encode_frame(dst, cap, FrameType::kRequest, 0, meta.request_id,
                      meta.tenant, meta.deadline_us, p, payload_len);
}

std::size_t encode_response(std::uint8_t* dst, std::size_t cap,
                            const ResponseMeta& meta, const float* scores) {
  const std::size_t payload_len =
      kResponsePrefixSize + 4 * static_cast<std::size_t>(meta.num_scores);
  const std::size_t total = encoded_size(payload_len);
  if (cap < total) return 0;
  std::uint8_t* p = dst + kWireHeaderSize;
  p[0] = meta.status;
  p[1] = meta.group;
  p[2] = meta.resp_flags;
  p[3] = 0;
  store_u32(p + 4, meta.pred);
  store_u32(p + 8, meta.steps_used);
  store_u32(p + 12, meta.batch_size);
  std::uint32_t score_bits = 0;
  std::memcpy(&score_bits, &meta.anomaly_score, 4);
  store_u32(p + 16, score_bits);
  store_u32(p + 20, meta.num_scores);
  if (meta.num_scores > 0) std::memcpy(p + kResponsePrefixSize, scores,
                                       4 * meta.num_scores);
  return encode_frame(dst, cap, FrameType::kResponse, 0, meta.request_id,
                      meta.tenant, meta.latency_us, p, payload_len);
}

bool decode_request_payload(const FrameView& f, std::uint32_t& max_steps,
                            const std::uint8_t*& pixels, std::size_t& n) {
  if (f.type != FrameType::kRequest || f.payload_len < 4 ||
      (f.payload_len - 4) % 4 != 0)
    return false;
  max_steps = load_u32(f.payload);
  pixels = f.payload + 4;
  n = (f.payload_len - 4) / 4;
  return true;
}

bool decode_response_payload(const FrameView& f, ResponseMeta& meta,
                             const std::uint8_t*& scores) {
  if (f.type != FrameType::kResponse || f.payload_len < kResponsePrefixSize)
    return false;
  const std::uint8_t* p = f.payload;
  meta.request_id = f.request_id;
  meta.tenant = f.tenant;
  meta.latency_us = f.deadline_us;
  meta.status = p[0];
  meta.group = p[1];
  meta.resp_flags = p[2];
  meta.pred = load_u32(p + 4);
  meta.steps_used = load_u32(p + 8);
  meta.batch_size = load_u32(p + 12);
  const std::uint32_t score_bits = load_u32(p + 16);
  std::memcpy(&meta.anomaly_score, &score_bits, 4);
  meta.num_scores = load_u32(p + 20);
  if (f.payload_len !=
      kResponsePrefixSize + 4 * static_cast<std::size_t>(meta.num_scores))
    return false;
  scores = p + kResponsePrefixSize;
  return true;
}

Decoder::Decoder(std::size_t max_payload) : max_payload_(max_payload) {
  // Room for one maximal frame plus a partially-read successor; feed() is
  // bounded by free() so the buffer never grows after construction.
  // NOLINTNEXTLINE(snnsec-hot-alloc): one-time buffer reservation in ctor
  buf_.resize(2 * encoded_size(max_payload_));
}

std::size_t Decoder::free() const {
  if (err_ != WireError::kNone) return 0;
  // Compaction in feed() reclaims everything before consumed_.
  return buf_.size() - (fill_ - consumed_);
}

void Decoder::reset() {
  fill_ = 0;
  consumed_ = 0;
  err_ = WireError::kNone;
}

bool Decoder::feed(const void* data, std::size_t n) {
  if (err_ != WireError::kNone) return false;
  if (n > free()) {
    err_ = WireError::kOverflow;
    return false;
  }
  if (fill_ + n > buf_.size()) {
    // Compact: drop consumed bytes. This moves any frame surfaced by the
    // last next(), which is why feed() invalidates outstanding views.
    std::memmove(buf_.data(), buf_.data() + consumed_, fill_ - consumed_);
    fill_ -= consumed_;
    consumed_ = 0;
  }
  if (n > 0) std::memcpy(buf_.data() + fill_, data, n);
  fill_ += n;
  return true;
}

// SNNSEC_HOT entry: wire frame decode, once per received frame.
bool Decoder::next(FrameView& out) {
  if (err_ != WireError::kNone) return false;
  return parse_header(out);
}

bool Decoder::parse_header(FrameView& out) {
  if (buffered() < kWireHeaderSize) return false;
  const std::uint8_t* h = buf_.data() + consumed_;
  if (h[0] != kWireMagic) {
    err_ = WireError::kBadMagic;
    return false;
  }
  if (h[1] != kWireVersion) {
    err_ = WireError::kBadVersion;
    return false;
  }
  if (!valid_type(h[2])) {
    err_ = WireError::kBadType;
    return false;
  }
  const std::uint32_t len = load_u32(h + 4);
  if (len > max_payload_) {
    err_ = WireError::kOversized;
    return false;
  }
  const std::size_t total = encoded_size(len);
  if (buffered() < total) return false;  // wait for the rest of the payload
  const std::uint8_t* payload = h + kWireHeaderSize;
  if (load_u64(h + 32) != payload_digest(payload, len)) {
    err_ = WireError::kBadDigest;
    return false;
  }
  out.type = static_cast<FrameType>(h[2]);
  out.flags = h[3];
  out.request_id = load_u64(h + 8);
  out.tenant = load_u64(h + 16);
  out.deadline_us = static_cast<std::int64_t>(load_u64(h + 24));
  out.payload = payload;
  out.payload_len = len;
  consumed_ += total;
  return true;
}

}  // namespace snnsec::fleet
