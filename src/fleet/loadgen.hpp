// Reusable load-generation engine shared by bench_serve / bench_chaos /
// bench_fleet and the snnsec_loadgen CLI.
//
// The engine separates three concerns that the old ad-hoc client loops in
// bench/serve_load.hpp fused together:
//
//   LoadTarget / LoadClient — where requests go. Each client thread calls
//     target.connect() once and owns the returned LoadClient: an in-process
//     serve::Server, a fleet::Router (tenant-aware), or a TCP connection to
//     a fleet front-end (WireTarget).
//   LoadSpec — how requests are generated: closed loop (back-to-back per
//     client) or open loop (arrivals paced at an aggregate rate), a
//     weighted tenant mix, per-request deadline/step budgets, and a seed
//     (the tenant draw is a seeded util::Rng sub-stream per client, so a
//     given spec offers a deterministic request sequence).
//   replay_trace — replays an explicit recorded request list instead of a
//     synthetic mix ("tenant sample [deadline_us] [max_steps]" lines).
//
// The per-client submit loop reuses one Reply and one latency buffer, so
// in-process targets keep the zero-alloc steady state of the servers they
// drive.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "fleet/router.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::fleet {

/// Per-request scheduling knobs carried by the generated load.
struct LoadOptions {
  std::int64_t deadline_us = 0;
  std::int64_t max_steps = 0;
};

/// One submission endpoint, owned by exactly one client thread.
class LoadClient {
 public:
  /// Outcome of one request, normalized across target kinds.
  struct Reply {
    bool ok = false;
    bool shed = false;            ///< admission/queue rejection
    bool quota_rejected = false;  ///< fleet token bucket said no
    bool error = false;
    std::int64_t pred = -1;
    std::int64_t latency_us = 0;  ///< server-reported when available
    std::int64_t batch_size = 0;
    bool truncated = false;
    bool flagged = false;
  };

  virtual ~LoadClient() = default;
  virtual void submit(std::uint64_t tenant, const tensor::Tensor& x,
                      const LoadOptions& opt, Reply& out) = 0;
};

/// Factory for per-thread clients.
class LoadTarget {
 public:
  virtual ~LoadTarget() = default;
  virtual std::unique_ptr<LoadClient> connect() = 0;
};

/// Drives a single in-process serve::Server (ignores the tenant id).
class ServerTarget : public LoadTarget {
 public:
  explicit ServerTarget(serve::Server& server) : server_(server) {}
  std::unique_ptr<LoadClient> connect() override;

 private:
  serve::Server& server_;
};

/// Drives an in-process fleet::Router (tenant-aware routing + quota).
class RouterTarget : public LoadTarget {
 public:
  explicit RouterTarget(Router& router) : router_(router) {}
  std::unique_ptr<LoadClient> connect() override;

 private:
  Router& router_;
};

/// Connects to a fleet front-end over TCP; one connection per client.
class WireTarget : public LoadTarget {
 public:
  WireTarget(std::string host, int port, std::size_t max_payload);
  std::unique_ptr<LoadClient> connect() override;

 private:
  std::string host_;
  int port_;
  std::size_t max_payload_;
};

/// Weighted tenant share of the generated traffic.
struct TenantShare {
  std::uint64_t tenant = 0;
  double weight = 1.0;
};

struct LoadSpec {
  enum class Mode : std::uint8_t { kClosed, kOpen };
  Mode mode = Mode::kClosed;
  std::int64_t total = 0;    ///< requests across all clients
  std::int64_t clients = 1;  ///< client threads (open loop: submitters)
  double rate_rps = 0.0;     ///< open loop aggregate arrival rate
  LoadOptions options;       ///< applied to every request
  /// Weighted tenant mix; empty = every request from tenant 0.
  std::vector<TenantShare> mix;
  std::uint64_t seed = 1;
};

struct LoadReport {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t quota_rejected = 0;
  std::int64_t errors = 0;
  std::int64_t truncated = 0;
  std::int64_t flagged = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;  ///< completed / wall
  double offered_rps = 0.0;     ///< offered / wall
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

/// Generate spec.total requests against `target`, cycling through
/// `images` ([N, C, H, W]).
LoadReport run_load(LoadTarget& target, const tensor::Tensor& images,
                    const LoadSpec& spec);

/// One recorded request of a replayable trace.
struct TraceEntry {
  std::uint64_t tenant = 0;
  std::int64_t sample = 0;  ///< index into the image set (mod N)
  std::int64_t deadline_us = 0;
  std::int64_t max_steps = 0;
};

/// Parse a trace: one "tenant sample [deadline_us] [max_steps]" per line;
/// blank lines and '#' comments are skipped. Throws util::Error on a
/// malformed line.
std::vector<TraceEntry> parse_trace(std::istream& in);

/// Replay `entries` closed-loop across `clients` threads (entry i goes to
/// client i % clients; each client preserves its subsequence's order).
LoadReport replay_trace(LoadTarget& target, const tensor::Tensor& images,
                        const std::vector<TraceEntry>& entries,
                        std::int64_t clients);

}  // namespace snnsec::fleet
