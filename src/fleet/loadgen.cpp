#include "fleet/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <istream>
#include <sstream>
#include <string>
#include <thread>

#include "fleet/client.hpp"
#include "nn/metrics.hpp"
#include "util/checked.hpp"
#include "util/rng.hpp"

namespace snnsec::fleet {
namespace {

using Clock = std::chrono::steady_clock;

class ServerClient : public LoadClient {
 public:
  explicit ServerClient(serve::Server& server) : server_(server) {}

  void submit(std::uint64_t /*tenant*/, const tensor::Tensor& x,
              const LoadOptions& opt, Reply& out) override {
    serve::RequestOptions ro;
    ro.deadline_us = opt.deadline_us;
    ro.max_steps = opt.max_steps;
    const bool ok = server_.infer(x, ro, r_);
    out = Reply{};
    out.ok = ok;
    out.shed = r_.status == serve::ResultStatus::kRejected;
    out.error = r_.status == serve::ResultStatus::kError;
    out.pred = r_.pred;
    out.latency_us = r_.latency_us;
    out.batch_size = r_.batch_size;
    out.truncated = r_.truncated;
    out.flagged = r_.flagged;
  }

 private:
  serve::Server& server_;
  serve::InferResult r_;
};

class RouterClient : public LoadClient {
 public:
  explicit RouterClient(Router& router) : router_(router) {}

  void submit(std::uint64_t tenant, const tensor::Tensor& x,
              const LoadOptions& opt, Reply& out) override {
    serve::RequestOptions ro;
    ro.deadline_us = opt.deadline_us;
    ro.max_steps = opt.max_steps;
    const bool ok = router_.infer(tenant, x, ro, fr_);
    out = Reply{};
    out.ok = ok;
    out.quota_rejected = fr_.quota_rejected;
    out.shed = !fr_.quota_rejected &&
               fr_.result.status == serve::ResultStatus::kRejected;
    out.error = fr_.result.status == serve::ResultStatus::kError;
    out.pred = fr_.result.pred;
    out.latency_us = fr_.fleet_latency_us;
    out.batch_size = fr_.result.batch_size;
    out.truncated = fr_.result.truncated;
    out.flagged = fr_.result.flagged;
  }

 private:
  Router& router_;
  FleetResult fr_;
};

class WireLoadClient : public LoadClient {
 public:
  WireLoadClient(const std::string& host, int port, std::size_t max_payload)
      : client_(host, port, max_payload) {}

  void submit(std::uint64_t tenant, const tensor::Tensor& x,
              const LoadOptions& opt, Reply& out) override {
    out = Reply{};
    if (!client_.connected()) {
      out.error = true;
      return;
    }
    RequestMeta meta;
    meta.request_id = ++next_id_;
    meta.tenant = tenant;
    meta.deadline_us = opt.deadline_us;
    meta.max_steps = static_cast<std::uint32_t>(opt.max_steps);
    ResponseMeta resp;
    if (!client_.request(meta, x.data(),
                         static_cast<std::size_t>(x.numel()), resp)) {
      out.error = true;
      return;
    }
    const auto status = static_cast<serve::ResultStatus>(resp.status);
    out.ok = status == serve::ResultStatus::kOk;
    // The wire response does not distinguish quota from queue shed; the
    // front-end's error string does, but replies keep the fast path.
    out.shed = status == serve::ResultStatus::kRejected;
    out.error = status == serve::ResultStatus::kError;
    out.pred = resp.pred == 0xFFFFFFFFU
                   ? -1
                   : static_cast<std::int64_t>(resp.pred);
    out.latency_us = resp.latency_us;
    out.batch_size = resp.batch_size;
    out.truncated = (resp.resp_flags & kRespTruncated) != 0;
    out.flagged = (resp.resp_flags & kRespFlagged) != 0;
  }

 private:
  WireClient client_;
  std::uint64_t next_id_ = 0;
};

/// Deterministic weighted tenant pick from cumulative weights.
std::uint64_t pick_tenant(const std::vector<TenantShare>& mix,
                          const std::vector<double>& cumulative,
                          util::Rng& rng) {
  if (mix.empty()) return 0;
  const double u = rng.uniform() * cumulative.back();
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const std::size_t idx = std::min(
      static_cast<std::size_t>(it - cumulative.begin()), mix.size() - 1);
  return mix[idx].tenant;
}

struct ClientTally {
  std::vector<double> latencies;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t quota_rejected = 0;
  std::int64_t errors = 0;
  std::int64_t truncated = 0;
  std::int64_t flagged = 0;
  std::int64_t batch_sum = 0;
};

void tally(ClientTally& t, const LoadClient::Reply& r) {
  if (r.ok) {
    ++t.completed;
    t.latencies.push_back(static_cast<double>(r.latency_us));
    t.batch_sum += r.batch_size;
    if (r.truncated) ++t.truncated;
    if (r.flagged) ++t.flagged;
  } else if (r.quota_rejected) {
    ++t.quota_rejected;
  } else if (r.shed) {
    ++t.shed;
  } else {
    ++t.errors;
  }
}

LoadReport finish(std::vector<ClientTally>& tallies, std::int64_t offered,
                  double wall_s) {
  LoadReport rep;
  rep.offered = offered;
  rep.wall_s = wall_s;
  std::vector<double> all;
  for (ClientTally& t : tallies) {
    rep.completed += t.completed;
    rep.shed += t.shed;
    rep.quota_rejected += t.quota_rejected;
    rep.errors += t.errors;
    rep.truncated += t.truncated;
    rep.flagged += t.flagged;
    all.insert(all.end(), t.latencies.begin(), t.latencies.end());
  }
  std::int64_t batch_sum = 0;
  for (const ClientTally& t : tallies) batch_sum += t.batch_sum;
  rep.mean_batch = rep.completed > 0
                       ? static_cast<double>(batch_sum) /
                             static_cast<double>(rep.completed)
                       : 0.0;
  rep.throughput_rps =
      wall_s > 0 ? static_cast<double>(rep.completed) / wall_s : 0.0;
  rep.offered_rps =
      wall_s > 0 ? static_cast<double>(rep.offered) / wall_s : 0.0;
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    const double pos = q * static_cast<double>(all.size() - 1);
    const auto idx = static_cast<std::size_t>(pos + 0.5);
    return all[std::min(idx, all.size() - 1)];
  };
  rep.p50_us = pct(0.50);
  rep.p95_us = pct(0.95);
  rep.p99_us = pct(0.99);
  return rep;
}

}  // namespace

std::unique_ptr<LoadClient> ServerTarget::connect() {
  return std::make_unique<ServerClient>(server_);
}

std::unique_ptr<LoadClient> RouterTarget::connect() {
  return std::make_unique<RouterClient>(router_);
}

WireTarget::WireTarget(std::string host, int port, std::size_t max_payload)
    : host_(std::move(host)), port_(port), max_payload_(max_payload) {}

std::unique_ptr<LoadClient> WireTarget::connect() {
  return std::make_unique<WireLoadClient>(host_, port_, max_payload_);
}

LoadReport run_load(LoadTarget& target, const tensor::Tensor& images,
                    const LoadSpec& spec) {
  SNNSEC_CHECK(spec.total >= 0, "run_load: negative total");
  SNNSEC_CHECK(spec.clients >= 1, "run_load: clients must be >= 1");
  SNNSEC_CHECK(spec.mode != LoadSpec::Mode::kOpen || spec.rate_rps > 0,
               "run_load: open loop needs rate_rps > 0");
  const std::int64_t n_images = images.dim(0);
  SNNSEC_CHECK(n_images > 0, "run_load: empty image set");

  std::vector<double> cumulative;
  cumulative.reserve(spec.mix.size());
  double acc = 0.0;
  for (const TenantShare& s : spec.mix) {
    SNNSEC_CHECK(s.weight > 0, "run_load: tenant " << s.tenant
                                                   << " has weight <= 0");
    acc += s.weight;
    cumulative.push_back(acc);
  }

  const std::int64_t clients = spec.clients;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  const double interval_us =
      spec.mode == LoadSpec::Mode::kOpen ? 1e6 / spec.rate_rps : 0.0;
  std::atomic<std::int64_t> next_tick{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (std::int64_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      ClientTally& t = tallies[static_cast<std::size_t>(c)];
      util::Rng rng =
          util::Rng(spec.seed).fork(static_cast<std::uint64_t>(c));
      auto client = target.connect();
      LoadClient::Reply r;
      if (spec.mode == LoadSpec::Mode::kClosed) {
        // Static partition: client c owns [start, start + count).
        const std::int64_t base = spec.total / clients;
        const std::int64_t rem = spec.total % clients;
        const std::int64_t count = base + (c < rem ? 1 : 0);
        const std::int64_t start = c * base + std::min(c, rem);
        t.latencies.reserve(static_cast<std::size_t>(count));
        for (std::int64_t i = 0; i < count; ++i) {
          const std::int64_t idx = (start + i) % n_images;
          const tensor::Tensor x = nn::slice_batch(images, idx, idx + 1);
          const std::uint64_t tenant =
              pick_tenant(spec.mix, cumulative, rng);
          client->submit(tenant, x, spec.options, r);
          tally(t, r);
        }
      } else {
        // Open loop: a shared tick sequence paces aggregate arrivals.
        // Ticks are shared across clients, so each sees roughly an equal
        // slice; reserving spec.total per client would cost clients x
        // total x 8 bytes. An uneven split just grows past the reserve.
        t.latencies.reserve(
            static_cast<std::size_t>(spec.total / clients + 1));
        for (;;) {
          const std::int64_t tick =
              next_tick.fetch_add(1, std::memory_order_relaxed);
          if (tick >= spec.total) break;
          const auto due =
              t0 + std::chrono::microseconds(static_cast<std::int64_t>(
                       interval_us * static_cast<double>(tick)));
          std::this_thread::sleep_until(due);
          const std::int64_t idx = tick % n_images;
          const tensor::Tensor x = nn::slice_batch(images, idx, idx + 1);
          const std::uint64_t tenant =
              pick_tenant(spec.mix, cumulative, rng);
          client->submit(tenant, x, spec.options, r);
          tally(t, r);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return finish(tallies, spec.total, wall_s);
}

std::vector<TraceEntry> parse_trace(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    TraceEntry e;
    if (!(ls >> e.tenant)) continue;  // blank/comment line
    SNNSEC_CHECK(static_cast<bool>(ls >> e.sample),
                 "parse_trace: line " << lineno
                                      << ": expected 'tenant sample "
                                         "[deadline_us] [max_steps]'");
    ls >> e.deadline_us >> e.max_steps;  // optional, default 0
    SNNSEC_CHECK(e.sample >= 0 && e.deadline_us >= 0 && e.max_steps >= 0,
                 "parse_trace: line " << lineno << ": negative field");
    entries.push_back(e);
  }
  return entries;
}

LoadReport replay_trace(LoadTarget& target, const tensor::Tensor& images,
                        const std::vector<TraceEntry>& entries,
                        std::int64_t clients) {
  SNNSEC_CHECK(clients >= 1, "replay_trace: clients must be >= 1");
  const std::int64_t n_images = images.dim(0);
  SNNSEC_CHECK(n_images > 0, "replay_trace: empty image set");
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (std::int64_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      ClientTally& t = tallies[static_cast<std::size_t>(c)];
      auto client = target.connect();
      LoadClient::Reply r;
      for (std::size_t i = static_cast<std::size_t>(c); i < entries.size();
           i += static_cast<std::size_t>(clients)) {
        const TraceEntry& e = entries[i];
        const std::int64_t idx = e.sample % n_images;
        const tensor::Tensor x = nn::slice_batch(images, idx, idx + 1);
        LoadOptions opt;
        opt.deadline_us = e.deadline_us;
        opt.max_steps = e.max_steps;
        client->submit(e.tenant, x, opt, r);
        tally(t, r);
      }
    });
  }
  for (auto& th : pool) th.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return finish(tallies, static_cast<std::int64_t>(entries.size()), wall_s);
}

}  // namespace snnsec::fleet
