// fleet::Frontend — TCP front-end for a fleet::Router.
//
// One poll(2)-based I/O thread owns the listening socket and every
// connection: it accepts, reads into each connection's incremental wire
// Decoder, answers pings inline, and hands complete request frames to a
// fixed ring of dispatch slots. Executor threads pop slots, drive the
// routed replica's inline micro-batch (this is where the request meets the
// MicroBatcher), and write the response frame back under the connection's
// write lock. poll() was chosen over epoll deliberately: the fleet fronts
// tens of connections, not tens of thousands, and poll keeps the state
// machine portable and obviously correct.
//
// Overload behaves like the rest of the stack: a full dispatch ring sheds
// the frame with a kError reply instead of buffering unboundedly, the
// per-tenant quota and the MicroBatcher's shed-at-capacity ring sit
// underneath, and a malformed frame (bad magic/version/type/digest,
// oversized) earns one kError frame and connection teardown — a
// desynchronised byte stream cannot be re-trusted.
//
// Shutdown is stop-then-drain: stop accepting and reading first, finish
// every dispatched request and write its response, then close.
//
// All dispatch slots (including their input tensors) are preallocated at
// construction; the steady-state frame -> response path allocates nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/router.hpp"
#include "fleet/wire.hpp"

namespace snnsec::fleet {

struct FrontendConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the bound port back via port().
  int port = 0;
  std::int64_t max_connections = 64;
  /// Executor threads driving routed inference.
  std::int64_t executors = 2;
  /// Dispatch ring depth; a full ring sheds with a kError reply.
  std::int64_t queue_capacity = 64;
  /// Largest accepted frame payload. Must hold a request image
  /// (4 + 4*C*H*W bytes); validated at construction.
  std::size_t max_payload = 1 << 20;
  /// Upper bound on one response/error write. Accepted sockets are
  /// non-blocking; a client that stops reading long enough to exhaust
  /// this budget is treated as failed and its connection is closed, so a
  /// slow or malicious reader can never wedge the I/O or executor
  /// threads.
  int write_timeout_ms = 2000;
};

struct FrontendStats {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_rejected = 0;  ///< over max_connections
  std::int64_t connections_open = 0;
  std::int64_t frames = 0;     ///< complete frames decoded
  std::int64_t requests = 0;   ///< kRequest frames dispatched
  std::int64_t responses = 0;  ///< kResponse frames written
  std::int64_t malformed = 0;  ///< decode errors + protocol violations
  std::int64_t shed = 0;       ///< dispatch ring full
  std::int64_t write_timeouts = 0;  ///< writes abandoned (slow reader)
};

class Frontend {
 public:
  /// Binds and starts the I/O + executor threads. Throws util::Error when
  /// the socket cannot be bound.
  Frontend(Router& router, FrontendConfig cfg);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// The bound TCP port (useful with cfg.port == 0).
  int port() const { return port_; }

  /// Stop-then-drain shutdown. Idempotent; the destructor calls it.
  void stop();

  FrontendStats stats() const;

 private:
  struct Conn;
  struct DispatchSlot;
  struct Ring;

  void io_loop();
  void executor_loop(std::int64_t id);
  void handle_readable(const std::shared_ptr<Conn>& conn);
  void dispatch_frame(const std::shared_ptr<Conn>& conn,
                      const FrameView& frame);
  void send_error(Conn& conn, std::uint64_t request_id, std::uint64_t tenant,
                  const char* msg);
  void close_conn(const std::shared_ptr<Conn>& conn);
  bool write_conn(Conn& conn, const std::uint8_t* p, std::size_t n);

  Router& router_;
  FrontendConfig cfg_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::unique_ptr<Ring> ring_;
  std::vector<std::uint8_t> io_tx_;  // I/O-thread pong/error scratch
  std::vector<std::shared_ptr<Conn>> conns_;  // I/O thread only
  std::thread io_thread_;
  std::vector<std::thread> executors_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> open_{0};
  std::atomic<std::int64_t> frames_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> responses_{0};
  std::atomic<std::int64_t> malformed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> write_timeouts_{0};
};

}  // namespace snnsec::fleet
