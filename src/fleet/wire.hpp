// Binary wire protocol for the fleet front-end.
//
// Every frame is a fixed 40-byte little-endian header followed by a
// length-prefixed payload:
//
//   offset size field
//   0      1    magic        (kWireMagic, 0xC5)
//   1      1    version      (kWireVersion; other versions are rejected)
//   2      1    type         (FrameType)
//   3      1    flags        (frame-type specific, see below)
//   4      4    payload_len  (u32, bounded by the decoder's max_payload)
//   8      8    request_id   (client-chosen correlation id, echoed back)
//   16     8    tenant       (tenant id; routing + quota key)
//   24     8    deadline_us  (request: latency budget; response: latency)
//   32     8    digest       (FNV-1a 64 over the payload bytes)
//   40     ...  payload
//
// Payload layouts:
//   kRequest:  u32 max_steps, then float32 pixels (C*H*W of them).
//   kResponse: ResponseMeta fields (see encode_response), then
//              num_scores float32 class scores.
//   kPing/kPong: opaque bytes, echoed verbatim.
//   kError:    UTF-8 message.
//
// The Decoder is incremental: bytes arrive in arbitrary chunks (partial
// reads across syscalls), frames are surfaced once complete, and malformed
// input (bad magic/version/type, oversized length, digest mismatch) parks
// the decoder in a sticky error state — a byte stream that desynchronised
// once cannot be trusted again, so the connection must be torn down. The
// steady-state feed/next path performs no heap allocation; the only
// allocation is the buffer reserved in the constructor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snnsec::fleet {

inline constexpr std::uint8_t kWireMagic = 0xC5;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 40;

/// Frame discriminator (header byte 2).
enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kPing = 3,
  kPong = 4,
  kError = 5,
};

/// Response flag bits (ResponseMeta::resp_flags).
inline constexpr std::uint8_t kRespFlagged = 1U << 0;
inline constexpr std::uint8_t kRespRerouted = 1U << 1;
inline constexpr std::uint8_t kRespEnsemble = 1U << 2;
inline constexpr std::uint8_t kRespTruncated = 1U << 3;
inline constexpr std::uint8_t kRespDegraded = 1U << 4;

/// Decoded frame header plus a view of the payload bytes. The payload
/// pointer aliases the Decoder's internal buffer and is invalidated by the
/// next feed()/next() call.
struct FrameView {
  FrameType type = FrameType::kError;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  std::int64_t deadline_us = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
};

/// Why the decoder rejected the stream (sticky until reset()).
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,
  kBadDigest,
  kOverflow,  // caller fed more bytes than free() allowed
};

const char* to_string(WireError e);

/// Metadata for an encoded request frame.
struct RequestMeta {
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  std::int64_t deadline_us = 0;
  std::uint32_t max_steps = 0;  // 0 = server default
};

/// Metadata for an encoded response frame (mirrors serve::InferResult).
struct ResponseMeta {
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  std::int64_t latency_us = 0;
  std::uint8_t status = 0;     // serve::ResultStatus as u8
  std::uint8_t group = 0xFF;   // fleet group index, 0xFF = none
  std::uint8_t resp_flags = 0; // kResp* bits
  std::uint32_t pred = 0xFFFFFFFFU;
  std::uint32_t steps_used = 0;
  std::uint32_t batch_size = 0;
  float anomaly_score = 0.0F;
  std::uint32_t num_scores = 0;
};

/// Fixed prefix of a response payload before the scores array.
inline constexpr std::size_t kResponsePrefixSize = 24;

/// Total frame size for a payload of `payload_len` bytes.
inline constexpr std::size_t encoded_size(std::size_t payload_len) {
  return kWireHeaderSize + payload_len;
}

/// Encode one frame into dst (capacity cap). Returns the number of bytes
/// written, or 0 if cap is too small. `payload` may be null when len == 0.
std::size_t encode_frame(std::uint8_t* dst, std::size_t cap, FrameType type,
                         std::uint8_t flags, std::uint64_t request_id,
                         std::uint64_t tenant, std::int64_t deadline_us,
                         const void* payload, std::size_t len);

/// Encode a request frame: meta + max_steps + n float32 pixels.
std::size_t encode_request(std::uint8_t* dst, std::size_t cap,
                           const RequestMeta& meta, const float* pixels,
                           std::size_t n);

/// Encode a response frame: meta + meta.num_scores float32 scores (scores
/// may be null when num_scores == 0).
std::size_t encode_response(std::uint8_t* dst, std::size_t cap,
                            const ResponseMeta& meta, const float* scores);

/// Parse a kRequest payload. Returns false if the payload is too short or
/// its pixel bytes are not a whole number of float32s.
bool decode_request_payload(const FrameView& f, std::uint32_t& max_steps,
                            const std::uint8_t*& pixels, std::size_t& n);

/// Parse a kResponse payload into meta (+ pointer to the raw score bytes).
/// Returns false on a short or inconsistent payload.
bool decode_response_payload(const FrameView& f, ResponseMeta& meta,
                             const std::uint8_t*& scores);

/// Incremental frame decoder over a byte stream. All buffers are reserved
/// in the constructor; feed()/next() never allocate.
class Decoder {
 public:
  explicit Decoder(std::size_t max_payload);

  /// Append bytes from the stream. Returns false if the decoder is already
  /// in error, or n exceeds free() (error becomes kOverflow).
  bool feed(const void* data, std::size_t n);

  /// Surface the next complete frame, if any. The returned view aliases the
  /// internal buffer and is consumed by the following next()/feed() call.
  /// Returns false when no complete frame is buffered or the stream is in
  /// error (check error()).
  bool next(FrameView& out);

  /// Sticky stream error; kNone while the stream is healthy.
  WireError error() const { return err_; }

  /// Bytes buffered but not yet consumed.
  std::size_t buffered() const { return fill_ - consumed_; }

  /// Bytes feed() can accept right now (after internal compaction).
  std::size_t free() const;

  /// Forget all buffered bytes and clear the error state.
  void reset();

  std::size_t max_payload() const { return max_payload_; }

 private:
  bool parse_header(FrameView& out);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t fill_ = 0;      // bytes valid in buf_
  std::size_t consumed_ = 0;  // bytes already surfaced to the caller
  WireError err_ = WireError::kNone;
};

}  // namespace snnsec::fleet
