// fleet::Router — robustness-aware request routing over a sharded
// (Vth, T) ensemble.
//
// The paper's structural parameters become a fleet topology: each worker
// group hosts replicas of one (Vth, T) cell, and requests are routed by
// per-tenant threat level:
//
//   kTrusted  -> the low-latency group (low Vth / short window), with its
//                step budget defaulted to the truncation-curve cliff
//                (t ~ 7T/8, BENCH_serve.json: accuracy holds at 14/16 and
//                collapses below) so trusted traffic rides the cheap side
//                of the cliff.
//   kSuspect  -> the hardened group (high Vth / long window), the paper's
//                robust corner of the (Vth, T) grid.
//   kHostile  -> ensemble vote: the request runs on every group and the
//                majority prediction wins (ties -> the highest-Vth cell).
//                An attacker tuned to one cell's surrogate gradients
//                degrades gracefully against the vote.
//
// Layered on top: per-tenant token-bucket admission (quota rejects happen
// before any model work, upstream of the MicroBatcher's shed-at-capacity
// ring) and the PR 6 detection follow-on — when a low-latency group flags
// a request under DetectPolicy::kReroute, the router re-runs it on the
// hardened group and returns that cell's prediction instead of rejecting.
//
// Every group replica is a self-contained serve::Server in inline mode
// (submitter threads drive the micro-batches; resident pool workers would
// monopolise the shared ThreadPool), each with its own Supervisor, so
// canaries/quarantine/respawn operate per replica and chaos armed on one
// replica never takes down its group.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/model_cache.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace snnsec::fleet {

/// Per-tenant threat level, the routing key.
enum class Threat : std::uint8_t {
  kTrusted,  ///< low-latency group
  kSuspect,  ///< hardened high-Vth/high-T group
  kHostile,  ///< ensemble vote across all groups
};

const char* to_string(Threat t);

/// Structural role of a group inside the fleet.
enum class GroupRole : std::uint8_t {
  kLowLatency,  ///< low Vth / short T: cheap, first stop for trusted traffic
  kBalanced,    ///< middle of the (Vth, T) grid; ensemble diversity
  kHardened,    ///< high Vth / high T: the paper's robust corner
};

const char* to_string(GroupRole r);

struct GroupConfig {
  std::string name;
  GroupRole role = GroupRole::kBalanced;
  /// Checkpoint for this group's (Vth, T) cell; ignored when `artifact`
  /// is provided.
  std::string model_path;
  std::shared_ptr<const serve::ModelCache::Artifact> artifact;
  std::int64_t replicas = 1;
  /// Per-replica server settings (batcher, min_steps, detection,
  /// supervision, chaos). model_path is ignored (the group's checkpoint is
  /// used) and workers is forced to 0: fleet submitter threads drive
  /// inline batches.
  serve::ServerConfig server;
  /// Step budget applied to requests that do not carry their own.
  /// 0 = full window, except for kLowLatency groups where it defaults to
  /// the deadline-cliff budget max(min_steps, 7T/8).
  std::int64_t default_max_steps = 0;
  /// Deadline applied to requests that do not carry their own. 0 = none.
  std::int64_t default_deadline_us = 0;
  /// Chaos hook per replica index (tests/benches): arms faults on a subset
  /// of a group's replicas. Overrides server.chaos_on_batch when non-empty;
  /// entries may be null.
  std::vector<serve::ChaosHook> chaos_per_replica;
};

/// Admission quota. A tenant with burst <= 0 and rate_rps <= 0 is
/// unlimited. Otherwise the bucket holds `burst` tokens (default: one
/// second of rate) refilled at rate_rps; each request costs one token and
/// an empty bucket rejects before any model work. rate_rps == 0 with
/// burst > 0 is a fixed budget that never refills (deterministic tests).
struct TenantConfig {
  std::uint64_t id = 0;
  Threat threat = Threat::kTrusted;
  double rate_rps = 0.0;
  double burst = 0.0;
};

struct RouterConfig {
  std::vector<GroupConfig> groups;
  /// Known tenants; ids must be unique. Looked up by binary search.
  std::vector<TenantConfig> tenants;
  /// Applied to tenant ids not in `tenants` (id field ignored).
  TenantConfig default_tenant;
};

/// Result of one routed request. Reused across calls like InferResult:
/// after the first few requests a polling caller allocates nothing.
struct FleetResult {
  serve::InferResult result;  ///< the answer actually returned to the client
  std::int64_t group = -1;    ///< group that produced `result`
  bool quota_rejected = false;
  bool rerouted = false;  ///< flagged at low-latency, served by hardened
  bool ensemble = false;
  std::int64_t votes_for = 0;  ///< ensemble: votes for the winning class
  bool tie_break = false;      ///< ensemble: highest-Vth cell broke a tie
  std::int64_t fleet_latency_us = 0;  ///< router entry -> exit
  /// Ensemble scratch: per-group cell results, reused across calls.
  std::vector<serve::InferResult> cell_results;
  std::vector<unsigned char> cell_ok;
};

/// Aggregated per-group counters (replica Server stats summed).
struct GroupStats {
  std::string name;
  GroupRole role = GroupRole::kBalanced;
  double v_th = 0.0;
  std::int64_t time_steps = 0;
  std::int64_t replicas = 0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t errors = 0;
  std::int64_t truncated = 0;
  std::int64_t flagged = 0;
  std::int64_t quarantines = 0;
  std::int64_t respawns = 0;
  std::int64_t retries = 0;
};

struct RouterStats {
  std::int64_t requests = 0;
  std::int64_t completed = 0;
  std::int64_t errors = 0;
  std::int64_t shed = 0;            ///< cell admission shed seen fleet-wide
  std::int64_t quota_rejected = 0;  ///< token bucket said no
  std::int64_t rerouted = 0;        ///< flagged requests escalated
  std::int64_t reroute_served = 0;  ///< escalations answered by hardened
  std::int64_t ensembles = 0;
  std::int64_t ensemble_ties = 0;
  std::vector<GroupStats> groups;
};

class Router {
 public:
  explicit Router(RouterConfig cfg);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Route one request. Returns true when out.result.status == kOk.
  /// Thread-safe; callers drive the inline micro-batches of whichever
  /// replica they land on.
  bool infer(std::uint64_t tenant, const tensor::Tensor& x,
             const serve::RequestOptions& opt, FleetResult& out);

  /// Stop every replica (drain in-flight requests). Idempotent.
  void stop();

  RouterStats stats() const;

  std::int64_t num_groups() const {
    return static_cast<std::int64_t>(groups_.size());
  }
  std::int64_t low_latency_group() const { return low_latency_; }
  std::int64_t hardened_group() const { return hardened_; }
  const std::string& group_name(std::int64_t g) const;
  GroupRole group_role(std::int64_t g) const;
  /// The group's replica servers (tests: poke supervisors, read stats).
  serve::Server& replica(std::int64_t g, std::int64_t r);
  std::int64_t replica_count(std::int64_t g) const;

  /// Input geometry shared by every cell (validated at construction).
  const nn::LenetSpec& arch() const;
  std::int64_t num_classes() const;
  Threat tenant_threat(std::uint64_t id) const;

 private:
  /// Lock-free token bucket in micro-tokens (1 request = 1e6 utok).
  /// Refill is CAS-racy but never mints more than `cap` and under-refill
  /// only delays admission by one refill step — fine for a quota.
  struct Bucket {
    std::atomic<std::int64_t> level_utok{0};
    std::atomic<std::int64_t> last_refill_us{0};
    std::int64_t cap_utok = 0;     // 0 = unlimited
    double rate_utok_per_us = 0.0; // == rate_rps
    bool try_take(std::int64_t now_us);
  };

  struct Group {
    GroupConfig cfg;
    std::shared_ptr<const serve::ModelCache::Artifact> artifact;
    std::vector<std::unique_ptr<serve::Server>> servers;
    std::int64_t default_max_steps = 0;  // resolved (cliff applied)
    std::atomic<std::uint64_t> rr{0};    // round-robin replica cursor
  };

  bool infer_on_group(std::int64_t g, const tensor::Tensor& x,
                      const serve::RequestOptions& opt,
                      serve::InferResult& out);
  bool infer_ensemble(const tensor::Tensor& x,
                      const serve::RequestOptions& opt, FleetResult& out);
  serve::RequestOptions effective_options(const Group& g,
                                          const serve::RequestOptions& opt)
      const;
  const TenantConfig& tenant_config(std::uint64_t id, std::size_t& index)
      const;
  std::int64_t now_us() const;

  RouterConfig cfg_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<TenantConfig> tenants_;  // sorted by id
  std::vector<std::unique_ptr<Bucket>> buckets_;  // parallel to tenants_
  std::unique_ptr<Bucket> default_bucket_;  // shared by unknown tenants
  std::int64_t low_latency_ = 0;
  std::int64_t hardened_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> quota_rejected_{0};
  std::atomic<std::int64_t> rerouted_{0};
  std::atomic<std::int64_t> reroute_served_{0};
  std::atomic<std::int64_t> ensembles_{0};
  std::atomic<std::int64_t> ensemble_ties_{0};
};

}  // namespace snnsec::fleet
