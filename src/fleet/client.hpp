// Blocking TCP client for the fleet wire protocol (IPv4/loopback).
//
// One WireClient owns one connection and supports one outstanding request
// at a time: request() sends a kRequest frame and blocks until the frame
// with the matching request_id comes back (kResponse or kError). Buffers
// (encode scratch + decoder) are reserved at construction, so a client
// polling in a loop allocates nothing after the first response.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/wire.hpp"

namespace snnsec::fleet {

class WireClient {
 public:
  /// Connect to host:port (dotted-quad IPv4 or "localhost"). Check
  /// connected() — construction never throws on refused connections.
  WireClient(const std::string& host, int port, std::size_t max_payload);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Send one request and block for its reply. Returns true when a
  /// kResponse frame with meta.request_id arrived; `scores`, when non-null,
  /// receives the per-class scores. A kError frame or transport failure
  /// returns false (`error_out`, when non-null, gets the reason) and
  /// closes the connection on transport/stream errors.
  bool request(const RequestMeta& meta, const float* pixels, std::size_t n,
               ResponseMeta& out, std::vector<float>* scores = nullptr,
               std::string* error_out = nullptr);

  /// Send a kPing carrying `n` opaque bytes; true when the kPong echoed
  /// them back verbatim.
  bool ping(const void* payload, std::size_t n);

  void close();

 private:
  bool send_all(const std::uint8_t* p, std::size_t n);
  /// Read from the socket until a complete frame or failure.
  bool read_frame(FrameView& f);

  int fd_ = -1;
  Decoder dec_;
  std::vector<std::uint8_t> tx_;
};

}  // namespace snnsec::fleet
