// SNNSEC_HOT: per-frame I/O + dispatch path — steady state must not
// allocate between accept and response write.
#include "fleet/frontend.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "fleet/wire.hpp"
#include "obs/metrics.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"

namespace snnsec::fleet {

using tensor::Shape;
using tensor::Tensor;

/// One client connection. The I/O thread owns fd lifecycle and the
/// decoder; executors only write, and every write / open-flag access /
/// close happens under write_m, so a response write never races teardown.
struct Frontend::Conn {
  Conn(int f, std::size_t max_payload) : fd(f), dec(max_payload) {}

  int fd = -1;
  Decoder dec;
  std::mutex write_m;
  bool open = true;  // guarded by write_m
};

/// One dispatched request: the connection it answers to, the latched
/// image, and the request metadata. input is preallocated at construction.
struct Frontend::DispatchSlot {
  std::shared_ptr<Conn> conn;
  Tensor input;
  RequestMeta meta;
};

/// Fixed dispatch ring: free slots are a stack, ready slots a FIFO.
/// A full ring sheds at the I/O thread instead of buffering unboundedly.
struct Frontend::Ring {
  std::mutex m;
  std::condition_variable cv;
  std::vector<DispatchSlot> slots;
  std::vector<std::int64_t> ready;  // FIFO ring buffer of slot indices
  std::size_t ready_head = 0;
  std::size_t ready_count = 0;
  std::vector<std::int64_t> free_list;  // stack of slot indices
  bool draining = false;
};

/// Bounded send loop over a non-blocking socket. On EAGAIN waits for
/// writability with poll(POLLOUT) up to cfg_.write_timeout_ms total, then
/// gives up: a client that stops reading (full receive window) is treated
/// as a transport failure instead of wedging the I/O or executor thread.
/// Caller holds conn.write_m. Returns false on failure or timeout.
bool Frontend::write_conn(Conn& conn, const std::uint8_t* p, std::size_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(cfg_.write_timeout_ms);
  while (n > 0) {
    const ssize_t w = ::send(conn.fd, p, n, MSG_NOSIGNAL);
    if (w > 0) {
      p += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (left <= 0) {
        write_timeouts_.fetch_add(1, std::memory_order_relaxed);
        SNNSEC_COUNTER_ADD("fleet.frontend.write_timeouts", 1);
        return false;
      }
      pollfd pfd{conn.fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno != EINTR) return false;
      continue;  // writable, timed out (deadline re-checked), or EINTR
    }
    return false;
  }
  return true;
}

Frontend::Frontend(Router& router, FrontendConfig cfg)
    : router_(router), cfg_(std::move(cfg)) {
  SNNSEC_CHECK(cfg_.executors >= 1, "Frontend: executors must be >= 1");
  SNNSEC_CHECK(cfg_.queue_capacity >= 1,
               "Frontend: queue_capacity must be >= 1");
  SNNSEC_CHECK(cfg_.max_connections >= 1,
               "Frontend: max_connections must be >= 1");
  const nn::LenetSpec& arch = router_.arch();
  const std::size_t pixels = static_cast<std::size_t>(
      arch.in_channels * arch.image_size * arch.image_size);
  SNNSEC_CHECK(cfg_.max_payload >= 4 + 4 * pixels,
               "Frontend: max_payload " << cfg_.max_payload
                                        << " cannot hold a request image ("
                                        << 4 + 4 * pixels << " bytes)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SNNSEC_CHECK(listen_fd_ >= 0, "Frontend: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  const char* addr =
      cfg_.host == "localhost" ? "127.0.0.1" : cfg_.host.c_str();
  SNNSEC_CHECK(inet_pton(AF_INET, addr, &sa.sin_addr) == 1,
               "Frontend: bad IPv4 address '" << cfg_.host << "'");
  SNNSEC_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&sa),
                      sizeof(sa)) == 0,
               "Frontend: bind to " << cfg_.host << ":" << cfg_.port
                                    << " failed (errno " << errno << ")");
  SNNSEC_CHECK(::listen(listen_fd_, 64) == 0, "Frontend: listen() failed");
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  SNNSEC_CHECK(::pipe(wake_pipe_) == 0, "Frontend: pipe() failed");

  ring_ = std::make_unique<Ring>();
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time dispatch ring sizing.
  ring_->slots.resize(static_cast<std::size_t>(cfg_.queue_capacity));
  for (DispatchSlot& s : ring_->slots)
    s.input = Tensor::zeros(
        Shape{1, arch.in_channels, arch.image_size, arch.image_size});
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time dispatch ring sizing.
  ring_->ready.resize(static_cast<std::size_t>(cfg_.queue_capacity), 0);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time free-list capacity.
  ring_->free_list.reserve(static_cast<std::size_t>(cfg_.queue_capacity));
  for (std::int64_t i = cfg_.queue_capacity - 1; i >= 0; --i)
    // NOLINTNEXTLINE(snnsec-hot-alloc): fills capacity reserved above.
    ring_->free_list.push_back(i);
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time connection-table capacity.
  conns_.reserve(static_cast<std::size_t>(cfg_.max_connections));
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time io scratch buffer sizing.
  io_tx_.resize(encoded_size(cfg_.max_payload));

  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time executor construction.
  executors_.reserve(static_cast<std::size_t>(cfg_.executors));
  for (std::int64_t e = 0; e < cfg_.executors; ++e)
    // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time executor construction.
    executors_.emplace_back([this, e] { executor_loop(e); });
  io_thread_ = std::thread([this] { io_loop(); });
  SNNSEC_LOG_INFO("fleet::Frontend: listening on " << cfg_.host << ":"
                                                   << port_ << " ("
                                                   << cfg_.executors
                                                   << " executors)");
}

Frontend::~Frontend() { stop(); }

void Frontend::stop() {
  if (stopped_.exchange(true)) return;
  // Phase 1: stop accepting and reading — no new work enters the ring.
  stop_requested_.store(true, std::memory_order_release);
  const char wake = 'x';
  [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &wake, 1);
  if (io_thread_.joinable()) io_thread_.join();
  // Phase 2: drain — executors finish every dispatched request and write
  // its response before exiting.
  {
    std::lock_guard<std::mutex> lk(ring_->m);
    ring_->draining = true;
  }
  ring_->cv.notify_all();
  for (std::thread& t : executors_) t.join();
  // Phase 3: close.
  for (const std::shared_ptr<Conn>& c : conns_) close_conn(c);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

FrontendStats Frontend::stats() const {
  FrontendStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.connections_open = open_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  return s;
}

void Frontend::send_error(Conn& conn, std::uint64_t request_id,
                          std::uint64_t tenant, const char* msg) {
  std::uint8_t buf[256];
  const std::size_t n = std::min(std::strlen(msg), sizeof(buf) - kWireHeaderSize);
  const std::size_t len = encode_frame(buf, sizeof(buf), FrameType::kError,
                                       0, request_id, tenant, 0, msg, n);
  if (len == 0) return;
  std::lock_guard<std::mutex> lk(conn.write_m);
  if (!conn.open) return;
  if (!write_conn(conn, buf, len)) conn.open = false;
}

void Frontend::close_conn(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lk(conn->write_m);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
    open_.fetch_add(-1, std::memory_order_relaxed);
  }
  conn->open = false;
}

void Frontend::dispatch_frame(const std::shared_ptr<Conn>& conn,
                              const FrameView& frame) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("fleet.frontend.frames", 1);
  switch (frame.type) {
    case FrameType::kPing: {
      // Answered inline on the I/O thread; echoes the payload.
      std::uint8_t* tx = io_tx_.data();
      const std::size_t len = encode_frame(
          tx, io_tx_.size(), FrameType::kPong, 0, frame.request_id,
          frame.tenant, 0, frame.payload, frame.payload_len);
      std::lock_guard<std::mutex> lk(conn->write_m);
      if (conn->open && len > 0 && !write_conn(*conn, tx, len))
        conn->open = false;
      return;
    }
    case FrameType::kRequest:
      break;
    default:
      // Clients must not send responses/pongs/errors; treat it as a
      // protocol violation and tear the stream down.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("fleet.frontend.malformed", 1);
      send_error(*conn, frame.request_id, frame.tenant, "bad frame type");
      close_conn(conn);
      return;
  }

  std::uint32_t max_steps = 0;
  const std::uint8_t* pixels = nullptr;
  std::size_t n = 0;
  if (!decode_request_payload(frame, max_steps, pixels, n)) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.frontend.malformed", 1);
    send_error(*conn, frame.request_id, frame.tenant, "bad request");
    close_conn(conn);
    return;
  }
  const nn::LenetSpec& arch = router_.arch();
  const std::size_t want = static_cast<std::size_t>(
      arch.in_channels * arch.image_size * arch.image_size);
  if (n != want) {
    // Wrong image geometry is an application error, not stream desync:
    // reply and keep the connection.
    malformed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.frontend.malformed", 1);
    send_error(*conn, frame.request_id, frame.tenant, "bad image size");
    return;
  }

  std::int64_t idx = -1;
  {
    std::lock_guard<std::mutex> lk(ring_->m);
    if (!ring_->free_list.empty()) {
      idx = ring_->free_list.back();
      ring_->free_list.pop_back();
    }
  }
  if (idx < 0) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.frontend.shed", 1);
    send_error(*conn, frame.request_id, frame.tenant, "overloaded");
    return;
  }
  DispatchSlot& slot = ring_->slots[static_cast<std::size_t>(idx)];
  slot.conn = conn;
  slot.meta.request_id = frame.request_id;
  slot.meta.tenant = frame.tenant;
  slot.meta.deadline_us = std::max<std::int64_t>(0, frame.deadline_us);
  slot.meta.max_steps = max_steps;
  // Raw little-endian float32 pixels straight into the latched tensor.
  std::memcpy(slot.input.data(), pixels, 4 * n);
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(ring_->m);
    const std::size_t tail =
        (ring_->ready_head + ring_->ready_count) % ring_->ready.size();
    ring_->ready[tail] = idx;
    ++ring_->ready_count;
  }
  ring_->cv.notify_one();
}

void Frontend::handle_readable(const std::shared_ptr<Conn>& conn) {
  std::uint8_t buf[4096];
  const std::size_t want = std::min(sizeof(buf), conn->dec.free());
  const ssize_t r = want > 0 ? ::recv(conn->fd, buf, want, 0) : 0;
  if (r < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(conn);
    return;
  }
  if (r == 0 && want > 0) {  // orderly peer shutdown
    close_conn(conn);
    return;
  }
  if (!conn->dec.feed(buf, static_cast<std::size_t>(r))) {
    close_conn(conn);
    return;
  }
  FrameView frame;
  while (conn->dec.next(frame)) {
    dispatch_frame(conn, frame);
    if (conn->fd < 0) return;  // dispatch tore the connection down
  }
  if (conn->dec.error() != WireError::kNone) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.frontend.malformed", 1);
    send_error(*conn, 0, 0, to_string(conn->dec.error()));
    close_conn(conn);
  }
}

void Frontend::io_loop() {
  // Fixed poll set: [0] listener, [1] wake pipe, [2..] connections.
  // NOLINTNEXTLINE(snnsec-hot-alloc): one-time poll-set reservation
  std::vector<pollfd> pfds(static_cast<std::size_t>(cfg_.max_connections) +
                           2);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pfds[0] = pollfd{listen_fd_, POLLIN, 0};
    pfds[1] = pollfd{wake_pipe_[0], POLLIN, 0};
    const std::size_t nconn = conns_.size();
    for (std::size_t i = 0; i < nconn; ++i)
      pfds[i + 2] = pollfd{conns_[i]->fd, POLLIN, 0};
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(nconn + 2), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      SNNSEC_LOG_WARN("fleet::Frontend: poll failed (errno " << errno
                                                             << ")");
      break;
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      char drain[16];
      [[maybe_unused]] const ssize_t d =
          ::read(wake_pipe_[0], drain, sizeof(drain));
      continue;  // loop condition re-checks stop_requested_
    }
    for (std::size_t i = 0; i < nconn; ++i) {
      const short ev = pfds[i + 2].revents;
      if ((ev & (POLLIN | POLLHUP | POLLERR)) != 0)
        handle_readable(conns_[i]);
    }
    // Compact closed connections out of the poll set.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Conn>& c) {
                                  return c->fd < 0;
                                }),
                 conns_.end());
    if ((pfds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        if (conns_.size() >=
            static_cast<std::size_t>(cfg_.max_connections)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          ::close(fd);
        } else {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          // Non-blocking so a stalled peer can never wedge a writer;
          // write_conn bounds each write with poll(POLLOUT, timeout).
          const int fl = ::fcntl(fd, F_GETFL, 0);
          ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
          // NOLINTNEXTLINE(snnsec-hot-alloc): per-connection setup, not per-frame
          conns_.push_back(std::make_shared<Conn>(fd, cfg_.max_payload));
          accepted_.fetch_add(1, std::memory_order_relaxed);
          open_.fetch_add(1, std::memory_order_relaxed);
          SNNSEC_COUNTER_ADD("fleet.frontend.connections", 1);
        }
      }
    }
  }
}

void Frontend::executor_loop(std::int64_t id) {
  (void)id;
  const std::int64_t classes = router_.num_classes();
  // NOLINTNEXTLINE(snnsec-hot-alloc): one-time response scratch reservation
  std::vector<std::uint8_t> tx(encoded_size(
      kResponsePrefixSize + 4 * static_cast<std::size_t>(classes)));
  FleetResult fr;
  for (;;) {
    std::int64_t idx = -1;
    {
      std::unique_lock<std::mutex> lk(ring_->m);
      ring_->cv.wait(lk, [&] {
        return ring_->ready_count > 0 || ring_->draining;
      });
      if (ring_->ready_count == 0) return;  // draining and empty
      idx = ring_->ready[ring_->ready_head];
      ring_->ready_head = (ring_->ready_head + 1) % ring_->ready.size();
      --ring_->ready_count;
    }
    DispatchSlot& slot = ring_->slots[static_cast<std::size_t>(idx)];
    serve::RequestOptions opt;
    opt.deadline_us = slot.meta.deadline_us;
    opt.max_steps = static_cast<std::int64_t>(slot.meta.max_steps);
    router_.infer(slot.meta.tenant, slot.input, opt, fr);

    ResponseMeta rm;
    rm.request_id = slot.meta.request_id;
    rm.tenant = slot.meta.tenant;
    rm.latency_us = fr.fleet_latency_us;
    rm.status = static_cast<std::uint8_t>(fr.result.status);
    rm.group = fr.group >= 0 && fr.group <= 0xFE
                   ? static_cast<std::uint8_t>(fr.group)
                   : 0xFF;
    rm.resp_flags = 0;
    if (fr.result.flagged) rm.resp_flags |= kRespFlagged;
    if (fr.rerouted) rm.resp_flags |= kRespRerouted;
    if (fr.ensemble) rm.resp_flags |= kRespEnsemble;
    if (fr.result.truncated) rm.resp_flags |= kRespTruncated;
    if (fr.result.degraded) rm.resp_flags |= kRespDegraded;
    rm.pred = fr.result.pred >= 0
                  ? static_cast<std::uint32_t>(fr.result.pred)
                  : 0xFFFFFFFFU;
    rm.steps_used = static_cast<std::uint32_t>(fr.result.steps_used);
    rm.batch_size = static_cast<std::uint32_t>(fr.result.batch_size);
    rm.anomaly_score = static_cast<float>(fr.result.anomaly_score);
    rm.num_scores = fr.result.status == serve::ResultStatus::kOk
                        ? static_cast<std::uint32_t>(fr.result.scores.size())
                        : 0;
    const std::size_t len = encode_response(
        tx.data(), tx.size(), rm,
        rm.num_scores > 0 ? fr.result.scores.data() : nullptr);
    {
      std::lock_guard<std::mutex> lk(slot.conn->write_m);
      if (slot.conn->open && len > 0) {
        if (write_conn(*slot.conn, tx.data(), len))
          responses_.fetch_add(1, std::memory_order_relaxed);
        else
          slot.conn->open = false;
      }
    }
    slot.conn.reset();
    {
      std::lock_guard<std::mutex> lk(ring_->m);
      // The free list never exceeds the queue_capacity reserved at
      // construction, so this push_back cannot grow the vector.
      // NOLINTNEXTLINE(snnsec-hot-alloc): within reserved capacity, no heap.
      ring_->free_list.push_back(idx);
    }
  }
}

}  // namespace snnsec::fleet
