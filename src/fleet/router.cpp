// SNNSEC_HOT: per-request routing/admission path — steady state must not
// allocate (quota rejects and routed completions alike).
#include "fleet/router.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"

namespace snnsec::fleet {
namespace {

// One admission token, in micro-tokens: integer bucket arithmetic at
// microsecond refill granularity.
constexpr std::int64_t kUtokPerRequest = 1'000'000;

}  // namespace

const char* to_string(Threat t) {
  switch (t) {
    case Threat::kTrusted: return "trusted";
    case Threat::kSuspect: return "suspect";
    case Threat::kHostile: return "hostile";
  }
  return "unknown";
}

const char* to_string(GroupRole r) {
  switch (r) {
    case GroupRole::kLowLatency: return "low-latency";
    case GroupRole::kBalanced: return "balanced";
    case GroupRole::kHardened: return "hardened";
  }
  return "unknown";
}

// SNNSEC_HOT entry: per-request quota check, before any model work.
bool Router::Bucket::try_take(std::int64_t now_us) {
  if (cap_utok == 0) return true;  // unlimited tenant
  if (rate_utok_per_us > 0.0) {
    // Claim the refill window [last, now). The CAS loser simply skips the
    // refill; its tokens arrive with the next winner's window. Under-refill
    // only delays admission, never mints extra tokens.
    std::int64_t last = last_refill_us.load(std::memory_order_relaxed);
    if (now_us > last &&
        last_refill_us.compare_exchange_strong(last, now_us,
                                               std::memory_order_relaxed)) {
      const auto add = static_cast<std::int64_t>(
          static_cast<double>(now_us - last) * rate_utok_per_us);
      std::int64_t cur = level_utok.load(std::memory_order_relaxed);
      std::int64_t want = 0;
      do {
        want = std::min(cap_utok, cur + add);
      } while (cur < want &&
               !level_utok.compare_exchange_weak(cur, want,
                                                 std::memory_order_relaxed));
    }
  }
  std::int64_t cur = level_utok.load(std::memory_order_relaxed);
  do {
    if (cur < kUtokPerRequest) return false;
  } while (!level_utok.compare_exchange_weak(cur, cur - kUtokPerRequest,
                                             std::memory_order_relaxed));
  return true;
}

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)), start_(std::chrono::steady_clock::now()) {
  SNNSEC_CHECK(!cfg_.groups.empty(), "Router: at least one group required");

  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time group construction.
  groups_.reserve(cfg_.groups.size());
  for (std::size_t gi = 0; gi < cfg_.groups.size(); ++gi) {
    const GroupConfig& gc = cfg_.groups[gi];
    SNNSEC_CHECK(gc.replicas >= 1, "Router: group '"
                                       << gc.name << "' needs >= 1 replica");
    auto g = std::make_unique<Group>();
    g->cfg = gc;
    g->artifact = gc.artifact
                      ? gc.artifact
                      : serve::ModelCache::global().acquire(gc.model_path);
    const nn::LenetSpec& a = g->artifact->arch();
    if (gi > 0) {
      const nn::LenetSpec& a0 = groups_[0]->artifact->arch();
      SNNSEC_CHECK(a.in_channels == a0.in_channels &&
                       a.image_size == a0.image_size &&
                       a.num_classes == a0.num_classes,
                   "Router: group '" << gc.name
                                     << "' input geometry/classes differ "
                                        "from group '"
                                     << cfg_.groups[0].name << "'");
    }
    const std::int64_t steps = g->artifact->config().time_steps;
    if (gc.default_max_steps > 0) {
      g->default_max_steps = gc.default_max_steps;
    } else if (gc.role == GroupRole::kLowLatency) {
      // Default trusted traffic to the cheap side of the truncation-curve
      // cliff: BENCH_serve's deadline curve holds accuracy at t = 14/16
      // (7T/8) and collapses below it.
      g->default_max_steps =
          std::max(gc.server.min_steps, steps - steps / 8);
    }
    for (std::int64_t r = 0; r < gc.replicas; ++r) {
      serve::ServerConfig sc = gc.server;
      sc.model_path.clear();
      // Resident pool workers from N servers would monopolise the shared
      // ThreadPool; fleet submitter threads drive inline batches instead.
      sc.workers = 0;
      if (!gc.chaos_per_replica.empty())
        sc.chaos_on_batch = static_cast<std::size_t>(r) <
                                    gc.chaos_per_replica.size()
                                ? gc.chaos_per_replica[static_cast<
                                      std::size_t>(r)]
                                : serve::ChaosHook{};
      // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time replica construction.
      g->servers.push_back(
          std::make_unique<serve::Server>(sc, g->artifact));
    }
    // NOLINTNEXTLINE(snnsec-hot-alloc): fills capacity reserved above.
    groups_.push_back(std::move(g));
  }

  // Resolve the routing anchors. Explicit roles win; otherwise fall back
  // to the structural parameters themselves (lowest Vth then shortest T is
  // the cheapest cell, highest Vth then longest T the most robust).
  auto cell = [&](std::size_t i) {
    return std::make_pair(groups_[i]->artifact->config().v_th,
                          groups_[i]->artifact->config().time_steps);
  };
  std::int64_t low = -1;
  std::int64_t hard = -1;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (low < 0 && groups_[i]->cfg.role == GroupRole::kLowLatency)
      low = static_cast<std::int64_t>(i);
    if (hard < 0 && groups_[i]->cfg.role == GroupRole::kHardened)
      hard = static_cast<std::int64_t>(i);
  }
  if (low < 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < groups_.size(); ++i)
      if (cell(i) < cell(best)) best = i;
    low = static_cast<std::int64_t>(best);
  }
  if (hard < 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < groups_.size(); ++i)
      if (cell(i) > cell(best)) best = i;
    hard = static_cast<std::int64_t>(best);
  }
  low_latency_ = low;
  hardened_ = hard;

  // Tenant table: sorted for binary search, one bucket per tenant.
  tenants_ = cfg_.tenants;
  std::sort(tenants_.begin(), tenants_.end(),
            [](const TenantConfig& a, const TenantConfig& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 1; i < tenants_.size(); ++i)
    SNNSEC_CHECK(tenants_[i - 1].id != tenants_[i].id,
                 "Router: duplicate tenant id " << tenants_[i].id);
  auto make_bucket = [](const TenantConfig& tc) {
    auto b = std::make_unique<Bucket>();
    const double cap =
        tc.burst > 0.0 ? tc.burst : (tc.rate_rps > 0.0 ? tc.rate_rps : 0.0);
    b->cap_utok = static_cast<std::int64_t>(
        cap * static_cast<double>(kUtokPerRequest));
    b->rate_utok_per_us = tc.rate_rps;  // rps tokens/s == utok/us
    b->level_utok.store(b->cap_utok, std::memory_order_relaxed);
    return b;
  };
  auto check_threat = [&](const TenantConfig& tc) {
    SNNSEC_CHECK(tc.threat != Threat::kHostile || groups_.size() >= 3,
                 "Router: hostile tenant " << tc.id
                                           << " needs an ensemble of >= 3 "
                                              "groups, have "
                                           << groups_.size());
  };
  // NOLINTNEXTLINE(snnsec-hot-alloc): startup-time quota-bucket table.
  buckets_.reserve(tenants_.size());
  for (const TenantConfig& tc : tenants_) {
    check_threat(tc);
    // NOLINTNEXTLINE(snnsec-hot-alloc): fills capacity reserved above.
    buckets_.push_back(make_bucket(tc));
  }
  check_threat(cfg_.default_tenant);
  default_bucket_ = make_bucket(cfg_.default_tenant);

  SNNSEC_LOG_INFO("fleet::Router: "
                  << groups_.size() << " groups, low-latency='"
                  << groups_[static_cast<std::size_t>(low_latency_)]->cfg.name
                  << "', hardened='"
                  << groups_[static_cast<std::size_t>(hardened_)]->cfg.name
                  << "', " << tenants_.size() << " tenants");
}

Router::~Router() { stop(); }

void Router::stop() {
  if (stopped_.exchange(true)) return;
  for (auto& g : groups_)
    for (auto& s : g->servers) s->stop();
}

std::int64_t Router::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

const TenantConfig& Router::tenant_config(std::uint64_t id,
                                          std::size_t& index) const {
  const auto it = std::lower_bound(
      tenants_.begin(), tenants_.end(), id,
      [](const TenantConfig& tc, std::uint64_t key) { return tc.id < key; });
  if (it != tenants_.end() && it->id == id) {
    index = static_cast<std::size_t>(it - tenants_.begin());
    return *it;
  }
  index = tenants_.size();
  return cfg_.default_tenant;
}

Threat Router::tenant_threat(std::uint64_t id) const {
  std::size_t idx = 0;
  return tenant_config(id, idx).threat;
}

serve::RequestOptions Router::effective_options(
    const Group& g, const serve::RequestOptions& opt) const {
  serve::RequestOptions eff = opt;
  if (eff.max_steps == 0) eff.max_steps = g.default_max_steps;
  if (eff.deadline_us == 0) eff.deadline_us = g.cfg.default_deadline_us;
  return eff;
}

bool Router::infer_on_group(std::int64_t g, const tensor::Tensor& x,
                            const serve::RequestOptions& opt,
                            serve::InferResult& out) {
  Group& grp = *groups_[static_cast<std::size_t>(g)];
  const serve::RequestOptions eff = effective_options(grp, opt);
  const std::size_t r =
      static_cast<std::size_t>(grp.rr.fetch_add(
          1, std::memory_order_relaxed)) %
      grp.servers.size();
  return grp.servers[r]->infer(x, eff, out);
}

bool Router::infer_ensemble(const tensor::Tensor& x,
                            const serve::RequestOptions& opt,
                            FleetResult& out) {
  const std::size_t n = groups_.size();
  // Guard the two scratch vectors independently: the kReroute path grows
  // cell_results alone, so a reused FleetResult can arrive here with
  // cell_results already sized but cell_ok still empty.
  if (out.cell_results.size() < n) {
    // NOLINTNEXTLINE(snnsec-hot-alloc): first-use scratch growth, reused after
    out.cell_results.resize(n);
  }
  if (out.cell_ok.size() < n) {
    // NOLINTNEXTLINE(snnsec-hot-alloc): first-use scratch growth, reused after
    out.cell_ok.resize(n, 0);
  }
  std::int64_t alive = 0;
  for (std::size_t g = 0; g < n; ++g) {
    out.cell_ok[g] = infer_on_group(static_cast<std::int64_t>(g), x, opt,
                                    out.cell_results[g])
                         ? 1
                         : 0;
    if (out.cell_ok[g] != 0) ++alive;
  }
  out.ensemble = true;
  ensembles_.fetch_add(1, std::memory_order_relaxed);
  if (alive == 0) {
    out.group = -1;
    out.result.status = serve::ResultStatus::kError;
    out.result.pred = -1;
    // NOLINTNEXTLINE(snnsec-hot-alloc): 7-byte literal fits SSO, no heap.
    out.result.error.assign("no cell");
    return false;
  }
  // Majority vote over the surviving cells, O(G^2) with no per-class
  // scratch. Ties break toward the highest-Vth (then longest-T) cell, the
  // structurally hardest one to attack.
  std::size_t winner = n;
  std::int64_t winner_votes = 0;
  bool tie_seen = false;
  for (std::size_t g = 0; g < n; ++g) {
    if (out.cell_ok[g] == 0) continue;
    std::int64_t votes = 0;
    for (std::size_t h = 0; h < n; ++h)
      if (out.cell_ok[h] != 0 &&
          out.cell_results[h].pred == out.cell_results[g].pred)
        ++votes;
    const auto key = [&](std::size_t i) {
      return std::make_pair(groups_[i]->artifact->config().v_th,
                            groups_[i]->artifact->config().time_steps);
    };
    if (winner == n) {
      winner = g;
      winner_votes = votes;
      continue;
    }
    if (out.cell_results[g].pred == out.cell_results[winner].pred) {
      // Same class: keep the strongest (highest-Vth, then longest-T) cell as
      // that class's representative so later tie-breaks compare against it.
      if (key(g) > key(winner)) winner = g;
      continue;
    }
    if (votes > winner_votes) {
      winner = g;
      winner_votes = votes;
      tie_seen = false;
    } else if (votes == winner_votes) {
      tie_seen = true;
      if (key(g) > key(winner)) winner = g;
    }
  }
  out.votes_for = winner_votes;
  out.tie_break = tie_seen;
  if (tie_seen) {
    ensemble_ties_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.ensemble.ties", 1);
  }
  out.group = static_cast<std::int64_t>(winner);
  // Copy (not swap) so cell_results keeps every cell for forensics; the
  // destination buffers are reused, so this is allocation-free after warm.
  out.result = out.cell_results[winner];
  return out.result.status == serve::ResultStatus::kOk;
}

bool Router::infer(std::uint64_t tenant, const tensor::Tensor& x,
                   const serve::RequestOptions& opt, FleetResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  SNNSEC_COUNTER_ADD("fleet.requests", 1);
  out.group = -1;
  out.quota_rejected = false;
  out.rerouted = false;
  out.ensemble = false;
  out.votes_for = 0;
  out.tie_break = false;

  std::size_t ti = 0;
  const TenantConfig& tc = tenant_config(tenant, ti);
  Bucket& bucket =
      ti < buckets_.size() ? *buckets_[ti] : *default_bucket_;
  if (!bucket.try_take(now_us())) {
    quota_rejected_.fetch_add(1, std::memory_order_relaxed);
    SNNSEC_COUNTER_ADD("fleet.quota.rejected", 1);
    out.quota_rejected = true;
    out.result.status = serve::ResultStatus::kRejected;
    out.result.pred = -1;
    out.result.flagged = false;
    // NOLINTNEXTLINE(snnsec-hot-alloc): 5-byte literal fits SSO, no heap.
    out.result.error.assign("quota");
    out.fleet_latency_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return false;
  }

  bool ok = false;
  switch (tc.threat) {
    case Threat::kTrusted: {
      SNNSEC_COUNTER_ADD("fleet.route.low_latency", 1);
      out.group = low_latency_;
      ok = infer_on_group(low_latency_, x, opt, out.result);
      const Group& grp = *groups_[static_cast<std::size_t>(low_latency_)];
      if (ok && out.result.flagged &&
          grp.cfg.server.detect_policy == serve::DetectPolicy::kReroute &&
          hardened_ != low_latency_) {
        // Detection follow-on: serve the flagged request from the hardened
        // high-Vth cell instead of observing/rejecting.
        rerouted_.fetch_add(1, std::memory_order_relaxed);
        SNNSEC_COUNTER_ADD("fleet.reroute.requests", 1);
        out.rerouted = true;
        if (out.cell_results.size() < groups_.size()) {
          // NOLINTNEXTLINE(snnsec-hot-alloc): first-use scratch, reused after
          out.cell_results.resize(groups_.size());
        }
        serve::InferResult& hard =
            out.cell_results[static_cast<std::size_t>(hardened_)];
        if (infer_on_group(hardened_, x, opt, hard)) {
          std::swap(out.result, hard);  // keeps both score buffers alive
          out.group = hardened_;
          reroute_served_.fetch_add(1, std::memory_order_relaxed);
          SNNSEC_COUNTER_ADD("fleet.reroute.served", 1);
        }
      }
      break;
    }
    case Threat::kSuspect:
      SNNSEC_COUNTER_ADD("fleet.route.hardened", 1);
      out.group = hardened_;
      ok = infer_on_group(hardened_, x, opt, out.result);
      break;
    case Threat::kHostile:
      SNNSEC_COUNTER_ADD("fleet.route.ensemble", 1);
      ok = infer_ensemble(x, opt, out);
      break;
  }

  switch (out.result.status) {
    case serve::ResultStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("fleet.completed", 1);
      break;
    case serve::ResultStatus::kRejected:
      shed_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("fleet.shed", 1);
      break;
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      SNNSEC_COUNTER_ADD("fleet.errors", 1);
      break;
  }
  out.fleet_latency_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  SNNSEC_HISTOGRAM_OBSERVE("fleet.latency_us",
                           static_cast<double>(out.fleet_latency_us), 100,
                           250, 500, 1000, 2500, 5000, 10000, 25000);
  return ok;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.reroute_served = reroute_served_.load(std::memory_order_relaxed);
  s.ensembles = ensembles_.load(std::memory_order_relaxed);
  s.ensemble_ties = ensemble_ties_.load(std::memory_order_relaxed);
  // NOLINTNEXTLINE(snnsec-hot-alloc): cold operator-facing stats path.
  s.groups.reserve(groups_.size());
  for (const auto& g : groups_) {
    GroupStats gs;
    gs.name = g->cfg.name;
    gs.role = g->cfg.role;
    gs.v_th = g->artifact->config().v_th;
    gs.time_steps = g->artifact->config().time_steps;
    gs.replicas = static_cast<std::int64_t>(g->servers.size());
    for (const auto& srv : g->servers) {
      const serve::ServerStats ss = srv->stats();
      gs.submitted += ss.submitted;
      gs.completed += ss.completed;
      gs.shed += ss.shed;
      gs.errors += ss.errors;
      gs.truncated += ss.truncated;
      gs.flagged += ss.flagged;
      gs.quarantines += ss.quarantines;
      gs.respawns += ss.respawns;
      gs.retries += ss.retries;
    }
    // NOLINTNEXTLINE(snnsec-hot-alloc): cold stats path, reserved above.
    s.groups.push_back(std::move(gs));
  }
  return s;
}

const std::string& Router::group_name(std::int64_t g) const {
  return groups_[static_cast<std::size_t>(g)]->cfg.name;
}

GroupRole Router::group_role(std::int64_t g) const {
  return groups_[static_cast<std::size_t>(g)]->cfg.role;
}

serve::Server& Router::replica(std::int64_t g, std::int64_t r) {
  return *groups_[static_cast<std::size_t>(g)]
              ->servers[static_cast<std::size_t>(r)];
}

std::int64_t Router::replica_count(std::int64_t g) const {
  return static_cast<std::int64_t>(
      groups_[static_cast<std::size_t>(g)]->servers.size());
}

const nn::LenetSpec& Router::arch() const {
  return groups_[0]->artifact->arch();
}

std::int64_t Router::num_classes() const { return arch().num_classes; }

}  // namespace snnsec::fleet
