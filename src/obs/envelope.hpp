// ActivityEnvelope: calibrated clean-traffic activity bands + per-request
// anomaly score — the observability layer acting as a control surface.
//
// The paper's mechanism (and Sharmin et al.'s encoding-effects line in
// PAPERS.md) predicts that adversarial inputs measurably shift spike
// activity: PGD mass pushes membrane potentials toward the threshold,
// changing firing rates, silent/saturated fractions and the membrane
// histogram. The envelope is fitted on clean traffic only: per sketch
// feature (per layer: firing rate, silent/saturated fractions, membrane
// mean, histogram mass per bucket) it stores the clean mean, standard
// deviation and 1%/99% quantile band. A request's anomaly score is the
// RMS z-score over the kScoreTopK most deviant features — a trimmed
// Mahalanobis distance under a diagonal covariance — so scoring is a
// single multiply-add sweep, allocation-free, cheap enough for every
// request.
//
// Persistence mirrors the checkpoint discipline: envelopes are written via
// util::atomic_write_file with a magic/version header, the model's
// config_hash (an envelope calibrated for one (Vth, T) replica must never
// score another) and a trailing FNV-1a digest; loads validate all of it and
// throw util::Error on any mismatch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/sketch.hpp"

namespace snnsec::obs {

class ActivityEnvelope {
 public:
  /// Clean-traffic band of one sketch feature.
  struct Band {
    double mean = 0.0;
    double sigma = 0.0;  ///< population standard deviation
    double q_lo = 0.0;   ///< 1% quantile of the calibration sample
    double q_hi = 0.0;   ///< 99% quantile
  };

  static constexpr std::uint32_t kFormatVersion = 1;
  /// Scale floor for the z-score: a feature whose clean variance collapsed
  /// (e.g. an always-empty histogram bucket) must not turn measurement
  /// noise into an unbounded score.
  static constexpr double kSigmaFloor = 1e-3;
  /// score() aggregates the k most deviant features; see its doc comment.
  static constexpr int kScoreTopK = 8;

  ActivityEnvelope() = default;

  /// Calibrate from clean-traffic sketches. Every sketch must have the
  /// same layer/bucket geometry as `layers`/`buckets`; `config_hash` is the
  /// served model's structural fingerprint. Throws util::Error on fewer
  /// than 2 sketches or mismatched geometry.
  void fit(const std::vector<ActivitySketch>& clean,
           const std::vector<SketchLayerInfo>& layers, int buckets,
           std::uint64_t config_hash);

  bool ready() const { return !bands_.empty(); }

  /// RMS z-score of `s`'s kScoreTopK most deviant features against the
  /// clean bands. Allocation-free; requires ready() and a sketch with the
  /// calibrated geometry.
  double score(const ActivitySketch& s) const;

  /// Fraction of features outside the calibrated [q_lo, q_hi] band — a
  /// scale-free companion diagnostic to the z-score.
  double out_of_band_fraction(const ActivitySketch& s) const;

  std::uint64_t config_hash() const { return config_hash_; }
  std::int64_t sample_count() const { return samples_; }
  /// Unix seconds at fit() time — drives the staleness gauge.
  std::int64_t created_unix_s() const { return created_unix_s_; }
  int buckets() const { return buckets_; }
  const std::vector<SketchLayerInfo>& layers() const { return layers_; }
  const std::vector<Band>& bands() const { return bands_; }

  /// Atomically persist (write-to-temp + fsync + rename).
  void save(const std::string& path) const;

  /// Load and validate; throws util::Error when the file is missing,
  /// truncated, corrupt (digest mismatch) or from another format version.
  static ActivityEnvelope load(const std::string& path);

  /// load() that additionally requires the stored config_hash to equal
  /// `expected_config_hash`; logs a warning and returns nullopt on any
  /// failure instead of throwing (cache-style entry point).
  static std::optional<ActivityEnvelope> try_load(
      const std::string& path, std::uint64_t expected_config_hash);

  /// One-line human summary (layer count, samples, age).
  std::string summary() const;

 private:
  std::vector<SketchLayerInfo> layers_;
  std::vector<Band> bands_;  ///< layers * (4 + buckets) entries
  int buckets_ = SketchAccumulator::kDefaultBuckets;
  std::uint64_t config_hash_ = 0;
  std::int64_t samples_ = 0;
  std::int64_t created_unix_s_ = 0;
};

}  // namespace snnsec::obs
