// Spike-activity probe records.
//
// The paper's argument is that the structural parameters (V_th, T) govern
// spike activity, and spike activity governs both learnability (Fig. 6)
// and PGD robustness (Figs. 7-9). ActivityStats is the unit of evidence:
// per-layer firing rate, raw spike counts, the silent/saturated neuron
// fractions and a fixed-bucket membrane-potential histogram. snn::LifLayer
// fills one per probed forward; core::RobustnessExplorer attaches a vector
// of them to every (V_th, T) grid cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace snnsec::obs {

/// Linear fixed-bucket layout for membrane-potential histograms: `buckets`
/// equal-width bins over [lo, hi), with values outside clamped into the
/// first/last bin.
struct MembraneHistSpec {
  double lo = -1.0;
  double hi = 3.0;
  int buckets = 16;

  /// Range derived from the layer's actual firing threshold: [-Vth, 2*Vth).
  /// The default [-1, 3) is only right for Vth = 1 — a high-Vth replica
  /// clamps most of its sub-threshold mass into the last bucket, which is
  /// exactly the regime the (V_th, T) sweeps care about. Degenerate
  /// thresholds fall back to the unit range so the spec stays well-formed.
  static MembraneHistSpec for_threshold(double v_th, int buckets = 16) {
    MembraneHistSpec spec;
    const double th = v_th > 0.0 ? v_th : 1.0;
    spec.lo = -th;
    spec.hi = 2.0 * th;
    spec.buckets = buckets;
    return spec;
  }

  int index(double v) const {
    if (!(v > lo)) return 0;  // negated so NaN lands in bucket 0, not UB
    if (v >= hi) return buckets - 1;
    const int i =
        static_cast<int>((v - lo) / (hi - lo) * static_cast<double>(buckets));
    return i < buckets ? i : buckets - 1;
  }
  double bucket_lo(int i) const {
    return lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(buckets);
  }
};

/// Activity of one spiking layer over one probed forward pass.
struct ActivityStats {
  std::string layer;  ///< e.g. "lif0"

  double firing_rate = 0.0;        ///< mean spike prob per neuron-step
  std::int64_t spike_count = 0;    ///< total spikes in the window
  std::int64_t neuron_steps = 0;   ///< neurons x time steps observed
  std::int64_t neurons = 0;        ///< per-step population size (N x F)
  double silent_fraction = 0.0;    ///< neurons that never fired over T
  double saturated_fraction = 0.0; ///< neurons that fired on every step

  // Pre-reset membrane potential distribution.
  MembraneHistSpec v_spec;
  std::vector<std::int64_t> v_hist;  ///< v_spec.buckets entries
  double v_mean = 0.0;
  double v_min = 0.0;
  double v_max = 0.0;

  /// One-line human-readable rendering.
  std::string summary() const;
};

/// Emit one set of per-layer activity stats as metric events and update the
/// aggregate "snn.*" series. `extra` labels (e.g. {{"v_th","1"},{"T","16"}})
/// tag which grid cell produced the stats.
void record_activity(const std::vector<ActivityStats>& stats,
                     const Labels& extra = {});

}  // namespace snnsec::obs
