// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms, each addressable by (name, labels).
//
// Instrumentation sites use the SNNSEC_COUNTER_ADD / SNNSEC_GAUGE_SET /
// SNNSEC_HISTOGRAM_OBSERVE macros, which follow the logging-macro pattern:
// a compile-time kill switch (define SNNSEC_OBS_DISABLE) plus a runtime
// branch on one relaxed atomic load, with the series handle resolved once
// per call site via a static reference — so a disabled metric costs one
// predictable branch and an enabled one costs one atomic RMW.
//
// Output paths:
//  * Registry::snapshot()        — in-memory snapshot of every series.
//  * Registry::write_jsonl()     — one JSON object per series (machines).
//  * Registry::write_csv()       — flat CSV via util::CsvWriter.
//  * Registry::summary()         — end-of-run text table (humans).
//  * Registry::record()          — timestamped event line appended to the
//                                  JSONL sink named by SNNSEC_METRICS_FILE
//                                  (per-epoch loss, per-cell firing rates).
// When SNNSEC_METRICS_FILE is set, the final snapshot is flushed to the
// same file at process exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace snnsec::obs {

/// Label set attached to a series, e.g. {{"layer", "lif0"}, {"v_th", "1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set at registration
/// and immutable afterwards, so observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::int64_t> bucket_counts;  ///< bounds.size() + 1 entries
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  Snapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels make concurrent min/max updates race-free; snapshot()
  // reports 0 while the histogram is empty.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one series for reporting.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  ///< counter / gauge value; histogram count
  Histogram::Snapshot histogram;  ///< filled for histograms only

  /// "name{k=v,k2=v2}" series identity.
  std::string key() const;
};

class Registry {
 public:
  static Registry& instance();

  /// Runtime master switch (SNNSEC_METRICS=off|0|false disables at startup).
  static bool enabled() {
    // NOLINTNEXTLINE(snnsec-relaxed-atomic): hot-path gate, stale read harmless
    return instance().enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    // NOLINTNEXTLINE(snnsec-relaxed-atomic): gate publishes no data, mutex orders
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create; returned references stay valid for process lifetime.
  /// Re-registering a histogram name with different bounds keeps the
  /// original bounds (first registration wins).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds,
                       const Labels& labels = {});

  /// Append one timestamped event line to the JSONL sink. No-op when no
  /// sink is configured (SNNSEC_METRICS_FILE unset and set_sink_path not
  /// called), so hot paths may call this unconditionally.
  void record(const std::string& name, double value,
              const Labels& labels = {});

  /// (Re)open the event/snapshot sink at `path` (truncates).
  void set_sink_path(const std::string& path);
  bool has_sink() const {
    return has_sink_.load(std::memory_order_relaxed);
  }

  std::vector<MetricSnapshot> snapshot() const;

  /// One JSON object per registered series.
  void write_jsonl(std::ostream& os) const;
  /// Flat CSV (name, labels, type, value, count, sum, min, max, mean).
  void write_csv(const std::string& path) const;
  /// Human-readable end-of-run table.
  std::string summary() const;

  /// Write the final snapshot to the configured sink (called automatically
  /// at process exit when SNNSEC_METRICS_FILE is set; idempotent per sink).
  void flush();

  /// Append a timestamped snapshot of every series to the sink without
  /// consuming the final-flush slot — the periodic exporter behind
  /// snnsec_serve's --metrics-interval. Unlike flush() this may be called
  /// repeatedly; lines carry "kind":"snapshot" plus "ts_ms" so consumers can
  /// plot series over time. No-op without a sink.
  void append_snapshot();

  /// Drop every registered series and close the sink (tests only — series
  /// references obtained earlier dangle afterwards).
  void reset_for_tests();

 private:
  Registry();

  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  double elapsed_ms() const;

  std::atomic<bool> enabled_{true};
  std::atomic<bool> has_sink_{false};
  mutable std::mutex mutex_;        // guards entries_
  std::map<std::string, Entry> entries_;
  mutable std::mutex sink_mutex_;   // guards the sink stream
  std::unique_ptr<std::ofstream> sink_;
  bool snapshot_flushed_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

/// Serialize labels as "{k=v,k2=v2}" ("" when empty).
std::string labels_to_string(const Labels& labels);

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string json_escape(const std::string& s);

}  // namespace snnsec::obs

#if defined(SNNSEC_OBS_DISABLE)

#define SNNSEC_COUNTER_ADD(name, delta) static_cast<void>(0)
#define SNNSEC_GAUGE_SET(name, value) static_cast<void>(0)
#define SNNSEC_GAUGE_ADD(name, delta) static_cast<void>(0)
#define SNNSEC_HISTOGRAM_OBSERVE(name, value, ...) static_cast<void>(0)

#else

#define SNNSEC_COUNTER_ADD(name, delta)                               \
  do {                                                                \
    if (::snnsec::obs::Registry::enabled()) {                         \
      static ::snnsec::obs::Counter& snnsec_obs_series_ =             \
          ::snnsec::obs::Registry::instance().counter(name);          \
      snnsec_obs_series_.add(delta);                                  \
    }                                                                 \
  } while (false)

#define SNNSEC_GAUGE_SET(name, value)                                 \
  do {                                                                \
    if (::snnsec::obs::Registry::enabled()) {                         \
      static ::snnsec::obs::Gauge& snnsec_obs_series_ =               \
          ::snnsec::obs::Registry::instance().gauge(name);            \
      snnsec_obs_series_.set(value);                                  \
    }                                                                 \
  } while (false)

#define SNNSEC_GAUGE_ADD(name, delta)                                 \
  do {                                                                \
    if (::snnsec::obs::Registry::enabled()) {                         \
      static ::snnsec::obs::Gauge& snnsec_obs_series_ =               \
          ::snnsec::obs::Registry::instance().gauge(name);            \
      snnsec_obs_series_.add(delta);                                  \
    }                                                                 \
  } while (false)

/// Trailing arguments are the bucket upper bounds (first use wins).
#define SNNSEC_HISTOGRAM_OBSERVE(name, value, ...)                    \
  do {                                                                \
    if (::snnsec::obs::Registry::enabled()) {                         \
      static ::snnsec::obs::Histogram& snnsec_obs_series_ =           \
          ::snnsec::obs::Registry::instance().histogram(              \
              name, {__VA_ARGS__});                                   \
      snnsec_obs_series_.observe(value);                              \
    }                                                                 \
  } while (false)

#endif  // SNNSEC_OBS_DISABLE
