#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/csv.hpp"

namespace snnsec::obs {

Tracer& Tracer::instance() {
  // Intentionally leaked (same reasoning as Registry::instance): the
  // atexit stop() registered in the constructor must outlive static
  // destruction, so the instance is never destroyed.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* path = std::getenv("SNNSEC_TRACE_FILE")) {
    if (path[0] != '\0') {
      start(path);
      std::atexit([] { Tracer::instance().stop(); });
    }
  }
}

void Tracer::start(std::string path) {
  {
    std::lock_guard lock(registry_mutex_);
    path_ = std::move(path);
  }
  // NOLINTNEXTLINE(snnsec-relaxed-atomic): gate only, path_ published by mutex
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  // NOLINTNEXTLINE(snnsec-relaxed-atomic): gate only, buffers drained under mutex
  enabled_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard lock(registry_mutex_);
    path.swap(path_);
  }
  if (path.empty()) return;
  try {
    util::ensure_parent_dir(path);
  } catch (const std::exception& e) {
    // stop() runs from an atexit handler: an escaping exception would be
    // std::terminate. Tracing must never kill the experiment.
    std::fprintf(stderr, "[snnsec] trace sink unavailable: %s\n", e.what());
    return;
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return;  // tracing must never kill the experiment
  write(os);
}

Tracer::ThreadBuf& Tracer::local_buf() {
  thread_local ThreadBuf* buf = [this] {
    auto owned = std::make_unique<ThreadBuf>();
    owned->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    ThreadBuf* raw = owned.get();
    std::lock_guard lock(registry_mutex_);
    bufs_.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

void Tracer::record(const char* name, std::int64_t ts_us,
                    std::int64_t dur_us, std::int64_t id) {
  ThreadBuf& buf = local_buf();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(Event{name, ts_us, dur_us, id, buf.tid});
}

void Tracer::write(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::lock_guard lock(registry_mutex_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mutex);
    for (const Event& e : buf->events) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"snnsec\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
         << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us;
      if (e.id >= 0) os << ",\"args\":{\"id\":" << e.id << "}";
      os << "}";
    }
  }
  os << "\n]}\n";
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard lock(registry_mutex_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard lock(registry_mutex_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mutex);
    buf->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace snnsec::obs
