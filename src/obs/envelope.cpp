#include "obs/envelope.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "util/checked.hpp"
#include "util/fs_atomic.hpp"
#include "util/logging.hpp"

namespace snnsec::obs {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'N', 'E', 'N', 'V', '0', '1'};

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

/// Bounds-checked reader over the loaded payload.
class Reader {
 public:
  Reader(const char* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    SNNSEC_CHECK(pos_ + sizeof(T) <= size_,
                 "ActivityEnvelope: " << path_ << " truncated at byte "
                                      << pos_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    SNNSEC_CHECK(pos_ + n <= size_,
                 "ActivityEnvelope: " << path_ << " truncated at byte "
                                      << pos_);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t pos() const { return pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string& path_;
};

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Walk a sketch's features in the canonical envelope order, invoking
/// `fn(feature_index, value)` for each. Shared by fit/score so the two can
/// never disagree on the layout.
template <typename Fn>
void for_each_feature(const ActivitySketch& s, Fn&& fn) {
  std::int64_t idx = 0;
  for (const ActivitySketch::Layer& layer : s.layers) {
    fn(idx++, layer.firing_rate);
    fn(idx++, layer.silent_fraction);
    fn(idx++, layer.saturated_fraction);
    fn(idx++, layer.v_mean);
    for (const double h : layer.hist_frac) fn(idx++, h);
  }
}

}  // namespace

void ActivityEnvelope::fit(const std::vector<ActivitySketch>& clean,
                           const std::vector<SketchLayerInfo>& layers,
                           int buckets, std::uint64_t config_hash) {
  SNNSEC_CHECK(clean.size() >= 2,
               "ActivityEnvelope::fit: need >= 2 calibration sketches, got "
                   << clean.size());
  SNNSEC_CHECK(!layers.empty(), "ActivityEnvelope::fit: no layers");
  SNNSEC_CHECK(buckets > 0, "ActivityEnvelope::fit: buckets must be positive");
  const std::int64_t features =
      static_cast<std::int64_t>(layers.size()) *
      ActivitySketch::features_per_layer(buckets);
  for (const ActivitySketch& s : clean) {
    SNNSEC_CHECK(s.layers.size() == layers.size(),
                 "ActivityEnvelope::fit: sketch has "
                     << s.layers.size() << " layers, envelope expects "
                     << layers.size());
    for (const auto& l : s.layers)
      SNNSEC_CHECK(static_cast<int>(l.hist_frac.size()) == buckets,
                   "ActivityEnvelope::fit: sketch histogram has "
                       << l.hist_frac.size() << " buckets, envelope expects "
                       << buckets);
  }

  layers_ = layers;
  buckets_ = buckets;
  config_hash_ = config_hash;
  samples_ = static_cast<std::int64_t>(clean.size());
  created_unix_s_ = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();

  // Column-major gather: one value column per feature across the sample.
  std::vector<std::vector<double>> cols(static_cast<std::size_t>(features));
  for (auto& c : cols) c.reserve(clean.size());
  for (const ActivitySketch& s : clean)
    for_each_feature(s, [&](std::int64_t idx, double v) {
      cols[static_cast<std::size_t>(idx)].push_back(v);
    });

  bands_.assign(static_cast<std::size_t>(features), Band{});
  const double n = static_cast<double>(clean.size());
  for (std::size_t f = 0; f < cols.size(); ++f) {
    std::vector<double>& col = cols[f];
    double sum = 0.0;
    for (const double v : col) sum += v;
    const double mean = sum / n;
    double var = 0.0;
    for (const double v : col) var += (v - mean) * (v - mean);
    var /= n;
    std::sort(col.begin(), col.end());
    Band& b = bands_[f];
    b.mean = mean;
    b.sigma = std::sqrt(var);
    b.q_lo = quantile_sorted(col, 0.01);
    b.q_hi = quantile_sorted(col, 0.99);
  }
}

double ActivityEnvelope::score(const ActivitySketch& s) const {
  SNNSEC_DCHECK(ready(), "ActivityEnvelope::score before fit/load");
  SNNSEC_DCHECK(
      s.layers.size() == layers_.size(),
      "ActivityEnvelope::score: sketch geometry mismatch");
  // RMS z-score over the top-k most deviant features (fixed stack buffer —
  // this runs on the serving path). Adversarial activity shifts concentrate
  // in a few features (early-layer firing rates, histogram tails); a plain
  // RMS over all ~60 features dilutes them into the noise floor.
  double top[kScoreTopK] = {};
  std::int64_t count = 0;
  for_each_feature(s, [&](std::int64_t idx, double v) {
    SNNSEC_DCHECK(idx < static_cast<std::int64_t>(bands_.size()),
                  "ActivityEnvelope::score: feature index out of range");
    const Band& b = bands_[static_cast<std::size_t>(idx)];
    const double z = (v - b.mean) / std::max(b.sigma, kSigmaFloor);
    const double z2 = z * z;
    int mi = 0;
    for (int i = 1; i < kScoreTopK; ++i)
      if (top[i] < top[mi]) mi = i;
    if (z2 > top[mi]) top[mi] = z2;
    ++count;
  });
  if (count == 0) return 0.0;
  double sum_sq = 0.0;
  for (const double z2 : top) sum_sq += z2;
  const auto k = static_cast<double>(
      std::min<std::int64_t>(count, kScoreTopK));
  return std::sqrt(sum_sq / k);
}

double ActivityEnvelope::out_of_band_fraction(const ActivitySketch& s) const {
  SNNSEC_DCHECK(ready(), "ActivityEnvelope before fit/load");
  std::int64_t outside = 0;
  std::int64_t count = 0;
  for_each_feature(s, [&](std::int64_t idx, double v) {
    const Band& b = bands_[static_cast<std::size_t>(idx)];
    if (v < b.q_lo || v > b.q_hi) ++outside;
    ++count;
  });
  return count > 0 ? static_cast<double>(outside) /
                         static_cast<double>(count)
                   : 0.0;
}

void ActivityEnvelope::save(const std::string& path) const {
  SNNSEC_CHECK(ready(), "ActivityEnvelope::save before fit");
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put(buf, kFormatVersion);
  put(buf, config_hash_);
  put(buf, created_unix_s_);
  put(buf, samples_);
  put(buf, static_cast<std::int32_t>(buckets_));
  put(buf, static_cast<std::uint32_t>(layers_.size()));
  for (const SketchLayerInfo& l : layers_) {
    put(buf, static_cast<std::uint32_t>(l.name.size()));
    buf.append(l.name);
    put(buf, l.v_th);
  }
  put(buf, static_cast<std::uint64_t>(bands_.size()));
  for (const Band& b : bands_) {
    put(buf, b.mean);
    put(buf, b.sigma);
    put(buf, b.q_lo);
    put(buf, b.q_hi);
  }
  const std::uint64_t digest = fnv1a(buf.data(), buf.size());
  put(buf, digest);
  util::atomic_write_file(path, [&](std::ostream& os) {
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  });
}

ActivityEnvelope ActivityEnvelope::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SNNSEC_CHECK(in.good(), "ActivityEnvelope: cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string buf = ss.str();
  SNNSEC_CHECK(buf.size() > sizeof(kMagic) + sizeof(std::uint64_t),
               "ActivityEnvelope: " << path << " is truncated ("
                                    << buf.size() << " bytes)");
  const std::size_t payload = buf.size() - sizeof(std::uint64_t);
  std::uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, buf.data() + payload, sizeof(stored_digest));
  const std::uint64_t digest = fnv1a(buf.data(), payload);
  SNNSEC_CHECK(digest == stored_digest,
               "ActivityEnvelope: " << path
                                    << " digest mismatch (corrupt or "
                                       "partially written)");

  Reader r(buf.data(), payload, path);
  char magic[sizeof(kMagic)];
  for (char& c : magic) c = r.get<char>();
  SNNSEC_CHECK(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "ActivityEnvelope: " << path << " is not an envelope file");
  const auto version = r.get<std::uint32_t>();
  SNNSEC_CHECK(version == kFormatVersion,
               "ActivityEnvelope: " << path << " format version " << version
                                    << ", expected " << kFormatVersion);
  ActivityEnvelope env;
  env.config_hash_ = r.get<std::uint64_t>();
  env.created_unix_s_ = r.get<std::int64_t>();
  env.samples_ = r.get<std::int64_t>();
  env.buckets_ = r.get<std::int32_t>();
  SNNSEC_CHECK(env.buckets_ > 0 && env.buckets_ <= 4096,
               "ActivityEnvelope: " << path << " has implausible bucket "
                                    << "count " << env.buckets_);
  const auto n_layers = r.get<std::uint32_t>();
  SNNSEC_CHECK(n_layers > 0 && n_layers <= 1024,
               "ActivityEnvelope: " << path << " has implausible layer "
                                    << "count " << n_layers);
  env.layers_.resize(n_layers);
  for (SketchLayerInfo& l : env.layers_) {
    l.name = r.get_string();
    l.v_th = r.get<double>();
  }
  const auto n_bands = r.get<std::uint64_t>();
  const std::uint64_t expected_bands =
      static_cast<std::uint64_t>(n_layers) *
      static_cast<std::uint64_t>(
          ActivitySketch::features_per_layer(env.buckets_));
  SNNSEC_CHECK(n_bands == expected_bands,
               "ActivityEnvelope: " << path << " holds " << n_bands
                                    << " bands, geometry implies "
                                    << expected_bands);
  env.bands_.resize(static_cast<std::size_t>(n_bands));
  for (Band& b : env.bands_) {
    b.mean = r.get<double>();
    b.sigma = r.get<double>();
    b.q_lo = r.get<double>();
    b.q_hi = r.get<double>();
  }
  SNNSEC_CHECK(r.pos() == payload,
               "ActivityEnvelope: " << path << " has "
                                    << payload - r.pos()
                                    << " trailing bytes");
  return env;
}

std::optional<ActivityEnvelope> ActivityEnvelope::try_load(
    const std::string& path, std::uint64_t expected_config_hash) {
  try {
    ActivityEnvelope env = load(path);
    if (env.config_hash_ != expected_config_hash) {
      SNNSEC_LOG_WARN("ActivityEnvelope: "
                      << path << " was calibrated for config_hash "
                      << env.config_hash_ << ", model has "
                      << expected_config_hash << "; ignoring it");
      return std::nullopt;
    }
    return env;
  } catch (const util::Error& e) {
    SNNSEC_LOG_WARN("ActivityEnvelope: rejected " << path << ": "
                                                  << e.what());
    return std::nullopt;
  }
}

std::string ActivityEnvelope::summary() const {
  std::ostringstream oss;
  oss << "envelope: " << layers_.size() << " layers x "
      << ActivitySketch::features_per_layer(buckets_)
      << " features | calibrated on " << samples_ << " clean requests";
  return oss.str();
}

}  // namespace snnsec::obs
