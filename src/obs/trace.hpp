// Scoped trace-span profiler exporting chrome://tracing JSON.
//
// Usage at a hot-path call site:
//
//   void gemm(...) {
//     SNNSEC_TRACE_SCOPE("gemm");
//     ...
//   }
//
// With SNNSEC_TRACE_FILE=trace.json set, every span becomes a "complete"
// ("ph":"X") trace event and the file written at process exit loads
// directly into chrome://tracing / https://ui.perfetto.dev as a flame
// chart. Without it (or with SNNSEC_OBS_DISABLE defined) a span costs one
// relaxed atomic load.
//
// Spans are buffered per thread (one mutex-protected vector per thread,
// uncontended on the hot path) and stamped with a small dense thread id so
// pool workers render as separate tracks. Buffers are bounded; spans past
// the cap are counted as dropped rather than growing without limit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snnsec::obs {

class Tracer {
 public:
  static Tracer& instance();

  static bool enabled() {
    // NOLINTNEXTLINE(snnsec-relaxed-atomic): hot-path gate, stale read harmless
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Enable span collection; `path` (optional) is written at stop()/exit.
  void start(std::string path = "");
  /// Disable collection and, when a path was given, write the JSON file.
  void stop();

  /// Microseconds since tracer construction (monotonic).
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Append one complete span (name must have static storage duration —
  /// string literals at the macro call sites). `id` >= 0 attaches an
  /// identifying argument to the span ("args":{"id":N} in the JSON) — the
  /// serve path stamps batch ids so one batch's enqueue/forward/finalize
  /// spans correlate across tracks.
  void record(const char* name, std::int64_t ts_us, std::int64_t dur_us,
              std::int64_t id = -1);

  /// chrome://tracing "trace_event" JSON ({"traceEvents": [...]}).
  void write(std::ostream& os) const;

  std::size_t event_count() const;
  std::int64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard collected spans (buffers stay registered; tests only).
  void clear();

 private:
  Tracer();

  struct Event {
    const char* name;
    std::int64_t ts_us;
    std::int64_t dur_us;
    std::int64_t id;  ///< < 0 = no argument
    std::uint32_t tid;
  };
  struct ThreadBuf {
    std::mutex mutex;
    std::vector<Event> events;
    std::uint32_t tid = 0;
  };
  ThreadBuf& local_buf();

  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mutex_;  // guards bufs_ and path_
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::string path_;
};

/// RAII span: times its enclosing scope when tracing is enabled. The
/// two-argument form stamps an id onto the span (e.g. a batch id).
class TraceScope {
 public:
  explicit TraceScope(const char* name, std::int64_t id = -1) : id_(id) {
    if (Tracer::enabled()) {
      name_ = name;
      start_us_ = Tracer::instance().now_us();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::instance();
      tracer.record(name_, start_us_, tracer.now_us() - start_us_, id_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  std::int64_t id_ = -1;
};

}  // namespace snnsec::obs

#define SNNSEC_TRACE_CONCAT2(a, b) a##b
#define SNNSEC_TRACE_CONCAT(a, b) SNNSEC_TRACE_CONCAT2(a, b)

#if defined(SNNSEC_OBS_DISABLE)
#define SNNSEC_TRACE_SCOPE(name) static_cast<void>(0)
#define SNNSEC_TRACE_SCOPE_ID(name, id) static_cast<void>(0)
#else
#define SNNSEC_TRACE_SCOPE(name)                  \
  ::snnsec::obs::TraceScope SNNSEC_TRACE_CONCAT(  \
      snnsec_trace_scope_, __LINE__)(name)
/// Span carrying an identifying argument, e.g. a batch id.
#define SNNSEC_TRACE_SCOPE_ID(name, id)           \
  ::snnsec::obs::TraceScope SNNSEC_TRACE_CONCAT(  \
      snnsec_trace_scope_, __LINE__)(name, id)
#endif
