// SNNSEC_HOT: per-timestep sketch accumulation rides the serving path —
// steady state must not allocate (buffers grow only when the batch
// geometry does, like AnytimeRunner's stage tensors).
#include "obs/sketch.hpp"

#include <algorithm>

#include "util/checked.hpp"

namespace snnsec::obs {

void SketchAccumulator::configure(std::vector<SketchLayerInfo> layers,
                                  int buckets) {
  SNNSEC_CHECK(!layers.empty(), "SketchAccumulator: no spiking layers");
  SNNSEC_CHECK(buckets > 0, "SketchAccumulator: buckets must be positive");
  layers_ = std::move(layers);
  buckets_ = buckets;
  // NOLINTNEXTLINE(snnsec-hot-alloc): configure-time container sizing
  specs_.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l)
    specs_[l] = MembraneHistSpec::for_threshold(layers_[l].v_th, buckets_);
  // NOLINTNEXTLINE(snnsec-hot-alloc): configure-time container sizing
  acc_.assign(layers_.size(), LayerAcc{});
  batch_ = 0;
  capacity_ = 0;
  steps_ = 0;
}

void SketchAccumulator::begin(std::int64_t batch) {
  SNNSEC_CHECK(configured(), "SketchAccumulator::begin before configure");
  SNNSEC_CHECK(batch > 0, "SketchAccumulator::begin: empty batch");
  const bool grew = batch > capacity_;
  batch_ = batch;
  if (grew) capacity_ = batch;
  steps_ = 0;
  for (LayerAcc& a : acc_) {
    if (grew) {
      // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only
      a.spikes.resize(static_cast<std::size_t>(capacity_));
      // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only
      a.v_sum.resize(static_cast<std::size_t>(capacity_));
      // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only
      a.hist.resize(static_cast<std::size_t>(capacity_ * buckets_));
      if (a.features > 0) {
        // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only
        a.fired.resize(static_cast<std::size_t>(capacity_ * a.features));
        // NOLINTNEXTLINE(snnsec-hot-alloc): batch-geometry growth only
        a.always.resize(static_cast<std::size_t>(capacity_ * a.features));
      }
    }
    std::fill(a.spikes.begin(), a.spikes.begin() + batch_, std::int64_t{0});
    std::fill(a.v_sum.begin(), a.v_sum.begin() + batch_, 0.0);
    std::fill(a.hist.begin(), a.hist.begin() + batch_ * buckets_,
              std::int64_t{0});
    if (a.features > 0) {
      std::fill(a.fired.begin(), a.fired.begin() + batch_ * a.features,
                std::uint8_t{0});
      std::fill(a.always.begin(), a.always.begin() + batch_ * a.features,
                std::uint8_t{1});
    }
  }
}

void SketchAccumulator::accumulate(std::int64_t layer, const float* z,
                                   const float* vd, std::int64_t numel) {
  SNNSEC_DCHECK(layer >= 0 && layer < num_layers(),
                "SketchAccumulator: layer " << layer << " out of range");
  SNNSEC_DCHECK(batch_ > 0, "SketchAccumulator::accumulate before begin");
  LayerAcc& a = acc_[static_cast<std::size_t>(layer)];
  const std::int64_t feat = numel / batch_;
  SNNSEC_CHECK(feat * batch_ == numel,
               "SketchAccumulator: slab of " << numel
                                             << " elements not divisible by "
                                                "batch "
                                             << batch_);
  if (a.features != feat) {
    // Geometry latch: first slab after configure(), or an input-resolution
    // change. Never hit in a warm fixed-geometry steady state.
    a.features = feat;
    // NOLINTNEXTLINE(snnsec-hot-alloc): geometry-change growth only
    a.fired.assign(static_cast<std::size_t>(capacity_ * feat), 0);
    // NOLINTNEXTLINE(snnsec-hot-alloc): geometry-change growth only
    a.always.assign(static_cast<std::size_t>(capacity_ * feat), 1);
  }
  const MembraneHistSpec& spec = specs_[static_cast<std::size_t>(layer)];
  // Hoisted MembraneHistSpec::index: one multiply per element instead of a
  // divide (this loop runs per neuron-step on the serving path).
  const double lo = spec.lo;
  const double hi = spec.hi;
  const double scale = static_cast<double>(buckets_) / (hi - lo);
  const int last = buckets_ - 1;
  // Per-slot accumulation in a fixed k order: slot r reads only its own row
  // [r*feat, (r+1)*feat), so the result is bit-identical whatever else is
  // in the batch (the bit-identity contract in the header).
  for (std::int64_t r = 0; r < batch_; ++r) {
    const float* zr = z + r * feat;
    const float* vr = vd + r * feat;
    std::uint8_t* fired = a.fired.data() + r * feat;
    std::uint8_t* always = a.always.data() + r * feat;
    std::int64_t* hist = a.hist.data() + r * buckets_;
    std::int64_t spikes = 0;
    double v_sum = 0.0;
    for (std::int64_t k = 0; k < feat; ++k) {
      const bool spiked = zr[k] > 0.5f;
      spikes += spiked ? 1 : 0;
      fired[k] |= static_cast<std::uint8_t>(spiked);
      always[k] &= static_cast<std::uint8_t>(spiked);
      const double v = static_cast<double>(vr[k]);
      v_sum += v;
      int b;
      if (!(v > lo)) {  // negated so NaN lands in bucket 0, not UB
        b = 0;
      } else if (v >= hi) {
        b = last;
      } else {
        b = static_cast<int>((v - lo) * scale);
        if (b > last) b = last;
      }
      ++hist[b];
    }
    a.spikes[static_cast<std::size_t>(r)] += spikes;
    a.v_sum[static_cast<std::size_t>(r)] += v_sum;
  }
}

void SketchAccumulator::finalize(std::int64_t slot,
                                 ActivitySketch& out) const {
  SNNSEC_CHECK(slot >= 0 && slot < batch_,
               "SketchAccumulator::finalize: slot " << slot
                                                    << " outside batch "
                                                    << batch_);
  if (static_cast<std::int64_t>(out.layers.size()) != num_layers())
    // NOLINTNEXTLINE(snnsec-hot-alloc): first-use sketch buffer sizing
    out.layers.resize(static_cast<std::size_t>(num_layers()));
  out.steps = steps_;
  for (std::size_t l = 0; l < acc_.size(); ++l) {
    const LayerAcc& a = acc_[l];
    ActivitySketch::Layer& dst = out.layers[l];
    if (static_cast<int>(dst.hist_frac.size()) != buckets_)
      // NOLINTNEXTLINE(snnsec-hot-alloc): first-use sketch buffer sizing
      dst.hist_frac.resize(static_cast<std::size_t>(buckets_));
    const std::int64_t feat = a.features;
    const std::int64_t neuron_steps = feat * steps_;
    dst.neurons = feat;
    dst.spike_count = feat > 0 ? a.spikes[static_cast<std::size_t>(slot)] : 0;
    const double denom =
        neuron_steps > 0 ? static_cast<double>(neuron_steps) : 1.0;
    dst.firing_rate = static_cast<double>(dst.spike_count) / denom;
    dst.v_mean =
        feat > 0 ? a.v_sum[static_cast<std::size_t>(slot)] / denom : 0.0;
    std::int64_t silent = 0;
    std::int64_t saturated = 0;
    const std::uint8_t* fired = a.fired.data() + slot * feat;
    const std::uint8_t* always = a.always.data() + slot * feat;
    for (std::int64_t k = 0; k < feat; ++k) {
      silent += fired[k] ? 0 : 1;
      saturated += always[k] ? 1 : 0;
    }
    const double pop = feat > 0 ? static_cast<double>(feat) : 1.0;
    dst.silent_fraction = static_cast<double>(silent) / pop;
    dst.saturated_fraction = static_cast<double>(saturated) / pop;
    const std::int64_t* hist = a.hist.data() + slot * buckets_;
    for (int b = 0; b < buckets_; ++b)
      dst.hist_frac[static_cast<std::size_t>(b)] =
          static_cast<double>(hist[b]) / denom;
  }
}

}  // namespace snnsec::obs
