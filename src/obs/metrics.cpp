#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/metrics_hooks.hpp"
#include "util/string_util.hpp"

namespace snnsec::obs {

namespace {

bool falsy(const char* value) {
  if (value == nullptr) return false;
  const std::string v = value;
  return v == "0" || v == "off" || v == "OFF" || v == "false" || v == "FALSE" ||
         v == "no" || v == "NO";
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

void write_labels_json(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(labels[i].first) << "\":\""
       << json_escape(labels[i].second) << '"';
  }
  os << '}';
}

}  // namespace

std::string labels_to_string(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.bucket_counts.reserve(counts_.size());
  for (const auto& c : counts_)
    s.bucket_counts.push_back(c.load(std::memory_order_relaxed));
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

std::string MetricSnapshot::key() const {
  return name + labels_to_string(labels);
}

Registry& Registry::instance() {
  // Intentionally leaked: the constructor registers an atexit flush, and
  // atexit handlers registered during construction run AFTER a static
  // local's destructor (LIFO) — flushing a destroyed registry is UB. A
  // leaked instance stays valid for every late handler and destructor.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {
  if (falsy(std::getenv("SNNSEC_METRICS"))) enabled_.store(false);
  if (const char* path = std::getenv("SNNSEC_METRICS_FILE")) {
    if (path[0] != '\0') set_sink_path(path);
  }
  // Flush the final snapshot when the process exits normally.
  std::atexit([] { Registry::instance().flush(); });
}

double Registry::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::string key = name + labels_to_string(labels);
  std::lock_guard lock(mutex_);
  Entry& e = entries_[key];
  if (!e.counter) {
    e.name = name;
    e.labels = labels;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = name + labels_to_string(labels);
  std::lock_guard lock(mutex_);
  Entry& e = entries_[key];
  if (!e.gauge) {
    e.name = name;
    e.labels = labels;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds,
                               const Labels& labels) {
  const std::string key = name + labels_to_string(labels);
  std::lock_guard lock(mutex_);
  Entry& e = entries_[key];
  if (!e.histogram) {
    e.name = name;
    e.labels = labels;
    e.histogram = std::make_unique<Histogram>(upper_bounds);
  }
  return *e.histogram;
}

void Registry::set_sink_path(const std::string& path) {
  try {
    util::ensure_parent_dir(path);
  } catch (const std::exception& e) {
    // A broken sink must not kill the experiment (this may run from the
    // constructor on a bad SNNSEC_METRICS_FILE); metrics stay in-memory.
    std::fprintf(stderr, "[snnsec] metrics sink unavailable: %s\n", e.what());
    std::lock_guard lock(sink_mutex_);
    sink_.reset();
    has_sink_.store(false, std::memory_order_relaxed);
    return;
  }
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  std::lock_guard lock(sink_mutex_);
  if (!file->is_open()) {
    // A broken sink must not kill the experiment; metrics just stay
    // in-memory.
    sink_.reset();
    has_sink_.store(false, std::memory_order_relaxed);
    return;
  }
  sink_ = std::move(file);
  snapshot_flushed_ = false;
  has_sink_.store(true, std::memory_order_relaxed);
}

void Registry::record(const std::string& name, double value,
                      const Labels& labels) {
  // NOLINTNEXTLINE(snnsec-relaxed-atomic): on/off gate, stale read is harmless
  if (!has_sink_.load(std::memory_order_relaxed) ||
      // NOLINTNEXTLINE(snnsec-relaxed-atomic): same gate, stale read harmless
      !enabled_.load(std::memory_order_relaxed))
    return;
  std::lock_guard lock(sink_mutex_);
  if (!sink_) return;
  *sink_ << "{\"kind\":\"event\",\"ts_ms\":" << elapsed_ms() << ",\"name\":\""
         << json_escape(name) << "\",\"labels\":";
  write_labels_json(*sink_, labels);
  *sink_ << ",\"value\":" << value << "}\n";
  sink_->flush();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  std::lock_guard lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSnapshot s;
    s.name = e.name;
    s.labels = e.labels;
    if (e.counter) {
      s.type = MetricType::kCounter;
      s.value = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      s.type = MetricType::kGauge;
      s.value = e.gauge->value();
    } else if (e.histogram) {
      s.type = MetricType::kHistogram;
      s.histogram = e.histogram->snapshot();
      s.value = static_cast<double>(s.histogram.count);
    }
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::write_jsonl(std::ostream& os) const {
  for (const MetricSnapshot& s : snapshot()) {
    os << "{\"kind\":\"" << type_name(s.type) << "\",\"name\":\""
       << json_escape(s.name) << "\",\"labels\":";
    write_labels_json(os, s.labels);
    if (s.type == MetricType::kHistogram) {
      os << ",\"count\":" << s.histogram.count << ",\"sum\":" << s.histogram.sum
         << ",\"min\":" << s.histogram.min << ",\"max\":" << s.histogram.max
         << ",\"bounds\":[";
      for (std::size_t i = 0; i < s.histogram.bounds.size(); ++i)
        os << (i > 0 ? "," : "") << s.histogram.bounds[i];
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < s.histogram.bucket_counts.size(); ++i)
        os << (i > 0 ? "," : "") << s.histogram.bucket_counts[i];
      os << "]";
    } else {
      os << ",\"value\":" << s.value;
    }
    os << "}\n";
  }
}

void Registry::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  csv.write_header(
      {"name", "labels", "type", "value", "count", "sum", "min", "max",
       "mean"});
  for (const MetricSnapshot& s : snapshot()) {
    util::CsvWriter::Row row;
    row << s.name << labels_to_string(s.labels) << type_name(s.type);
    if (s.type == MetricType::kHistogram) {
      row << static_cast<std::int64_t>(s.histogram.count) << s.histogram.count
          << s.histogram.sum << s.histogram.min << s.histogram.max
          << s.histogram.mean();
    } else {
      row << s.value << std::int64_t{0} << 0.0 << 0.0 << 0.0 << 0.0;
    }
    csv.write(row);
  }
}

std::string Registry::summary() const {
  std::ostringstream oss;
  oss << "== metrics ==\n";
  for (const MetricSnapshot& s : snapshot()) {
    oss << "  " << s.key() << " [" << type_name(s.type) << "] ";
    if (s.type == MetricType::kHistogram) {
      oss << "count=" << s.histogram.count
          << " mean=" << util::format_float(s.histogram.mean(), 6)
          << " min=" << util::format_float(s.histogram.min, 6)
          << " max=" << util::format_float(s.histogram.max, 6);
    } else {
      oss << util::format_float(s.value, 6);
    }
    oss << '\n';
  }
  return oss.str();
}

void Registry::flush() {
  if (!has_sink_.load(std::memory_order_relaxed)) return;
  std::ostringstream lines;
  write_jsonl(lines);
  std::lock_guard lock(sink_mutex_);
  if (!sink_ || snapshot_flushed_) return;
  *sink_ << lines.str();
  sink_->flush();
  snapshot_flushed_ = true;
}

void Registry::append_snapshot() {
  if (!has_sink_.load(std::memory_order_relaxed)) return;
  const double ts_ms = elapsed_ms();
  std::ostringstream lines;
  for (const MetricSnapshot& s : snapshot()) {
    lines << "{\"kind\":\"snapshot\",\"ts_ms\":" << ts_ms << ",\"name\":\""
          << json_escape(s.name) << "\",\"labels\":";
    write_labels_json(lines, s.labels);
    if (s.type == MetricType::kHistogram) {
      lines << ",\"count\":" << s.histogram.count
            << ",\"sum\":" << s.histogram.sum << ",\"min\":" << s.histogram.min
            << ",\"max\":" << s.histogram.max << "}\n";
    } else {
      lines << ",\"value\":" << s.value << "}\n";
    }
  }
  std::lock_guard lock(sink_mutex_);
  if (!sink_) return;
  *sink_ << lines.str();
  sink_->flush();
}

void Registry::reset_for_tests() {
  {
    std::lock_guard lock(mutex_);
    entries_.clear();
  }
  std::lock_guard lock(sink_mutex_);
  sink_.reset();
  has_sink_.store(false, std::memory_order_relaxed);
  snapshot_flushed_ = false;
}

// ---------------------------------------------------------------------------
// util::MetricsHooks backend. src/util (thread pool, retry) sits below obs
// in the layering and emits through function-pointer hooks; this TU installs
// the real implementations during static initialization. Series lookups go
// through a per-thread cache keyed on the name *pointer* (the hook contract
// requires string literals), so steady-state emission takes no lock and
// performs no allocation — names like "pool.queue_depth" exceed libstdc++'s
// SSO capacity, and building a std::string key per call would heap-allocate
// on the hot submit path.
// ---------------------------------------------------------------------------

namespace {

template <typename Series>
struct SeriesCacheEntry {
  const char* name = nullptr;
  Series* series = nullptr;
};

template <typename Series, typename Resolve>
Series& cached_series(const char* name, const Resolve& resolve) {
  // NOLINTNEXTLINE(snnsec-hot-path-alloc, snnsec-hot-alloc): one-time growth
  // per (thread, series); steady state is a short pointer-compare scan.
  thread_local std::vector<SeriesCacheEntry<Series>> cache;
  for (const auto& e : cache)
    if (e.name == name) return *e.series;
  Series& s = resolve(name);
  cache.push_back({name, &s});
  return s;
}

bool hook_enabled() { return Registry::enabled(); }

void hook_counter_add(const char* name, std::int64_t delta) {
  if (!Registry::enabled()) return;
  cached_series<Counter>(name, [](const char* n) -> Counter& {
    return Registry::instance().counter(n);
  }).add(delta);
}

void hook_gauge_set(const char* name, double value) {
  if (!Registry::enabled()) return;
  cached_series<Gauge>(name, [](const char* n) -> Gauge& {
    return Registry::instance().gauge(n);
  }).set(value);
}

void hook_histogram_observe(const char* name, double value,
                            const double* bounds, std::size_t n_bounds) {
  if (!Registry::enabled()) return;
  cached_series<Histogram>(name, [&](const char* n) -> Histogram& {
    return Registry::instance().histogram(
        n, std::vector<double>(bounds, bounds + n_bounds));
  }).observe(value);
}

bool install_metrics_hooks() {
  util::MetricsHooks& h = util::metrics_hooks();
  h.enabled = &hook_enabled;
  h.counter_add = &hook_counter_add;
  h.gauge_set = &hook_gauge_set;
  h.histogram_observe = &hook_histogram_observe;
  return true;
}

[[maybe_unused]] const bool g_metrics_hooks_installed = install_metrics_hooks();

}  // namespace

}  // namespace snnsec::obs
