#include "obs/probe.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace snnsec::obs {

std::string ActivityStats::summary() const {
  std::ostringstream oss;
  oss << layer << ": rate=" << util::format_float(firing_rate, 4)
      << " spikes=" << spike_count << "/" << neuron_steps
      << " silent=" << util::format_float(silent_fraction, 3)
      << " saturated=" << util::format_float(saturated_fraction, 3)
      << " v[mean=" << util::format_float(v_mean, 3)
      << ", min=" << util::format_float(v_min, 3)
      << ", max=" << util::format_float(v_max, 3) << "]";
  return oss.str();
}

void record_activity(const std::vector<ActivityStats>& stats,
                     const Labels& extra) {
  if (!Registry::enabled()) return;
  Registry& reg = Registry::instance();
  for (const ActivityStats& s : stats) {
    Labels labels{{"layer", s.layer}};
    labels.insert(labels.end(), extra.begin(), extra.end());
    reg.record("snn.layer.firing_rate", s.firing_rate, labels);
    reg.record("snn.layer.silent_fraction", s.silent_fraction, labels);
    reg.record("snn.layer.saturated_fraction", s.saturated_fraction, labels);
    reg.record("snn.layer.v_mean", s.v_mean, labels);
    reg.counter("snn.spikes", {{"layer", s.layer}}).add(s.spike_count);
    reg.gauge("snn.firing_rate", {{"layer", s.layer}}).set(s.firing_rate);
    reg.gauge("snn.silent_fraction", {{"layer", s.layer}})
        .set(s.silent_fraction);
  }
}

}  // namespace snnsec::obs
