// Per-request spike-telemetry sketch: the serve-path sibling of
// obs::ActivityStats.
//
// collect_activity() runs one probed forward and materializes full per-layer
// statistics — fine for the explorer, useless for serving, where the hot
// path is AnytimeRunner stepping a *batch* of requests one time-slab at a
// time and must not allocate. SketchAccumulator is the incremental,
// preallocated version: the runner feeds it each spiking layer's (z, v)
// slab every step, it maintains per-request (per-batch-slot) integer and
// double accumulators, and finalize() snapshots one request's summary into
// an ActivitySketch the moment that request leaves the batch.
//
// Bit-identity contract (tests/test_obs_sketch.cpp): a request's sketch is
// identical whether it rode a batch or ran alone, and whether its
// neighbours ran longer or shorter — accumulation for slot r only ever
// touches row r of each slab, in a fixed k-then-t order, with exact integer
// counters for spikes/histogram/silent/saturated and one double for the
// membrane sum. The per-slab math upstream (LIF recurrences, row-local
// GEMM) is itself row-deterministic, so the whole pipeline is.
//
// The membrane histogram range derives from the layer's actual threshold
// ([-Vth, 2*Vth) via MembraneHistSpec::for_threshold) instead of the
// Vth-agnostic default — a high-Vth replica's mass no longer clamps into
// the last bucket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/probe.hpp"

namespace snnsec::obs {

/// Static description of one spiking layer the sketch tracks; the dynamic
/// geometry (neurons per request) is latched on first accumulation.
struct SketchLayerInfo {
  std::string name;  ///< "lif0".."lifK" in stack order
  double v_th = 1.0; ///< firing threshold — drives the histogram range
};

/// Compact per-request activity summary: per spiking layer, the firing
/// rate, silent/saturated neuron fractions, mean pre-reset membrane
/// potential and a coarse membrane histogram (as mass fractions). Buffers
/// are reused across finalize() calls — steady-state writes are
/// allocation-free once the geometry is latched.
struct ActivitySketch {
  struct Layer {
    double firing_rate = 0.0;         ///< spikes / neuron-steps
    double silent_fraction = 0.0;     ///< neurons with zero spikes so far
    double saturated_fraction = 0.0;  ///< neurons firing on every step
    double v_mean = 0.0;              ///< mean pre-reset membrane potential
    std::int64_t spike_count = 0;
    std::int64_t neurons = 0;         ///< per-request population (F)
    std::vector<double> hist_frac;    ///< membrane mass per bucket
  };

  std::int64_t steps = 0;  ///< time steps accumulated before finalize
  std::vector<Layer> layers;

  /// Features per layer fed to the envelope: firing_rate, silent_fraction,
  /// saturated_fraction, v_mean, then one entry per histogram bucket.
  static std::int64_t features_per_layer(std::int64_t buckets) {
    return 4 + buckets;
  }
};

/// Incremental, preallocated accumulator for a batch of requests. One
/// instance lives in each serve worker next to its AnytimeRunner; the
/// runner drives begin/accumulate/end_step, the server drives finalize.
class SketchAccumulator {
 public:
  static constexpr int kDefaultBuckets = 8;

  SketchAccumulator() = default;

  /// Declare the spiking layers (once, at worker construction). Allocates
  /// the per-layer bookkeeping; per-slot buffers are sized lazily by
  /// begin()/accumulate() as the batch geometry is discovered.
  void configure(std::vector<SketchLayerInfo> layers,
                 int buckets = kDefaultBuckets);
  bool configured() const { return !layers_.empty(); }

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(layers_.size());
  }
  int buckets() const { return buckets_; }
  const std::vector<SketchLayerInfo>& layers() const { return layers_; }
  const MembraneHistSpec& spec(std::int64_t layer) const {
    return specs_[static_cast<std::size_t>(layer)];
  }

  /// Start a new request batch of `batch` slots: zero all accumulators.
  /// Grows buffers only when the batch outgrows every previous one, so a
  /// warm fixed-geometry steady state never allocates.
  void begin(std::int64_t batch);

  /// Fold one time-slab of layer `layer` into the batch accumulators.
  /// `z`/`vd` are the step's spike and pre-reset-membrane arrays of
  /// `numel` = batch * features elements, batch-major. The per-layer
  /// feature count is latched on first call after configure() and may
  /// change only together with the batch geometry.
  void accumulate(std::int64_t layer, const float* z, const float* vd,
                  std::int64_t numel);

  /// Mark one full time step accumulated across all layers.
  void end_step() { ++steps_; }

  std::int64_t steps() const { return steps_; }
  std::int64_t batch() const { return batch_; }

  /// Snapshot slot `slot`'s accumulators into `out` (resizes `out`'s
  /// buffers on first use only, then reuses them). Valid any time after
  /// begin(); later accumulation does not disturb an earlier snapshot, so
  /// deadline-truncated requests freeze their sketch at finalize time.
  void finalize(std::int64_t slot, ActivitySketch& out) const;

 private:
  /// Per-layer accumulator block; all vectors are indexed per slot (and per
  /// slot*feature for the neuron masks).
  struct LayerAcc {
    std::int64_t features = 0;            ///< per-request F, latched
    std::vector<std::int64_t> spikes;     ///< [slots]
    std::vector<double> v_sum;            ///< [slots]
    std::vector<std::int64_t> hist;       ///< [slots * buckets]
    std::vector<std::uint8_t> fired;      ///< [slots * features]
    std::vector<std::uint8_t> always;     ///< [slots * features]
  };

  std::vector<SketchLayerInfo> layers_;
  std::vector<MembraneHistSpec> specs_;
  std::vector<LayerAcc> acc_;
  int buckets_ = kDefaultBuckets;
  std::int64_t batch_ = 0;
  std::int64_t capacity_ = 0;  ///< high-water batch the buffers are sized for
  std::int64_t steps_ = 0;
};

}  // namespace snnsec::obs
