#include "data/raster.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace snnsec::data {

Affine Affine::then(const Affine& o) const {
  Affine r;
  r.a = o.a * a + o.b * c;
  r.b = o.a * b + o.b * d;
  r.c = o.c * a + o.d * c;
  r.d = o.c * b + o.d * d;
  r.tx = o.a * tx + o.b * ty + o.tx;
  r.ty = o.c * tx + o.d * ty + o.ty;
  return r;
}

Affine Affine::rotation(float radians, Vec2 center) {
  const float cs = std::cos(radians);
  const float sn = std::sin(radians);
  Affine r;
  r.a = cs;
  r.b = -sn;
  r.c = sn;
  r.d = cs;
  r.tx = center.x - cs * center.x + sn * center.y;
  r.ty = center.y - sn * center.x - cs * center.y;
  return r;
}

Affine Affine::scaling(float sx, float sy, Vec2 center) {
  Affine r;
  r.a = sx;
  r.d = sy;
  r.tx = center.x * (1.0f - sx);
  r.ty = center.y * (1.0f - sy);
  return r;
}

Affine Affine::translation(float dx, float dy) {
  Affine r;
  r.tx = dx;
  r.ty = dy;
  return r;
}

Affine Affine::shear(float kx, Vec2 center) {
  Affine r;
  r.b = kx;
  r.tx = -kx * center.y;
  return r;
}

void Canvas::stamp(Vec2 center, float r, float intensity) {
  SNNSEC_CHECK(r > 0.0f, "Canvas::stamp: non-positive radius");
  const std::int64_t x0 =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(center.x - r - 1));
  const std::int64_t x1 = std::min<std::int64_t>(
      width_ - 1, static_cast<std::int64_t>(center.x + r + 1));
  const std::int64_t y0 =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(center.y - r - 1));
  const std::int64_t y1 = std::min<std::int64_t>(
      height_ - 1, static_cast<std::int64_t>(center.y + r + 1));
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      const float dx = static_cast<float>(x) + 0.5f - center.x;
      const float dy = static_cast<float>(y) + 0.5f - center.y;
      const float dist = std::sqrt(dx * dx + dy * dy);
      // Soft edge over ~1px at the rim.
      const float v = std::clamp((r - dist) + 0.5f, 0.0f, 1.0f) * intensity;
      float& px = pixels_[static_cast<std::size_t>(y * width_ + x)];
      px = std::max(px, v);
    }
  }
}

void Canvas::stroke_polyline(const std::vector<Vec2>& points, float radius,
                             float intensity) {
  if (points.empty()) return;
  if (points.size() == 1) {
    stamp(points[0], radius, intensity);
    return;
  }
  const float step = 0.4f;  // stamp spacing in pixels
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Vec2 p0 = points[i];
    const Vec2 p1 = points[i + 1];
    const float len = std::hypot(p1.x - p0.x, p1.y - p0.y);
    const int n = std::max(1, static_cast<int>(len / step));
    for (int k = 0; k <= n; ++k) {
      const float t = static_cast<float>(k) / static_cast<float>(n);
      stamp({p0.x + t * (p1.x - p0.x), p0.y + t * (p1.y - p0.y)}, radius,
            intensity);
    }
  }
}

void Canvas::fill_polygon(const std::vector<Vec2>& vertices, float intensity) {
  SNNSEC_CHECK(vertices.size() >= 3, "fill_polygon: need >= 3 vertices");
  // Even-odd point-in-polygon test.
  const auto inside = [&](float px, float py) {
    bool in = false;
    for (std::size_t i = 0, j = vertices.size() - 1; i < vertices.size();
         j = i++) {
      const Vec2& a = vertices[i];
      const Vec2& b = vertices[j];
      const bool crosses = (a.y > py) != (b.y > py);
      if (crosses &&
          px < (b.x - a.x) * (py - a.y) / (b.y - a.y + 1e-12f) + a.x)
        in = !in;
    }
    return in;
  };
  // Bounding box.
  float min_x = vertices[0].x, max_x = vertices[0].x;
  float min_y = vertices[0].y, max_y = vertices[0].y;
  for (const Vec2& v : vertices) {
    min_x = std::min(min_x, v.x);
    max_x = std::max(max_x, v.x);
    min_y = std::min(min_y, v.y);
    max_y = std::max(max_y, v.y);
  }
  const std::int64_t x0 =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(min_x));
  const std::int64_t x1 =
      std::min<std::int64_t>(width_ - 1, static_cast<std::int64_t>(max_x) + 1);
  const std::int64_t y0 =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(min_y));
  const std::int64_t y1 = std::min<std::int64_t>(
      height_ - 1, static_cast<std::int64_t>(max_y) + 1);
  // 2x2 supersampling -> 5 coverage levels per pixel.
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      int hits = 0;
      for (const float dx : {0.25f, 0.75f})
        for (const float dy : {0.25f, 0.75f})
          if (inside(static_cast<float>(x) + dx, static_cast<float>(y) + dy))
            ++hits;
      if (hits == 0) continue;
      const float v = intensity * static_cast<float>(hits) / 4.0f;
      float& px = pixels_[static_cast<std::size_t>(y * width_ + x)];
      px = std::max(px, v);
    }
  }
}

void Canvas::add_noise(float stddev, util::Rng& rng) {
  if (stddev <= 0.0f) return;
  for (float& p : pixels_) {
    p = std::clamp(p + static_cast<float>(rng.normal(0.0, stddev)), 0.0f,
                   1.0f);
  }
}

void Canvas::blur(int passes) {
  std::vector<float> tmp(pixels_.size());
  for (int pass = 0; pass < passes; ++pass) {
    // Horizontal [1 2 1] / 4.
    for (std::int64_t y = 0; y < height_; ++y) {
      for (std::int64_t x = 0; x < width_; ++x) {
        const float l = pixels_[static_cast<std::size_t>(
            y * width_ + std::max<std::int64_t>(0, x - 1))];
        const float m = pixels_[static_cast<std::size_t>(y * width_ + x)];
        const float r = pixels_[static_cast<std::size_t>(
            y * width_ + std::min(width_ - 1, x + 1))];
        tmp[static_cast<std::size_t>(y * width_ + x)] =
            0.25f * l + 0.5f * m + 0.25f * r;
      }
    }
    // Vertical [1 2 1] / 4.
    for (std::int64_t y = 0; y < height_; ++y) {
      for (std::int64_t x = 0; x < width_; ++x) {
        const float u = tmp[static_cast<std::size_t>(
            std::max<std::int64_t>(0, y - 1) * width_ + x)];
        const float m = tmp[static_cast<std::size_t>(y * width_ + x)];
        const float d = tmp[static_cast<std::size_t>(
            std::min(height_ - 1, y + 1) * width_ + x)];
        pixels_[static_cast<std::size_t>(y * width_ + x)] =
            0.25f * u + 0.5f * m + 0.25f * d;
      }
    }
  }
}

void Canvas::copy_to(tensor::Tensor& images, std::int64_t index,
                     std::int64_t channel) const {
  SNNSEC_CHECK(images.ndim() == 4 && images.dim(2) == height_ &&
                   images.dim(3) == width_,
               "Canvas::copy_to: tensor shape mismatch");
  SNNSEC_CHECK(index >= 0 && index < images.dim(0) && channel >= 0 &&
                   channel < images.dim(1),
               "Canvas::copy_to: bad index/channel");
  float* dst = images.data() +
               (index * images.dim(1) + channel) * height_ * width_;
  std::copy(pixels_.begin(), pixels_.end(), dst);
}

std::vector<Vec2> sample_quad_bezier(Vec2 p0, Vec2 p1, Vec2 p2, int n) {
  SNNSEC_CHECK(n >= 2, "sample_quad_bezier: need >= 2 samples");
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float t = static_cast<float>(i) / static_cast<float>(n - 1);
    const float u = 1.0f - t;
    out.push_back({u * u * p0.x + 2 * u * t * p1.x + t * t * p2.x,
                   u * u * p0.y + 2 * u * t * p1.y + t * t * p2.y});
  }
  return out;
}

std::vector<Vec2> sample_ellipse(Vec2 center, float rx, float ry, float angle0,
                                 float angle1, int n) {
  SNNSEC_CHECK(n >= 2, "sample_ellipse: need >= 2 samples");
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const float t = static_cast<float>(i) / static_cast<float>(n - 1);
    const float a = angle0 + t * (angle1 - angle0);
    out.push_back({center.x + rx * std::cos(a), center.y + ry * std::sin(a)});
  }
  return out;
}

}  // namespace snnsec::data
