// MNIST IDX file loader (LeCun's format, uncompressed).
//
// When real MNIST files are available (set MNIST_DIR or pass the directory
// explicitly), every experiment runs on them; otherwise the synthetic digit
// generator is used (see provider.hpp). File names accepted per split:
//   train-images-idx3-ubyte / train-images.idx3-ubyte
//   train-labels-idx1-ubyte / train-labels.idx1-ubyte
//   t10k-images-idx3-ubyte  / t10k-images.idx3-ubyte   (test)
//   t10k-labels-idx1-ubyte  / t10k-labels.idx1-ubyte
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace snnsec::data {

/// Parse a big-endian IDX image file into [N, 1, H, W] in [0, 1].
tensor::Tensor load_idx_images(const std::string& path,
                               std::int64_t max_items = -1);

/// Parse a big-endian IDX label file.
std::vector<std::int64_t> load_idx_labels(const std::string& path,
                                          std::int64_t max_items = -1);

/// True when `dir` contains a recognizable MNIST split layout.
bool mnist_available(const std::string& dir);

/// Load the train or test split from `dir`; `max_items` truncates (-1: all).
Dataset load_mnist(const std::string& dir, bool train,
                   std::int64_t max_items = -1);

}  // namespace snnsec::data
