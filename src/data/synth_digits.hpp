// Procedural handwritten-digit generator: the offline MNIST substitute.
//
// Why this is a faithful substitution (see DESIGN.md §2): the paper's
// methodology needs a learnable 10-class grayscale image task with
// MNIST-like tensor shapes. Each digit 0–9 is defined as a set of vector
// strokes (Bézier segments and ellipse arcs in a normalized box); each
// generated sample applies per-sample random jitter — rotation, anisotropic
// scale, shear, translation, stroke-width variation, control-point
// perturbation, pixel noise and blur — so the classes have real
// within-class variance and the task is non-trivially learnable, while
// remaining exactly the same code path as MNIST downstream (encoding,
// training, attacks, exploration).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "data/raster.hpp"
#include "util/rng.hpp"

namespace snnsec::data {

struct SynthConfig {
  std::int64_t image_size = 28;  ///< square canvas
  float stroke_radius = 1.3f;    ///< base pen radius at 28px, scaled with size
  float noise_stddev = 0.03f;    ///< additive pixel noise
  float max_rotation = 0.20f;    ///< radians (~11°)
  float max_shear = 0.15f;
  float min_scale = 0.85f;
  float max_scale = 1.10f;
  float max_translate = 0.06f;   ///< fraction of image size
  float jitter = 0.02f;          ///< control-point perturbation (fraction)
  int blur_passes = 1;
};

/// Vector strokes of a single digit in the unit box (x right, y down).
std::vector<std::vector<Vec2>> digit_strokes(std::int64_t digit);

/// Rasterize one sample of `digit` with random per-sample jitter.
void render_digit(std::int64_t digit, const SynthConfig& config,
                  util::Rng& rng, Canvas& canvas);

/// Generate a class-balanced dataset of n samples (labels cycle 0..9).
Dataset generate_digits(std::int64_t n, const SynthConfig& config,
                        util::Rng& rng);

}  // namespace snnsec::data
