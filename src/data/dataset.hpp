// Dataset: images + labels, with split/subset/shuffle utilities.
//
// Images are [N, C, H, W] float32 in [0, 1]; labels are class indices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snnsec::data {

struct Dataset {
  tensor::Tensor images;              // [N, C, H, W]
  std::vector<std::int64_t> labels;   // N entries
  std::int64_t num_classes = 10;

  std::int64_t size() const { return images.ndim() > 0 ? images.dim(0) : 0; }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }

  /// Throws util::Error when shapes/labels/pixel range are inconsistent.
  void validate() const;

  /// Rows [begin, end).
  Dataset subset(std::int64_t begin, std::int64_t end) const;

  /// First n rows (n clamped to size).
  Dataset take(std::int64_t n) const;

  /// In-place deterministic permutation of (image, label) pairs.
  void shuffle(util::Rng& rng);

  /// Per-class sample counts.
  std::vector<std::int64_t> class_histogram() const;

  /// "N=1000 10 classes 1x28x28".
  std::string summary() const;
};

/// Split into (train, test) with the first `train_n` rows training.
std::pair<Dataset, Dataset> split(const Dataset& d, std::int64_t train_n);

/// ASCII-art rendering of one image (for terminal demos / examples).
std::string ascii_art(const tensor::Tensor& images, std::int64_t index);

}  // namespace snnsec::data
