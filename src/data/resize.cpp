#include "data/resize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace snnsec::data {

using tensor::Shape;
using tensor::Tensor;

Tensor resize_bilinear(const Tensor& images, std::int64_t out_h,
                       std::int64_t out_w) {
  SNNSEC_CHECK(images.ndim() == 4, "resize_bilinear expects [N,C,H,W]");
  SNNSEC_CHECK(out_h > 0 && out_w > 0, "resize_bilinear: bad output size");
  const std::int64_t n = images.dim(0);
  const std::int64_t c = images.dim(1);
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  if (h == out_h && w == out_w) return images;

  Tensor out(Shape{n, c, out_h, out_w});
  const float sy = static_cast<float>(h) / static_cast<float>(out_h);
  const float sx = static_cast<float>(w) / static_cast<float>(out_w);
  for (std::int64_t nc = 0; nc < n * c; ++nc) {
    const float* src = images.data() + nc * h * w;
    float* dst = out.data() + nc * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      const float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
      const std::int64_t y0 =
          std::clamp<std::int64_t>(static_cast<std::int64_t>(std::floor(fy)),
                                   0, h - 1);
      const std::int64_t y1 = std::min(y0 + 1, h - 1);
      const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        const float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
        const std::int64_t x0 = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(std::floor(fx)), 0, w - 1);
        const std::int64_t x1 = std::min(x0 + 1, w - 1);
        const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
        const float top = src[y0 * w + x0] * (1.0f - wx) + src[y0 * w + x1] * wx;
        const float bot = src[y1 * w + x0] * (1.0f - wx) + src[y1 * w + x1] * wx;
        dst[oy * out_w + ox] = top * (1.0f - wy) + bot * wy;
      }
    }
  }
  return out;
}

}  // namespace snnsec::data
