#include "data/synth_digits.hpp"

#include <cmath>

#include "util/error.hpp"

namespace snnsec::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr float kPi = 3.14159265358979323846f;
constexpr int kCurveSamples = 24;

std::vector<Vec2> bez(Vec2 a, Vec2 b, Vec2 c) {
  return sample_quad_bezier(a, b, c, kCurveSamples);
}

std::vector<Vec2> line(Vec2 a, Vec2 b) { return {a, b}; }

std::vector<Vec2> ellipse(Vec2 c, float rx, float ry, float a0 = 0.0f,
                          float a1 = 2.0f * kPi) {
  return sample_ellipse(c, rx, ry, a0, a1, 2 * kCurveSamples);
}

}  // namespace

std::vector<std::vector<Vec2>> digit_strokes(std::int64_t digit) {
  // Coordinates in the unit box, x right, y down; glyphs roughly centered,
  // occupying [0.25, 0.75] x [0.18, 0.82].
  switch (digit) {
    case 0:
      return {ellipse({0.50f, 0.50f}, 0.20f, 0.30f)};
    case 1:
      return {line({0.52f, 0.20f}, {0.52f, 0.80f}),
              line({0.40f, 0.32f}, {0.52f, 0.20f})};
    case 2:
      return {bez({0.30f, 0.36f}, {0.50f, 0.10f}, {0.70f, 0.36f}),
              bez({0.70f, 0.36f}, {0.66f, 0.58f}, {0.30f, 0.80f}),
              line({0.30f, 0.80f}, {0.72f, 0.80f})};
    case 3:
      return {bez({0.32f, 0.24f}, {0.72f, 0.22f}, {0.50f, 0.48f}),
              bez({0.50f, 0.48f}, {0.78f, 0.62f}, {0.34f, 0.80f})};
    case 4:
      return {line({0.64f, 0.20f}, {0.64f, 0.80f}),
              line({0.64f, 0.20f}, {0.30f, 0.60f}),
              line({0.30f, 0.60f}, {0.76f, 0.60f})};
    case 5:
      return {line({0.70f, 0.20f}, {0.36f, 0.20f}),
              line({0.36f, 0.20f}, {0.34f, 0.46f}),
              bez({0.34f, 0.46f}, {0.80f, 0.44f}, {0.62f, 0.74f}),
              bez({0.62f, 0.74f}, {0.50f, 0.86f}, {0.30f, 0.74f})};
    case 6:
      return {bez({0.66f, 0.20f}, {0.40f, 0.30f}, {0.34f, 0.58f}),
              ellipse({0.50f, 0.64f}, 0.17f, 0.17f)};
    case 7:
      return {line({0.30f, 0.20f}, {0.72f, 0.20f}),
              line({0.72f, 0.20f}, {0.44f, 0.80f})};
    case 8:
      return {ellipse({0.50f, 0.35f}, 0.15f, 0.14f),
              ellipse({0.50f, 0.65f}, 0.19f, 0.16f)};
    case 9:
      return {ellipse({0.50f, 0.37f}, 0.17f, 0.16f),
              bez({0.67f, 0.37f}, {0.66f, 0.62f}, {0.52f, 0.80f})};
    default:
      SNNSEC_FAIL("digit_strokes: digit " << digit << " outside [0, 9]");
  }
}

void render_digit(std::int64_t digit, const SynthConfig& config,
                  util::Rng& rng, Canvas& canvas) {
  SNNSEC_CHECK(canvas.height() == config.image_size &&
                   canvas.width() == config.image_size,
               "render_digit: canvas does not match config.image_size");
  const float size = static_cast<float>(config.image_size);
  const Vec2 center{0.5f, 0.5f};

  // Per-sample random transform in normalized space.
  const float rot = static_cast<float>(
      rng.uniform(-config.max_rotation, config.max_rotation));
  const float sx =
      static_cast<float>(rng.uniform(config.min_scale, config.max_scale));
  const float sy =
      static_cast<float>(rng.uniform(config.min_scale, config.max_scale));
  const float shear_k =
      static_cast<float>(rng.uniform(-config.max_shear, config.max_shear));
  const float dx = static_cast<float>(
      rng.uniform(-config.max_translate, config.max_translate));
  const float dy = static_cast<float>(
      rng.uniform(-config.max_translate, config.max_translate));

  const Affine xform = Affine::rotation(rot, center)
                           .then(Affine::shear(shear_k, center))
                           .then(Affine::scaling(sx, sy, center))
                           .then(Affine::translation(dx, dy));

  const float radius = config.stroke_radius * size / 28.0f *
                       static_cast<float>(rng.uniform(0.8, 1.25));

  for (const auto& stroke : digit_strokes(digit)) {
    std::vector<Vec2> pts;
    pts.reserve(stroke.size());
    for (Vec2 p : stroke) {
      // Control-point jitter, then affine, then to pixel coordinates.
      p.x += static_cast<float>(rng.uniform(-config.jitter, config.jitter));
      p.y += static_cast<float>(rng.uniform(-config.jitter, config.jitter));
      const Vec2 q = xform.apply(p);
      pts.push_back({q.x * size, q.y * size});
    }
    canvas.stroke_polyline(pts, radius);
  }
  if (config.blur_passes > 0) canvas.blur(config.blur_passes);
  canvas.add_noise(config.noise_stddev, rng);
}

Dataset generate_digits(std::int64_t n, const SynthConfig& config,
                        util::Rng& rng) {
  SNNSEC_CHECK(n > 0, "generate_digits: n must be positive");
  SNNSEC_CHECK(config.image_size >= 8, "generate_digits: image too small");
  Dataset out;
  out.num_classes = 10;
  out.images = Tensor(Shape{n, 1, config.image_size, config.image_size});
  out.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t digit = i % 10;  // class-balanced by construction
    Canvas canvas(config.image_size, config.image_size);
    render_digit(digit, config, rng, canvas);
    canvas.copy_to(out.images, i);
    out.labels[static_cast<std::size_t>(i)] = digit;
  }
  // Decorrelate label order from index order.
  out.shuffle(rng);
  return out;
}

}  // namespace snnsec::data
