#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace snnsec::data {

using tensor::Shape;
using tensor::Tensor;

void Dataset::validate() const {
  SNNSEC_CHECK(images.ndim() == 4, "Dataset: images must be [N,C,H,W], got "
                                       << images.shape().to_string());
  SNNSEC_CHECK(static_cast<std::int64_t>(labels.size()) == size(),
               "Dataset: " << labels.size() << " labels for " << size()
                           << " images");
  SNNSEC_CHECK(num_classes > 1, "Dataset: need >= 2 classes");
  for (const auto l : labels)
    SNNSEC_CHECK(l >= 0 && l < num_classes,
                 "Dataset: label " << l << " outside [0, " << num_classes
                                   << ")");
  const float* p = images.data();
  for (std::int64_t i = 0; i < images.numel(); ++i)
    SNNSEC_CHECK(p[i] >= -1e-6f && p[i] <= 1.0f + 1e-6f,
                 "Dataset: pixel " << p[i] << " outside [0, 1]");
}

Dataset Dataset::subset(std::int64_t begin, std::int64_t end) const {
  const std::int64_t n = size();
  SNNSEC_CHECK(0 <= begin && begin <= end && end <= n,
               "Dataset::subset: bad range [" << begin << ", " << end
                                              << ") of " << n);
  Dataset out;
  out.num_classes = num_classes;
  std::vector<std::int64_t> dims = images.shape().dims();
  dims[0] = end - begin;
  out.images = Tensor((Shape(dims)));
  const std::int64_t row = images.numel() / std::max<std::int64_t>(n, 1);
  std::memcpy(out.images.data(), images.data() + begin * row,
              static_cast<std::size_t>((end - begin) * row) * sizeof(float));
  out.labels.assign(labels.begin() + begin, labels.begin() + end);
  return out;
}

Dataset Dataset::take(std::int64_t n) const {
  return subset(0, std::min(n, size()));
}

void Dataset::shuffle(util::Rng& rng) {
  const std::int64_t n = size();
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::int64_t row = images.numel() / std::max<std::int64_t>(n, 1);
  Tensor shuffled(images.shape());
  std::vector<std::int64_t> new_labels(labels.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t src = order[static_cast<std::size_t>(i)];
    std::memcpy(shuffled.data() + i * row, images.data() + src * row,
                static_cast<std::size_t>(row) * sizeof(float));
    new_labels[static_cast<std::size_t>(i)] =
        labels[static_cast<std::size_t>(src)];
  }
  images = std::move(shuffled);
  labels = std::move(new_labels);
}

std::vector<std::int64_t> Dataset::class_histogram() const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const auto l : labels) ++hist[static_cast<std::size_t>(l)];
  return hist;
}

std::string Dataset::summary() const {
  std::ostringstream oss;
  oss << "N=" << size() << " " << num_classes << " classes " << channels()
      << "x" << height() << "x" << width();
  return oss.str();
}

std::pair<Dataset, Dataset> split(const Dataset& d, std::int64_t train_n) {
  SNNSEC_CHECK(train_n >= 0 && train_n <= d.size(),
               "split: train_n " << train_n << " out of range");
  return {d.subset(0, train_n), d.subset(train_n, d.size())};
}

std::string ascii_art(const Tensor& images, std::int64_t index) {
  SNNSEC_CHECK(images.ndim() == 4, "ascii_art: images must be [N,C,H,W]");
  SNNSEC_CHECK(index >= 0 && index < images.dim(0), "ascii_art: bad index");
  static constexpr char kRamp[] = " .:-=+*#%@";
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  const float* p = images.data() + index * images.dim(1) * h * w;  // channel 0
  std::ostringstream oss;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float v = std::clamp(p[y * w + x], 0.0f, 1.0f);
      const int level = static_cast<int>(v * 9.0f + 0.5f);
      oss << kRamp[level] << kRamp[level];  // double width ~ square aspect
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace snnsec::data
