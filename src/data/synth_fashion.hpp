// Procedural Fashion-MNIST-like generator — the second dataset the paper's
// community baseline mentions ("datasets like MNIST and Fashion MNIST").
//
// Each of the ten Fashion-MNIST classes (t-shirt, trouser, pullover, dress,
// coat, sandal, shirt, sneaker, bag, ankle boot) is a filled silhouette
// polygon plus optional stroke details, rendered with the same per-sample
// affine/noise jitter as the digit generator, so the exploration pipeline
// runs unchanged on a texture-rich second task.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "data/raster.hpp"
#include "data/synth_digits.hpp"  // SynthConfig

namespace snnsec::data {

struct FashionGlyph {
  /// Filled silhouettes (unit-box vertex lists).
  std::vector<std::vector<Vec2>> fills;
  /// Stroke details (polylines in the unit box), drawn darker regions.
  std::vector<std::vector<Vec2>> strokes;
};

/// Silhouette + detail geometry for class 0..9 (Fashion-MNIST label order).
const FashionGlyph& fashion_glyph(std::int64_t label);

/// Human-readable class name ("t-shirt", "trouser", ...).
const char* fashion_class_name(std::int64_t label);

/// Rasterize one jittered sample of `label`.
void render_fashion(std::int64_t label, const SynthConfig& config,
                    util::Rng& rng, Canvas& canvas);

/// Class-balanced dataset of n samples.
Dataset generate_fashion(std::int64_t n, const SynthConfig& config,
                         util::Rng& rng);

}  // namespace snnsec::data
