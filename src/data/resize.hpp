// Bilinear image resize over [N, C, H, W] tensors — used to run MNIST at
// the reduced resolutions of the quick experiment profiles.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace snnsec::data {

/// Resize every image to (out_h, out_w) with bilinear sampling
/// (align_corners=false convention, matching common DL frameworks).
tensor::Tensor resize_bilinear(const tensor::Tensor& images,
                               std::int64_t out_h, std::int64_t out_w);

}  // namespace snnsec::data
