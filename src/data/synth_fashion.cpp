#include "data/synth_fashion.hpp"

#include <array>

#include "util/error.hpp"

namespace snnsec::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

using Poly = std::vector<Vec2>;

FashionGlyph make_tshirt() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.38f, 0.28f}, {0.62f, 0.28f}, {0.66f, 0.32f},
                         {0.80f, 0.38f}, {0.74f, 0.50f}, {0.66f, 0.46f},
                         {0.66f, 0.78f}, {0.34f, 0.78f}, {0.34f, 0.46f},
                         {0.26f, 0.50f}, {0.20f, 0.38f}, {0.34f, 0.32f}});
  // Neckline.
  g.strokes.push_back(Poly{{0.44f, 0.28f}, {0.50f, 0.33f}, {0.56f, 0.28f}});
  return g;
}

FashionGlyph make_trouser() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.36f, 0.22f}, {0.64f, 0.22f}, {0.66f, 0.80f},
                         {0.54f, 0.80f}, {0.51f, 0.42f}, {0.49f, 0.42f},
                         {0.46f, 0.80f}, {0.34f, 0.80f}});
  g.strokes.push_back(Poly{{0.36f, 0.28f}, {0.64f, 0.28f}});  // waistband
  return g;
}

FashionGlyph make_pullover() {
  FashionGlyph g;
  // Long sleeves hanging down the sides.
  g.fills.push_back(Poly{{0.38f, 0.26f}, {0.62f, 0.26f}, {0.68f, 0.32f},
                         {0.78f, 0.40f}, {0.74f, 0.74f}, {0.66f, 0.72f},
                         {0.66f, 0.78f}, {0.34f, 0.78f}, {0.34f, 0.72f},
                         {0.26f, 0.74f}, {0.22f, 0.40f}, {0.32f, 0.32f}});
  g.strokes.push_back(Poly{{0.34f, 0.70f}, {0.66f, 0.70f}});  // hem rib
  return g;
}

FashionGlyph make_dress() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.43f, 0.20f}, {0.57f, 0.20f}, {0.60f, 0.38f},
                         {0.72f, 0.80f}, {0.28f, 0.80f}, {0.40f, 0.38f}});
  g.strokes.push_back(Poly{{0.41f, 0.40f}, {0.59f, 0.40f}});  // waist
  return g;
}

FashionGlyph make_coat() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.36f, 0.24f}, {0.64f, 0.24f}, {0.70f, 0.30f},
                         {0.80f, 0.42f}, {0.76f, 0.78f}, {0.68f, 0.76f},
                         {0.68f, 0.80f}, {0.32f, 0.80f}, {0.32f, 0.76f},
                         {0.24f, 0.78f}, {0.20f, 0.42f}, {0.30f, 0.30f}});
  // Open front.
  g.strokes.push_back(Poly{{0.50f, 0.26f}, {0.50f, 0.80f}});
  return g;
}

FashionGlyph make_sandal() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.18f, 0.62f}, {0.82f, 0.58f}, {0.84f, 0.70f},
                         {0.18f, 0.72f}});
  // Straps.
  g.strokes.push_back(Poly{{0.30f, 0.62f}, {0.42f, 0.44f}, {0.54f, 0.60f}});
  g.strokes.push_back(Poly{{0.56f, 0.59f}, {0.66f, 0.42f}, {0.78f, 0.58f}});
  return g;
}

FashionGlyph make_shirt() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.38f, 0.26f}, {0.62f, 0.26f}, {0.66f, 0.30f},
                         {0.80f, 0.36f}, {0.74f, 0.48f}, {0.66f, 0.44f},
                         {0.66f, 0.80f}, {0.34f, 0.80f}, {0.34f, 0.44f},
                         {0.26f, 0.48f}, {0.20f, 0.36f}, {0.34f, 0.30f}});
  // Button placket + collar.
  g.strokes.push_back(Poly{{0.50f, 0.30f}, {0.50f, 0.78f}});
  g.strokes.push_back(Poly{{0.44f, 0.26f}, {0.50f, 0.32f}, {0.56f, 0.26f}});
  return g;
}

FashionGlyph make_sneaker() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.18f, 0.56f}, {0.42f, 0.52f}, {0.58f, 0.44f},
                         {0.80f, 0.54f}, {0.84f, 0.66f}, {0.82f, 0.72f},
                         {0.18f, 0.72f}});
  // Laces + sole line.
  g.strokes.push_back(Poly{{0.44f, 0.54f}, {0.56f, 0.50f}});
  g.strokes.push_back(Poly{{0.46f, 0.58f}, {0.60f, 0.54f}});
  g.strokes.push_back(Poly{{0.20f, 0.68f}, {0.82f, 0.68f}});
  return g;
}

FashionGlyph make_bag() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.24f, 0.44f}, {0.76f, 0.44f}, {0.80f, 0.78f},
                         {0.20f, 0.78f}});
  // Handle.
  g.strokes.push_back(
      sample_ellipse({0.50f, 0.44f}, 0.14f, 0.12f, 3.14159265f, 6.2831853f,
                     24));
  return g;
}

FashionGlyph make_boot() {
  FashionGlyph g;
  g.fills.push_back(Poly{{0.34f, 0.22f}, {0.54f, 0.22f}, {0.55f, 0.52f},
                         {0.78f, 0.58f}, {0.82f, 0.70f}, {0.80f, 0.74f},
                         {0.32f, 0.74f}});
  g.strokes.push_back(Poly{{0.34f, 0.68f}, {0.80f, 0.68f}});  // sole
  return g;
}

}  // namespace

const FashionGlyph& fashion_glyph(std::int64_t label) {
  static const std::array<FashionGlyph, 10> kGlyphs = {
      make_tshirt(),  make_trouser(), make_pullover(), make_dress(),
      make_coat(),    make_sandal(),  make_shirt(),    make_sneaker(),
      make_bag(),     make_boot()};
  SNNSEC_CHECK(label >= 0 && label <= 9,
               "fashion_glyph: label " << label << " outside [0, 9]");
  return kGlyphs[static_cast<std::size_t>(label)];
}

const char* fashion_class_name(std::int64_t label) {
  static constexpr const char* kNames[] = {
      "t-shirt", "trouser", "pullover", "dress",  "coat",
      "sandal",  "shirt",   "sneaker",  "bag",    "ankle boot"};
  SNNSEC_CHECK(label >= 0 && label <= 9,
               "fashion_class_name: label " << label << " outside [0, 9]");
  return kNames[label];
}

void render_fashion(std::int64_t label, const SynthConfig& config,
                    util::Rng& rng, Canvas& canvas) {
  SNNSEC_CHECK(canvas.height() == config.image_size &&
                   canvas.width() == config.image_size,
               "render_fashion: canvas does not match config.image_size");
  const FashionGlyph& glyph = fashion_glyph(label);
  const float size = static_cast<float>(config.image_size);
  const Vec2 center{0.5f, 0.5f};

  const float rot = static_cast<float>(
      rng.uniform(-config.max_rotation, config.max_rotation));
  const float sx =
      static_cast<float>(rng.uniform(config.min_scale, config.max_scale));
  const float sy =
      static_cast<float>(rng.uniform(config.min_scale, config.max_scale));
  const float shear_k =
      static_cast<float>(rng.uniform(-config.max_shear, config.max_shear));
  const float dx = static_cast<float>(
      rng.uniform(-config.max_translate, config.max_translate));
  const float dy = static_cast<float>(
      rng.uniform(-config.max_translate, config.max_translate));
  const Affine xform = Affine::rotation(rot, center)
                           .then(Affine::shear(shear_k, center))
                           .then(Affine::scaling(sx, sy, center))
                           .then(Affine::translation(dx, dy));

  // Fabric shade varies per garment (Fashion-MNIST has rich gray levels).
  const float shade = static_cast<float>(rng.uniform(0.55, 0.95));

  auto to_pixels = [&](const std::vector<Vec2>& pts) {
    std::vector<Vec2> out;
    out.reserve(pts.size());
    for (Vec2 p : pts) {
      p.x += static_cast<float>(rng.uniform(-config.jitter, config.jitter));
      p.y += static_cast<float>(rng.uniform(-config.jitter, config.jitter));
      const Vec2 q = xform.apply(p);
      out.push_back({q.x * size, q.y * size});
    }
    return out;
  };

  for (const auto& fill : glyph.fills)
    canvas.fill_polygon(to_pixels(fill), shade);
  const float radius = config.stroke_radius * size / 28.0f;
  for (const auto& stroke : glyph.strokes)
    canvas.stroke_polyline(to_pixels(stroke), radius, 1.0f);
  if (config.blur_passes > 0) canvas.blur(config.blur_passes);
  canvas.add_noise(config.noise_stddev, rng);
}

Dataset generate_fashion(std::int64_t n, const SynthConfig& config,
                         util::Rng& rng) {
  SNNSEC_CHECK(n > 0, "generate_fashion: n must be positive");
  Dataset out;
  out.num_classes = 10;
  out.images = Tensor(Shape{n, 1, config.image_size, config.image_size});
  out.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % 10;
    Canvas canvas(config.image_size, config.image_size);
    render_fashion(label, config, rng, canvas);
    canvas.copy_to(out.images, i);
    out.labels[static_cast<std::size_t>(i)] = label;
  }
  out.shuffle(rng);
  return out;
}

}  // namespace snnsec::data
