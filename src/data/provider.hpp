// Data provider: one call that yields the experiment's train/test split,
// using real MNIST when available and the synthetic generator otherwise.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace snnsec::data {

/// Which 10-class image task to load.
enum class TaskKind {
  kDigits,   ///< MNIST or the synthetic digit generator
  kFashion,  ///< Fashion-MNIST (same IDX format) or the synthetic garments
};

struct DataSpec {
  std::int64_t train_n = 1000;
  std::int64_t test_n = 200;
  std::int64_t image_size = 28;      ///< images resized/rendered to this
  std::uint64_t seed = 42;           ///< synthetic generation seed
  TaskKind task = TaskKind::kDigits;
  /// IDX directory; empty -> MNIST_DIR (digits) / FASHION_MNIST_DIR
  /// (fashion) environment variables.
  std::string mnist_dir;
  bool force_synthetic = false;      ///< ignore IDX files even if present
};

struct DataBundle {
  Dataset train;
  Dataset test;
  bool from_mnist = false;

  const char* source() const { return from_mnist ? "mnist" : "synthetic"; }
};

/// Resolve the MNIST directory: spec.mnist_dir, else $MNIST_DIR, else "".
std::string resolve_mnist_dir(const DataSpec& spec);

/// Load (or generate) the split described by `spec`.
DataBundle load_digits(const DataSpec& spec);

}  // namespace snnsec::data
