#include "data/mnist.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace snnsec::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::uint32_t read_be32(std::istream& is, const std::string& path) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  SNNSEC_CHECK(is.good(), "truncated IDX header in " << path);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

std::string find_file(const std::string& dir,
                      std::initializer_list<const char*> candidates) {
  for (const char* name : candidates) {
    const std::filesystem::path p = std::filesystem::path(dir) / name;
    if (std::filesystem::exists(p)) return p.string();
  }
  return {};
}

}  // namespace

Tensor load_idx_images(const std::string& path, std::int64_t max_items) {
  std::ifstream is(path, std::ios::binary);
  SNNSEC_CHECK(is.is_open(), "cannot open IDX image file " << path);
  const std::uint32_t magic = read_be32(is, path);
  SNNSEC_CHECK(magic == 0x00000803,
               "bad IDX image magic 0x" << std::hex << magic << " in " << path);
  std::int64_t n = read_be32(is, path);
  const std::int64_t h = read_be32(is, path);
  const std::int64_t w = read_be32(is, path);
  SNNSEC_CHECK(n > 0 && h > 0 && w > 0 && h <= 4096 && w <= 4096,
               "implausible IDX image dims in " << path);
  if (max_items >= 0 && max_items < n) n = max_items;

  Tensor out(Shape{n, 1, h, w});
  std::vector<unsigned char> row(static_cast<std::size_t>(h * w));
  for (std::int64_t i = 0; i < n; ++i) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    SNNSEC_CHECK(is.good(), "truncated IDX image payload in " << path);
    float* dst = out.data() + i * h * w;
    for (std::size_t j = 0; j < row.size(); ++j)
      dst[j] = static_cast<float>(row[j]) / 255.0f;
  }
  return out;
}

std::vector<std::int64_t> load_idx_labels(const std::string& path,
                                          std::int64_t max_items) {
  std::ifstream is(path, std::ios::binary);
  SNNSEC_CHECK(is.is_open(), "cannot open IDX label file " << path);
  const std::uint32_t magic = read_be32(is, path);
  SNNSEC_CHECK(magic == 0x00000801,
               "bad IDX label magic 0x" << std::hex << magic << " in " << path);
  std::int64_t n = read_be32(is, path);
  SNNSEC_CHECK(n > 0, "empty IDX label file " << path);
  if (max_items >= 0 && max_items < n) n = max_items;
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (auto& l : out) {
    unsigned char b = 0;
    is.read(reinterpret_cast<char*>(&b), 1);
    SNNSEC_CHECK(is.good(), "truncated IDX label payload in " << path);
    l = b;
  }
  return out;
}

bool mnist_available(const std::string& dir) {
  if (dir.empty()) return false;
  return !find_file(dir, {"train-images-idx3-ubyte", "train-images.idx3-ubyte"})
              .empty() &&
         !find_file(dir, {"train-labels-idx1-ubyte", "train-labels.idx1-ubyte"})
              .empty() &&
         !find_file(dir, {"t10k-images-idx3-ubyte", "t10k-images.idx3-ubyte"})
              .empty() &&
         !find_file(dir, {"t10k-labels-idx1-ubyte", "t10k-labels.idx1-ubyte"})
              .empty();
}

Dataset load_mnist(const std::string& dir, bool train,
                   std::int64_t max_items) {
  const std::string images_path =
      train ? find_file(dir, {"train-images-idx3-ubyte",
                              "train-images.idx3-ubyte"})
            : find_file(dir, {"t10k-images-idx3-ubyte",
                              "t10k-images.idx3-ubyte"});
  const std::string labels_path =
      train ? find_file(dir, {"train-labels-idx1-ubyte",
                              "train-labels.idx1-ubyte"})
            : find_file(dir, {"t10k-labels-idx1-ubyte",
                              "t10k-labels.idx1-ubyte"});
  SNNSEC_CHECK(!images_path.empty() && !labels_path.empty(),
               "MNIST files not found in " << dir);
  Dataset out;
  out.images = load_idx_images(images_path, max_items);
  out.labels = load_idx_labels(labels_path, max_items);
  out.num_classes = 10;
  SNNSEC_CHECK(out.size() == static_cast<std::int64_t>(out.labels.size()),
               "MNIST image/label count mismatch in " << dir);
  return out;
}

}  // namespace snnsec::data
