#include "data/provider.hpp"

#include "data/mnist.hpp"
#include "data/resize.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace snnsec::data {

std::string resolve_mnist_dir(const DataSpec& spec) {
  if (!spec.mnist_dir.empty()) return spec.mnist_dir;
  return util::env_or(
      spec.task == TaskKind::kFashion ? "FASHION_MNIST_DIR" : "MNIST_DIR",
      "");
}

DataBundle load_digits(const DataSpec& spec) {
  SNNSEC_CHECK(spec.train_n > 0 && spec.test_n > 0,
               "load_digits: split sizes must be positive");
  DataBundle bundle;
  const std::string mnist_dir = resolve_mnist_dir(spec);
  if (!spec.force_synthetic && mnist_available(mnist_dir)) {
    SNNSEC_LOG_INFO("loading MNIST from " << mnist_dir);
    bundle.train = load_mnist(mnist_dir, /*train=*/true, spec.train_n);
    bundle.test = load_mnist(mnist_dir, /*train=*/false, spec.test_n);
    if (spec.image_size != bundle.train.height()) {
      bundle.train.images = resize_bilinear(bundle.train.images,
                                            spec.image_size, spec.image_size);
      bundle.test.images = resize_bilinear(bundle.test.images,
                                           spec.image_size, spec.image_size);
    }
    bundle.from_mnist = true;
  } else {
    SynthConfig cfg;
    cfg.image_size = spec.image_size;
    util::Rng rng(spec.seed);
    util::Rng train_rng = rng.fork("synth-train");
    util::Rng test_rng = rng.fork("synth-test");
    if (spec.task == TaskKind::kFashion) {
      bundle.train = generate_fashion(spec.train_n, cfg, train_rng);
      bundle.test = generate_fashion(spec.test_n, cfg, test_rng);
    } else {
      bundle.train = generate_digits(spec.train_n, cfg, train_rng);
      bundle.test = generate_digits(spec.test_n, cfg, test_rng);
    }
    bundle.from_mnist = false;
  }
  bundle.train.validate();
  bundle.test.validate();
  return bundle;
}

}  // namespace snnsec::data
