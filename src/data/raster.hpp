// Anti-aliased software rasterizer for the synthetic digit generator.
//
// A Canvas is a single-channel float image in [0, 1]. Strokes are stamped
// as soft discs along sampled curve points with max blending, producing
// smooth, pen-like glyphs similar in texture to MNIST digits.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace snnsec::data {

struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;
};

/// 2-D affine transform: p' = A p + t.
struct Affine {
  float a = 1.0f, b = 0.0f;  // row 1
  float c = 0.0f, d = 1.0f;  // row 2
  float tx = 0.0f, ty = 0.0f;

  Vec2 apply(Vec2 p) const {
    return {a * p.x + b * p.y + tx, c * p.x + d * p.y + ty};
  }

  /// Compose: (this ∘ other)(p) = this(other(p)).
  Affine then(const Affine& outer) const;

  static Affine identity() { return {}; }
  /// Rotation by `radians` about `center`.
  static Affine rotation(float radians, Vec2 center);
  static Affine scaling(float sx, float sy, Vec2 center);
  static Affine translation(float dx, float dy);
  static Affine shear(float kx, Vec2 center);
};

class Canvas {
 public:
  Canvas(std::int64_t height, std::int64_t width)
      : height_(height), width_(width),
        pixels_(static_cast<std::size_t>(height * width), 0.0f) {}

  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }
  const std::vector<float>& pixels() const { return pixels_; }
  std::vector<float>& pixels() { return pixels_; }

  /// Stamp a soft disc of radius `r` (pixels) at `center` (pixel coords),
  /// max-blended, peak intensity `intensity`.
  void stamp(Vec2 center, float r, float intensity = 1.0f);

  /// Draw a polyline with the given stroke radius by stamping along it at
  /// sub-pixel spacing.
  void stroke_polyline(const std::vector<Vec2>& points, float radius,
                       float intensity = 1.0f);

  /// Fill a simple polygon (even-odd rule) with 2x2 supersampled coverage,
  /// max-blended at the given intensity. Vertices in pixel coordinates.
  void fill_polygon(const std::vector<Vec2>& vertices, float intensity = 1.0f);

  /// Additive Gaussian pixel noise, clamped to [0, 1].
  void add_noise(float stddev, util::Rng& rng);

  /// 3x3 binomial blur (approximate Gaussian), `passes` times.
  void blur(int passes = 1);

  /// Copy into channel `c` of images[index] ([N, C, H, W] tensor).
  void copy_to(tensor::Tensor& images, std::int64_t index,
               std::int64_t channel = 0) const;

 private:
  std::int64_t height_;
  std::int64_t width_;
  std::vector<float> pixels_;
};

/// Sample a quadratic Bézier (p0, p1 control, p2) at `n` points (n >= 2).
std::vector<Vec2> sample_quad_bezier(Vec2 p0, Vec2 p1, Vec2 p2, int n);

/// Sample an ellipse arc: center, radii, [angle0, angle1] radians, n points.
std::vector<Vec2> sample_ellipse(Vec2 center, float rx, float ry,
                                 float angle0, float angle1, int n);

}  // namespace snnsec::data
