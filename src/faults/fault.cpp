#include "faults/fault.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace snnsec::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWeightBitflip: return "weight_bitflip";
    case FaultKind::kStuckAtZero: return "stuck_at_zero";
    case FaultKind::kStuckAtOne: return "stuck_at_one";
    case FaultKind::kSpikeDrop: return "spike_drop";
    case FaultKind::kSpikeJitter: return "spike_jitter";
  }
  return "unknown";
}

std::string FaultSpec::label() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return std::string(to_string(kind)) + "@" + buf;
}

void FaultSpec::validate() const {
  SNNSEC_CHECK(rate >= 0.0 && rate <= 1.0,
               "FaultSpec " << label() << ": rate outside [0, 1]");
}

std::size_t inject_weight_bitflips(
    const std::vector<nn::Parameter*>& params, double ber, util::Rng& rng) {
  SNNSEC_CHECK(ber >= 0.0 && ber <= 1.0,
               "inject_weight_bitflips: BER outside [0, 1]");
  if (ber <= 0.0 || params.empty()) return 0;

  std::uint64_t total_bits = 0;
  for (const nn::Parameter* p : params)
    total_bits += static_cast<std::uint64_t>(p->value.numel()) * 32;

  const auto flip = [&](std::uint64_t bit) {
    // Locate the owning tensor, then the word and bit inside it.
    for (nn::Parameter* p : params) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(p->value.numel()) * 32;
      if (bit >= bits) {
        bit -= bits;
        continue;
      }
      float* slot = p->value.data() + bit / 32;
      std::uint32_t word = 0;
      std::memcpy(&word, slot, sizeof(word));
      word ^= 1u << (bit % 32);
      std::memcpy(slot, &word, sizeof(word));
      return;
    }
  };

  std::size_t flipped = 0;
  if (ber >= 1.0) {
    for (std::uint64_t bit = 0; bit < total_bits; ++bit) flip(bit);
    return static_cast<std::size_t>(total_bits);
  }

  // Geometric gap sampling: the distance to the next flipped bit under iid
  // Bernoulli(ber) is Geometric(ber), so we jump straight between flips
  // instead of drawing per bit — O(flips) draws even at BER 1e-9.
  const double log1m = std::log1p(-ber);
  std::uint64_t pos = 0;
  while (pos < total_bits) {
    const double u = rng.uniform();  // in [0, 1)
    const double gap = std::floor(std::log1p(-u) / log1m);
    if (gap >= static_cast<double>(total_bits)) break;
    pos += static_cast<std::uint64_t>(gap);
    if (pos >= total_bits) break;
    flip(pos);
    ++flipped;
    ++pos;
  }
  SNNSEC_COUNTER_ADD("faults.bits_flipped",
                     static_cast<std::int64_t>(flipped));
  return flipped;
}

std::vector<tensor::Tensor> snapshot_parameters(
    const std::vector<nn::Parameter*>& params) {
  std::vector<tensor::Tensor> snapshot;
  snapshot.reserve(params.size());
  for (const nn::Parameter* p : params)
    snapshot.push_back(p->value.clone());
  return snapshot;
}

void restore_parameters(const std::vector<nn::Parameter*>& params,
                        const std::vector<tensor::Tensor>& snapshot) {
  SNNSEC_CHECK(params.size() == snapshot.size(),
               "restore_parameters: snapshot size mismatch ("
                   << snapshot.size() << " vs " << params.size() << ")");
  for (std::size_t i = 0; i < params.size(); ++i) {
    SNNSEC_CHECK(params[i]->value.shape() == snapshot[i].shape(),
                 "restore_parameters: shape mismatch at parameter " << i);
    params[i]->value = snapshot[i].clone();
  }
}

std::size_t arm_fault(snn::SpikingClassifier& model, const FaultSpec& spec) {
  spec.validate();
  if (spec.kind == FaultKind::kWeightBitflip) {
    util::Rng rng(spec.seed);
    auto params = model.parameters();
    return inject_weight_bitflips(params, spec.rate, rng);
  }

  snn::SpikeFault fault;
  switch (spec.kind) {
    case FaultKind::kStuckAtZero: fault.stuck_zero_fraction = spec.rate; break;
    case FaultKind::kStuckAtOne: fault.stuck_one_fraction = spec.rate; break;
    case FaultKind::kSpikeDrop: fault.drop_prob = spec.rate; break;
    case FaultKind::kSpikeJitter: fault.jitter_prob = spec.rate; break;
    case FaultKind::kWeightBitflip: break;  // handled above
  }

  const util::Rng root(spec.seed);
  nn::Sequential& net = model.net();
  std::size_t armed = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i));
    if (!lif) continue;
    // Distinct per-layer streams: layer k's fault pattern must not repeat
    // layer k+1's even when their populations happen to match in size.
    fault.seed = root.fork(static_cast<std::uint64_t>(armed)).seed();
    lif->set_spike_fault(fault);
    ++armed;
  }
  return armed;
}

void clear_spike_faults(snn::SpikingClassifier& model) {
  nn::Sequential& net = model.net();
  for (std::size_t i = 0; i < net.size(); ++i)
    if (auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i)))
      lif->clear_spike_fault();
}

std::size_t armed_spike_fault_count(const snn::SpikingClassifier& model) {
  // net() is non-const only; the scan mutates nothing.
  auto& net = const_cast<snn::SpikingClassifier&>(model).net();
  std::size_t armed = 0;
  for (std::size_t i = 0; i < net.size(); ++i)
    if (auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i)))
      if (lif->spike_fault().any()) ++armed;
  return armed;
}

ScopedFault::ScopedFault(snn::SpikingClassifier& model, const FaultSpec& spec)
    : model_(model) {
  if (spec.kind == FaultKind::kWeightBitflip) {
    snapshot_ = snapshot_parameters(model.parameters());
    weights_touched_ = true;
  } else {
    // Snapshot each LifLayer's current fault (stack order) so destruction
    // re-installs whatever an enclosing scope had armed.
    nn::Sequential& net = model.net();
    for (std::size_t i = 0; i < net.size(); ++i)
      if (auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i)))
        prior_faults_.push_back(lif->spike_fault());
    spikes_touched_ = true;
  }
  injected_ = arm_fault(model, spec);
}

ScopedFault::~ScopedFault() {
  if (spikes_touched_) {
    nn::Sequential& net = model_.net();
    std::size_t idx = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
      auto* lif = dynamic_cast<snn::LifLayer*>(&net.layer(i));
      if (!lif) continue;
      if (idx < prior_faults_.size()) lif->set_spike_fault(prior_faults_[idx]);
      ++idx;
    }
  }
  if (weights_touched_) {
    auto params = model_.parameters();
    restore_parameters(params, snapshot_);
  }
}

}  // namespace snnsec::faults
