#include "faults/harness.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace snnsec::faults {

void FaultGridConfig::validate() const {
  SNNSEC_CHECK(!faults.empty(), "FaultGridConfig: no faults to evaluate");
  for (const auto& f : faults) f.validate();
  SNNSEC_CHECK(eval_batch > 0, "FaultGridConfig: bad eval_batch");
}

const FaultCellResult* FaultReport::find(double v_th, std::int64_t t) const {
  for (const auto& cell : cells)
    if (cell.time_steps == t && std::fabs(cell.v_th - v_th) < 1e-9)
      return &cell;
  return nullptr;
}

std::string FaultReport::table() const {
  std::ostringstream oss;
  oss << "accuracy under fault [%] over (V_th, T)\n";
  oss << "  v_th      T  baseline";
  for (const auto& label : fault_labels) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "  %20s", label.c_str());
    oss << buf;
  }
  oss << '\n';
  for (const auto& cell : cells) {
    char head[40];
    std::snprintf(head, sizeof(head), "  %.2f  %5lld", cell.v_th,
                  static_cast<long long>(cell.time_steps));
    oss << head;
    if (cell.status != core::CellStatus::kOk &&
        cell.status != core::CellStatus::kSkippedLearnability) {
      oss << "  [" << core::to_string(cell.status) << "]\n";
      continue;
    }
    char base[16];
    std::snprintf(base, sizeof(base), "  %7.1f", cell.baseline_accuracy * 100);
    oss << base;
    for (const auto& label : fault_labels) {
      const auto it = cell.accuracy.find(label);
      if (it == cell.accuracy.end()) {
        oss << "                    --";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "  %20.1f", it->second * 100);
        oss << buf;
      }
    }
    oss << '\n';
  }
  return oss.str();
}

void FaultReport::write_csv(const std::string& path) const {
  util::CsvWriter csv(path);
  std::vector<std::string> header = {"v_th", "T", "status",
                                     "baseline_accuracy"};
  for (const auto& label : fault_labels) header.push_back(label);
  csv.write_header(header);
  for (const auto& cell : cells) {
    util::CsvWriter::Row row;
    row << cell.v_th << cell.time_steps << core::to_string(cell.status)
        << cell.baseline_accuracy;
    for (const auto& label : fault_labels) {
      const auto it = cell.accuracy.find(label);
      row << (it == cell.accuracy.end() ? std::string("NA")
                                        : util::format_float(it->second, 6));
    }
    csv.write(row);
  }
}

FaultReport evaluate_fault_grid(core::RobustnessExplorer& explorer,
                                const data::DataBundle& data,
                                const FaultGridConfig& cfg) {
  cfg.validate();
  const core::ExplorationConfig& xcfg = explorer.config();

  FaultReport report;
  report.v_th_grid = xcfg.v_th_grid;
  report.t_grid = xcfg.t_grid;
  for (const auto& f : cfg.faults) report.fault_labels.push_back(f.label());

  data::Dataset eval_set = data.test;
  if (cfg.eval_cap > 0 && eval_set.size() > cfg.eval_cap)
    eval_set = eval_set.take(cfg.eval_cap);

  for (const double v_th : xcfg.v_th_grid) {
    for (const std::int64_t t : xcfg.t_grid) {
      auto trained = explorer.train_cell(v_th, t, data);

      FaultCellResult cell;
      cell.v_th = v_th;
      cell.time_steps = t;
      cell.status = trained.status;
      if (trained.status != core::CellStatus::kOk || !trained.model) {
        SNNSEC_LOG_WARN("fault grid: cell (v_th=" << v_th << ", T=" << t
                                                  << ") training failed ("
                                                  << trained.error
                                                  << "); skipping");
        report.cells.push_back(std::move(cell));
        continue;
      }

      cell.baseline_accuracy = nn::accuracy(
          *trained.model, eval_set.images, eval_set.labels, cfg.eval_batch);
      for (const auto& spec : cfg.faults) {
        ScopedFault scope(*trained.model, spec);
        const double acc = nn::accuracy(*trained.model, eval_set.images,
                                        eval_set.labels, cfg.eval_batch);
        cell.accuracy.emplace(spec.label(), acc);
        if (obs::Registry::enabled())
          obs::Registry::instance().record(
              "faults.accuracy", acc,
              {{"v_th", util::format_float(v_th, 4)},
               {"T", std::to_string(t)},
               {"fault", spec.label()}});
      }
      SNNSEC_LOG_INFO("fault grid cell (v_th="
                      << v_th << ", T=" << t
                      << "): baseline=" << cell.baseline_accuracy
                      << ", " << cfg.faults.size() << " faults evaluated");
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace snnsec::faults
