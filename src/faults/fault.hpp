// Deterministic hardware-fault injection for trained spiking networks.
//
// The paper argues structural parameters (V_th, T) buy adversarial
// robustness for free; the same question arises for *hardware* faults on
// neuromorphic substrates: flipped weight bits in storage, dead or
// saturated neurons, dropped or delayed spikes on the interconnect. This
// module injects those fault classes into an already-trained
// SpikingClassifier — deterministically, from an explicit seed — so
// accuracy-under-fault can be swept across the (V_th, T) grid exactly like
// accuracy-under-attack.
//
// All injectors are evaluation-time only: weight flips mutate Parameter
// values (snapshot/restore around them, or use ScopedFault) and spike
// faults arm the snn::SpikeFault post-pass on every LifLayer, which is not
// differentiable-through.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "snn/spiking_network.hpp"
#include "util/rng.hpp"

namespace snnsec::faults {

enum class FaultKind {
  kWeightBitflip,  ///< iid flips over all float32 weight bits at a BER
  kStuckAtZero,    ///< dead neurons: slots that never fire
  kStuckAtOne,     ///< saturated neurons: slots firing every time step
  kSpikeDrop,      ///< each spike independently deleted
  kSpikeJitter,    ///< each spike independently delayed one time step
};

const char* to_string(FaultKind kind);

/// One fault scenario: a kind plus its intensity. `rate` is the bit-error
/// rate for kWeightBitflip, the affected slot fraction for stuck-at faults
/// and the per-spike probability for drop/jitter — always in [0, 1].
struct FaultSpec {
  FaultKind kind = FaultKind::kWeightBitflip;
  double rate = 0.0;
  std::uint64_t seed = 7;

  /// Stable human/CSV identifier, e.g. "weight_bitflip@0.001".
  std::string label() const;
  void validate() const;
};

/// Flip each of the numel*32 bits across all parameter tensors
/// independently with probability `ber` (geometric gap sampling: O(flips),
/// not O(bits)). Returns the number of bits flipped. Exponent-bit flips may
/// produce non-finite weights — that is the fault model, not a bug.
std::size_t inject_weight_bitflips(
    const std::vector<nn::Parameter*>& params, double ber, util::Rng& rng);

/// Deep-copy every parameter value (for restore after weight faults).
std::vector<tensor::Tensor> snapshot_parameters(
    const std::vector<nn::Parameter*>& params);
void restore_parameters(const std::vector<nn::Parameter*>& params,
                        const std::vector<tensor::Tensor>& snapshot);

/// Apply `spec` to the model: weight faults mutate parameters immediately;
/// spike faults arm every LifLayer (per-layer sub-seeds forked from
/// spec.seed) until clear_faults(). Returns bits flipped for
/// kWeightBitflip, LIF layers armed otherwise.
std::size_t arm_fault(snn::SpikingClassifier& model, const FaultSpec& spec);

/// Disarm the spike-fault post-pass on every LifLayer (weight faults are
/// undone via restore_parameters, not here).
void clear_spike_faults(snn::SpikingClassifier& model);

/// Count of LifLayers whose spike-fault post-pass is currently armed.
std::size_t armed_spike_fault_count(const snn::SpikingClassifier& model);

/// RAII scope: snapshot the state `spec` will touch, apply it, and undo it
/// on destruction. Weight faults snapshot/restore parameter values; spike
/// faults snapshot/restore each LifLayer's *prior* SpikeFault, so scopes
/// nest — an inner ScopedFault destructing re-arms whatever the outer scope
/// had installed instead of blanket-clearing it, and LIFO destruction of
/// stacked weight scopes restores the original weights.
class ScopedFault {
 public:
  ScopedFault(snn::SpikingClassifier& model, const FaultSpec& spec);
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  /// Bits flipped (kWeightBitflip) or LIF layers armed (spike faults).
  std::size_t injected() const { return injected_; }

 private:
  snn::SpikingClassifier& model_;
  std::vector<tensor::Tensor> snapshot_;
  std::vector<snn::SpikeFault> prior_faults_;  ///< per-LifLayer, stack order
  std::size_t injected_ = 0;
  bool weights_touched_ = false;
  bool spikes_touched_ = false;
};

}  // namespace snnsec::faults
