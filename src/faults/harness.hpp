// Accuracy-under-fault across the (V_th, T) grid.
//
// The structural-parameter study of Algorithm 1, with the adversary
// replaced by a hardware-fault model: every grid cell's trained network
// (shared with the robustness sweep through the explorer's cell cache) is
// evaluated clean and under each FaultSpec, yielding a fault-tolerance
// heatmap over the same axes as the paper's robustness figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "faults/fault.hpp"

namespace snnsec::faults {

struct FaultGridConfig {
  std::vector<FaultSpec> faults;
  /// Cap on test samples per evaluation; -1 = the full test set.
  std::int64_t eval_cap = -1;
  std::int64_t eval_batch = 32;

  void validate() const;
};

struct FaultCellResult {
  double v_th = 0.0;
  std::int64_t time_steps = 0;
  core::CellStatus status = core::CellStatus::kOk;  ///< training outcome
  double baseline_accuracy = 0.0;  ///< fault-free accuracy on the eval set
  /// FaultSpec::label() -> accuracy under that fault (empty for cells whose
  /// training failed — the sweep skips them and moves on).
  std::map<std::string, double> accuracy;
};

struct FaultReport {
  std::vector<double> v_th_grid;
  std::vector<std::int64_t> t_grid;
  std::vector<std::string> fault_labels;
  std::vector<FaultCellResult> cells;

  const FaultCellResult* find(double v_th, std::int64_t t) const;

  /// Human-readable table: one row per cell, one column per fault.
  std::string table() const;

  /// CSV: v_th, T, status, baseline_accuracy, then one column per fault.
  void write_csv(const std::string& path) const;
};

/// Train (or cache-load) every (V_th, T) cell through `explorer` and
/// measure its accuracy under every fault in `cfg`. Cells whose training
/// fails (diverged/timeout after the explorer's retries) are recorded with
/// their status and skipped.
FaultReport evaluate_fault_grid(core::RobustnessExplorer& explorer,
                                const data::DataBundle& data,
                                const FaultGridConfig& cfg);

}  // namespace snnsec::faults
