// MicroBatcher: bounded admission queue + dynamic micro-batch former.
//
// The batcher owns no request payloads — it hands out slot indices into a
// fixed ring of `capacity` slots (the Server keeps the actual tensors in a
// parallel array) and tracks which slots are pending, in FIFO order.
//
// Lifecycle of a slot:
//   producer: try_acquire() -> fill payload -> enqueue()
//   consumer: next_batch()  -> execute -> deliver result
//   producer: release()     (after reading the delivered result)
//
// Admission control is the free list: when all `capacity` slots are
// outstanding, try_acquire() returns -1 and the caller sheds the request
// (503-style Rejected) instead of buffering unboundedly.
//
// Batch formation (next_batch) blocks until either `max_batch` requests are
// pending (flush on size) or the oldest pending request has waited
// `max_delay_us` (flush on delay), then pops up to max_batch slots in FIFO
// order. Multiple consumers may pull concurrently; each batch is a
// contiguous FIFO segment. After stop(), pending requests drain and then
// next_batch returns 0.
//
// Everything is preallocated in the constructor: the steady-state
// acquire/enqueue/pop/release path performs no heap allocation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace snnsec::serve {

struct BatcherConfig {
  std::int64_t max_batch = 8;      ///< flush when this many are pending
  std::int64_t max_delay_us = 1000;  ///< flush when the oldest waits this long
  std::int64_t capacity = 64;      ///< bound on outstanding requests
  void validate() const;
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherConfig cfg);

  /// Reserve a slot. Returns the slot index, or -1 when the queue is at
  /// capacity or the batcher is stopped (caller sheds the request).
  std::int64_t try_acquire();

  /// Hand a filled slot to the consumers; FIFO position is assigned by the
  /// order of enqueue() calls (mutex-serialized).
  void enqueue(std::int64_t slot);

  /// Block until a batch is ready, pop up to max_batch slot indices in FIFO
  /// order into `out` (must hold >= max_batch entries). Returns the batch
  /// size, or 0 once stopped and drained.
  std::int64_t next_batch(std::int64_t* out);

  /// Timed variant for supervised workers: like next_batch, but gives up
  /// after `timeout_us` without a formed batch and returns -1 so the caller
  /// can run maintenance (canary checks, self-healing) between polls.
  /// Returns 0 only when stopped and drained, exactly like next_batch.
  std::int64_t next_batch_for(std::int64_t* out, std::int64_t timeout_us);

  /// Return a slot to the free list (producer side, after the result has
  /// been read out).
  void release(std::int64_t slot);

  /// Stop admitting (try_acquire returns -1); pending requests still drain
  /// through next_batch, which then returns 0.
  void stop();
  bool stopped() const;

  /// Pending (enqueued, not yet popped) request count.
  std::int64_t depth() const;

  std::int64_t capacity() const { return cfg_.capacity; }
  const BatcherConfig& config() const { return cfg_; }

 private:
  BatcherConfig cfg_;
  mutable std::mutex m_;
  std::condition_variable cv_ready_;
  std::vector<std::int64_t> fifo_;  ///< ring buffer of pending slots
  std::int64_t head_ = 0;
  std::int64_t count_ = 0;
  std::vector<std::int64_t> free_;  ///< stack of unreserved slots
  std::int64_t free_top_;
  /// Enqueue timestamp per slot (valid between enqueue and pop) — drives
  /// the flush-on-delay deadline for the oldest pending request.
  std::vector<std::chrono::steady_clock::time_point> enq_time_;
  bool stopped_ = false;
};

}  // namespace snnsec::serve
